// LT2 "move-down" (paper §5.2): reset phases of local signals migrate to
// later bursts, where they ride along with the next operation's start
// instead of occupying their own handshake round trip.  A falling edge may
// not move past a transition that waits its own acknowledge response, and
// rests once it has joined a burst triggered by a global request, a
// conditional test or the FU completion.

#include "ltrans/common.hpp"

namespace adc {

using namespace detail;

namespace {

bool is_resting_place(const SignalBindings& b, const XbmTransition& t) {
  if (!t.conds.empty()) return true;
  for (const auto& e : t.inputs) {
    if (e.directed_dont_care) continue;
    SignalRole r = role_of(b, e.signal);
    if (is_global(r)) return true;
    if (r == SignalRole::kFuDone && e.polarity != EdgePolarity::kFalling) return true;
  }
  return false;
}

}  // namespace

namespace {

// A reset that belongs at the head of the ring cannot simply join the
// initial state's outgoing transition: on the very first execution the
// signal is still low and the falling edge would be inconsistent.  The
// classic fix is to split the initial state: a fresh initial state gets
// copies of the ring-entry transitions *without* the migrated resets (the
// first iteration), while the original state becomes the steady-state ring
// head that does carry them.
StateId split_initial(Xbm& m) {
  StateId old = m.initial();
  StateId fresh = m.add_state(m.state(old).name + "_first");
  for (TransitionId tid : m.out_transitions(old)) {
    XbmTransition t = m.transition(tid);  // snapshot
    TransitionId nid = m.add_transition(fresh, t.to, t.inputs, t.outputs, t.conds);
    m.transition(nid).origin = t.origin;
    m.transition(nid).note = t.note + " (first iteration)";
  }
  m.set_initial(fresh);
  return old;
}

}  // namespace

int lt2_move_down(Xbm& m, const SignalBindings& b) {
  int moved = 0;
  bool split_done = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (TransitionId tid : m.transition_ids()) {
      // Falling local resets (never the FU go: its withdrawal must precede
      // any wait for the done indicator to reset).
      std::vector<XbmEdge> resets;
      for (const auto& e : m.transition(tid).outputs)
        if (e.polarity == EdgePolarity::kFalling && is_local_set(role_of(b, e.signal)))
          resets.push_back(e);
      if (resets.empty()) continue;
      if (is_resting_place(b, m.transition(tid))) continue;
      // Ring closure: splitting the initial state turns its successor into
      // an ordinary ring-head transition that can accept the resets.
      if (m.transition(tid).to == m.initial() && !split_done &&
          m.in_transitions(m.initial()).size() == 1 &&
          m.out_transitions(m.initial()).size() == 1) {
        split_initial(m);
        split_done = true;
        changed = true;
        break;  // transition ids shifted; rescan
      }
      // Successor transitions: the unique chain successor, or — at a
      // conditional branch point — all alternatives (the reset is then
      // emitted on whichever branch fires).
      std::vector<TransitionId> succs;
      if (auto succ = chain_succ(m, tid)) {
        succs.push_back(*succ);
      } else {
        StateId sto = m.transition(tid).to;
        if (sto != m.initial() && m.in_transitions(sto).size() == 1) {
          auto outs = m.out_transitions(sto);
          if (outs.size() > 1) succs = outs;
        }
      }
      if (succs.empty()) continue;
      for (const auto& e : resets) {
        // No successor may wait this signal's acknowledge response or
        // already toggle the signal.
        SignalRole out_role = role_of(b, e.signal);
        auto caused = caused_role(out_role);
        bool blocked = false;
        for (TransitionId sid : succs) {
          const XbmTransition& s = m.transition(sid);
          if (burst_has_signal(s.outputs, e.signal)) blocked = true;
          for (const auto& in : s.inputs) {
            if (in.directed_dont_care) continue;
            if (caused && role_of(b, in.signal) == *caused &&
                in.polarity == EdgePolarity::kFalling)
              blocked = true;
          }
        }
        if (blocked) continue;
        erase_edge(m.transition(tid).outputs, e.signal);
        for (TransitionId sid : succs) m.transition(sid).outputs.push_back(e);
        ++moved;
        changed = true;
      }
    }
  }
  return moved;
}

}  // namespace adc
