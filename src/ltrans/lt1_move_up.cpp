// LT1 "move-up" (paper §5.1): global done signals migrate to earlier
// bursts.  A done may ride on the transition that latches the result (the
// paper's example moves A1M+ next to reg_U_latch) but never before the
// functional unit has completed: the edge hops backwards over transitions
// whose inputs are only local acknowledge phases, and stops at any
// transition that waits the FU completion, a global request, or samples a
// conditional.

#include "ltrans/common.hpp"

namespace adc {

using namespace detail;

namespace {

// True if the transition's input burst consists purely of local-handshake
// phases that a done signal may safely overtake.
bool overtakable(const SignalBindings& b, const XbmTransition& t) {
  if (!t.conds.empty()) return false;
  for (const auto& e : t.inputs) {
    if (e.directed_dont_care) continue;
    SignalRole r = role_of(b, e.signal);
    if (is_local_ack(r)) continue;
    if (r == SignalRole::kFuDone && e.polarity == EdgePolarity::kFalling) continue;
    return false;
  }
  return true;
}

}  // namespace

int lt1_move_up(Xbm& m, const SignalBindings& b) {
  int moved = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (TransitionId tid : m.transition_ids()) {
      XbmTransition& t = m.transition(tid);
      if (!overtakable(b, t)) continue;
      // A done resting beside a latch strobe stays there: the result write
      // must at least be initiated before consumers are signalled (the
      // paper's "latching and sending done in parallel").
      bool strobes_latch = false;
      for (const auto& e : t.outputs)
        if (role_of(b, e.signal) == SignalRole::kLatch &&
            e.polarity == EdgePolarity::kRising)
          strobes_latch = true;
      if (strobes_latch) continue;
      auto pred = chain_pred(m, tid);
      if (!pred) continue;
      // Collect the movable done edges first; then move them.
      std::vector<XbmEdge> dones;
      for (const auto& e : t.outputs)
        if (is_global(role_of(b, e.signal))) dones.push_back(e);
      if (dones.empty()) continue;
      XbmTransition& p = m.transition(*pred);
      bool conflict = false;
      for (const auto& e : dones)
        if (burst_has_signal(p.outputs, e.signal)) conflict = true;
      if (conflict) continue;
      for (const auto& e : dones) {
        erase_edge(t.outputs, e.signal);
        p.outputs.push_back(e);
        ++moved;
      }
      changed = true;
    }
  }
  return moved;
}

}  // namespace adc
