#pragma once
// Shared helpers for the local transformations.

#include <algorithm>
#include <optional>

#include "ltrans/local.hpp"

namespace adc::detail {

inline SignalRole role_of(const SignalBindings& b, SignalId s) {
  auto it = b.find(s.value());
  return it == b.end() ? SignalRole::kGlobalReady : it->second.role;
}

inline bool is_local_ack(SignalRole r) {
  return r == SignalRole::kMuxAck || r == SignalRole::kOpAck ||
         r == SignalRole::kRegMuxAck || r == SignalRole::kLatchAck;
}

inline bool is_local_set(SignalRole r) {
  return r == SignalRole::kMuxSelect || r == SignalRole::kOpSelect ||
         r == SignalRole::kRegMuxSelect || r == SignalRole::kLatch;
}

inline bool is_global(SignalRole r) {
  return r == SignalRole::kGlobalReady || r == SignalRole::kEnvironment;
}

// The input-edge role a local output edge causes (its handshake response).
inline std::optional<SignalRole> caused_role(SignalRole out) {
  switch (out) {
    case SignalRole::kMuxSelect: return SignalRole::kMuxAck;
    case SignalRole::kOpSelect: return SignalRole::kOpAck;
    case SignalRole::kRegMuxSelect: return SignalRole::kRegMuxAck;
    case SignalRole::kLatch: return SignalRole::kLatchAck;
    case SignalRole::kFuGo: return SignalRole::kFuDone;
    default: return std::nullopt;
  }
}

inline bool burst_has_signal(const std::vector<XbmEdge>& burst, SignalId s) {
  return std::any_of(burst.begin(), burst.end(),
                     [s](const XbmEdge& e) { return e.signal == s; });
}

inline void erase_edge(std::vector<XbmEdge>& burst, SignalId s) {
  burst.erase(std::remove_if(burst.begin(), burst.end(),
                             [s](const XbmEdge& e) { return e.signal == s; }),
              burst.end());
}

// Unique predecessor transition of t, requiring a clean chain: t.from has
// exactly one incoming and one outgoing transition and is not the initial
// state.  Edges may only migrate across such states.
inline std::optional<TransitionId> chain_pred(const Xbm& m, TransitionId t) {
  StateId s = m.transition(t).from;
  if (s == m.initial()) return std::nullopt;
  if (m.out_transitions(s).size() != 1) return std::nullopt;
  auto ins = m.in_transitions(s);
  if (ins.size() != 1) return std::nullopt;
  if (ins.front() == t) return std::nullopt;  // self loop
  return ins.front();
}

inline std::optional<TransitionId> chain_succ(const Xbm& m, TransitionId t) {
  StateId s = m.transition(t).to;
  if (s == m.initial()) return std::nullopt;
  if (m.in_transitions(s).size() != 1) return std::nullopt;
  auto outs = m.out_transitions(s);
  if (outs.size() != 1) return std::nullopt;
  if (outs.front() == t) return std::nullopt;
  return outs.front();
}

}  // namespace adc::detail
