// LT4 "remove acknowledgments" (paper §5.4): local acknowledge wires whose
// handshakes are covered by user-supplied timing assumptions (bounded mux /
// register / latch response, prompt FU-done reset) are deleted, and the
// transitions left without a trigger are folded away.  The FU's *rising*
// done edge is always kept — operation latency is genuinely variable —
// but becomes a transition-signalled (pulse) edge once its reset phase is
// no longer observed.

#include <set>

#include "ltrans/common.hpp"

namespace adc {

using namespace detail;

namespace {

// Appends an input edge, deduplicating by signal: a compulsory edge
// upgrades an existing directed don't-care mark.
void append_input(std::vector<XbmEdge>& burst, const XbmEdge& e) {
  for (auto& have : burst) {
    if (have.signal != e.signal) continue;
    if (have.directed_dont_care && !e.directed_dont_care) have = e;
    return;
  }
  burst.push_back(e);
}

void append_cond(std::vector<CondTerm>& conds, const CondTerm& c) {
  for (const auto& have : conds)
    if (have.signal == c.signal) return;
  conds.push_back(c);
}

}  // namespace

int fold_trivial_transitions(Xbm& m, const SignalBindings* bindings) {
  int folded = 0;
  bool changed = true;
  while (changed) {
    changed = false;

    // (a) No trigger left: fold outputs into the predecessors and splice.
    for (TransitionId tid : m.transition_ids()) {
      XbmTransition& t = m.transition(tid);
      bool compulsory = false;
      for (const auto& e : t.inputs)
        if (!e.directed_dont_care) compulsory = true;
      if (compulsory || !t.conds.empty()) continue;
      StateId s = t.from;
      if (s == m.initial()) continue;
      if (m.out_transitions(s).size() != 1) continue;
      auto preds = m.in_transitions(s);
      if (preds.empty()) continue;
      bool conflict = false;
      for (TransitionId pid : preds)
        for (const auto& e : t.outputs)
          if (burst_has_signal(m.transition(pid).outputs, e.signal)) conflict = true;
      if (conflict) {
        // Partial fold: falling local edges that do not conflict may still
        // retire onto the predecessors (e.g. withdrawing the go request on
        // the completion burst); the rest stays for LT2 to move forward.
        for (const auto& e : t.outputs) {
          if (e.polarity != EdgePolarity::kFalling) continue;
          bool edge_conflict = false;
          for (TransitionId pid : preds)
            if (burst_has_signal(m.transition(pid).outputs, e.signal)) edge_conflict = true;
          if (edge_conflict) continue;
          for (TransitionId pid : preds) m.transition(pid).outputs.push_back(e);
          erase_edge(t.outputs, e.signal);
          ++folded;
          changed = true;
          break;  // t.outputs changed; restart scan
        }
        continue;
      }
      for (TransitionId pid : preds) {
        XbmTransition& p = m.transition(pid);
        for (const auto& e : t.outputs) p.outputs.push_back(e);
        for (const auto& e : t.inputs) append_input(p.inputs, e);  // remaining ddc marks
        p.to = t.to;
      }
      m.remove_transition(tid);
      m.remove_state(s);
      ++folded;
      changed = true;
    }

    // (b) No outputs: merge the trigger into the successor transitions.
    for (TransitionId tid : m.transition_ids()) {
      XbmTransition& t = m.transition(tid);
      if (!t.outputs.empty()) continue;
      StateId s = t.to;
      if (s == m.initial() || s == t.from) continue;
      if (m.in_transitions(s).size() != 1) continue;
      auto succs = m.out_transitions(s);
      if (succs.empty()) continue;
      // Only two *compulsory* waits on one wire clash; don't-care marks
      // merge freely (append_input dedupes them).
      bool conflict = false;
      for (TransitionId uid : succs)
        for (const auto& e : t.inputs) {
          if (e.directed_dont_care) continue;
          for (const auto& ue : m.transition(uid).inputs)
            if (ue.signal == e.signal && !ue.directed_dont_care) conflict = true;
        }
      if (conflict) continue;
      for (TransitionId uid : succs) {
        XbmTransition& u = m.transition(uid);
        for (const auto& e : t.inputs) append_input(u.inputs, e);
        for (const auto& c : t.conds) append_cond(u.conds, c);
        u.from = t.from;
      }
      m.remove_transition(tid);
      m.remove_state(s);
      ++folded;
      changed = true;
    }

    // (c) Branch absorption: a conditional split whose alternatives lost
    // their trigger rides on the unique incoming transition instead (the
    // test samples its conditionals on that burst).
    for (StateId s : m.state_ids()) {
      if (s == m.initial()) continue;
      auto ins = m.in_transitions(s);
      auto outs = m.out_transitions(s);
      if (ins.size() != 1 || outs.size() < 2) continue;
      bool all_triggerless = true;
      for (TransitionId uid : outs) {
        for (const auto& e : m.transition(uid).inputs)
          if (!e.directed_dont_care) all_triggerless = false;
        if (m.transition(uid).conds.empty()) all_triggerless = false;
      }
      if (!all_triggerless) continue;
      XbmTransition p = m.transition(ins.front());  // snapshot
      bool conflict = false;
      for (TransitionId uid : outs)
        for (const auto& e : m.transition(uid).outputs)
          if (burst_has_signal(p.outputs, e.signal)) conflict = true;
      if (conflict) continue;
      for (TransitionId uid : outs) {
        XbmTransition u = m.transition(uid);  // snapshot
        TransitionId nid = m.add_transition(p.from, u.to, p.inputs, p.outputs, p.conds);
        XbmTransition& fused = m.transition(nid);
        for (const auto& e : u.inputs) append_input(fused.inputs, e);
        for (const auto& e : u.outputs) fused.outputs.push_back(e);
        for (const auto& c : u.conds) append_cond(fused.conds, c);
        fused.origin = u.origin;
        fused.note = p.note + " + " + u.note;
        m.remove_transition(uid);
      }
      m.remove_transition(ins.front());
      m.remove_state(s);
      ++folded;
      changed = true;
      break;  // containers changed; restart the scan
    }

    // (e) Deferred assignment: when an assignment's strobes ride the FU
    // done-reset right after another write to the same register, the reset
    // between the two writes has no separating event.  Defer the strobes
    // (and any dones accompanying them) to the next request transition —
    // the assignment executes in parallel with the next operation, which
    // GT4 already establishes is safe — freeing the done-reset event for
    // the stuck reset transition.
    if (!changed && bindings) {
      for (TransitionId uid : m.transition_ids()) {
        XbmTransition& u = m.transition(uid);
        if (u.outputs.empty() || !u.conds.empty()) continue;
        int compulsory = 0;
        bool done_reset_only = true;
        for (const auto& e : u.inputs) {
          if (e.directed_dont_care) continue;
          ++compulsory;
          auto it = bindings->find(e.signal.value());
          if (it == bindings->end() || it->second.role != SignalRole::kFuDone ||
              e.polarity != EdgePolarity::kFalling)
            done_reset_only = false;
        }
        if (compulsory != 1 || !done_reset_only) continue;
        // Only act when a stuck triggerless transition precedes us.
        auto preds = m.in_transitions(u.from);
        bool stuck_before = false;
        for (TransitionId pid : preds) {
          bool pc = false;
          for (const auto& e : m.transition(pid).inputs)
            if (!e.directed_dont_care) pc = true;
          if (!pc) stuck_before = true;
        }
        if (!stuck_before) continue;
        auto succ = chain_succ(m, uid);
        if (!succ) continue;
        XbmTransition& s = m.transition(*succ);
        bool s_has_request = false;
        for (const auto& e : s.inputs) {
          if (e.directed_dont_care) continue;
          auto it = bindings->find(e.signal.value());
          if (it != bindings->end() && (it->second.role == SignalRole::kGlobalReady ||
                                        it->second.role == SignalRole::kEnvironment))
            s_has_request = true;
        }
        if (!s_has_request) continue;
        // Resolve conflicts: the strobes' own falling edges sitting in the
        // successor move one transition further first.
        bool blocked = false;
        std::vector<SignalId> displaced;
        for (const auto& e : u.outputs)
          if (burst_has_signal(s.outputs, e.signal)) displaced.push_back(e.signal);
        std::optional<TransitionId> succ2;
        if (!displaced.empty()) {
          succ2 = chain_succ(m, *succ);
          if (!succ2) blocked = true;
          for (SignalId d : displaced)
            if (succ2 && burst_has_signal(m.transition(*succ2).outputs, d)) blocked = true;
        }
        if (blocked) continue;
        for (SignalId d : displaced) {
          for (auto& e : s.outputs) {
            if (e.signal != d) continue;
            m.transition(*succ2).outputs.push_back(e);
          }
          erase_edge(s.outputs, d);
        }
        for (const auto& e : u.outputs) s.outputs.push_back(e);
        u.outputs.clear();
        ++folded;
        changed = true;
        break;
      }
    }

    // (d) Re-trigger: a transition stuck without a compulsory edge whose
    // predecessors withdraw the FU go request is legitimately triggered by
    // the done indicator's reset (it falls once go is withdrawn).
    if (!changed && bindings) {
      for (TransitionId tid : m.transition_ids()) {
        XbmTransition& t = m.transition(tid);
        bool compulsory = false;
        for (const auto& e : t.inputs)
          if (!e.directed_dont_care) compulsory = true;
        if (compulsory) continue;
        auto preds = m.in_transitions(t.from);
        if (preds.empty()) continue;
        std::optional<SignalId> fudone;
        bool all_withdraw_go = true;
        for (TransitionId pid : preds) {
          bool withdraws = false;
          for (const auto& e : m.transition(pid).outputs) {
            auto it = bindings->find(e.signal.value());
            if (it == bindings->end()) continue;
            if (it->second.role == SignalRole::kFuGo &&
                e.polarity == EdgePolarity::kFalling)
              withdraws = true;
          }
          if (!withdraws) all_withdraw_go = false;
        }
        for (const auto& [sid, binding] : *bindings)
          if (binding.role == SignalRole::kFuDone) fudone = SignalId{sid};
        if (!all_withdraw_go || !fudone) {
          // (g) Last resort — assign-only sequencing: nothing but the latch
          // handshake separates the strobe from its reset, so that one
          // acknowledge is restored (LT4 keeps it).  The rising phase
          // triggers the stuck reset; the falling phase is consumed by the
          // successor bursts.
          std::optional<SignalId> ack;
          for (const auto& e : t.outputs) {
            if (e.polarity != EdgePolarity::kFalling) continue;
            auto eb = bindings->find(e.signal.value());
            if (eb == bindings->end() || eb->second.role != SignalRole::kLatch) continue;
            for (const auto& [sid, sb] : *bindings)
              if (sb.role == SignalRole::kLatchAck && sb.reg == eb->second.reg)
                ack = SignalId{sid};
          }
          if (!ack) continue;
          auto succs2 = m.out_transitions(t.to);
          bool all_ok = !succs2.empty();
          for (TransitionId uid : succs2) {
            bool has_compulsory = false;
            for (const auto& e : m.transition(uid).inputs)
              if (!e.directed_dont_care && e.signal != *ack) has_compulsory = true;
            if (!has_compulsory || burst_has_signal(m.transition(uid).inputs, *ack))
              all_ok = false;
          }
          if (!all_ok) continue;
          t.inputs.push_back(rise(*ack));
          for (TransitionId uid : succs2) m.transition(uid).inputs.push_back(fall(*ack));
          ++folded;
          changed = true;
          continue;
        }
        // If a successor already consumes the done reset, the wait migrates
        // here (one wire event, consumed once, just earlier) — provided the
        // successor keeps another compulsory trigger.
        bool can_take = true;
        std::vector<TransitionId> donors;
        for (TransitionId uid : m.out_transitions(t.to)) {
          XbmTransition& u = m.transition(uid);
          bool waits = false;
          int compulsory_count = 0;
          for (const auto& e : u.inputs) {
            if (e.directed_dont_care) continue;
            ++compulsory_count;
            if (e.signal == *fudone && e.polarity == EdgePolarity::kFalling) waits = true;
          }
          if (!waits) continue;
          if (compulsory_count < 2) {
            can_take = false;
            break;
          }
          donors.push_back(uid);
        }
        if (!can_take) continue;
        for (TransitionId uid : donors) erase_edge(m.transition(uid).inputs, *fudone);
        t.inputs.push_back(fall(*fudone));
        ++folded;
        changed = true;
      }
    }
  }
  m.sweep_dead_states();
  return folded;
}

int lt4_remove_acks(Xbm& m, const SignalBindings& b, const LocalTransformOptions& opts) {
  (void)opts;
  int removed_edges = 0;
  for (TransitionId tid : m.transition_ids()) {
    XbmTransition& t = m.transition(tid);
    std::vector<XbmEdge> kept;
    for (auto e : t.inputs) {
      SignalRole r = role_of(b, e.signal);
      if (is_local_ack(r)) {
        ++removed_edges;
        continue;
      }
      // The FU done indicator is never removed: operation latency is the
      // one genuinely unbounded handshake.  Its reset-phase wait typically
      // migrates into the next operation's request burst during folding.
      kept.push_back(e);
    }
    t.inputs = std::move(kept);
  }
  // Note: the FU-done re-trigger (fold step d) is not used here — LT2 must
  // first get the chance to migrate the orphaned reset phases forward; the
  // pipeline's later fold passes supply the bindings.
  fold_trivial_transitions(m);
  return removed_edges;
}

}  // namespace adc
