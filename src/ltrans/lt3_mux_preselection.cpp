// LT3 "mux-preselection" (paper §5.3): for a controller executing RTL
// statement k, statement k+1 is deterministic, so its input muxes (and
// operation select) can be set while statement k is finishing rather than
// after statement k+1's requests arrive.  Mux selection drops off the
// critical path.
//
// Two cases per rising select edge found on a request-triggered transition:
//  * the previous transition resets the same wire (consecutive statements
//    use the same source): the reset/set pair is elided — the mux simply
//    stays selected;
//  * otherwise the rising edge moves onto the previous transition (the end
//    of the current statement's execution).

#include "ltrans/common.hpp"

namespace adc {

using namespace detail;

namespace {

bool request_triggered(const SignalBindings& b, const XbmTransition& t) {
  for (const auto& e : t.inputs) {
    if (e.directed_dont_care) continue;
    if (is_global(role_of(b, e.signal))) return true;
  }
  return false;
}

bool preselectable(SignalRole r) {
  return r == SignalRole::kMuxSelect || r == SignalRole::kOpSelect ||
         r == SignalRole::kRegMuxSelect;
}

}  // namespace

int lt3_mux_preselection(Xbm& m, const SignalBindings& b) {
  // Preselection changes *when* a select wire toggles relative to the rest
  // of its 4-phase round trip, so it is only safe once the corresponding
  // acknowledge is no longer observed anywhere (normally after LT4).
  // Collect the handshakes still waited on.
  auto ack_observed = [&m, &b](const XbmEdge& sel) {
    auto partner = caused_role(role_of(b, sel.signal));
    if (!partner) return true;  // unknown: be conservative
    const SignalBinding* sb = nullptr;
    if (auto it = b.find(sel.signal.value()); it != b.end()) sb = &it->second;
    for (TransitionId tid : m.transition_ids()) {
      for (const auto& e : m.transition(tid).inputs) {
        if (e.directed_dont_care) continue;
        auto it = b.find(e.signal.value());
        if (it == b.end() || it->second.role != *partner) continue;
        if (*partner == SignalRole::kMuxAck && sb &&
            it->second.mux_side != sb->mux_side)
          continue;
        if (*partner == SignalRole::kRegMuxAck && sb && it->second.reg != sb->reg)
          continue;
        return true;
      }
    }
    return false;
  };

  int edits = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (TransitionId tid : m.transition_ids()) {
      if (!request_triggered(b, m.transition(tid))) continue;
      auto pred = chain_pred(m, tid);
      if (!pred) continue;

      std::vector<XbmEdge> sets;
      for (const auto& e : m.transition(tid).outputs)
        if (e.polarity == EdgePolarity::kRising && preselectable(role_of(b, e.signal)) &&
            !ack_observed(e))
          sets.push_back(e);

      for (const auto& e : sets) {
        XbmTransition& p = m.transition(*pred);
        bool p_resets_it = false;
        for (const auto& pe : p.outputs)
          if (pe.signal == e.signal && pe.polarity == EdgePolarity::kFalling)
            p_resets_it = true;
        if (p_resets_it) {
          // Same source selected twice in a row: keep the mux selected.
          erase_edge(p.outputs, e.signal);
          erase_edge(m.transition(tid).outputs, e.signal);
          ++edits;
          changed = true;
        } else if (!burst_has_signal(p.outputs, e.signal)) {
          erase_edge(m.transition(tid).outputs, e.signal);
          p.outputs.push_back(e);
          ++edits;
          changed = true;
        }
      }
    }
  }
  return edits;
}

}  // namespace adc
