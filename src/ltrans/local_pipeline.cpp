#include <set>
#include <stdexcept>

#include "ltrans/common.hpp"
#include "xbm/validate.hpp"

namespace adc {

std::size_t live_signal_count(const Xbm& m, SignalKind kind) {
  std::set<SignalId::underlying> used;
  for (TransitionId tid : m.transition_ids()) {
    const auto& t = m.transition(tid);
    for (const auto& e : t.inputs) used.insert(e.signal.value());
    for (const auto& e : t.outputs) used.insert(e.signal.value());
    for (const auto& c : t.conds) used.insert(c.signal.value());
  }
  std::size_t n = 0;
  for (auto v : used)
    if (m.signal(SignalId{v}).kind == kind) ++n;
  return n;
}

LocalTransformResult run_local_transforms(ExtractedController& c,
                                          const LocalTransformOptions& opts) {
  LocalTransformResult res;
  res.stats.name = "LT pipeline (" + c.machine.name() + ")";
  Xbm& m = c.machine;
  const SignalBindings& b = c.bindings;
  if (m.transition_ids().empty()) return res;  // unused functional unit

  auto check = [&m](const char* stage) {
    auto errors = validate(m);
    if (!errors.empty()) {
      std::string msg = std::string("LT pipeline broke '") + m.name() + "' at " + stage + ":";
      for (const auto& e : errors) msg += "\n  - " + e;
      throw std::runtime_error(msg);
    }
  };

  if (opts.lt1_move_up_dones) {
    int n = lt1_move_up(m, b);
    if (n) {
      res.stats.note("LT1 moved " + std::to_string(n) + " done signal(s) up");
      res.stats.decide("lt1", "dones_moved_up")
          .field("controller", m.name())
          .field("count", static_cast<std::int64_t>(n));
    }
    check("LT1");
  }
  if (opts.lt4_remove_acks) {
    int n = lt4_remove_acks(m, b, opts);
    if (n) {
      res.stats.note("LT4 removed " + std::to_string(n) + " acknowledge edge(s)");
      res.stats.decide("lt4", "ack_edges_removed")
          .field("controller", m.name())
          .field("count", static_cast<std::int64_t>(n));
    }
  }
  if (opts.lt2_move_down_resets || opts.lt4_remove_acks) {
    // After LT4 the reset phases' own handshake rounds are gone; the
    // falling edges must migrate into the next operation's start burst for
    // the orphaned transitions to fold — so LT4 implies this cleanup.
    int n = lt2_move_down(m, b);
    if (n) {
      res.stats.note("LT2 moved " + std::to_string(n) + " reset phase(s) down");
      res.stats.decide("lt2", "resets_moved_down")
          .field("controller", m.name())
          .field("count", static_cast<std::int64_t>(n));
    }
  }
  if (opts.lt4_remove_acks || opts.lt2_move_down_resets) {
    if (int n = fold_trivial_transitions(m, &b); n > 0)
      res.stats.decide("lt", "transitions_folded")
          .field("controller", m.name())
          .field("after", "LT4+LT2")
          .field("count", static_cast<std::int64_t>(n));
    check("LT4+LT2");
  }
  if (opts.lt3_mux_preselection) {
    int n = lt3_mux_preselection(m, b);
    if (n) {
      res.stats.note("LT3 preselected/elided " + std::to_string(n) + " select edge(s)");
      res.stats.decide("lt3", "selects_preselected")
          .field("controller", m.name())
          .field("count", static_cast<std::int64_t>(n));
    }
    check("LT3");
  }
  // Folding opportunities opened by LT2/LT3 migrations.
  if (int n = fold_trivial_transitions(m, &b); n > 0) {
    res.stats.note("folded " + std::to_string(n) + " trivial transition(s)");
    res.stats.decide("lt", "transitions_folded")
        .field("controller", m.name())
        .field("after", "LT2+LT3")
        .field("count", static_cast<std::int64_t>(n));
  }
  check("fold");
  if (opts.lt5_signal_sharing) {
    std::size_t first_new = res.shared_signals.size();
    int n = lt5_signal_sharing(m, b, res.shared_signals);
    if (n) res.stats.note("LT5 shared " + std::to_string(n) + " output wire(s)");
    for (std::size_t i = first_new; i < res.shared_signals.size(); ++i)
      res.stats.decide("lt5", "signals_shared")
          .field("controller", m.name())
          .field("kept", res.shared_signals[i].first)
          .field("dropped", res.shared_signals[i].second);
    check("LT5");
  }
  m.sweep_dead_states();
  return res;
}

}  // namespace adc
