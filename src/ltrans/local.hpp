#pragma once
// Local transformations LT1-LT5 (paper §5): rewrites of an extracted
// controller's XBM specification that optimize the controller-datapath
// protocol for speed and area.  The global interaction ("ready" wires) is
// fixed by this point; these transforms only touch when local signals and
// dones are emitted and which wires exist.
//
//  * LT1 move-up       — emit global done signals earlier (typically in
//                        parallel with latching the result);
//  * LT2 move-down     — push non-critical reset phases into later bursts;
//  * LT3 mux-preselection — set the next operation's muxes at the end of
//                        the current one (and keep a mux selected across
//                        consecutive uses of the same source);
//  * LT4 remove acks   — drop local acknowledge wires whose handshakes are
//                        covered by user-supplied timing assumptions, then
//                        merge the trivial transitions left behind;
//  * LT5 signal sharing — fork two output wires that carry identical
//                        waveforms into one.
//
// Every transform preserves XBM validity (checked after each stage) and the
// datapath causality rules: an output never moves past an input edge it
// causes, operations still start only after their requests, results are
// only signalled after the FU completes.

#include <string>
#include <utility>
#include <vector>

#include "extract/extract.hpp"
#include "transforms/transform.hpp"
#include "xbm/xbm.hpp"

namespace adc {

struct LocalTransformOptions {
  bool lt1_move_up_dones = true;
  bool lt2_move_down_resets = true;
  bool lt3_mux_preselection = true;
  bool lt4_remove_acks = true;
  // Timing assumption: the FU's done indicator resets promptly once the go
  // request is withdrawn, so its falling phase needs no explicit wait.
  bool lt4_remove_fudone_reset = true;
  bool lt5_signal_sharing = true;
};

struct LocalTransformResult {
  TransformResult stats;
  std::vector<std::pair<std::string, std::string>> shared_signals;  // LT5 pairs
};

// The scripted LT pipeline: LT1, LT2, LT4 (+ cleanup), LT3, LT5.
LocalTransformResult run_local_transforms(ExtractedController& c,
                                          const LocalTransformOptions& opts = {});

// --- individual transforms (numbers returned = edits applied) -------------
int lt1_move_up(Xbm& m, const SignalBindings& b);
int lt2_move_down(Xbm& m, const SignalBindings& b);
int lt3_mux_preselection(Xbm& m, const SignalBindings& b);
int lt4_remove_acks(Xbm& m, const SignalBindings& b, const LocalTransformOptions& opts);
int lt5_signal_sharing(Xbm& m, const SignalBindings& b,
                       std::vector<std::pair<std::string, std::string>>& shared);

// Normalization used by LT4 and the pipeline tail: folds transitions whose
// input burst became empty into their predecessors and merges transitions
// with empty output bursts into their successors.  With bindings supplied,
// a transition that cannot fold and follows the withdrawal of the FU go
// request is re-triggered by the done indicator's reset event.
int fold_trivial_transitions(Xbm& m, const SignalBindings* bindings = nullptr);

// Signals that still appear in some burst or conditional.
std::size_t live_signal_count(const Xbm& m, SignalKind kind);

}  // namespace adc
