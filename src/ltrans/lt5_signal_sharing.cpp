// LT5 "signal sharing" (paper §5.5): two local output wires that carry the
// same value at all times — they appear with the same phase in exactly the
// same output bursts — are merged into a single forked wire that activates
// both datapath operations.

#include <map>
#include <vector>

#include "ltrans/common.hpp"

namespace adc {

using namespace detail;

int lt5_signal_sharing(Xbm& m, const SignalBindings& b,
                       std::vector<std::pair<std::string, std::string>>& shared) {
  // Signature: ordered (transition, polarity) occurrences.
  std::map<SignalId::underlying, std::vector<std::pair<TransitionId::underlying, int>>> sig;
  for (TransitionId tid : m.transition_ids())
    for (const auto& e : m.transition(tid).outputs)
      if (is_local_set(role_of(b, e.signal)) || role_of(b, e.signal) == SignalRole::kFuGo)
        sig[e.signal.value()].push_back({tid.value(), static_cast<int>(e.polarity)});

  int merged = 0;
  std::vector<SignalId::underlying> ids;
  for (const auto& [s, occ] : sig) {
    (void)occ;
    ids.push_back(s);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      auto it = sig.find(ids[j]);
      if (it == sig.end()) continue;
      if (sig[ids[i]].empty() || sig[ids[i]] != it->second) continue;
      // Merge j into i: delete j's edges (identical to i's), record alias.
      SignalId keep{ids[i]}, drop{ids[j]};
      for (TransitionId tid : m.transition_ids()) erase_edge(m.transition(tid).outputs, drop);
      shared.emplace_back(m.signal(keep).name, m.signal(drop).name);
      sig.erase(ids[j]);
      ++merged;
    }
  }
  return merged;
}

}  // namespace adc
