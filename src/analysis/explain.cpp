#include "analysis/explain.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "report/json.hpp"

namespace adc {
namespace analysis {

namespace {

void diff_maps(const std::map<std::string, std::int64_t>& a,
               const std::map<std::string, std::int64_t>& b,
               const std::string& kind, std::size_t top_k,
               std::vector<SegmentDelta>& out) {
  std::map<std::string, SegmentDelta> merged;
  for (const auto& [name, ticks] : a) {
    auto& d = merged[name];
    d.kind = kind;
    d.name = name;
    d.a_ticks = ticks;
  }
  for (const auto& [name, ticks] : b) {
    auto& d = merged[name];
    d.kind = kind;
    d.name = name;
    d.b_ticks = ticks;
  }
  std::vector<SegmentDelta> rows;
  for (auto& [name, d] : merged) {
    (void)name;
    d.delta = d.b_ticks - d.a_ticks;
    if (d.delta != 0) rows.push_back(std::move(d));
  }
  std::sort(rows.begin(), rows.end(),
            [](const SegmentDelta& x, const SegmentDelta& y) {
              auto ax = std::llabs(x.delta), ay = std::llabs(y.delta);
              if (ax != ay) return ax > ay;
              return x.name < y.name;
            });
  if (rows.size() > top_k) rows.resize(top_k);
  for (auto& r : rows) out.push_back(std::move(r));
}

// Order-insensitive multiset difference of recipe steps.
std::vector<std::string> steps_only_in(const std::vector<std::string>& a,
                                       const std::vector<std::string>& b) {
  std::map<std::string, int> counts;
  for (const auto& s : b) ++counts[s];
  std::vector<std::string> out;
  for (const auto& s : a)
    if (--counts[s] < 0) out.push_back(s);
  return out;
}

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& s : v) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}

std::vector<std::string> with_prefix(const std::vector<std::string>& steps,
                                     const char* prefix) {
  std::vector<std::string> out;
  for (const auto& s : steps)
    if (s.rfind(prefix, 0) == 0) out.push_back(s);
  return out;
}

}  // namespace

ExplainReport explain_points(const PointProfile& a, const PointProfile& b,
                             std::size_t top_k) {
  ExplainReport r;
  r.a_index = a.index;
  r.b_index = b.index;
  r.a_script = a.script;
  r.b_script = b.script;
  r.a_cycle = a.cycle_time;
  r.b_cycle = b.cycle_time;
  r.cycle_delta = b.cycle_time - a.cycle_time;

  diff_maps(a.by_phase, b.by_phase, "phase", top_k, r.deltas);
  diff_maps(a.by_channel, b.by_channel, "channel", top_k, r.deltas);
  diff_maps(a.by_controller, b.by_controller, "controller", top_k, r.deltas);

  r.only_a = steps_only_in(a.recipe, b.recipe);
  r.only_b = steps_only_in(b.recipe, a.recipe);

  {
    std::map<std::string, std::int64_t> da, db;
    for (const auto& [k, v] : a.decisions) da[k] = static_cast<std::int64_t>(v);
    for (const auto& [k, v] : b.decisions) db[k] = static_cast<std::int64_t>(v);
    diff_maps(da, db, "decision", top_k, r.decisions);
  }

  // Attribution: tie each major segment delta to the recipe steps and
  // provenance decisions that differ.  Channel/request-wait movement is
  // the GT family's doing (graph transforms reshape who waits on whom);
  // micro-op/controller-internal movement is LT's; op-phase movement is
  // the datapath and no control decision explains it.
  const auto gt_a = with_prefix(r.only_a, "gt");
  const auto gt_b = with_prefix(r.only_b, "gt");
  const auto lt_a = with_prefix(r.only_a, "lt");
  const auto lt_b = with_prefix(r.only_b, "lt");
  auto decisions_for = [&](const char* prefix) {
    std::vector<std::string> out;
    for (const auto& d : r.decisions)
      if (d.name.rfind(prefix, 0) == 0)
        out.push_back(d.name + (d.delta > 0 ? "+" : "") +
                      std::to_string(d.delta));
    return out;
  };
  auto blame = [&](const SegmentDelta& d) {
    std::ostringstream os;
    const char* who = d.delta > 0 ? "B" : "A";
    os << who << " spends " << std::llabs(d.delta) << " more ticks in "
       << d.kind << " '" << d.name << "'";
    if (d.kind == "channel" ||
        (d.kind == "phase" && d.name == "request-wait")) {
      os << " — request waits reshaped by graph transforms";
      std::vector<std::string> steps;
      if (!gt_a.empty()) steps.push_back("only A: " + join(gt_a));
      if (!gt_b.empty()) steps.push_back("only B: " + join(gt_b));
      if (!steps.empty()) os << " (" << join(steps) << ")";
      auto dec = decisions_for("gt");
      if (!dec.empty()) os << "; decision deltas: " << join(dec);
    } else if (d.kind == "phase" && d.name == "op") {
      os << " — datapath compute; not a control decision";
    } else {
      os << " — controller-internal control overhead";
      std::vector<std::string> steps;
      if (!lt_a.empty()) steps.push_back("only A: " + join(lt_a));
      if (!lt_b.empty()) steps.push_back("only B: " + join(lt_b));
      if (!steps.empty()) os << " (" << join(steps) << ")";
      auto dec = decisions_for("lt");
      if (!dec.empty()) os << "; decision deltas: " << join(dec);
    }
    r.attribution.push_back(os.str());
  };
  std::size_t named = 0;
  for (const auto& d : r.deltas) {
    if (d.kind == "controller") continue;  // channels/phases tell the story
    blame(d);
    if (++named >= top_k) break;
  }
  if (r.attribution.empty() && r.cycle_delta != 0)
    r.attribution.push_back(
        "cycle times differ but no attributed segment moved — rerun both "
        "points with --critical-path to capture segments");
  return r;
}

std::string ExplainReport::to_table() const {
  std::ostringstream os;
  os << "explain: point A #" << a_index << " [" << a_script << "]\n"
     << "         point B #" << b_index << " [" << b_script << "]\n"
     << "cycle time: A=" << a_cycle << " B=" << b_cycle << " delta="
     << (cycle_delta > 0 ? "+" : "") << cycle_delta << "\n";
  if (!only_a.empty()) os << "steps only in A: " << join(only_a) << "\n";
  if (!only_b.empty()) os << "steps only in B: " << join(only_b) << "\n";
  if (!deltas.empty()) {
    os << "segment deltas (B - A):\n";
    for (const auto& d : deltas)
      os << "  " << (d.delta > 0 ? "+" : "") << d.delta << "  " << d.kind
         << " '" << d.name << "' (" << d.a_ticks << " -> " << d.b_ticks
         << ")\n";
  }
  if (!decisions.empty()) {
    os << "decision deltas (B - A):\n";
    for (const auto& d : decisions)
      os << "  " << (d.delta > 0 ? "+" : "") << d.delta << "  " << d.name
         << "\n";
  }
  if (!attribution.empty()) {
    os << "attribution:\n";
    for (const auto& line : attribution) os << "  " << line << "\n";
  }
  return os.str();
}

void write_json(JsonWriter& w, const ExplainReport& r) {
  auto write_delta = [&](const SegmentDelta& d) {
    w.begin_object();
    w.kv("kind", d.kind);
    w.kv("name", d.name);
    w.kv("a_ticks", d.a_ticks);
    w.kv("b_ticks", d.b_ticks);
    w.kv("delta", d.delta);
    w.end_object();
  };
  w.begin_object();
  w.kv("a_index", static_cast<std::uint64_t>(r.a_index));
  w.kv("b_index", static_cast<std::uint64_t>(r.b_index));
  w.kv("a_script", r.a_script);
  w.kv("b_script", r.b_script);
  w.kv("a_cycle", r.a_cycle);
  w.kv("b_cycle", r.b_cycle);
  w.kv("cycle_delta", r.cycle_delta);
  w.key("deltas");
  w.begin_array();
  for (const auto& d : r.deltas) write_delta(d);
  w.end_array();
  w.key("only_a");
  w.begin_array();
  for (const auto& s : r.only_a) w.value(s);
  w.end_array();
  w.key("only_b");
  w.begin_array();
  for (const auto& s : r.only_b) w.value(s);
  w.end_array();
  w.key("decisions");
  w.begin_array();
  for (const auto& d : r.decisions) write_delta(d);
  w.end_array();
  w.key("attribution");
  w.begin_array();
  for (const auto& s : r.attribution) w.value(s);
  w.end_array();
  w.end_object();
}

}  // namespace analysis
}  // namespace adc
