#pragma once
// Differential explain: diff two PointProfiles' segment trees and
// attribute each latency delta to the transform decisions that differ
// between their recipes.  Backs `adc_dse --explain A:B` and
// `adc_synth --explain-vs`.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/profile.hpp"

namespace adc {

class JsonWriter;

namespace analysis {

// One segment whose attributed latency differs between the two points.
// delta = ticks(b) - ticks(a): positive means b spends more time here.
struct SegmentDelta {
  std::string kind;  // "phase" | "controller" | "channel"
  std::string name;
  std::int64_t a_ticks = 0;
  std::int64_t b_ticks = 0;
  std::int64_t delta = 0;
};

struct ExplainReport {
  std::size_t a_index = 0;
  std::size_t b_index = 0;
  std::string a_script;
  std::string b_script;
  std::int64_t a_cycle = 0;
  std::int64_t b_cycle = 0;
  std::int64_t cycle_delta = 0;  // b - a

  std::vector<SegmentDelta> deltas;      // |delta| descending
  std::vector<std::string> only_a;       // recipe steps unique to a
  std::vector<std::string> only_b;       // recipe steps unique to b
  std::vector<SegmentDelta> decisions;   // provenance decision-count deltas
  std::vector<std::string> attribution;  // human sentences: delta -> decision

  std::string to_table() const;
};

// Builds the diff.  top_k bounds the segment-delta list per kind.
ExplainReport explain_points(const PointProfile& a, const PointProfile& b,
                             std::size_t top_k = 8);

void write_json(JsonWriter& w, const ExplainReport& r);

}  // namespace analysis
}  // namespace adc
