#pragma once
// Grid-level analyses over a set of PointProfiles: bottleneck ranking
// (which channels/controllers soak up the most attributed latency across
// the whole design space), the Pareto frontier over (control area x cycle
// time) with every dominated point annotated by a frontier dominator, and
// the machine-readable `suggestions` block a feedback-directed search
// would consume (ROADMAP open item 3).
//
// FrontierTracker is the incremental variant for the serving daemon: it
// folds completed points into a live Pareto frontier so adc_serve can
// export analysis.* gauges without keeping every profile around.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "analysis/profile.hpp"

namespace adc {
namespace analysis {

// Computes the grid block for a profile store.  top_k bounds the
// suggestions list; bottleneck rankings are complete (callers truncate
// for display).  Frontier dominators are chosen deterministically: among
// the frontier points dominating a point, the fastest (then smallest,
// then lowest-index) one.
GridAnalysis analyze_grid(const std::vector<PointProfile>& points,
                          std::size_t top_k = 5);

// Incremental Pareto frontier over (area_transistors, cycle_time) for the
// serving daemon.  Thread-safe; add() folds one completed point in,
// snapshot() reads the current state for gauge export.
class FrontierTracker {
 public:
  struct Snapshot {
    std::size_t points = 0;         // simulated ok points observed
    std::size_t frontier_size = 0;  // non-dominated among them
    std::size_t dominated = 0;
    std::int64_t best_cycle_time = 0;      // 0 until the first point
    std::size_t best_area_transistors = 0;  // 0 until the first point
  };

  void add(std::size_t area_transistors, std::int64_t cycle_time);
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::size_t, std::int64_t>> frontier_;
  std::size_t points_ = 0;
  std::int64_t best_cycle_ = 0;
  std::size_t best_area_ = 0;
};

}  // namespace analysis
}  // namespace adc
