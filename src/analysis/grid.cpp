#include "analysis/grid.hpp"

#include <algorithm>
#include <map>

namespace adc {
namespace analysis {

namespace {

struct Tally {
  std::int64_t ticks = 0;
  std::size_t points = 0;
};

std::vector<BottleneckRow> rank(const std::map<std::string, Tally>& tallies) {
  std::vector<BottleneckRow> rows;
  rows.reserve(tallies.size());
  for (const auto& [name, t] : tallies) rows.push_back({name, t.ticks, t.points});
  std::sort(rows.begin(), rows.end(), [](const BottleneckRow& a,
                                         const BottleneckRow& b) {
    if (a.ticks != b.ticks) return a.ticks > b.ticks;
    return a.name < b.name;
  });
  return rows;
}

// a dominates b: no worse on both axes, strictly better on one.
bool dominates(const FrontierEntry& a, const FrontierEntry& b) {
  return a.area_transistors <= b.area_transistors &&
         a.cycle_time <= b.cycle_time &&
         (a.area_transistors < b.area_transistors ||
          a.cycle_time < b.cycle_time);
}

}  // namespace

GridAnalysis analyze_grid(const std::vector<PointProfile>& points,
                          std::size_t top_k) {
  GridAnalysis g;

  // Bottleneck tallies across every point that carries attribution.
  std::map<std::string, Tally> channels;
  std::map<std::string, Tally> controllers;
  // Which phase dominates each controller's attributed time, grid-wide —
  // drives whether a suggestion blames the control logic or the datapath.
  std::map<std::string, std::map<std::string, std::int64_t>> controller_phase;
  for (const auto& p : points) {
    if (!p.has_attribution) continue;
    for (const auto& [name, ticks] : p.by_channel) {
      channels[name].ticks += ticks;
      channels[name].points += 1;
    }
    for (const auto& [name, ticks] : p.by_controller) {
      controllers[name].ticks += ticks;
      controllers[name].points += 1;
    }
    for (const auto& [key, ticks] : p.by_controller_phase) {
      auto slash = key.find('/');
      if (slash == std::string::npos) continue;
      controller_phase[key.substr(0, slash)][key.substr(slash + 1)] += ticks;
    }
  }
  g.channels = rank(channels);
  g.controllers = rank(controllers);

  // Pareto frontier over (area, cycle time), simulated ok points only.
  std::vector<FrontierEntry> candidates;
  for (const auto& p : points)
    if (p.ok && p.cycle_time > 0)
      candidates.push_back({p.index, p.area_transistors, p.cycle_time});
  for (const auto& c : candidates) {
    bool dominated = false;
    for (const auto& other : candidates)
      if (dominates(other, c)) {
        dominated = true;
        break;
      }
    if (!dominated) g.frontier.push_back(c);
  }
  std::sort(g.frontier.begin(), g.frontier.end(),
            [](const FrontierEntry& a, const FrontierEntry& b) {
              if (a.cycle_time != b.cycle_time)
                return a.cycle_time < b.cycle_time;
              if (a.area_transistors != b.area_transistors)
                return a.area_transistors < b.area_transistors;
              return a.index < b.index;
            });
  for (const auto& c : candidates) {
    const FrontierEntry* by = nullptr;
    for (const auto& f : g.frontier)
      if (f.index != c.index && dominates(f, c)) {
        by = &f;  // frontier is sorted fastest-first, first hit wins
        break;
      }
    if (by) g.dominated.push_back({c.index, by->index});
  }
  std::sort(g.dominated.begin(), g.dominated.end(),
            [](const DominatedEntry& a, const DominatedEntry& b) {
              return a.index < b.index;
            });

  // Suggestions: the top-k segments by grid-wide attributed latency.
  // Channels are request-wait by construction — the GT family reshapes
  // who talks to whom, so those are the levers.  Controllers whose time
  // is mostly the op phase are datapath-bound (no control transform
  // helps); otherwise the local transforms are worth a try.
  struct Cand {
    std::string kind;
    BottleneckRow row;
  };
  std::vector<Cand> cands;
  for (const auto& r : g.channels) cands.push_back({"channel", r});
  for (const auto& r : g.controllers) {
    if (r.name == "(channels)") continue;  // already counted per channel
    cands.push_back({"controller", r});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.row.ticks != b.row.ticks) return a.row.ticks > b.row.ticks;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.row.name < b.row.name;
  });
  if (cands.size() > top_k) cands.resize(top_k);
  std::size_t rank_no = 1;
  for (const auto& c : cands) {
    Suggestion s;
    s.rank = rank_no++;
    s.kind = c.kind;
    s.name = c.row.name;
    s.ticks = c.row.ticks;
    if (c.kind == "channel") {
      s.hints = {"gt2", "gt3", "gt5"};
      s.rationale = "request round-trips on this channel dominate " +
                    std::to_string(c.row.points) +
                    " point(s); reshaping its fan-in/fan-out (merge, "
                    "dissociate, converge) shortens the wait";
    } else {
      const auto& phases = controller_phase[c.row.name];
      std::int64_t total = 0;
      std::int64_t op = 0;
      for (const auto& [phase, ticks] : phases) {
        total += ticks;
        if (phase == "op") op += ticks;
      }
      if (total > 0 && op * 2 >= total) {
        s.rationale = "time in this controller is mostly the op phase — "
                      "datapath-bound; control transforms will not help";
      } else {
        s.hints = {"lt"};
        s.rationale = "control overhead inside this controller across " +
                      std::to_string(c.row.points) +
                      " point(s); local optimization can collapse states";
      }
    }
    g.suggestions.push_back(std::move(s));
  }
  return g;
}

void FrontierTracker::add(std::size_t area_transistors,
                          std::int64_t cycle_time) {
  if (cycle_time <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++points_;
  if (best_cycle_ == 0 || cycle_time < best_cycle_) best_cycle_ = cycle_time;
  if (best_area_ == 0 || area_transistors < best_area_)
    best_area_ = area_transistors;
  for (const auto& [area, cycle] : frontier_)
    if (area <= area_transistors && cycle <= cycle_time)
      return;  // dominated by (or identical to) an existing member
  frontier_.erase(
      std::remove_if(frontier_.begin(), frontier_.end(),
                     [&](const std::pair<std::size_t, std::int64_t>& m) {
                       return area_transistors <= m.first &&
                              cycle_time <= m.second &&
                              (area_transistors < m.first ||
                               cycle_time < m.second);
                     }),
      frontier_.end());
  frontier_.emplace_back(area_transistors, cycle_time);
}

FrontierTracker::Snapshot FrontierTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.points = points_;
  s.frontier_size = frontier_.size();
  s.dominated = points_ - frontier_.size();
  s.best_cycle_time = best_cycle_;
  s.best_area_transistors = best_area_;
  return s;
}

}  // namespace analysis
}  // namespace adc
