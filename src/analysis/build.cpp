#include "analysis/build.hpp"

#include <algorithm>

#include "analysis/grid.hpp"
#include "area/area_model.hpp"
#include "runtime/flow.hpp"
#include "sim/critical_path.hpp"

namespace adc {
namespace analysis {

namespace {

std::string trim(const std::string& s) {
  auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> recipe_steps(const std::string& script) {
  std::vector<std::string> steps;
  std::size_t pos = 0;
  while (pos <= script.size()) {
    auto semi = script.find(';', pos);
    if (semi == std::string::npos) semi = script.size();
    std::string step = trim(script.substr(pos, semi - pos));
    if (!step.empty()) steps.push_back(std::move(step));
    pos = semi + 1;
  }
  return steps;
}

ChainRef chain_ref(const CriticalChain& c) {
  ChainRef r;
  r.phase = to_string(c.phase);
  r.controller = c.controller.empty() ? "(channels)" : c.controller;
  r.label = c.label;
  r.ticks = c.duration;
  r.events = c.events;
  return r;
}

}  // namespace

std::size_t point_area_transistors(const FlowPoint& p) {
  std::size_t total = 0;
  for (const auto& m : p.controllers) {
    ControllerArea a;
    a.name = m.name;
    a.products = m.products;
    a.literals = m.literals;
    a.state_bits = m.state_bits;
    a.outputs = m.outputs;
    total += a.transistor_estimate();
  }
  return total + 6 * p.channels;
}

PointProfile build_point_profile(const FlowPoint& p, std::size_t index) {
  PointProfile out;
  out.index = index;
  out.benchmark = p.benchmark;
  out.script = p.script;
  out.status = to_string(p.status);
  out.ok = p.ok;
  out.cycle_time = p.latency;
  out.recipe = recipe_steps(p.script);

  for (const auto& m : p.controllers) {
    ControllerArea a;
    a.name = m.name;
    a.products = m.products;
    a.literals = m.literals;
    a.state_bits = m.state_bits;
    a.outputs = m.outputs;
    out.area.push_back({m.name, m.products, m.literals, m.state_bits,
                        m.outputs, a.transistor_estimate()});
  }
  out.channels = p.channels;
  out.area_transistors = point_area_transistors(p);

  if (p.critical_path) {
    const CriticalPathResult& cp = *p.critical_path;
    out.has_attribution = true;
    out.attributed = cp.attributed;
    out.attributed_fraction = cp.attributed_fraction();
    out.by_phase = cp.by_phase;
    out.by_controller = cp.by_controller;
    out.by_channel = cp.by_channel;
    for (const auto& s : cp.segments) {
      std::string ctrl = s.controller.empty() ? "(channels)" : s.controller;
      out.by_controller_phase[ctrl + "/" + to_string(s.phase)] += s.duration();
    }
    auto chains = cp.top_chains(5);
    for (const auto& c : chains) out.top_chains.push_back(chain_ref(c));
    if (!out.top_chains.empty()) out.dominant = out.top_chains.front();
  }

  if (p.provenance) out.decisions = p.provenance->decision_counts();
  return out;
}

DseProfile build_dse_profile(const std::vector<FlowPoint>& points,
                             const std::string& tool, std::size_t top_k) {
  DseProfile prof;
  prof.tool = tool;
  prof.points.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    prof.points.push_back(build_point_profile(points[i], i));
  prof.grid = analyze_grid(prof.points, top_k);
  return prof;
}

}  // namespace analysis
}  // namespace adc
