#include "analysis/profile.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "report/json.hpp"
#include "report/json_parse.hpp"

namespace adc {
namespace analysis {

namespace {

void write_map(JsonWriter& w, const char* key,
               const std::map<std::string, std::int64_t>& m) {
  w.key(key);
  w.begin_object();
  for (const auto& [k, v] : m) w.kv(k, v);
  w.end_object();
}

void write_chain(JsonWriter& w, const ChainRef& c) {
  w.begin_object();
  w.kv("phase", c.phase);
  w.kv("controller", c.controller);
  w.kv("label", c.label);
  w.kv("ticks", c.ticks);
  w.kv("events", static_cast<std::uint64_t>(c.events));
  w.end_object();
}

}  // namespace

const PointProfile* DseProfile::find(std::size_t index) const {
  for (const auto& p : points)
    if (p.index == index) return &p;
  return nullptr;
}

void write_json(JsonWriter& w, const PointProfile& p) {
  w.begin_object();
  w.kv("index", static_cast<std::uint64_t>(p.index));
  w.kv("benchmark", p.benchmark);
  w.kv("script", p.script);
  w.kv("status", p.status);
  w.kv("ok", p.ok);
  w.kv("cycle_time", p.cycle_time);
  w.kv("attributed", p.attributed);
  w.kv("attributed_fraction", p.attributed_fraction);
  w.key("area");
  w.begin_object();
  w.key("controllers");
  w.begin_array();
  for (const auto& a : p.area) {
    w.begin_object();
    w.kv("name", a.name);
    w.kv("products", a.products);
    w.kv("literals", a.literals);
    w.kv("state_bits", a.state_bits);
    w.kv("outputs", a.outputs);
    w.kv("transistors", a.transistors);
    w.end_object();
  }
  w.end_array();
  w.kv("channels", p.channels);
  w.kv("total_transistors", p.area_transistors);
  w.end_object();
  if (p.has_attribution) {
    w.key("segments");
    w.begin_object();
    write_map(w, "by_phase", p.by_phase);
    write_map(w, "by_controller", p.by_controller);
    write_map(w, "by_channel", p.by_channel);
    write_map(w, "by_controller_phase", p.by_controller_phase);
    w.end_object();
    w.key("top_chains");
    w.begin_array();
    for (const auto& c : p.top_chains) write_chain(w, c);
    w.end_array();
    w.key("dominant");
    write_chain(w, p.dominant);
  }
  w.key("recipe");
  w.begin_array();
  for (const auto& s : p.recipe) w.value(s);
  w.end_array();
  w.key("decisions");
  w.begin_object();
  for (const auto& [k, v] : p.decisions) w.kv(k, static_cast<std::uint64_t>(v));
  w.end_object();
  w.end_object();
}

void write_json(JsonWriter& w, const DseProfile& prof) {
  w.begin_object();
  w.kv("kind", kProfileKind);
  w.kv("version", prof.version);
  w.kv("tool", prof.tool);
  w.key("points");
  w.begin_array();
  for (const auto& p : prof.points) write_json(w, p);
  w.end_array();
  w.key("grid");
  w.begin_object();
  w.key("bottlenecks");
  w.begin_object();
  for (const char* kind : {"channels", "controllers"}) {
    const auto& rows = std::string(kind) == "channels" ? prof.grid.channels
                                                       : prof.grid.controllers;
    w.key(kind);
    w.begin_array();
    for (const auto& b : rows) {
      w.begin_object();
      w.kv("name", b.name);
      w.kv("ticks", b.ticks);
      w.kv("points", static_cast<std::uint64_t>(b.points));
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  w.key("frontier");
  w.begin_array();
  for (const auto& f : prof.grid.frontier) {
    w.begin_object();
    w.kv("index", static_cast<std::uint64_t>(f.index));
    w.kv("area_transistors", f.area_transistors);
    w.kv("cycle_time", f.cycle_time);
    w.end_object();
  }
  w.end_array();
  w.key("dominated");
  w.begin_array();
  for (const auto& d : prof.grid.dominated) {
    w.begin_object();
    w.kv("index", static_cast<std::uint64_t>(d.index));
    w.kv("dominated_by", static_cast<std::uint64_t>(d.dominated_by));
    w.end_object();
  }
  w.end_array();
  w.key("suggestions");
  w.begin_array();
  for (const auto& s : prof.grid.suggestions) {
    w.begin_object();
    w.kv("rank", static_cast<std::uint64_t>(s.rank));
    w.kv("kind", s.kind);
    w.kv("name", s.name);
    w.kv("ticks", s.ticks);
    w.key("hints");
    w.begin_array();
    for (const auto& h : s.hints) w.value(h);
    w.end_array();
    w.kv("rationale", s.rationale);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
}

std::string to_json(const DseProfile& prof, bool pretty) {
  JsonWriter w(pretty);
  write_json(w, prof);
  return w.str();
}

// --- parse -----------------------------------------------------------------

namespace {

double num(const JsonValue& o, const char* k) {
  const JsonValue* v = o.find(k);
  return v && v->is_number() ? v->number : 0.0;
}

std::string str(const JsonValue& o, const char* k) {
  const JsonValue* v = o.find(k);
  return v && v->is_string() ? v->string : std::string();
}

std::map<std::string, std::int64_t> parse_map(const JsonValue* o) {
  std::map<std::string, std::int64_t> m;
  if (o && o->is_object())
    for (const auto& [k, v] : o->object)
      m[k] = static_cast<std::int64_t>(v.number);
  return m;
}

ChainRef parse_chain(const JsonValue& c) {
  ChainRef r;
  r.phase = str(c, "phase");
  r.controller = str(c, "controller");
  r.label = str(c, "label");
  r.ticks = static_cast<std::int64_t>(num(c, "ticks"));
  r.events = static_cast<std::size_t>(num(c, "events"));
  return r;
}

PointProfile parse_point(const JsonValue& o) {
  PointProfile p;
  p.index = static_cast<std::size_t>(num(o, "index"));
  p.benchmark = o.at("benchmark").string;
  p.script = str(o, "script");
  p.status = o.at("status").string;
  if (const JsonValue* v = o.find("ok")) p.ok = v->boolean;
  p.cycle_time = static_cast<std::int64_t>(num(o, "cycle_time"));
  p.attributed = static_cast<std::int64_t>(num(o, "attributed"));
  p.attributed_fraction = num(o, "attributed_fraction");
  if (const JsonValue* area = o.find("area"); area && area->is_object()) {
    if (const JsonValue* cs = area->find("controllers"); cs && cs->is_array())
      for (const JsonValue& c : cs->array) {
        AreaRow a;
        a.name = str(c, "name");
        a.products = static_cast<std::size_t>(num(c, "products"));
        a.literals = static_cast<std::size_t>(num(c, "literals"));
        a.state_bits = static_cast<std::size_t>(num(c, "state_bits"));
        a.outputs = static_cast<std::size_t>(num(c, "outputs"));
        a.transistors = static_cast<std::size_t>(num(c, "transistors"));
        p.area.push_back(std::move(a));
      }
    p.channels = static_cast<std::size_t>(num(*area, "channels"));
    p.area_transistors = static_cast<std::size_t>(num(*area, "total_transistors"));
  }
  if (const JsonValue* seg = o.find("segments"); seg && seg->is_object()) {
    p.has_attribution = true;
    p.by_phase = parse_map(seg->find("by_phase"));
    p.by_controller = parse_map(seg->find("by_controller"));
    p.by_channel = parse_map(seg->find("by_channel"));
    p.by_controller_phase = parse_map(seg->find("by_controller_phase"));
  }
  if (const JsonValue* tc = o.find("top_chains"); tc && tc->is_array())
    for (const JsonValue& c : tc->array) p.top_chains.push_back(parse_chain(c));
  if (const JsonValue* d = o.find("dominant"); d && d->is_object())
    p.dominant = parse_chain(*d);
  if (const JsonValue* r = o.find("recipe"); r && r->is_array())
    for (const JsonValue& s : r->array) p.recipe.push_back(s.string);
  if (const JsonValue* d = o.find("decisions"); d && d->is_object())
    for (const auto& [k, v] : d->object)
      p.decisions[k] = static_cast<std::size_t>(v.number);
  return p;
}

}  // namespace

DseProfile parse_dse_profile(const JsonValue& doc) {
  if (!doc.is_object()) throw std::runtime_error("dse profile: not an object");
  if (str(doc, "kind") != kProfileKind)
    throw std::runtime_error("dse profile: kind != " + std::string(kProfileKind));
  if (static_cast<int>(num(doc, "version")) != kProfileVersion)
    throw std::runtime_error("dse profile: unsupported version");
  DseProfile prof;
  prof.version = kProfileVersion;
  prof.tool = str(doc, "tool");
  const JsonValue* pts = doc.find("points");
  if (!pts || !pts->is_array())
    throw std::runtime_error("dse profile: missing points array");
  for (const JsonValue& p : pts->array) prof.points.push_back(parse_point(p));
  if (const JsonValue* grid = doc.find("grid"); grid && grid->is_object()) {
    auto parse_rows = [&](const JsonValue* arr, std::vector<BottleneckRow>& out) {
      if (!arr || !arr->is_array()) return;
      for (const JsonValue& b : arr->array)
        out.push_back({str(b, "name"), static_cast<std::int64_t>(num(b, "ticks")),
                       static_cast<std::size_t>(num(b, "points"))});
    };
    if (const JsonValue* bn = grid->find("bottlenecks"); bn && bn->is_object()) {
      parse_rows(bn->find("channels"), prof.grid.channels);
      parse_rows(bn->find("controllers"), prof.grid.controllers);
    }
    if (const JsonValue* f = grid->find("frontier"); f && f->is_array())
      for (const JsonValue& e : f->array)
        prof.grid.frontier.push_back(
            {static_cast<std::size_t>(num(e, "index")),
             static_cast<std::size_t>(num(e, "area_transistors")),
             static_cast<std::int64_t>(num(e, "cycle_time"))});
    if (const JsonValue* d = grid->find("dominated"); d && d->is_array())
      for (const JsonValue& e : d->array)
        prof.grid.dominated.push_back(
            {static_cast<std::size_t>(num(e, "index")),
             static_cast<std::size_t>(num(e, "dominated_by"))});
    if (const JsonValue* s = grid->find("suggestions"); s && s->is_array())
      for (const JsonValue& e : s->array) {
        Suggestion sg;
        sg.rank = static_cast<std::size_t>(num(e, "rank"));
        sg.kind = str(e, "kind");
        sg.name = str(e, "name");
        sg.ticks = static_cast<std::int64_t>(num(e, "ticks"));
        if (const JsonValue* h = e.find("hints"); h && h->is_array())
          for (const JsonValue& v : h->array) sg.hints.push_back(v.string);
        sg.rationale = str(e, "rationale");
        prof.grid.suggestions.push_back(std::move(sg));
      }
  }
  return prof;
}

DseProfile parse_dse_profile(const std::string& text) {
  return parse_dse_profile(parse_json(text));
}

// --- validate --------------------------------------------------------------

std::vector<std::string> validate_dse_profile(const JsonValue& doc) {
  std::vector<std::string> problems;
  auto bad = [&](const std::string& what) { problems.push_back(what); };
  if (!doc.is_object()) return {"not a JSON object"};
  if (str(doc, "kind") != kProfileKind)
    bad("kind is not '" + std::string(kProfileKind) + "'");
  if (static_cast<int>(num(doc, "version")) != kProfileVersion)
    bad("version is not " + std::to_string(kProfileVersion));
  if (str(doc, "tool").empty()) bad("missing tool");
  const JsonValue* pts = doc.find("points");
  if (!pts || !pts->is_array()) {
    bad("missing points array");
    return problems;
  }

  std::set<std::size_t> sim_ok;  // ok points with a cycle time
  std::size_t pos = 0;
  for (const JsonValue& o : pts->array) {
    std::string where = "point " + std::to_string(pos);
    if (!o.is_object()) {
      bad(where + ": not an object");
      ++pos;
      continue;
    }
    for (const char* key : {"benchmark", "script", "status"})
      if (!o.find(key)) bad(where + ": missing '" + key + "'");
    if (static_cast<std::size_t>(num(o, "index")) != pos)
      bad(where + ": index does not match its position");
    const bool ok = o.find("ok") && o.at("ok").boolean;
    const auto cycle = static_cast<std::int64_t>(num(o, "cycle_time"));
    const auto attributed = static_cast<std::int64_t>(num(o, "attributed"));
    // The area books: per-controller transistor counts must match the
    // model (2/AND-literal + 2/OR-input + 8/state latch + 4/output keeper)
    // and the total must add the 6-transistor channel transition
    // detectors.  Re-derived here on purpose — an emitter bug cannot
    // validate its own arithmetic.
    const JsonValue* area = o.find("area");
    if (!area || !area->is_object()) {
      bad(where + ": missing area block");
    } else {
      std::size_t sum = 0;
      if (const JsonValue* cs = area->find("controllers"); cs && cs->is_array())
        for (const JsonValue& c : cs->array) {
          std::size_t expect = 2 * static_cast<std::size_t>(num(c, "literals")) +
                               2 * static_cast<std::size_t>(num(c, "products")) +
                               8 * static_cast<std::size_t>(num(c, "state_bits")) +
                               4 * static_cast<std::size_t>(num(c, "outputs"));
          if (static_cast<std::size_t>(num(c, "transistors")) != expect)
            bad(where + ": controller '" + str(c, "name") +
                "' transistors disagree with the area model");
          sum += expect;
        }
      sum += 6 * static_cast<std::size_t>(num(*area, "channels"));
      if (static_cast<std::size_t>(num(*area, "total_transistors")) != sum)
        bad(where + ": total_transistors does not sum controllers + wiring");
    }
    if (const JsonValue* seg = o.find("segments")) {
      if (!seg->is_object()) {
        bad(where + ": segments is not an object");
      } else {
        std::int64_t phase_sum = 0;
        for (const auto& [k, v] : parse_map(seg->find("by_phase"))) {
          (void)k;
          phase_sum += v;
        }
        if (phase_sum != attributed)
          bad(where + ": by_phase segments sum to " + std::to_string(phase_sum) +
              ", not the attributed " + std::to_string(attributed));
        if (attributed > cycle)
          bad(where + ": attributed more than the cycle time");
        if (ok && cycle > 0 &&
            static_cast<double>(attributed) < 0.95 * static_cast<double>(cycle))
          bad(where + ": ok point attributes < 95% of its cycle time");
      }
    }
    if (ok && cycle > 0) sim_ok.insert(pos);
    ++pos;
  }

  const JsonValue* grid = doc.find("grid");
  if (!grid || !grid->is_object()) {
    bad("missing grid block");
    return problems;
  }
  for (const char* kind : {"channels", "controllers"}) {
    const JsonValue* bn = grid->find("bottlenecks");
    const JsonValue* arr = bn ? bn->find(kind) : nullptr;
    if (!arr || !arr->is_array()) {
      bad(std::string("missing bottleneck ranking '") + kind + "'");
      continue;
    }
    std::int64_t last = -1;
    bool first = true;
    for (const JsonValue& b : arr->array) {
      auto t = static_cast<std::int64_t>(num(b, "ticks"));
      if (!first && t > last)
        bad(std::string("bottleneck ranking '") + kind + "' is not descending");
      last = t;
      first = false;
    }
  }
  std::set<std::size_t> frontier;
  if (const JsonValue* f = grid->find("frontier"); f && f->is_array()) {
    for (const JsonValue& e : f->array) {
      auto idx = static_cast<std::size_t>(num(e, "index"));
      if (!sim_ok.count(idx))
        bad("frontier names point " + std::to_string(idx) +
            ", which is not a simulated ok point");
      frontier.insert(idx);
    }
  } else {
    bad("missing frontier array");
  }
  std::size_t dominated_count = 0;
  if (const JsonValue* d = grid->find("dominated"); d && d->is_array()) {
    for (const JsonValue& e : d->array) {
      ++dominated_count;
      auto idx = static_cast<std::size_t>(num(e, "index"));
      auto by = static_cast<std::size_t>(num(e, "dominated_by"));
      if (frontier.count(idx))
        bad("point " + std::to_string(idx) + " is both frontier and dominated");
      if (!frontier.count(by))
        bad("point " + std::to_string(idx) + " dominated by " +
            std::to_string(by) + ", which is not on the frontier");
    }
  }
  if (frontier.size() + dominated_count != sim_ok.size())
    bad("frontier + dominated do not partition the simulated ok points");
  if (const JsonValue* s = grid->find("suggestions"); s && s->is_array()) {
    std::size_t rank = 1;
    for (const JsonValue& e : s->array) {
      if (static_cast<std::size_t>(num(e, "rank")) != rank)
        bad("suggestion ranks are not 1..k ascending");
      ++rank;
    }
  } else {
    bad("missing suggestions array");
  }
  return problems;
}

}  // namespace analysis
}  // namespace adc
