#pragma once
// Builds PointProfiles/DseProfiles from evaluated FlowPoints — the bridge
// from the runtime onto the dependency-light profile schema
// (analysis/profile.hpp).  Joins the critical-path attribution already on
// the point with the area model's transistor estimates, the recipe steps
// and the provenance decision tally.

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/profile.hpp"

namespace adc {

struct FlowPoint;

namespace analysis {

// The control-area transistor estimate for one evaluated point:
// per-controller area-model numbers plus the 6-transistor-per-channel
// ready-wire transition detectors.  Works on any completed point (the
// gate metrics ride ControllerMetrics, so disk-replayed points count too).
std::size_t point_area_transistors(const FlowPoint& p);

// One point's profile.  `index` is the point's position in the grid.
PointProfile build_point_profile(const FlowPoint& p, std::size_t index);

// The full store: every point profiled + the grid analyses.
DseProfile build_dse_profile(const std::vector<FlowPoint>& points,
                             const std::string& tool, std::size_t top_k = 5);

}  // namespace analysis
}  // namespace adc
