#pragma once
// The DSE profile schema (kind "adc-dse-profile", version 1) — the
// machine-readable attribution record `adc_dse --profile-out` persists for
// every evaluated design point, and the grid-level analyses computed on
// top of the store.
//
// One PointProfile joins the three views the engine already computes but
// never correlated before:
//
//  * the critical-path segment breakdown (sim/critical_path.hpp): where
//    the simulated cycle time went, per channel / controller / handshake
//    phase;
//  * the area model (area/area_model.hpp): what the control logic costs,
//    per controller and for the whole system;
//  * the transform recipe and its provenance decision ids: *why* this
//    point looks the way it does.
//
// The grid block ranks bottlenecks across all points, extracts the Pareto
// frontier over (control area x cycle time) and emits a machine-readable
// `suggestions` list — the interface a feedback-directed search consumes
// (ROADMAP open item 3).
//
// Like the BENCH schema (perf/record.hpp), this header is deliberately
// closed — emit (write_json), parse (parse_dse_profile) and validate
// (validate_dse_profile, what `adc_obs_check --dse-profile` runs) live
// together — and deliberately light: it depends only on the JSON
// reader/writer so adc_obs_check stays light.  The builder that fills it
// from FlowPoints lives in analysis/build.hpp on top of the runtime.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace adc {

class JsonWriter;
struct JsonValue;

namespace analysis {

inline constexpr const char* kProfileKind = "adc-dse-profile";
inline constexpr int kProfileVersion = 1;

// One contiguous critical-path chain (mirrors sim::CriticalChain, kept
// dependency-free here like perf::BenchStage mirrors StageTiming).
struct ChainRef {
  std::string phase;
  std::string controller;  // "" renders as "(channels)" upstream
  std::string label;
  std::int64_t ticks = 0;
  std::size_t events = 0;
};

// Per-controller control-logic cost (area_model numbers, precomputed so
// readers never need the formula or the logic stack).
struct AreaRow {
  std::string name;
  std::size_t products = 0;
  std::size_t literals = 0;
  std::size_t state_bits = 0;
  std::size_t outputs = 0;
  std::size_t transistors = 0;
};

struct PointProfile {
  std::size_t index = 0;  // position in the evaluated grid
  std::string benchmark;
  std::string script;  // normalized recipe rendering
  std::string status;  // "ok", "deadlock", ...
  bool ok = false;

  // Cycle time (the event simulation's finish time) and how much of it
  // the critical-path walk attributed.
  std::int64_t cycle_time = 0;
  std::int64_t attributed = 0;
  double attributed_fraction = 0.0;
  bool has_attribution = false;  // segments present (simulated + logged)

  // Control area.
  std::vector<AreaRow> area;
  std::size_t channels = 0;           // global ready wires
  std::size_t area_transistors = 0;   // controllers + channel wiring

  // Critical-path aggregations (keys as critical_path.hpp renders them;
  // by_controller_phase keys are "<controller>/<phase>").
  std::map<std::string, std::int64_t> by_phase;
  std::map<std::string, std::int64_t> by_controller;
  std::map<std::string, std::int64_t> by_channel;
  std::map<std::string, std::int64_t> by_controller_phase;
  std::vector<ChainRef> top_chains;  // longest first
  ChainRef dominant;                 // the single longest chain

  // Recipe steps (normalized, in order) and the provenance decision tally
  // ("pass.kind" -> count; empty when the run skipped provenance).
  std::vector<std::string> recipe;
  std::map<std::string, std::size_t> decisions;
};

struct BottleneckRow {
  std::string name;
  std::int64_t ticks = 0;   // total attributed across all points
  std::size_t points = 0;   // points whose critical path crosses it
};

struct FrontierEntry {
  std::size_t index = 0;
  std::size_t area_transistors = 0;
  std::int64_t cycle_time = 0;
};

struct DominatedEntry {
  std::size_t index = 0;
  std::size_t dominated_by = 0;  // a frontier member that dominates it
};

// One machine-readable optimization target: a segment whose attributed
// latency makes it a high-value candidate for the next GT/LT.
struct Suggestion {
  std::size_t rank = 0;     // 1 = highest value
  std::string kind;         // "channel" | "controller"
  std::string name;
  std::int64_t ticks = 0;
  std::vector<std::string> hints;  // transform steps to try ("gt5", "lt", ...)
  std::string rationale;
};

struct GridAnalysis {
  std::vector<BottleneckRow> channels;     // ticks-descending
  std::vector<BottleneckRow> controllers;  // ticks-descending
  std::vector<FrontierEntry> frontier;     // cycle-time ascending
  std::vector<DominatedEntry> dominated;
  std::vector<Suggestion> suggestions;     // rank-ascending
};

struct DseProfile {
  int version = kProfileVersion;
  std::string tool;  // "adc_dse", "adc_synth"
  std::vector<PointProfile> points;
  GridAnalysis grid;

  const PointProfile* find(std::size_t index) const;
};

// --- serialization ---------------------------------------------------------

void write_json(JsonWriter& w, const PointProfile& p);
void write_json(JsonWriter& w, const DseProfile& prof);
std::string to_json(const DseProfile& prof, bool pretty = true);

// Parses a profile document; throws std::runtime_error on schema
// violations (wrong kind/version, missing members).
DseProfile parse_dse_profile(const JsonValue& doc);
DseProfile parse_dse_profile(const std::string& text);

// Schema + internal-consistency check without throwing: every problem as
// one line (empty = valid).  This is what `adc_obs_check --dse-profile`
// prints.  Beyond structure it re-derives the books: per-point phase
// segments must sum to the attributed total, ok points must attribute
// >= 95% of their cycle time, per-controller transistor counts must match
// the area model, frontier/dominated indices must partition the simulated
// ok points and every dominated point must name a frontier dominator.
std::vector<std::string> validate_dse_profile(const JsonValue& doc);

}  // namespace analysis
}  // namespace adc
