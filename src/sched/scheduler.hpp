#pragma once
// Resource-constrained list scheduling and functional-unit binding,
// producing the scheduled CDFG the paper's flow starts from.

#include <map>
#include <string>
#include <vector>

#include "cdfg/cdfg.hpp"
#include "sched/dfg.hpp"

namespace adc {

struct Resources {
  int alus = 2;
  int mults = 2;
  int alu_cycles = 1;   // abstract scheduling cycles per ALU op
  int mult_cycles = 2;  // multipliers are slower
};

struct ScheduleEntry {
  std::size_t op = 0;
  int start = 0;
  std::string fu;  // bound unit, e.g. "ALU1"
};

struct ScheduleResult {
  std::vector<ScheduleEntry> entries;  // one per op, op order
  int makespan = 0;
};

// Is the statement executed by a multiplier-class unit?
bool needs_multiplier(const RtlStatement& s);

// List schedule with critical-path priority; ties broken by op id.  Ops are
// bound to the unit instance that becomes free first (round-robin on ties).
ScheduleResult list_schedule(const std::vector<HlsOp>& ops, const Resources& res);

// The full front end: schedule prologue and loop body, bind, and emit a
// scheduled CDFG via the ProgramBuilder (the LOOP is bound to the first
// ALU-class unit, matching the paper's target architecture).
Cdfg schedule_and_bind(const HlsProgram& program, const Resources& res);

}  // namespace adc
