#pragma once
// Unscheduled data-flow graph — the input to the high-level-synthesis
// substrate.  The paper assumes a scheduled, resource-bound CDFG as given
// (produced by a tool in the De Micheli tradition); this module rebuilds
// that front end: sequential RTL statements are analysed into a dependence
// graph, list-scheduled under resource constraints, bound to functional
// units, and emitted as a scheduled CDFG through the ProgramBuilder.

#include <string>
#include <vector>

#include "cdfg/rtl.hpp"

namespace adc {

struct HlsOp {
  std::size_t id = 0;
  RtlStatement stmt;
  // Dependence edges (ids of ops that must complete first): flow (RAW),
  // anti (WAR) and output (WAW) dependences all constrain the start order.
  std::vector<std::size_t> deps;
};

struct HlsProgram {
  std::string name = "hls";
  std::vector<RtlStatement> prologue;   // straight-line code before the loop
  std::vector<RtlStatement> loop_body;  // empty: no loop
  std::string loop_cond;                // condition register for the loop
};

// Builds the dependence graph of a statement list (sequential semantics).
std::vector<HlsOp> build_dfg(const std::vector<RtlStatement>& stmts);

// Longest dependence chain length, weighting each op by its delay in
// abstract scheduling cycles (used as the list-scheduling priority).
std::vector<int> critical_path_priority(const std::vector<HlsOp>& ops,
                                        const std::vector<int>& op_cycles);

// Unconstrained as-soon-as-possible start times.
std::vector<int> asap_schedule(const std::vector<HlsOp>& ops,
                               const std::vector<int>& op_cycles);

// As-late-as-possible start times against the given deadline (defaults to
// the ASAP makespan, i.e. zero slack on the critical path).
std::vector<int> alap_schedule(const std::vector<HlsOp>& ops,
                               const std::vector<int>& op_cycles, int deadline = -1);

// Per-op slack = ALAP - ASAP; zero marks the critical path.
std::vector<int> schedule_slack(const std::vector<HlsOp>& ops,
                                const std::vector<int>& op_cycles);

}  // namespace adc
