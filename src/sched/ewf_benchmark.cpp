// The full elliptic-wave-filter-class benchmark lives in the scheduler
// library because it is *generated* by the HLS substrate (dependence
// analysis, list scheduling, binding) rather than hand-scheduled.

#include "frontend/benchmarks.hpp"
#include "sched/scheduler.hpp"

namespace adc {

Cdfg ewf(int alus, int mults) {
  // A fifth-order elliptic-wave-filter-class dataflow: two cascaded
  // second-order sections plus an output section, 26 additions and 8
  // multiplications over the state registers sv1..sv8.  (The precise
  // classic EWF node numbering is immaterial here — this serves as the
  // large-scale benchmark; its reference semantics are its own sequential
  // interpretation.)
  HlsProgram p;
  p.name = "ewf";
  const char* body[] = {
      // section 1
      "t1 := IN + sv1",   "t2 := t1 + sv2",   "m1 := t2 * k1",
      "t3 := m1 + sv1",   "t4 := t3 + t2",    "m2 := t4 * k2",
      "t5 := m2 + t3",    "sv1 := t5 + t4",
      // section 2
      "t6 := t5 + sv3",   "t7 := t6 + sv4",   "m3 := t7 * k3",
      "t8 := m3 + sv3",   "t9 := t8 + t7",    "m4 := t9 * k4",
      "t10 := m4 + t8",   "sv3 := t10 + t9",  "sv4 := t7 + t10",
      // section 3
      "t11 := t10 + sv5", "t12 := t11 + sv6", "m5 := t12 * k5",
      "t13 := m5 + sv5",  "t14 := t13 + t12", "m6 := t14 * k1",
      "t15 := m6 + t13",  "sv5 := t15 + t14", "sv6 := t12 + t15",
      // output section and state update
      "m7 := t15 * k2",   "t16 := m7 + sv7",  "t17 := t16 + sv8",
      "m8 := t17 * k3",   "t18 := m8 + t16",  "sv7 := t18 + t17",
      "sv8 := t17 + t18", "OUT := t18 + t15",
      // feed the remaining state
      "sv2 := t2 + t5",
  };
  for (const char* t : body) p.prologue.push_back(parse_rtl(t));
  Resources res;
  res.alus = alus;
  res.mults = mults;
  res.alu_cycles = 1;
  res.mult_cycles = 2;
  return schedule_and_bind(p, res);
}

}  // namespace adc
