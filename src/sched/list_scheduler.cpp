#include <algorithm>
#include <map>

#include "sched/scheduler.hpp"

namespace adc {

bool needs_multiplier(const RtlStatement& s) {
  return s.op == RtlOp::kMul || s.op == RtlOp::kDiv;
}

ScheduleResult list_schedule(const std::vector<HlsOp>& ops, const Resources& res) {
  ScheduleResult out;
  out.entries.resize(ops.size());

  std::vector<int> cycles(ops.size());
  for (const auto& op : ops)
    cycles[op.id] = op.stmt.is_move() ? 1
                    : needs_multiplier(op.stmt) ? res.mult_cycles
                                                : res.alu_cycles;
  std::vector<int> prio = critical_path_priority(ops, cycles);

  // Unit pools: next-free time per instance.
  std::vector<int> alu_free(static_cast<std::size_t>(std::max(1, res.alus)), 0);
  std::vector<int> mul_free(static_cast<std::size_t>(std::max(1, res.mults)), 0);

  std::vector<int> finish(ops.size(), -1);
  std::vector<bool> placed(ops.size(), false);
  std::size_t remaining = ops.size();

  while (remaining > 0) {
    // Ready ops: all deps placed.
    std::vector<std::size_t> ready;
    for (const auto& op : ops) {
      if (placed[op.id]) continue;
      bool ok = true;
      for (std::size_t d : op.deps)
        if (!placed[d]) ok = false;
      if (ok) ready.push_back(op.id);
    }
    // Highest priority first; stable on id.
    std::sort(ready.begin(), ready.end(), [&prio](std::size_t a, std::size_t b) {
      return prio[a] != prio[b] ? prio[a] > prio[b] : a < b;
    });
    for (std::size_t id : ready) {
      const HlsOp& op = ops[id];
      int earliest = 0;
      for (std::size_t d : op.deps) earliest = std::max(earliest, finish[d]);
      bool mul = !op.stmt.is_move() && needs_multiplier(op.stmt);
      auto& pool = mul ? mul_free : alu_free;
      // First instance free at or before `earliest`, else the earliest-free.
      std::size_t best = 0;
      for (std::size_t u = 1; u < pool.size(); ++u)
        if (pool[u] < pool[best]) best = u;
      int start = std::max(earliest, pool[best]);
      pool[best] = start + cycles[id];
      finish[id] = start + cycles[id];
      placed[id] = true;
      --remaining;
      out.entries[id] = ScheduleEntry{
          id, start, (mul ? "MUL" : "ALU") + std::to_string(best + 1)};
      out.makespan = std::max(out.makespan, finish[id]);
    }
  }
  return out;
}

}  // namespace adc
