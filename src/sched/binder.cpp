#include <algorithm>
#include <set>

#include "frontend/builder.hpp"
#include "sched/scheduler.hpp"

namespace adc {

namespace {

// Emits one scheduled region: statements ordered by (start, bound unit).
// Per-unit statement order is the start-time order, which is exactly the
// FU schedule the CDFG's scheduling arcs enforce.
void emit_region(ProgramBuilder& b, const std::map<std::string, FuId>& fus,
                 const std::vector<HlsOp>& ops, const ScheduleResult& sched) {
  std::vector<std::size_t> order(ops.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t c) {
    const auto& ea = sched.entries[a];
    const auto& ec = sched.entries[c];
    if (ea.start != ec.start) return ea.start < ec.start;
    return a < c;  // program order breaks ties (keeps sequential semantics)
  });
  for (std::size_t id : order)
    b.stmt(fus.at(sched.entries[id].fu), ops[id].stmt.to_string());
}

}  // namespace

Cdfg schedule_and_bind(const HlsProgram& program, const Resources& res) {
  auto pro_ops = build_dfg(program.prologue);
  auto body_ops = build_dfg(program.loop_body);
  auto pro_sched = list_schedule(pro_ops, res);
  auto body_sched = list_schedule(body_ops, res);

  // Declare every unit either schedule used (plus ALU1, which owns the loop).
  std::set<std::string> unit_names{"ALU1"};
  for (const auto& e : pro_sched.entries) unit_names.insert(e.fu);
  for (const auto& e : body_sched.entries) unit_names.insert(e.fu);

  ProgramBuilder b(program.name);
  std::map<std::string, FuId> fus;
  for (const auto& name : unit_names)
    fus[name] = b.fu(name, name.substr(0, 3) == "MUL" ? "mul" : "alu");

  emit_region(b, fus, pro_ops, pro_sched);
  if (!program.loop_body.empty()) {
    b.begin_loop(fus.at("ALU1"), program.loop_cond);
    emit_region(b, fus, body_ops, body_sched);
    b.end_loop();
  }
  return b.finish();
}

}  // namespace adc
