#include "sched/dfg.hpp"

#include <algorithm>
#include <map>

namespace adc {

std::vector<HlsOp> build_dfg(const std::vector<RtlStatement>& stmts) {
  std::vector<HlsOp> ops;
  std::map<std::string, std::size_t> last_write;
  std::map<std::string, std::vector<std::size_t>> readers_since_write;

  for (std::size_t i = 0; i < stmts.size(); ++i) {
    HlsOp op;
    op.id = i;
    op.stmt = stmts[i];
    auto add_dep = [&op](std::size_t d) {
      if (std::find(op.deps.begin(), op.deps.end(), d) == op.deps.end() && d != op.id)
        op.deps.push_back(d);
    };
    for (const auto& r : stmts[i].reads()) {
      if (auto it = last_write.find(r); it != last_write.end()) add_dep(it->second);  // RAW
      readers_since_write[r].push_back(i);
    }
    const std::string& w = stmts[i].writes();
    for (std::size_t reader : readers_since_write[w]) add_dep(reader);  // WAR
    if (auto it = last_write.find(w); it != last_write.end()) add_dep(it->second);  // WAW
    last_write[w] = i;
    readers_since_write[w].clear();
    ops.push_back(std::move(op));
  }
  return ops;
}

std::vector<int> asap_schedule(const std::vector<HlsOp>& ops,
                               const std::vector<int>& op_cycles) {
  std::vector<int> start(ops.size(), 0);
  for (const auto& op : ops)  // ops are in sequential order: deps precede
    for (std::size_t d : op.deps)
      start[op.id] = std::max(start[op.id], start[d] + op_cycles[d]);
  return start;
}

std::vector<int> alap_schedule(const std::vector<HlsOp>& ops,
                               const std::vector<int>& op_cycles, int deadline) {
  if (deadline < 0) {
    auto asap = asap_schedule(ops, op_cycles);
    deadline = 0;
    for (const auto& op : ops)
      deadline = std::max(deadline, asap[op.id] + op_cycles[op.id]);
  }
  std::vector<std::vector<std::size_t>> succs(ops.size());
  for (const auto& op : ops)
    for (std::size_t d : op.deps) succs[d].push_back(op.id);
  std::vector<int> start(ops.size(), 0);
  for (std::size_t i = ops.size(); i-- > 0;) {
    int latest = deadline - op_cycles[i];
    for (std::size_t sc : succs[i]) latest = std::min(latest, start[sc] - op_cycles[i]);
    start[i] = latest;
  }
  return start;
}

std::vector<int> schedule_slack(const std::vector<HlsOp>& ops,
                                const std::vector<int>& op_cycles) {
  auto asap = asap_schedule(ops, op_cycles);
  auto alap = alap_schedule(ops, op_cycles);
  std::vector<int> slack(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) slack[i] = alap[i] - asap[i];
  return slack;
}

std::vector<int> critical_path_priority(const std::vector<HlsOp>& ops,
                                        const std::vector<int>& op_cycles) {
  // Reverse topological accumulation: priority = own delay + max successor.
  std::vector<std::vector<std::size_t>> succs(ops.size());
  for (const auto& op : ops)
    for (std::size_t d : op.deps) succs[d].push_back(op.id);
  std::vector<int> prio(ops.size(), 0);
  for (std::size_t i = ops.size(); i-- > 0;) {
    int best = 0;
    for (std::size_t s : succs[i]) best = std::max(best, prio[s]);
    prio[i] = op_cycles[i] + best;
  }
  return prio;
}

}  // namespace adc
