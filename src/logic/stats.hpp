#pragma once
// Gate-level statistics for the paper's Figure 13 style reports.

#include <string>

#include "logic/minimize.hpp"

namespace adc {

struct GateStats {
  std::size_t products_single = 0;  // 3D-like, per-output counting
  std::size_t literals_single = 0;
  std::size_t products_shared = 0;  // Minimalist-like, shared AND terms
  std::size_t literals_shared = 0;
  std::size_t spec_states = 0;       // XBM states
  std::size_t impl_states = 0;       // after phase concretization
  std::size_t state_bits = 0;
  int distance1_transitions = 0;
  int total_transitions = 0;
  bool feasible = true;
};

GateStats gate_stats(const LogicSynthesisResult& r, std::size_t spec_states);

std::string describe(const GateStats& s);

}  // namespace adc
