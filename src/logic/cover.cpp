#include "logic/cover.hpp"

namespace adc {

std::vector<std::string> verify_cover(const FunctionSpec& f,
                                      const std::vector<Cube>& products) {
  std::vector<std::string> errors;
  for (const auto& p : products)
    if (!implicant_valid(f, p))
      errors.push_back(f.name + ": product " + p.to_string() + " is not a dhf implicant");
  for (const auto& r : f.required) {
    if (!implicant_valid(f, r)) continue;  // spec conflict, reported elsewhere
    bool covered = false;
    for (const auto& p : products)
      if (p.contains(r)) covered = true;
    if (!covered)
      errors.push_back(f.name + ": required cube " + r.to_string() +
                       " not inside any single product");
  }
  return errors;
}

}  // namespace adc
