#pragma once
// Gate-level netlist emission and functional simulation of the synthesized
// two-level implementations.
//
// A synthesized controller is an AND-OR network per output and per state
// bit, with the state bits fed back (Huffman style).  This module renders
// the network as structural Verilog / readable equations, and — more
// importantly — *executes* it: the netlist simulator drives the network
// with the input bursts of the concretized specification, stepping one
// input bit at a time in adversarial orders, and checks that
//
//   * the network settles to the specified next state,
//   * every output moves monotonically to its specified value during a
//     burst (a non-monotonic move is precisely a hazard the two-level
//     cover was supposed to exclude).
//
// This is the dynamic complement to the static dhf-implicant rules in
// hazard_free.cpp.

#include <cstdint>
#include <string>
#include <vector>

#include "logic/minimize.hpp"

namespace adc {

// Structural Verilog of the two-level network (one assign per function,
// products as AND terms).  Names are sanitized signal names.
std::string to_verilog(const LogicSynthesisResult& r, const std::string& module_name);

// Human-readable sum-of-products equations.
std::string to_equations(const LogicSynthesisResult& r);

struct NetlistCheckOptions {
  std::uint64_t seed = 1;
  int walks = 20;          // random walks over the concrete machine
  int steps_per_walk = 60; // transitions taken per walk
  int orders_per_burst = 4;  // adversarial single-bit input orderings tried
};

struct NetlistCheckResult {
  bool ok = true;
  std::vector<std::string> violations;
  std::int64_t transitions_checked = 0;
  std::int64_t evaluations = 0;
};

// Replays the concretized machine on the synthesized network.
NetlistCheckResult check_netlist(const LogicSynthesisResult& r,
                                 const NetlistCheckOptions& opts = {});

}  // namespace adc
