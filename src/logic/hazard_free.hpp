#pragma once
// Hazard-free two-level minimization (the Nowick/Dill formulation used by
// Minimalist and 3D, reimplemented as the paper's gate-level backend).
//
// A single-output function is specified by a set of *input transitions*
// (multiple-input changes) over the (primary input, state bit) space:
//
//   static 1 -> 1 : the whole transition cube is a *required cube* — it
//                   must lie inside ONE product, or the AND-OR network can
//                   glitch as cover responsibility shifts between products;
//   static 0 -> 0 : no product may intersect the transition cube;
//   rising  0 -> 1 : any product intersecting the transition cube must
//                   contain its end point (monotonic turn-on); the end
//                   point is required;
//   falling 1 -> 0 : any product intersecting must contain the start point
//                   (monotonic turn-off); the start point is required.
//
// A product satisfying all intersection rules and avoiding the OFF regions
// is a *dhf implicant*.  Minimization selects a minimum set of dhf
// implicants such that every required cube is contained in one of them
// (greedy covering; small instances can optionally be solved exactly).

#include <string>
#include <vector>

#include "logic/cube.hpp"
#include "runtime/cancel.hpp"

namespace adc {

enum class HfType { kRise, kFall };

struct HfDynamic {
  Cube t;  // transition cube
  Cube a;  // start point
  Cube b;  // end point
  HfType type;
};

struct FunctionSpec {
  std::string name;
  std::size_t vars = 0;
  std::vector<Cube> off;        // regions the cover must avoid
  std::vector<Cube> required;   // each must be inside a single product
  std::vector<HfDynamic> dynamic;
};

// True if `p` may appear in a hazard-free cover of the function.
bool implicant_valid(const FunctionSpec& f, const Cube& p);

struct CoverResult {
  std::vector<Cube> products;
  bool feasible = true;
  std::vector<std::string> issues;  // unrealizable required cubes etc.
};

class LogicMemo;

struct CoverOptions {
  bool exact = false;        // branch-and-bound when the instance is small
  int exact_limit = 18;      // max required cubes for the exact search
  // Cooperative cancellation: checked in the candidate-growth loop, the
  // exact branch-and-bound and the greedy covering loop; a tripped token
  // unwinds with CancelledError.  Not owned; null = never cancelled.
  const CancelToken* cancel = nullptr;
  // Optional cover memo (logic/memo.hpp): identical spec content replays
  // the stored cover instead of recomputing.  Not owned; null = off.
  LogicMemo* memo = nullptr;
};

CoverResult minimize_hazard_free(const FunctionSpec& f, const CoverOptions& opts = {});

// Maximal dhf implicants grown from the required cubes (the candidate pool
// of the covering step; exposed for tests).
std::vector<Cube> candidate_implicants(const FunctionSpec& f,
                                       const CancelToken* cancel = nullptr);

}  // namespace adc
