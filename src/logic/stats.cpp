#include "logic/stats.hpp"

namespace adc {

GateStats gate_stats(const LogicSynthesisResult& r, std::size_t spec_states) {
  GateStats s;
  s.products_single = r.product_count(false);
  s.literals_single = r.literal_count(false);
  s.products_shared = r.product_count(true);
  s.literals_shared = r.literal_count(true);
  s.spec_states = spec_states;
  s.impl_states = r.machine.states.size();
  s.state_bits = r.encoding.bits;
  s.feasible = r.feasible();
  s.distance1_transitions = r.encoding.distance1;
  s.total_transitions = r.encoding.total;
  return s;
}

std::string describe(const GateStats& s) {
  return std::to_string(s.products_shared) + " products / " +
         std::to_string(s.literals_shared) + " literals (shared), " +
         std::to_string(s.products_single) + " / " + std::to_string(s.literals_single) +
         " (single-output), " + std::to_string(s.impl_states) + " impl states, " +
         std::to_string(s.state_bits) + " state bits";
}

}  // namespace adc
