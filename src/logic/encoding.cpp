#include "logic/encoding.hpp"

#include <algorithm>
#include <functional>
#include <set>

namespace adc {

Encoding assign_codes(const ConcreteMachine& cm) {
  Encoding enc;
  std::size_t n = cm.states.size();
  enc.bits = 1;
  while ((std::size_t{1} << enc.bits) < n) ++enc.bits;
  enc.code.assign(n, 0);

  // Depth-first order from the initial state; Gray codes along the walk.
  std::vector<std::vector<std::size_t>> succs(n);
  for (const auto& t : cm.transitions) succs[t.from].push_back(t.to);

  std::vector<std::size_t> order;
  std::set<std::size_t> seen;
  std::vector<std::size_t> stack{cm.initial};
  while (!stack.empty()) {
    std::size_t s = stack.back();
    stack.pop_back();
    if (!seen.insert(s).second) continue;
    order.push_back(s);
    // Push in reverse so the first successor is visited next (ring order).
    for (auto it = succs[s].rbegin(); it != succs[s].rend(); ++it) stack.push_back(*it);
  }
  for (std::size_t s = 0; s < n; ++s)
    if (!seen.count(s)) order.push_back(s);  // unreachable safety

  // Hypercube embedding: each state takes an unused code, ideally at
  // Hamming distance 1 from every already-assigned neighbour.  A bounded
  // backtracking search tries to make every edge distance-1; when the
  // budget runs out (or the graph has an odd cycle — the hypercube is
  // bipartite, so e.g. a loop entry/exit triangle cannot embed) it falls
  // back to the best greedy completion.  Remaining multi-bit changes are
  // counted and handled as declared race assumptions by the spec builder.
  std::vector<std::set<std::size_t>> adj(n);
  for (const auto& t : cm.transitions) {
    if (t.from == t.to) continue;
    adj[t.from].insert(t.to);
    adj[t.to].insert(t.from);
  }
  const std::size_t code_space = std::size_t{1} << enc.bits;

  auto score_of = [&](std::size_t s, std::uint32_t c, const std::vector<bool>& assigned,
                      const std::vector<std::uint32_t>& code) {
    long score = 0;
    for (std::size_t nb : adj[s]) {
      if (!assigned[nb]) continue;
      int d = __builtin_popcount(c ^ code[nb]);
      score += d == 1 ? 0 : 100L * d;
    }
    return score;
  };

  // Exact pass: distance-1 for every edge, bounded backtracking.
  {
    std::vector<std::uint32_t> code(n, 0);
    std::vector<bool> used(code_space, false);
    std::vector<bool> assigned(n, false);
    long budget = 200000;
    std::function<bool(std::size_t)> place = [&](std::size_t idx) -> bool {
      if (idx == order.size()) return true;
      if (--budget < 0) return false;
      std::size_t s = order[idx];
      for (std::uint32_t c = 0; c < code_space; ++c) {
        if (used[c]) continue;
        bool ok = true;
        for (std::size_t nb : adj[s])
          if (assigned[nb] && __builtin_popcount(c ^ code[nb]) != 1) ok = false;
        if (!ok) continue;
        code[s] = c;
        used[c] = true;
        assigned[s] = true;
        if (place(idx + 1)) return true;
        used[c] = false;
        assigned[s] = false;
      }
      return false;
    };
    if (place(0)) {
      enc.code = code;
      for (const auto& t : cm.transitions) {
        if (t.from == t.to) continue;
        ++enc.total;
        if (__builtin_popcount(enc.code[t.from] ^ enc.code[t.to]) == 1) ++enc.distance1;
      }
      return enc;
    }
  }

  // Greedy fallback.
  std::vector<bool> used(code_space, false);
  std::vector<bool> assigned(n, false);
  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    std::size_t s = order[idx];
    std::uint32_t best = 0;
    long best_score = -1;
    for (std::uint32_t c = 0; c < code_space; ++c) {
      if (used[c]) continue;
      long score = score_of(s, c, assigned, enc.code);
      if (best_score < 0 || score < best_score) {
        best_score = score;
        best = c;
      }
    }
    enc.code[s] = best;
    used[best] = true;
    assigned[s] = true;
  }

  for (const auto& t : cm.transitions) {
    if (t.from == t.to) continue;
    ++enc.total;
    if (__builtin_popcount(enc.code[t.from] ^ enc.code[t.to]) == 1) ++enc.distance1;
  }
  return enc;
}

}  // namespace adc
