#include "logic/netlist.hpp"

#include <algorithm>
#include <random>
#include <sstream>

namespace adc {

namespace {

std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s) out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) out = "n" + out;
  return out;
}

// Variable name for cube coordinate v.
std::string var_name(const LogicSynthesisResult& r, std::size_t v) {
  const std::size_t ni = r.machine.input_names.size();
  if (v < ni) return sanitize(r.machine.input_names[v]);
  return "y" + std::to_string(v - ni);
}

std::string product_expr(const LogicSynthesisResult& r, const Cube& p, const char* op,
                         const char* neg) {
  std::string out;
  for (std::size_t v = 0; v < p.var_count(); ++v) {
    auto val = p.get(v);
    if (val == Cube::V::kFree) continue;
    if (!out.empty()) out += op;
    if (val == Cube::V::kZero) out += neg;
    out += var_name(r, v);
  }
  return out.empty() ? "1'b1" : out;
}

}  // namespace

std::string to_verilog(const LogicSynthesisResult& r, const std::string& module_name) {
  std::ostringstream os;
  const auto& cm = r.machine;
  os << "// two-level hazard-free implementation (generated)\n";
  os << "module " << sanitize(module_name) << " (\n";
  for (const auto& in : cm.input_names) os << "  input  wire " << sanitize(in) << ",\n";
  for (std::size_t i = 0; i < cm.output_names.size(); ++i)
    os << "  output wire " << sanitize(cm.output_names[i]) << ",\n";
  os << "  input  wire [" << (r.encoding.bits - 1) << ":0] y,\n";
  os << "  output wire [" << (r.encoding.bits - 1) << ":0] z\n);\n";
  for (std::size_t b = 0; b < r.encoding.bits; ++b)
    os << "  wire y" << b << " = y[" << b << "];\n";
  for (const auto& f : r.functions) {
    std::string lhs = f.is_state_bit ? ("z[" + f.name.substr(1) + "]") : sanitize(f.name);
    os << "  assign " << lhs << " = ";
    if (f.products.empty()) {
      os << "1'b0;\n";
      continue;
    }
    for (std::size_t i = 0; i < f.products.size(); ++i) {
      if (i) os << "\n                | ";
      os << "(" << product_expr(r, f.products[i], " & ", "~") << ")";
    }
    os << ";\n";
  }
  os << "endmodule\n";
  return os.str();
}

std::string to_equations(const LogicSynthesisResult& r) {
  std::ostringstream os;
  for (const auto& f : r.functions) {
    os << sanitize(f.name) << " = ";
    if (f.products.empty()) {
      os << "0\n";
      continue;
    }
    for (std::size_t i = 0; i < f.products.size(); ++i) {
      if (i) os << " + ";
      os << product_expr(r, f.products[i], "*", "!");
    }
    os << "\n";
  }
  return os.str();
}

namespace {

using Point = std::vector<bool>;

bool cube_matches(const Cube& c, const Point& p) {
  for (std::size_t v = 0; v < p.size(); ++v) {
    auto val = c.get(v);
    if (val == Cube::V::kOne && !p[v]) return false;
    if (val == Cube::V::kZero && p[v]) return false;
  }
  return true;
}

bool eval_fn(const FunctionLogic& f, const Point& p) {
  for (const auto& prod : f.products)
    if (cube_matches(prod, p)) return true;
  return false;
}

}  // namespace

NetlistCheckResult check_netlist(const LogicSynthesisResult& r,
                                 const NetlistCheckOptions& opts) {
  NetlistCheckResult res;
  const auto& cm = r.machine;
  const auto& enc = r.encoding;
  const std::size_t ni = cm.input_names.size();
  const std::size_t vars = ni + enc.bits;
  std::mt19937_64 rng(opts.seed);

  if (!r.feasible()) {
    res.ok = false;
    res.violations.push_back("synthesis reported an infeasible specification");
    return res;
  }

  // Function handles.
  std::vector<const FunctionLogic*> out_fn, state_fn;
  for (const auto& f : r.functions)
    (f.is_state_bit ? state_fn : out_fn).push_back(&f);

  auto make_point = [&](const Point& in, std::uint32_t code) {
    Point p(vars, false);
    for (std::size_t i = 0; i < ni; ++i) p[i] = in[i];
    for (std::size_t b = 0; b < enc.bits; ++b) p[ni + b] = (code >> b) & 1;
    return p;
  };
  auto next_code = [&](const Point& in, std::uint32_t code) {
    // Iterated feedback settling (synchronous update; distance-1 codes
    // settle in one step).
    for (std::size_t iter = 0; iter <= enc.bits + 2; ++iter) {
      Point p = make_point(in, code);
      std::uint32_t z = 0;
      for (std::size_t b = 0; b < enc.bits; ++b) {
        ++res.evaluations;
        if (eval_fn(*state_fn[b], p)) z |= 1u << b;
      }
      if (z == code) return code;
      code = z;
    }
    return ~0u;  // oscillation
  };

  // Outgoing transitions per concrete state.
  std::vector<std::vector<const ConcreteTransition*>> outs(cm.states.size());
  for (const auto& t : cm.transitions) outs[t.from].push_back(&t);

  auto violation = [&](std::string what) {
    res.ok = false;
    if (res.violations.size() < 20) res.violations.push_back(std::move(what));
  };

  for (int walk = 0; walk < opts.walks && res.ok; ++walk) {
    std::size_t state = cm.initial;
    std::uint32_t code = enc.code[state];
    // Initial inputs: pinned values from the state signature, X -> 0.
    Point in(ni, false);
    for (std::size_t i = 0; i < ni; ++i)
      in[i] = cm.states[state].inputs.get(i) == Cube::V::kOne;

    for (int step = 0; step < opts.steps_per_walk && res.ok; ++step) {
      if (outs[state].empty()) break;
      const ConcreteTransition& t =
          *outs[state][rng() % outs[state].size()];
      ++res.transitions_checked;

      // Target input vector: the burst's end point; unpinned vars keep
      // their current value.
      Point target = in;
      std::vector<std::size_t> changed;
      for (std::size_t v = 0; v < ni; ++v) {
        auto want = t.end.get(v);
        // Conditionals sampled by this transition are pinned in its cube.
        if (t.trans.get(v) != Cube::V::kFree &&
            cm.states[state].inputs.get(v) == Cube::V::kFree)
          want = t.trans.get(v);
        if (want == Cube::V::kFree) continue;
        bool bit = want == Cube::V::kOne;
        if (target[v] != bit) {
          target[v] = bit;
          changed.push_back(v);
        }
      }

      // Expected outputs before/after.
      std::vector<bool> out_before(out_fn.size()), out_after(out_fn.size());
      for (std::size_t o = 0; o < out_fn.size(); ++o)
        out_before[o] = out_after[o] = cm.states[t.from].outputs[o];
      for (const auto& [o, v] : t.output_changes) out_after[o] = v;

      for (int order = 0; order < opts.orders_per_burst && res.ok; ++order) {
        // Fundamental-mode setup: sampled conditionals settle before the
        // trigger burst begins, so they go first in every ordering.
        std::vector<std::size_t> seq, tail;
        for (std::size_t v : changed)
          (cm.input_is_conditional[v] ? seq : tail).push_back(v);
        std::shuffle(tail.begin(), tail.end(), rng);
        seq.insert(seq.end(), tail.begin(), tail.end());
        Point cur = in;
        std::vector<int> flips(out_fn.size(), 0);
        std::vector<bool> prev = out_before;
        for (std::size_t k = 0; k < seq.size(); ++k) {
          cur[seq[k]] = target[seq[k]];
          Point p = make_point(cur, code);
          bool last = k + 1 == seq.size();
          // State bits must hold until the burst completes.
          if (!last) {
            for (std::size_t b = 0; b < enc.bits; ++b) {
              ++res.evaluations;
              if (eval_fn(*state_fn[b], p) != (((code >> b) & 1) != 0)) {
                violation(cm.output_names.empty() ? "state hold violation"
                                                  : "premature state change in burst of '" +
                                                        state_fn[b]->name + "'");
                break;
              }
            }
          }
          for (std::size_t o = 0; o < out_fn.size() && res.ok; ++o) {
            ++res.evaluations;
            bool v = eval_fn(*out_fn[o], p);
            if (v != prev[o]) {
              ++flips[o];
              prev[o] = v;
            }
          }
        }
        if (!res.ok) break;
        for (std::size_t o = 0; o < out_fn.size(); ++o) {
          if (flips[o] > 1)
            violation("output hazard: '" + out_fn[o]->name + "' glitched during a burst");
          if (prev[o] != out_after[o])
            violation("output '" + out_fn[o]->name + "' did not reach its specified value");
        }
      }
      if (!res.ok) break;

      // Settle the feedback and compare with the specification.
      std::uint32_t settled = next_code(target, code);
      if (settled != enc.code[t.to]) {
        violation("next-state mismatch after burst (got code " + std::to_string(settled) +
                  ", expected " + std::to_string(enc.code[t.to]) + ")");
        break;
      }
      code = settled;
      state = t.to;
      in = target;
    }
  }
  return res;
}

}  // namespace adc
