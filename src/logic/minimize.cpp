#include "logic/minimize.hpp"

#include <set>
#include <unordered_map>

#include "runtime/thread_pool.hpp"

namespace adc {

namespace {

// Embeds an input-space cube into the full (inputs + state bits) space with
// the state coordinates fixed to `code`.
Cube embed(const Cube& in, std::size_t vars, std::size_t ni, std::size_t bits,
           std::uint32_t code) {
  Cube out(vars);
  for (std::size_t i = 0; i < ni; ++i) out.set(i, in.get(i));
  for (std::size_t b = 0; b < bits; ++b)
    out.set(ni + b, ((code >> b) & 1) ? Cube::V::kOne : Cube::V::kZero);
  return out;
}

// As above but spanning two codes (the feedback-settling cube).
Cube embed_span(const Cube& in, std::size_t vars, std::size_t ni, std::size_t bits,
                std::uint32_t c1, std::uint32_t c2) {
  Cube out(vars);
  for (std::size_t i = 0; i < ni; ++i) out.set(i, in.get(i));
  for (std::size_t b = 0; b < bits; ++b) {
    bool v1 = (c1 >> b) & 1, v2 = (c2 >> b) & 1;
    out.set(ni + b, v1 == v2 ? (v1 ? Cube::V::kOne : Cube::V::kZero) : Cube::V::kFree);
  }
  return out;
}

}  // namespace

FunctionSpec build_function_spec(const ConcreteMachine& cm, const Encoding& enc,
                                 bool state_bit, std::size_t index, std::string name) {
  FunctionSpec f;
  f.name = std::move(name);
  const std::size_t ni = cm.input_names.size();
  f.vars = ni + enc.bits;

  auto value_at = [&](std::size_t state) {
    return state_bit ? ((enc.code[state] >> index) & 1) != 0
                     : cm.states[state].outputs[index];
  };

  for (const auto& ct : cm.transitions) {
    std::uint32_t c = enc.code[ct.from], c2 = enc.code[ct.to];
    Cube T = embed(ct.trans, f.vars, ni, enc.bits, c);
    Cube A = embed(ct.start, f.vars, ni, enc.bits, c);
    Cube B = embed(ct.end, f.vars, ni, enc.bits, c);
    bool v = value_at(ct.from);
    bool v2 = value_at(ct.to);

    if (v && v2) {
      f.required.push_back(T);
    } else if (!v && !v2) {
      f.off.push_back(T);
    } else if (!state_bit) {
      // Mealy outputs change monotonically *during* the burst — the
      // classic dynamic-transition rules with the appropriate anchor.
      if (!v && v2) {
        f.off.push_back(A);
        f.required.push_back(B);
        f.dynamic.push_back(HfDynamic{T, A, B, HfType::kRise});
      } else {
        f.off.push_back(B);
        f.required.push_back(A);
        f.dynamic.push_back(HfDynamic{T, A, B, HfType::kFall});
      }
    } else {
      // Next-state excitation must hold its old value until the *complete*
      // burst has arrived and change exactly then: for every changed input
      // the sub-cube still missing that arrival keeps the old value, and
      // the completion region (all compulsory arrivals in, don't-care
      // windows free) takes the new one.
      Cube completion = T;
      std::vector<std::size_t> changed_vars;
      for (std::size_t i = 0; i < ni; ++i) {
        auto a = ct.start.get(i), b2 = ct.end.get(i);
        if (a == Cube::V::kFree || b2 == Cube::V::kFree || a == b2) continue;
        changed_vars.push_back(i);
        completion.set(i, b2);
      }
      for (std::size_t i : changed_vars) {
        Cube waiting = T;
        waiting.set(i, ct.start.get(i));
        if (v)
          f.required.push_back(waiting);
        else
          f.off.push_back(waiting);
      }
      if (v2)
        f.required.push_back(completion);
      else
        f.off.push_back(completion);
    }

    // Feedback settling: with the inputs at the burst's end point, the
    // excitation must hold its new value while the state bits travel from
    // the old code to the new one.  Exact for single-bit changes; a
    // multi-bit change would have to hold over the whole code span, which
    // the bipartite hypercube cannot always grant — those transitions are
    // counted by the caller as declared race assumptions instead.
    if (__builtin_popcount(c ^ c2) == 1) {
      Cube settle = embed_span(ct.end, f.vars, ni, enc.bits, c, c2);
      if (v2)
        f.required.push_back(settle);
      else
        f.off.push_back(settle);
    }
  }

  // No separate stable-state constraints: the resting point of every state
  // is the start point of its outgoing transitions, whose rules already pin
  // the function there.  (A naive "hold over the whole state signature"
  // cube would wrongly extend across burst-completion points, where the
  // function legitimately changes.)

  // Deduplicate.
  std::set<Cube> req(f.required.begin(), f.required.end());
  f.required.assign(req.begin(), req.end());
  std::set<Cube> off(f.off.begin(), f.off.end());
  f.off.assign(off.begin(), off.end());
  return f;
}

namespace {

struct CubeHash {
  std::size_t operator()(const Cube& c) const {
    return static_cast<std::size_t>(c.hash());
  }
};

// Minimalist-style product sharing: after the per-function covers exist,
// try to replace products that only one function uses with dhf implicants
// another function already pays for — the shared AND plane shrinks while
// every cover stays hazard-free (each replacement is re-checked against
// the function's own specification).
//
// A swap candidate `q` for product `p` of function fi is acceptable
// exactly when every hazard-checkable required cube of fi that only `p`
// covers is also inside `q` — so instead of re-scanning the whole cover
// per candidate, the pass keeps an incremental per-required cover count,
// memoizes `implicant_valid` per (function, cube), and continues scanning
// in place after an accepted swap rather than restarting from function 0
// (the outer fixpoint loop revisits earlier products on the next sweep).
void share_products(std::vector<FunctionLogic>& functions,
                    const std::vector<FunctionSpec>& specs) {
  const std::size_t n_fn = functions.size();

  // Requirements that participate in the coverage check — covers_all in
  // the original pass skipped cubes that are not themselves valid
  // implicants (they are reported elsewhere).
  std::vector<std::vector<Cube>> checked_req(n_fn);
  std::vector<std::vector<int>> cover_cnt(n_fn);
  for (std::size_t fi = 0; fi < n_fn; ++fi) {
    for (const auto& r : specs[fi].required)
      if (implicant_valid(specs[fi], r)) checked_req[fi].push_back(r);
    cover_cnt[fi].assign(checked_req[fi].size(), 0);
    for (const auto& p : functions[fi].products)
      for (std::size_t ri = 0; ri < checked_req[fi].size(); ++ri)
        if (p.contains(checked_req[fi][ri])) ++cover_cnt[fi][ri];
  }

  std::unordered_map<Cube, int, CubeHash> use_count;
  for (const auto& f : functions)
    for (const auto& p : f.products) ++use_count[p];

  // implicant_valid(specs[fi], q) is independent of the evolving covers;
  // compute it once per (function, candidate).
  std::vector<std::unordered_map<Cube, bool, CubeHash>> valid_memo(n_fn);
  auto valid_for = [&](std::size_t fi, const Cube& q) {
    auto [it, fresh] = valid_memo[fi].try_emplace(q, false);
    if (fresh) it->second = implicant_valid(specs[fi], q);
    return it->second;
  };

  bool changed = true;
  std::vector<std::size_t> sole;  // requireds only the current product covers
  while (changed) {
    changed = false;
    for (std::size_t fi = 0; fi < n_fn; ++fi) {
      auto& f = functions[fi];
      const auto& reqs = checked_req[fi];
      for (std::size_t pi = 0; pi < f.products.size(); ++pi) {
        const Cube p = f.products[pi];
        if (use_count[p] > 1) continue;  // already shared
        sole.clear();
        for (std::size_t ri = 0; ri < reqs.size(); ++ri)
          if (cover_cnt[fi][ri] - (p.contains(reqs[ri]) ? 1 : 0) == 0)
            sole.push_back(ri);
        bool swapped = false;
        for (std::size_t gi = 0; gi < n_fn && !swapped; ++gi) {
          if (gi == fi) continue;
          for (const auto& q : functions[gi].products) {
            if (q == p) continue;
            if (!valid_for(fi, q)) continue;
            bool ok = true;
            for (std::size_t ri : sole)
              if (!q.contains(reqs[ri])) {
                ok = false;
                break;
              }
            if (!ok) continue;
            --use_count[p];
            ++use_count[q];
            for (std::size_t ri = 0; ri < reqs.size(); ++ri)
              cover_cnt[fi][ri] += (q.contains(reqs[ri]) ? 1 : 0) -
                                   (p.contains(reqs[ri]) ? 1 : 0);
            f.products[pi] = q;
            swapped = true;
            changed = true;
            break;
          }
        }
      }
    }
  }
  // Drop duplicates a swap may have created inside one function.
  for (auto& f : functions) {
    std::vector<Cube> unique;
    for (const auto& p : f.products) {
      bool seen = false;
      for (const auto& u : unique)
        if (u == p) seen = true;
      if (!seen) unique.push_back(p);
    }
    f.products = std::move(unique);
  }
}

LogicSynthesisResult synthesize_impl(const Xbm& m, const SignalBindings* bindings,
                                     const SynthesisOptions& opts) {
  LogicSynthesisResult res;
  res.machine = concretize(m, bindings);
  res.encoding = assign_codes(res.machine);

  // The per-function spec builds and minimizations are independent; each
  // writes its fixed slot, so the pool fan-out below is free to finish
  // them in any order without perturbing the result.
  const std::size_t n_out = res.machine.output_names.size();
  const std::size_t n_fn = n_out + res.encoding.bits;
  std::vector<FunctionSpec> specs(n_fn);
  std::vector<std::vector<std::string>> fn_issues(n_fn);
  res.functions.resize(n_fn);

  auto run = [&](std::size_t fi) {
    const bool state_bit = fi >= n_out;
    const std::size_t index = state_bit ? fi - n_out : fi;
    std::string name =
        state_bit ? "Y" + std::to_string(index) : res.machine.output_names[index];
    obs::TraceSpan span(opts.trace, "fn:" + name, "logic");
    FunctionSpec spec =
        build_function_spec(res.machine, res.encoding, state_bit, index, std::move(name));
    CoverResult cover = minimize_hazard_free(spec, opts.cover);
    if (span.active()) {
      span.arg("products", std::uint64_t{cover.products.size()});
      span.arg("feasible", cover.feasible);
    }
    fn_issues[fi] = std::move(cover.issues);
    res.functions[fi] = FunctionLogic{spec.name, state_bit, std::move(cover.products)};
    specs[fi] = std::move(spec);
  };

  if (opts.pool && n_fn > 1) {
    TaskGroup group(*opts.pool);
    for (std::size_t fi = 0; fi < n_fn; ++fi)
      group.submit([&run, fi] { run(fi); });
    group.wait();
  } else {
    for (std::size_t fi = 0; fi < n_fn; ++fi) run(fi);
  }
  for (auto& issues : fn_issues)
    for (auto& issue : issues) res.issues.push_back(std::move(issue));

  if (opts.share_products) share_products(res.functions, specs);
  return res;
}

}  // namespace

LogicSynthesisResult synthesize_logic(const ExtractedController& c,
                                      const SynthesisOptions& opts) {
  return synthesize_impl(c.machine, &c.bindings, opts);
}

LogicSynthesisResult synthesize_logic(const Xbm& m, const SynthesisOptions& opts) {
  return synthesize_impl(m, nullptr, opts);
}

std::size_t LogicSynthesisResult::product_count(bool share_products) const {
  if (!share_products) {
    std::size_t n = 0;
    for (const auto& f : functions) n += f.products.size();
    return n;
  }
  std::set<Cube> distinct;
  for (const auto& f : functions)
    for (const auto& p : f.products) distinct.insert(p);
  return distinct.size();
}

std::size_t LogicSynthesisResult::literal_count(bool share_products) const {
  if (!share_products) {
    std::size_t n = 0;
    for (const auto& f : functions)
      for (const auto& p : f.products) n += p.literal_count();
    return n;
  }
  std::set<Cube> distinct;
  for (const auto& f : functions)
    for (const auto& p : f.products) distinct.insert(p);
  std::size_t n = 0;
  for (const auto& p : distinct) n += p.literal_count();
  return n;
}

}  // namespace adc
