#include "logic/minimize.hpp"

#include <set>

namespace adc {

namespace {

// Embeds an input-space cube into the full (inputs + state bits) space with
// the state coordinates fixed to `code`.
Cube embed(const Cube& in, std::size_t vars, std::size_t ni, std::size_t bits,
           std::uint32_t code) {
  Cube out(vars);
  for (std::size_t i = 0; i < ni; ++i) out.set(i, in.get(i));
  for (std::size_t b = 0; b < bits; ++b)
    out.set(ni + b, ((code >> b) & 1) ? Cube::V::kOne : Cube::V::kZero);
  return out;
}

// As above but spanning two codes (the feedback-settling cube).
Cube embed_span(const Cube& in, std::size_t vars, std::size_t ni, std::size_t bits,
                std::uint32_t c1, std::uint32_t c2) {
  Cube out(vars);
  for (std::size_t i = 0; i < ni; ++i) out.set(i, in.get(i));
  for (std::size_t b = 0; b < bits; ++b) {
    bool v1 = (c1 >> b) & 1, v2 = (c2 >> b) & 1;
    out.set(ni + b, v1 == v2 ? (v1 ? Cube::V::kOne : Cube::V::kZero) : Cube::V::kFree);
  }
  return out;
}

}  // namespace

FunctionSpec build_function_spec(const ConcreteMachine& cm, const Encoding& enc,
                                 bool state_bit, std::size_t index, std::string name) {
  FunctionSpec f;
  f.name = std::move(name);
  const std::size_t ni = cm.input_names.size();
  f.vars = ni + enc.bits;

  auto value_at = [&](std::size_t state) {
    return state_bit ? ((enc.code[state] >> index) & 1) != 0
                     : cm.states[state].outputs[index];
  };

  for (const auto& ct : cm.transitions) {
    std::uint32_t c = enc.code[ct.from], c2 = enc.code[ct.to];
    Cube T = embed(ct.trans, f.vars, ni, enc.bits, c);
    Cube A = embed(ct.start, f.vars, ni, enc.bits, c);
    Cube B = embed(ct.end, f.vars, ni, enc.bits, c);
    bool v = value_at(ct.from);
    bool v2 = value_at(ct.to);

    if (v && v2) {
      f.required.push_back(T);
    } else if (!v && !v2) {
      f.off.push_back(T);
    } else if (!state_bit) {
      // Mealy outputs change monotonically *during* the burst — the
      // classic dynamic-transition rules with the appropriate anchor.
      if (!v && v2) {
        f.off.push_back(A);
        f.required.push_back(B);
        f.dynamic.push_back(HfDynamic{T, A, B, HfType::kRise});
      } else {
        f.off.push_back(B);
        f.required.push_back(A);
        f.dynamic.push_back(HfDynamic{T, A, B, HfType::kFall});
      }
    } else {
      // Next-state excitation must hold its old value until the *complete*
      // burst has arrived and change exactly then: for every changed input
      // the sub-cube still missing that arrival keeps the old value, and
      // the completion region (all compulsory arrivals in, don't-care
      // windows free) takes the new one.
      Cube completion = T;
      std::vector<std::size_t> changed_vars;
      for (std::size_t i = 0; i < ni; ++i) {
        auto a = ct.start.get(i), b2 = ct.end.get(i);
        if (a == Cube::V::kFree || b2 == Cube::V::kFree || a == b2) continue;
        changed_vars.push_back(i);
        completion.set(i, b2);
      }
      for (std::size_t i : changed_vars) {
        Cube waiting = T;
        waiting.set(i, ct.start.get(i));
        if (v)
          f.required.push_back(waiting);
        else
          f.off.push_back(waiting);
      }
      if (v2)
        f.required.push_back(completion);
      else
        f.off.push_back(completion);
    }

    // Feedback settling: with the inputs at the burst's end point, the
    // excitation must hold its new value while the state bits travel from
    // the old code to the new one.  Exact for single-bit changes; a
    // multi-bit change would have to hold over the whole code span, which
    // the bipartite hypercube cannot always grant — those transitions are
    // counted by the caller as declared race assumptions instead.
    if (__builtin_popcount(c ^ c2) == 1) {
      Cube settle = embed_span(ct.end, f.vars, ni, enc.bits, c, c2);
      if (v2)
        f.required.push_back(settle);
      else
        f.off.push_back(settle);
    }
  }

  // No separate stable-state constraints: the resting point of every state
  // is the start point of its outgoing transitions, whose rules already pin
  // the function there.  (A naive "hold over the whole state signature"
  // cube would wrongly extend across burst-completion points, where the
  // function legitimately changes.)

  // Deduplicate.
  std::set<Cube> req(f.required.begin(), f.required.end());
  f.required.assign(req.begin(), req.end());
  std::set<Cube> off(f.off.begin(), f.off.end());
  f.off.assign(off.begin(), off.end());
  return f;
}

namespace {

// Minimalist-style product sharing: after the per-function covers exist,
// try to replace products that only one function uses with dhf implicants
// another function already pays for — the shared AND plane shrinks while
// every cover stays hazard-free (each replacement is re-checked against
// the function's own specification).
void share_products(std::vector<FunctionLogic>& functions,
                    const std::vector<FunctionSpec>& specs) {
  auto covers_all = [](const FunctionSpec& spec, const std::vector<Cube>& products) {
    for (const auto& r : spec.required) {
      if (!implicant_valid(spec, r)) continue;  // reported elsewhere
      bool ok = false;
      for (const auto& p : products)
        if (p.contains(r)) ok = true;
      if (!ok) return false;
    }
    return true;
  };

  std::map<Cube, int> use_count;
  for (const auto& f : functions)
    for (const auto& p : f.products) ++use_count[p];

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t fi = 0; fi < functions.size(); ++fi) {
      auto& f = functions[fi];
      for (std::size_t pi = 0; pi < f.products.size(); ++pi) {
        if (use_count[f.products[pi]] > 1) continue;  // already shared
        for (std::size_t gi = 0; gi < functions.size() && !changed; ++gi) {
          if (gi == fi) continue;
          for (const auto& q : functions[gi].products) {
            if (q == f.products[pi]) continue;
            if (!implicant_valid(specs[fi], q)) continue;
            std::vector<Cube> candidate = f.products;
            candidate[pi] = q;
            if (!covers_all(specs[fi], candidate)) continue;
            --use_count[f.products[pi]];
            ++use_count[q];
            f.products[pi] = q;
            changed = true;
            break;
          }
        }
        if (changed) break;
      }
      if (changed) break;
    }
  }
  // Drop duplicates a swap may have created inside one function.
  for (auto& f : functions) {
    std::vector<Cube> unique;
    for (const auto& p : f.products) {
      bool seen = false;
      for (const auto& u : unique)
        if (u == p) seen = true;
      if (!seen) unique.push_back(p);
    }
    f.products = std::move(unique);
  }
}

LogicSynthesisResult synthesize_impl(const Xbm& m, const SignalBindings* bindings,
                                     const SynthesisOptions& opts) {
  LogicSynthesisResult res;
  res.machine = concretize(m, bindings);
  res.encoding = assign_codes(res.machine);

  std::vector<FunctionSpec> specs;
  auto run = [&](bool state_bit, std::size_t index, std::string name) {
    FunctionSpec spec =
        build_function_spec(res.machine, res.encoding, state_bit, index, name);
    CoverResult cover = minimize_hazard_free(spec, opts.cover);
    for (const auto& issue : cover.issues) res.issues.push_back(issue);
    res.functions.push_back(FunctionLogic{spec.name, state_bit, std::move(cover.products)});
    specs.push_back(std::move(spec));
  };

  for (std::size_t o = 0; o < res.machine.output_names.size(); ++o)
    run(false, o, res.machine.output_names[o]);
  for (std::size_t b = 0; b < res.encoding.bits; ++b)
    run(true, b, "Y" + std::to_string(b));

  if (opts.share_products) share_products(res.functions, specs);
  return res;
}

}  // namespace

LogicSynthesisResult synthesize_logic(const ExtractedController& c,
                                      const SynthesisOptions& opts) {
  return synthesize_impl(c.machine, &c.bindings, opts);
}

LogicSynthesisResult synthesize_logic(const Xbm& m, const SynthesisOptions& opts) {
  return synthesize_impl(m, nullptr, opts);
}

std::size_t LogicSynthesisResult::product_count(bool share_products) const {
  if (!share_products) {
    std::size_t n = 0;
    for (const auto& f : functions) n += f.products.size();
    return n;
  }
  std::set<Cube> distinct;
  for (const auto& f : functions)
    for (const auto& p : f.products) distinct.insert(p);
  return distinct.size();
}

std::size_t LogicSynthesisResult::literal_count(bool share_products) const {
  if (!share_products) {
    std::size_t n = 0;
    for (const auto& f : functions)
      for (const auto& p : f.products) n += p.literal_count();
    return n;
  }
  std::set<Cube> distinct;
  for (const auto& f : functions)
    for (const auto& p : f.products) distinct.insert(p);
  std::size_t n = 0;
  for (const auto& p : distinct) n += p.literal_count();
  return n;
}

}  // namespace adc
