#pragma once
// Top-level two-level synthesis of an XBM controller (the paper's gate
// level, Figure 13): concretize phases, assign state codes, build one
// hazard-free function specification per output and per feedback bit, and
// minimize each cover.
//
// Product/literal counting supports the paper's two tool modes:
//  * single-output (3D-like): every function pays for its own products;
//  * shared-product (Minimalist-like): identical AND-terms used by several
//    functions are counted once.

#include <string>
#include <vector>

#include "logic/encoding.hpp"
#include "logic/flow_table.hpp"
#include "logic/hazard_free.hpp"
#include "obs/trace_context.hpp"
#include "xbm/xbm.hpp"

namespace adc {

class ThreadPool;

struct SynthesisOptions {
  CoverOptions cover;
  // Minimalist-style post-pass: substitute single-user products with dhf
  // implicants another function already pays for.
  bool share_products = true;
  // Fan the independent per-function minimizations out on this pool (not
  // owned; null = serial).  Functions land at fixed indices and issues are
  // merged in function order, so results are identical either way.
  ThreadPool* pool = nullptr;
  // Per-function spans ("fn:<name>") land in this trace when active.
  obs::TraceContext trace;
};

struct FunctionLogic {
  std::string name;
  bool is_state_bit = false;
  std::vector<Cube> products;
};

struct LogicSynthesisResult {
  ConcreteMachine machine;
  Encoding encoding;
  std::vector<FunctionLogic> functions;
  std::vector<std::string> issues;

  bool feasible() const { return issues.empty(); }
  std::size_t product_count(bool share_products) const;
  std::size_t literal_count(bool share_products) const;
};

// Builds the per-function hazard-free specification; exposed for tests.
FunctionSpec build_function_spec(const ConcreteMachine& cm, const Encoding& enc,
                                 bool state_bit, std::size_t index, std::string name);

LogicSynthesisResult synthesize_logic(const ExtractedController& c,
                                      const SynthesisOptions& opts = {});
// Without bindings (conditionals treated as unknown everywhere).
LogicSynthesisResult synthesize_logic(const Xbm& m, const SynthesisOptions& opts = {});

}  // namespace adc
