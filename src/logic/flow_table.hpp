#pragma once
// Concretization of an XBM specification for logic synthesis.
//
// Transition-signalled (toggle) wires get concrete phases by tracking each
// wire's toggle parity along every path; a state reached with two different
// wire-value signatures is split (the lazy equivalent of unrolling the spec
// until phases close — e.g. a wire toggling once per loop iteration doubles
// the ring).  Directed don't-care windows make a wire's value unknown (X)
// until its compulsory consumption; conditionals are always X outside their
// sampled transition.
//
// The result is a plain Mealy flow structure: states with 3-valued input
// signatures and definite output values, and transitions carrying the
// start/end input points of each burst.

#include <map>
#include <string>
#include <vector>

#include "extract/extract.hpp"
#include "logic/cube.hpp"
#include "xbm/xbm.hpp"

namespace adc {

struct ConcreteTransition {
  std::size_t from = 0;
  std::size_t to = 0;
  Cube start;  // input values when the burst begins (over input vars only)
  Cube end;    // input values when it completes
  Cube trans;  // the transition cube: supercube(start, end) + ddc expansion
  std::vector<std::pair<std::size_t, bool>> output_changes;  // (output var, new value)
  TransitionId origin;
};

struct ConcreteState {
  Cube inputs;                     // 3-valued input signature
  std::vector<bool> outputs;       // definite output values
  StateId spec_state;              // originating XBM state
};

struct ConcreteMachine {
  std::vector<std::string> input_names;   // var order for input cubes
  std::vector<std::string> output_names;
  std::vector<SignalId> input_signals;
  std::vector<bool> input_is_conditional;
  std::vector<SignalId> output_signals;
  std::vector<ConcreteState> states;
  std::vector<ConcreteTransition> transitions;
  std::size_t initial = 0;

  std::size_t input_var(SignalId s) const;
  std::size_t output_var(SignalId s) const;
};

// Throws std::runtime_error on malformed machines (validate(m) first).
// With signal bindings supplied, sampled conditional values are tracked
// while they provably hold: from the sampling transition until the
// controller relatches the condition register or synchronizes with another
// controller (a global request consumption).  Without bindings,
// conditionals are unknown everywhere outside their sampled transition.
ConcreteMachine concretize(const Xbm& m, const SignalBindings* bindings = nullptr);

}  // namespace adc
