#include "logic/flow_table.hpp"

#include <deque>
#include <set>
#include <stdexcept>

namespace adc {

namespace {

// Per-wire tracking along a path: current definite value (via toggle
// parity) plus whether a don't-care window is open.
struct WireState {
  bool value = false;
  bool in_window = false;
};

using Signature = std::vector<WireState>;

struct Key {
  StateId::underlying spec;
  std::vector<std::pair<bool, bool>> sig;
  std::vector<bool> outs;
  bool operator<(const Key& o) const {
    if (spec != o.spec) return spec < o.spec;
    if (sig != o.sig) return sig < o.sig;
    return outs < o.outs;
  }
};

Key make_key(StateId s, const Signature& sig, const std::vector<bool>& outs) {
  Key k;
  k.spec = s.value();
  for (const auto& w : sig) k.sig.emplace_back(w.value, w.in_window);
  k.outs = outs;
  return k;
}

}  // namespace

std::size_t ConcreteMachine::input_var(SignalId s) const {
  for (std::size_t i = 0; i < input_signals.size(); ++i)
    if (input_signals[i] == s) return i;
  throw std::out_of_range("not an input signal");
}

std::size_t ConcreteMachine::output_var(SignalId s) const {
  for (std::size_t i = 0; i < output_signals.size(); ++i)
    if (output_signals[i] == s) return i;
  throw std::out_of_range("not an output signal");
}

ConcreteMachine concretize(const Xbm& m, const SignalBindings* bindings) {
  ConcreteMachine out;

  // Collect referenced signals in stable order.
  std::set<SignalId::underlying> used;
  for (TransitionId tid : m.transition_ids()) {
    const auto& t = m.transition(tid);
    for (const auto& e : t.inputs) used.insert(e.signal.value());
    for (const auto& e : t.outputs) used.insert(e.signal.value());
    for (const auto& c : t.conds) used.insert(c.signal.value());
  }
  std::vector<SignalId> conds;  // conditionals are always-X level inputs
  for (auto v : used) {
    SignalId s{v};
    if (m.signal(s).kind == SignalKind::kInput) {
      out.input_signals.push_back(s);
      out.input_names.push_back(m.signal(s).name);
      out.input_is_conditional.push_back(m.signal(s).role == SignalRole::kConditional);
      if (m.signal(s).role == SignalRole::kConditional) conds.push_back(s);
    } else {
      out.output_signals.push_back(s);
      out.output_names.push_back(m.signal(s).name);
    }
  }
  const std::size_t ni = out.input_signals.size();

  std::vector<bool> is_cond(ni, false);
  for (std::size_t i = 0; i < ni; ++i)
    is_cond[i] = m.signal(out.input_signals[i]).role == SignalRole::kConditional;

  // State signature: open don't-care windows and unknown conditionals are X
  // (the wire may change while the machine rests here).
  auto window_cube = [&](const Signature& sig) {
    Cube c(ni);
    for (std::size_t i = 0; i < ni; ++i) {
      if (sig[i].in_window) continue;  // X
      c.set(i, sig[i].value ? Cube::V::kOne : Cube::V::kZero);
    }
    return c;
  };
  // Burst endpoint: every wire pinned to its last *consumed* value — a wire
  // inside a don't-care window keeps its pre-window value at the start
  // point; the window itself is expanded into the transition cube instead.
  // Conditionals have no pre-window value: unknown stays X.
  auto point_cube = [&](const Signature& sig) {
    Cube c(ni);
    for (std::size_t i = 0; i < ni; ++i) {
      if (is_cond[i] && sig[i].in_window) continue;  // X
      c.set(i, sig[i].value ? Cube::V::kOne : Cube::V::kZero);
    }
    return c;
  };

  // Initial signature: conditionals start unknown.
  Signature init_sig(ni);
  for (std::size_t i = 0; i < ni; ++i) {
    init_sig[i].value = m.signal(out.input_signals[i]).initial_value;
    init_sig[i].in_window = is_cond[i];
  }
  std::vector<bool> init_outs;
  for (SignalId s : out.output_signals) init_outs.push_back(m.signal(s).initial_value);

  std::map<Key, std::size_t> ids;
  std::deque<std::tuple<std::size_t, StateId, Signature, std::vector<bool>>> queue;

  auto intern = [&](StateId spec, const Signature& sig, const std::vector<bool>& outs) {
    Key k = make_key(spec, sig, outs);
    auto it = ids.find(k);
    if (it != ids.end()) return it->second;
    std::size_t id = out.states.size();
    out.states.push_back(ConcreteState{window_cube(sig), outs, spec});
    ids.emplace(std::move(k), id);
    queue.emplace_back(id, spec, sig, outs);
    return id;
  };

  out.initial = intern(m.initial(), init_sig, init_outs);

  while (!queue.empty()) {
    auto [id, spec, sig, outs] = queue.front();
    queue.pop_front();
    if (out.states.size() > 4096)
      throw std::runtime_error("concretize: state explosion in " + m.name());

    for (TransitionId tid : m.out_transitions(spec)) {
      const XbmTransition& t = m.transition(tid);
      ConcreteTransition ct;
      ct.from = id;
      ct.origin = tid;
      ct.start = point_cube(sig);

      Signature nsig = sig;
      for (const auto& e : t.inputs) {
        std::size_t var = out.input_var(e.signal);
        if (e.directed_dont_care) {
          nsig[var].in_window = true;
          continue;
        }
        nsig[var].in_window = false;
        switch (e.polarity) {
          case EdgePolarity::kToggle: nsig[var].value = !sig[var].value; break;
          case EdgePolarity::kRising: nsig[var].value = true; break;
          case EdgePolarity::kFalling: nsig[var].value = false; break;
        }
      }
      // Conditionals: sampling fixes the value; the paper's fundamental-
      // mode assumption keeps it stable until the controller relatches the
      // condition register or synchronizes with another controller.  The
      // invalidation below runs FIRST: when the sampling transition itself
      // synchronizes (it usually consumes the producer's ready wire), the
      // sample happens after the synchronization and must win.
      if (bindings) {
        auto invalidates = [&](const std::string& reg) {
          for (std::size_t i = 0; i < ni; ++i) {
            if (!is_cond[i]) continue;
            auto bit = bindings->find(out.input_signals[i].value());
            if (bit != bindings->end() && bit->second.reg == reg)
              nsig[i].in_window = true;
          }
        };
        for (const auto& e : t.outputs) {
          auto it = bindings->find(e.signal.value());
          if (it == bindings->end()) continue;
          if (it->second.role == SignalRole::kLatch && e.polarity == EdgePolarity::kRising)
            invalidates(it->second.reg);
        }
        for (const auto& e : t.inputs) {
          if (e.directed_dont_care) continue;
          auto it = bindings->find(e.signal.value());
          if (it == bindings->end()) continue;
          if (it->second.role == SignalRole::kGlobalReady ||
              it->second.role == SignalRole::kEnvironment) {
            // Synchronization: other controllers may have rewritten any
            // condition register this controller does not latch itself.
            for (std::size_t i = 0; i < ni; ++i) {
              if (!is_cond[i]) continue;
              bool self_latched = false;
              auto cb = bindings->find(out.input_signals[i].value());
              if (cb != bindings->end()) {
                for (const auto& entry : *bindings)
                  if (entry.second.role == SignalRole::kLatch &&
                      entry.second.reg == cb->second.reg)
                    self_latched = true;
              }
              if (!self_latched) nsig[i].in_window = true;
            }
          }
        }
      }
      for (const auto& c : t.conds) {
        std::size_t var = out.input_var(c.signal);
        nsig[var].value = c.value;
        nsig[var].in_window = false;
      }
      if (!bindings) {
        // Without bindings, a sampled value is forgotten immediately after
        // the transition (the endpoint cubes below still pin it).
        for (std::size_t i = 0; i < ni; ++i)
          if (is_cond[i]) nsig[i].in_window = true;
      }

      ct.end = point_cube(nsig);
      ct.trans = ct.start.supercube(ct.end);
      // Open don't-care windows span both values inside the transition.
      for (std::size_t i = 0; i < ni; ++i)
        if (!is_cond[i] && (sig[i].in_window || nsig[i].in_window))
          ct.trans.set(i, Cube::V::kFree);
      // The sampled level pins the whole burst.
      for (const auto& c : t.conds) {
        std::size_t var = out.input_var(c.signal);
        auto v = c.value ? Cube::V::kOne : Cube::V::kZero;
        ct.trans.set(var, v);
        ct.start.set(var, v);
        ct.end.set(var, v);
      }

      std::vector<bool> nouts = outs;
      for (const auto& e : t.outputs) {
        std::size_t var = out.output_var(e.signal);
        bool nv = false;
        switch (e.polarity) {
          case EdgePolarity::kToggle: nv = !nouts[var]; break;
          case EdgePolarity::kRising: nv = true; break;
          case EdgePolarity::kFalling: nv = false; break;
        }
        nouts[var] = nv;
        ct.output_changes.emplace_back(var, nv);
      }

      ct.to = intern(t.to, nsig, nouts);
      out.transitions.push_back(std::move(ct));
    }
  }
  return out;
}

}  // namespace adc
