#include "logic/cube.hpp"

namespace adc {

namespace {
constexpr std::size_t kBits = 64;
inline std::size_t words(std::size_t n) { return (n + kBits - 1) / kBits; }
}  // namespace

Cube::Cube(std::size_t n) : n_(n), can0_(words(n), 0), can1_(words(n), 0) {
  for (std::size_t i = 0; i < n; ++i) {
    can0_[i / kBits] |= std::uint64_t{1} << (i % kBits);
    can1_[i / kBits] |= std::uint64_t{1} << (i % kBits);
  }
}

Cube::V Cube::get(std::size_t var) const {
  bool c0 = (can0_[var / kBits] >> (var % kBits)) & 1;
  bool c1 = (can1_[var / kBits] >> (var % kBits)) & 1;
  if (c0 && c1) return V::kFree;
  if (c0) return V::kZero;
  if (c1) return V::kOne;
  return V::kEmpty;
}

void Cube::set(std::size_t var, V v) {
  std::uint64_t bit = std::uint64_t{1} << (var % kBits);
  std::uint64_t& w0 = can0_[var / kBits];
  std::uint64_t& w1 = can1_[var / kBits];
  w0 &= ~bit;
  w1 &= ~bit;
  if (v == V::kZero || v == V::kFree) w0 |= bit;
  if (v == V::kOne || v == V::kFree) w1 |= bit;
}

Cube Cube::with(std::size_t var, V v) const {
  Cube c = *this;
  c.set(var, v);
  return c;
}

bool Cube::valid() const {
  for (std::size_t w = 0; w < can0_.size(); ++w) {
    std::uint64_t any = can0_[w] | can1_[w];
    std::uint64_t want = ~std::uint64_t{0};
    if (w == can0_.size() - 1 && n_ % kBits != 0)
      want = (std::uint64_t{1} << (n_ % kBits)) - 1;
    if ((any & want) != want) return false;
  }
  return true;
}

std::size_t Cube::literal_count() const {
  std::size_t lits = 0;
  for (std::size_t w = 0; w < can0_.size(); ++w) {
    std::uint64_t fixed = can0_[w] ^ can1_[w];  // exactly one of the two
    lits += static_cast<std::size_t>(__builtin_popcountll(fixed));
  }
  return lits;
}

bool Cube::contains(const Cube& other) const {
  for (std::size_t w = 0; w < can0_.size(); ++w) {
    if ((other.can0_[w] & ~can0_[w]) != 0) return false;
    if ((other.can1_[w] & ~can1_[w]) != 0) return false;
  }
  return true;
}

bool Cube::intersects(const Cube& other) const {
  return intersect(other).valid();
}

Cube Cube::intersect(const Cube& other) const {
  Cube out = *this;
  for (std::size_t w = 0; w < can0_.size(); ++w) {
    out.can0_[w] &= other.can0_[w];
    out.can1_[w] &= other.can1_[w];
  }
  return out;
}

Cube Cube::supercube(const Cube& other) const {
  Cube out = *this;
  for (std::size_t w = 0; w < can0_.size(); ++w) {
    out.can0_[w] |= other.can0_[w];
    out.can1_[w] |= other.can1_[w];
  }
  return out;
}

bool Cube::operator<(const Cube& o) const {
  if (can0_ != o.can0_) return can0_ < o.can0_;
  return can1_ < o.can1_;
}

std::string Cube::to_string() const {
  std::string out;
  out.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    switch (get(i)) {
      case V::kZero: out += '0'; break;
      case V::kOne: out += '1'; break;
      case V::kFree: out += '-'; break;
      case V::kEmpty: out += '!'; break;
    }
  }
  return out;
}

}  // namespace adc
