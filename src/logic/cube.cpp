#include "logic/cube.hpp"

#include <algorithm>

namespace adc {

std::string Cube::to_string() const {
  std::string out;
  out.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    switch (get(i)) {
      case V::kZero: out += '0'; break;
      case V::kOne: out += '1'; break;
      case V::kFree: out += '-'; break;
      case V::kEmpty: out += '!'; break;
    }
  }
  return out;
}

std::vector<Cube> CubeSet::sorted() const {
  std::vector<Cube> out = items_;
  std::sort(out.begin(), out.end());
  return out;
}

void CubeSet::rehash(std::size_t new_cap) {
  slots_.assign(new_cap, kEmpty);
  std::size_t mask = new_cap - 1;
  for (std::size_t idx = 0; idx < items_.size(); ++idx) {
    std::size_t i = static_cast<std::size_t>(items_[idx].hash()) & mask;
    while (slots_[i] != kEmpty) i = (i + 1) & mask;
    slots_[i] = idx;
  }
}

}  // namespace adc
