#include "logic/hazard_free.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <set>

namespace adc {

bool implicant_valid(const FunctionSpec& f, const Cube& p) {
  for (const auto& o : f.off)
    if (p.intersects(o)) return false;
  for (const auto& d : f.dynamic) {
    if (!p.intersects(d.t)) continue;
    const Cube& anchor = d.type == HfType::kRise ? d.b : d.a;
    if (!p.contains(anchor)) return false;
  }
  return true;
}

namespace {

// Closes a cube under the dynamic-transition anchor rules: whenever it
// intersects a dynamic transition it absorbs the anchor point, repeating to
// a fixpoint.  Fails (nullopt) if the closure runs into an OFF region —
// then no dhf implicant contains the cube at all.
std::optional<Cube> grow_to_valid(const FunctionSpec& f, Cube c) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& o : f.off)
      if (c.intersects(o)) return std::nullopt;
    for (const auto& d : f.dynamic) {
      if (!c.intersects(d.t)) continue;
      const Cube& anchor = d.type == HfType::kRise ? d.b : d.a;
      if (c.contains(anchor)) continue;
      c = c.supercube(anchor);
      changed = true;
    }
  }
  return c;
}

// Grows a required cube into a maximal dhf implicant by freeing variables
// in the given order (re-closing under the anchor rules after each step).
Cube expand(const FunctionSpec& f, Cube seed, const std::vector<std::size_t>& order) {
  for (std::size_t var : order) {
    if (seed.get(var) == Cube::V::kFree) continue;
    auto widened = grow_to_valid(f, seed.with(var, Cube::V::kFree));
    if (widened && widened->contains(seed)) seed = *widened;
  }
  return seed;
}

}  // namespace

std::vector<Cube> candidate_implicants(const FunctionSpec& f,
                                       const CancelToken* cancel) {
  std::set<Cube> pool;
  std::vector<std::size_t> ascending(f.vars), descending(f.vars);
  for (std::size_t i = 0; i < f.vars; ++i) {
    ascending[i] = i;
    descending[i] = f.vars - 1 - i;
  }
  for (const auto& r : f.required) {
    if (cancel) cancel->throw_if_cancelled();
    auto seed = grow_to_valid(f, r);
    if (!seed) continue;  // unrealizable; reported by the covering step
    pool.insert(expand(f, *seed, ascending));
    pool.insert(expand(f, *seed, descending));
    // Two rotated orders add diversity for medium-size functions.
    for (std::size_t rot : {f.vars / 3, (2 * f.vars) / 3}) {
      std::vector<std::size_t> rotated(f.vars);
      for (std::size_t i = 0; i < f.vars; ++i) rotated[i] = (i + rot) % f.vars;
      pool.insert(expand(f, *seed, rotated));
    }
  }
  return {pool.begin(), pool.end()};
}

namespace {

// Exact minimum unate covering by branch and bound (small instances).
void exact_cover(const std::vector<std::vector<std::size_t>>& covers_of, std::size_t n_req,
                 std::vector<std::size_t>& chosen, std::set<std::size_t>& covered,
                 std::vector<std::size_t>& best, int depth_limit,
                 const CancelToken* cancel) {
  if (cancel) cancel->throw_if_cancelled();
  if (!best.empty() && chosen.size() >= best.size()) return;
  if (covered.size() == n_req) {
    best = chosen;
    return;
  }
  if (static_cast<int>(chosen.size()) >= depth_limit) return;
  // Branch on the first uncovered requirement.
  std::size_t r = 0;
  while (covered.count(r)) ++r;
  for (std::size_t c = 0; c < covers_of.size(); ++c) {
    if (std::find(covers_of[c].begin(), covers_of[c].end(), r) == covers_of[c].end())
      continue;
    std::vector<std::size_t> added;
    for (std::size_t rr : covers_of[c])
      if (covered.insert(rr).second) added.push_back(rr);
    chosen.push_back(c);
    exact_cover(covers_of, n_req, chosen, covered, best, depth_limit, cancel);
    chosen.pop_back();
    for (std::size_t rr : added) covered.erase(rr);
  }
}

}  // namespace

CoverResult minimize_hazard_free(const FunctionSpec& f, const CoverOptions& opts) {
  CoverResult res;

  // Spec sanity: a required cube whose anchor closure runs into an OFF
  // region cannot be inside any dhf implicant — a genuine contradiction.
  std::vector<Cube> required;
  for (const auto& r : f.required) {
    if (!grow_to_valid(f, r)) {
      res.feasible = false;
      res.issues.push_back(f.name + ": required cube " + r.to_string() +
                           " cannot be contained in any dhf implicant");
      continue;
    }
    required.push_back(r);
  }
  // Drop required cubes contained in other required cubes.
  std::vector<Cube> reduced;
  for (const auto& r : required) {
    bool dominated = false;
    for (const auto& other : required)
      if (!(other == r) && other.contains(r)) dominated = true;
    if (!dominated) reduced.push_back(r);
  }
  std::sort(reduced.begin(), reduced.end());
  reduced.erase(std::unique(reduced.begin(), reduced.end()), reduced.end());
  if (reduced.empty()) return res;  // constant-0 (or fully unrealizable)

  auto candidates = candidate_implicants(f, opts.cancel);
  std::vector<std::vector<std::size_t>> covers_of(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c)
    for (std::size_t r = 0; r < reduced.size(); ++r)
      if (candidates[c].contains(reduced[r])) covers_of[c].push_back(r);

  if (opts.exact && reduced.size() <= static_cast<std::size_t>(opts.exact_limit)) {
    std::vector<std::size_t> chosen, best;
    std::set<std::size_t> covered;
    exact_cover(covers_of, reduced.size(), chosen, covered, best,
                static_cast<int>(reduced.size()) + 1, opts.cancel);
    if (!best.empty()) {
      for (std::size_t c : best) res.products.push_back(candidates[c]);
      return res;
    }
  }

  // Greedy covering: most new requirements per pick, fewest literals on tie.
  std::set<std::size_t> covered;
  while (covered.size() < reduced.size()) {
    if (opts.cancel) opts.cancel->throw_if_cancelled();
    std::size_t best_c = candidates.size();
    std::size_t best_gain = 0;
    std::size_t best_lits = std::numeric_limits<std::size_t>::max();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      std::size_t gain = 0;
      for (std::size_t r : covers_of[c])
        if (!covered.count(r)) ++gain;
      if (gain == 0) continue;
      std::size_t lits = candidates[c].literal_count();
      if (gain > best_gain || (gain == best_gain && lits < best_lits)) {
        best_c = c;
        best_gain = gain;
        best_lits = lits;
      }
    }
    if (best_c == candidates.size()) {
      res.feasible = false;
      res.issues.push_back(f.name + ": covering failed (no candidate for a requirement)");
      break;
    }
    res.products.push_back(candidates[best_c]);
    for (std::size_t r : covers_of[best_c]) covered.insert(r);
  }
  return res;
}

}  // namespace adc
