#include "logic/hazard_free.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "logic/memo.hpp"

namespace adc {

bool implicant_valid(const FunctionSpec& f, const Cube& p) {
  for (const auto& o : f.off)
    if (p.intersects(o)) return false;
  for (const auto& d : f.dynamic) {
    if (!p.intersects(d.t)) continue;
    const Cube& anchor = d.type == HfType::kRise ? d.b : d.a;
    if (!p.contains(anchor)) return false;
  }
  return true;
}

namespace {

// Per-call view of the spec with the OFF list reduced to its maximal
// cubes: a cube intersecting an OFF cube also intersects any OFF cube
// containing it, so only maximal ones can decide the "hits OFF?" tests
// the growth loops hammer.
struct SpecCtx {
  const FunctionSpec& f;
  std::vector<Cube> off;

  explicit SpecCtx(const FunctionSpec& spec) : f(spec) {
    off.reserve(spec.off.size());
    for (std::size_t i = 0; i < spec.off.size(); ++i) {
      bool dominated = false;
      for (std::size_t j = 0; j < spec.off.size() && !dominated; ++j)
        if (i != j && spec.off[j].contains(spec.off[i]) &&
            !(j > i && spec.off[i] == spec.off[j]))
          dominated = true;
      if (!dominated) off.push_back(spec.off[i]);
    }
  }
};

// Closes a cube under the dynamic-transition anchor rules: whenever it
// intersects a dynamic transition it absorbs the anchor point, repeating to
// a fixpoint.  Fails (false) if the closure runs into an OFF region — then
// no dhf implicant contains the cube at all.  Mutates `c` in place; no
// allocations on the fast (inline-storage) path.
bool grow_to_valid(const SpecCtx& s, Cube& c) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& o : s.off)
      if (c.intersects(o)) return false;
    for (const auto& d : s.f.dynamic) {
      if (!c.intersects(d.t)) continue;
      const Cube& anchor = d.type == HfType::kRise ? d.b : d.a;
      if (c.contains(anchor)) continue;
      c.supercube_with(anchor);
      changed = true;
    }
  }
  return true;
}

// Grows a required cube into a maximal dhf implicant by freeing variables
// in the given order (re-closing under the anchor rules after each step).
// `trial` is scratch supplied by the caller so the loop never allocates.
void expand(const SpecCtx& s, Cube& seed, const std::vector<std::size_t>& order,
            Cube& trial) {
  for (std::size_t var : order) {
    if (seed.get(var) == Cube::V::kFree) continue;
    trial = seed;
    trial.set(var, Cube::V::kFree);
    if (grow_to_valid(s, trial) && trial.contains(seed)) std::swap(seed, trial);
  }
}

// The four expansion orders (ascending, descending, two rotations) used to
// diversify the candidate pool.
std::vector<std::vector<std::size_t>> expansion_orders(std::size_t vars) {
  std::vector<std::vector<std::size_t>> orders;
  std::vector<std::size_t> ascending(vars), descending(vars);
  for (std::size_t i = 0; i < vars; ++i) {
    ascending[i] = i;
    descending[i] = vars - 1 - i;
  }
  orders.push_back(std::move(ascending));
  orders.push_back(std::move(descending));
  for (std::size_t rot : {vars / 3, (2 * vars) / 3}) {
    std::vector<std::size_t> rotated(vars);
    for (std::size_t i = 0; i < vars; ++i) rotated[i] = (i + rot) % vars;
    orders.push_back(std::move(rotated));
  }
  return orders;
}

// Candidate pool from pre-grown seeds (one per realizable required cube),
// deduplicated through a hash set and returned in the canonical ascending
// cube order the covering step iterates in.
std::vector<Cube> candidates_from_seeds(const SpecCtx& s, const std::vector<Cube>& seeds,
                                        const CancelToken* cancel) {
  auto orders = expansion_orders(s.f.vars);
  CubeSet pool(seeds.size() * orders.size());
  Cube grown, trial;
  for (const auto& seed : seeds) {
    if (cancel) cancel->throw_if_cancelled();
    for (const auto& order : orders) {
      grown = seed;
      expand(s, grown, order, trial);
      pool.insert(grown);
    }
  }
  return pool.sorted();
}

// Packed covers-of rows: bit r of row c says candidate c contains reduced
// requirement r.  Greedy gain and branch-and-bound bookkeeping become
// popcount loops over these words.
struct CoverMatrix {
  std::size_t n_req = 0;
  std::size_t req_words = 0;
  std::size_t n_cand = 0;
  std::vector<std::uint64_t> rows;  // n_cand * req_words
  std::vector<std::size_t> lits;    // literal_count per candidate

  CoverMatrix(const std::vector<Cube>& candidates, const std::vector<Cube>& reduced)
      : n_req(reduced.size()),
        req_words((reduced.size() + 63) / 64),
        n_cand(candidates.size()),
        rows(candidates.size() * req_words, 0),
        lits(candidates.size()) {
    for (std::size_t c = 0; c < n_cand; ++c) {
      lits[c] = candidates[c].literal_count();
      std::uint64_t* row = &rows[c * req_words];
      for (std::size_t r = 0; r < n_req; ++r)
        if (candidates[c].contains(reduced[r])) row[r / 64] |= std::uint64_t{1} << (r % 64);
    }
  }

  const std::uint64_t* row(std::size_t c) const { return &rows[c * req_words]; }

  std::size_t gain(std::size_t c, const std::vector<std::uint64_t>& covered) const {
    const std::uint64_t* r = row(c);
    std::size_t g = 0;
    for (std::size_t w = 0; w < req_words; ++w)
      g += static_cast<std::size_t>(__builtin_popcountll(r[w] & ~covered[w]));
    return g;
  }
};

// Exact minimum unate covering by branch and bound over the packed rows.
// Branches on the uncovered requirement with the fewest covering
// candidates (strongest constraint first), prunes with a covering-rate
// lower bound, and skips candidates whose uncovered contribution another
// branch choice dominates.
class ExactSolver {
 public:
  ExactSolver(const CoverMatrix& m, int depth_limit, const CancelToken* cancel)
      : m_(m),
        depth_limit_(depth_limit),
        cancel_(cancel),
        covered_(m.req_words, 0),
        cand_of_req_(m.n_req) {
    for (std::size_t c = 0; c < m_.n_cand; ++c) {
      const std::uint64_t* row = m_.row(c);
      max_row_pop_ = std::max(max_row_pop_, m_.gain(c, covered_));
      for (std::size_t r = 0; r < m_.n_req; ++r)
        if (row[r / 64] >> (r % 64) & 1) cand_of_req_[r].push_back(c);
    }
  }

  std::vector<std::size_t> solve() {
    recurse(0);
    return best_;
  }

 private:
  void recurse(std::size_t covered_count) {
    if (cancel_) cancel_->throw_if_cancelled();
    if (!best_.empty() && chosen_.size() >= best_.size()) return;
    if (covered_count == m_.n_req) {
      best_ = chosen_;
      return;
    }
    if (static_cast<int>(chosen_.size()) >= depth_limit_) return;
    // Even a perfect remaining pick covers at most max_row_pop_ new
    // requirements per product.
    if (!best_.empty() && max_row_pop_ > 0) {
      std::size_t need = (m_.n_req - covered_count + max_row_pop_ - 1) / max_row_pop_;
      if (chosen_.size() + need >= best_.size()) return;
    }

    // Branch on the uncovered requirement with the fewest covering
    // candidates.
    std::size_t branch_r = m_.n_req;
    std::size_t branch_width = std::numeric_limits<std::size_t>::max();
    for (std::size_t r = 0; r < m_.n_req; ++r) {
      if (covered_[r / 64] >> (r % 64) & 1) continue;
      if (cand_of_req_[r].size() < branch_width) {
        branch_width = cand_of_req_[r].size();
        branch_r = r;
      }
    }
    if (branch_r == m_.n_req || branch_width == 0) return;  // uncoverable

    const auto& options = cand_of_req_[branch_r];
    std::vector<std::uint64_t> saved = covered_;
    for (std::size_t oi = 0; oi < options.size(); ++oi) {
      std::size_t c = options[oi];
      if (dominated_choice(options, oi)) continue;
      const std::uint64_t* row = m_.row(c);
      std::size_t added = 0;
      for (std::size_t w = 0; w < m_.req_words; ++w) {
        added += static_cast<std::size_t>(__builtin_popcountll(row[w] & ~covered_[w]));
        covered_[w] |= row[w];
      }
      chosen_.push_back(c);
      recurse(covered_count + added);
      chosen_.pop_back();
      covered_ = saved;
    }
  }

  // Among the candidates covering the branch requirement, one whose
  // uncovered contribution is a strict subset of another's (or an equal
  // set with a higher index) can never lead to a smaller cover.
  bool dominated_choice(const std::vector<std::size_t>& options, std::size_t oi) const {
    const std::uint64_t* a = m_.row(options[oi]);
    for (std::size_t oj = 0; oj < options.size(); ++oj) {
      if (oj == oi) continue;
      const std::uint64_t* b = m_.row(options[oj]);
      bool subset = true, equal = true;
      for (std::size_t w = 0; w < m_.req_words && subset; ++w) {
        std::uint64_t ua = a[w] & ~covered_[w];
        std::uint64_t ub = b[w] & ~covered_[w];
        if (ua & ~ub) subset = false;
        if (ua != ub) equal = false;
      }
      if (subset && (!equal || oj < oi)) return true;
    }
    return false;
  }

  const CoverMatrix& m_;
  int depth_limit_;
  const CancelToken* cancel_;
  std::vector<std::uint64_t> covered_;
  std::vector<std::vector<std::size_t>> cand_of_req_;
  std::size_t max_row_pop_ = 0;
  std::vector<std::size_t> chosen_, best_;
};

}  // namespace

std::vector<Cube> candidate_implicants(const FunctionSpec& f,
                                       const CancelToken* cancel) {
  SpecCtx s(f);
  std::vector<Cube> seeds;
  seeds.reserve(f.required.size());
  for (const auto& r : f.required) {
    if (cancel) cancel->throw_if_cancelled();
    Cube seed = r;
    if (!grow_to_valid(s, seed)) continue;  // unrealizable; reported by covering
    seeds.push_back(std::move(seed));
  }
  return candidates_from_seeds(s, seeds, cancel);
}

CoverResult minimize_hazard_free(const FunctionSpec& f, const CoverOptions& opts) {
  Fingerprint memo_key;
  if (opts.memo) {
    memo_key = spec_fingerprint(f, opts.exact, opts.exact_limit);
    if (auto hit = opts.memo->lookup(memo_key)) {
      CoverResult res;
      res.feasible = hit->feasible;
      res.products = hit->products;
      res.issues.reserve(hit->issue_suffixes.size());
      for (const auto& s : hit->issue_suffixes) res.issues.push_back(f.name + ": " + s);
      return res;
    }
  }

  CoverResult res;
  std::vector<std::string> issue_suffixes;
  auto finish = [&]() -> CoverResult& {
    for (const auto& s : issue_suffixes) res.issues.push_back(f.name + ": " + s);
    if (opts.memo) {
      auto entry = std::make_shared<LogicMemo::Entry>();
      entry->feasible = res.feasible;
      entry->products = res.products;
      entry->issue_suffixes = std::move(issue_suffixes);
      opts.memo->fill(memo_key, std::move(entry));
    }
    return res;
  };

  SpecCtx s(f);

  // Spec sanity: a required cube whose anchor closure runs into an OFF
  // region cannot be inside any dhf implicant — a genuine contradiction.
  // The successful closures double as the expansion seeds below.
  std::vector<Cube> required, seeds;
  for (const auto& r : f.required) {
    Cube seed = r;
    if (!grow_to_valid(s, seed)) {
      res.feasible = false;
      issue_suffixes.push_back("required cube " + r.to_string() +
                               " cannot be contained in any dhf implicant");
      continue;
    }
    required.push_back(r);
    seeds.push_back(std::move(seed));
  }
  // Drop required cubes contained in other required cubes.
  std::vector<Cube> reduced;
  for (const auto& r : required) {
    bool dominated = false;
    for (const auto& other : required)
      if (!(other == r) && other.contains(r)) dominated = true;
    if (!dominated) reduced.push_back(r);
  }
  std::sort(reduced.begin(), reduced.end());
  reduced.erase(std::unique(reduced.begin(), reduced.end()), reduced.end());
  if (reduced.empty()) return finish();  // constant-0 (or fully unrealizable)

  auto candidates = candidates_from_seeds(s, seeds, opts.cancel);
  CoverMatrix m(candidates, reduced);

  if (opts.exact && reduced.size() <= static_cast<std::size_t>(opts.exact_limit)) {
    ExactSolver solver(m, static_cast<int>(reduced.size()) + 1, opts.cancel);
    auto best = solver.solve();
    if (!best.empty()) {
      for (std::size_t c : best) res.products.push_back(candidates[c]);
      return finish();
    }
  }

  // Greedy covering: most new requirements per pick, fewest literals on tie.
  std::vector<std::uint64_t> covered(m.req_words, 0);
  std::size_t covered_count = 0;
  while (covered_count < m.n_req) {
    if (opts.cancel) opts.cancel->throw_if_cancelled();
    std::size_t best_c = m.n_cand;
    std::size_t best_gain = 0;
    std::size_t best_lits = std::numeric_limits<std::size_t>::max();
    for (std::size_t c = 0; c < m.n_cand; ++c) {
      std::size_t gain = m.gain(c, covered);
      if (gain == 0) continue;
      std::size_t lits = m.lits[c];
      if (gain > best_gain || (gain == best_gain && lits < best_lits)) {
        best_c = c;
        best_gain = gain;
        best_lits = lits;
      }
    }
    if (best_c == m.n_cand) {
      res.feasible = false;
      issue_suffixes.push_back("covering failed (no candidate for a requirement)");
      break;
    }
    res.products.push_back(candidates[best_c]);
    const std::uint64_t* row = m.row(best_c);
    for (std::size_t w = 0; w < m.req_words; ++w) covered[w] |= row[w];
    covered_count += best_gain;
  }
  return finish();
}

}  // namespace adc
