#pragma once
// Cover-level checks used by tests and the verification harness.

#include <string>
#include <vector>

#include "logic/hazard_free.hpp"

namespace adc {

// Verifies that `products` is a hazard-free cover of the specification:
// every product is a dhf implicant, and every required cube lies inside a
// single product.  Returns human-readable violations (empty = OK).
std::vector<std::string> verify_cover(const FunctionSpec& f, const std::vector<Cube>& products);

}  // namespace adc
