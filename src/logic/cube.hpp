#pragma once
// Cube algebra for two-level hazard-free logic minimization.
//
// A cube over n binary variables assigns each variable one of {0, 1, X}.
// Representation: two bitmasks per word — can0 (the variable may be 0) and
// can1 (the variable may be 1).  0 = can0, 1 = can1, X = both.  A variable
// with neither bit is an empty (contradictory) cube.
//
// Layout: the two masks live in one flat word array — can0 at
// [0, words), can1 at [words, 2*words) — held inline for n <= 128
// variables (every DIFFEQ/MAC controller fits one word) and on the heap
// beyond that.  All kernels are word-parallel: containment and
// intersection are mask tests, the literal count is a popcount, and none
// of them allocate.

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace adc {

class Cube {
 public:
  static constexpr std::size_t kBitsPerWord = 64;
  // Words held inline per mask; cubes up to kInlineWords * 64 variables
  // never touch the heap.
  static constexpr std::size_t kInlineWords = 2;

  Cube() = default;
  // The universal cube (all X) over n variables.
  explicit Cube(std::size_t n) : n_(static_cast<std::uint32_t>(n)), words_(word_count(n)) {
    if (words_ > kInlineWords) heap_.reset(new std::uint64_t[2 * words_]);
    std::uint64_t* d = data();
    for (std::size_t w = 0; w < words_; ++w) d[w] = d[words_ + w] = live_mask(w);
  }
  Cube(const Cube& o) : n_(o.n_), words_(o.words_) {
    if (words_ > kInlineWords) heap_.reset(new std::uint64_t[2 * words_]);
    std::memcpy(data(), o.data(), 2 * words_ * sizeof(std::uint64_t));
  }
  Cube(Cube&& o) noexcept : n_(o.n_), words_(o.words_), heap_(std::move(o.heap_)) {
    if (words_ <= kInlineWords)
      std::memcpy(sbo_, o.sbo_, 2 * words_ * sizeof(std::uint64_t));
  }
  Cube& operator=(const Cube& o) {
    if (this == &o) return *this;
    if (o.words_ > kInlineWords && (words_ != o.words_ || !heap_))
      heap_.reset(new std::uint64_t[2 * o.words_]);
    n_ = o.n_;
    words_ = o.words_;
    std::memcpy(data(), o.data(), 2 * words_ * sizeof(std::uint64_t));
    return *this;
  }
  Cube& operator=(Cube&& o) noexcept {
    if (this == &o) return *this;
    n_ = o.n_;
    words_ = o.words_;
    heap_ = std::move(o.heap_);
    if (words_ <= kInlineWords)
      std::memcpy(sbo_, o.sbo_, 2 * words_ * sizeof(std::uint64_t));
    return *this;
  }

  std::size_t var_count() const { return n_; }

  enum class V : std::uint8_t { kZero, kOne, kFree, kEmpty };

  V get(std::size_t var) const {
    const std::uint64_t bit = std::uint64_t{1} << (var % kBitsPerWord);
    const std::uint64_t* d = data();
    bool c0 = d[var / kBitsPerWord] & bit;
    bool c1 = d[words_ + var / kBitsPerWord] & bit;
    if (c0 && c1) return V::kFree;
    if (c0) return V::kZero;
    if (c1) return V::kOne;
    return V::kEmpty;
  }
  void set(std::size_t var, V v) {
    const std::uint64_t bit = std::uint64_t{1} << (var % kBitsPerWord);
    std::uint64_t* d = data();
    std::uint64_t& w0 = d[var / kBitsPerWord];
    std::uint64_t& w1 = d[words_ + var / kBitsPerWord];
    w0 &= ~bit;
    w1 &= ~bit;
    if (v == V::kZero || v == V::kFree) w0 |= bit;
    if (v == V::kOne || v == V::kFree) w1 |= bit;
  }
  Cube with(std::size_t var, V v) const {
    Cube c = *this;
    c.set(var, v);
    return c;
  }

  // No variable is kEmpty.
  bool valid() const {
    const std::uint64_t* d = data();
    for (std::size_t w = 0; w < words_; ++w)
      if (((d[w] | d[words_ + w]) & live_mask(w)) != live_mask(w)) return false;
    return true;
  }

  // Number of fixed (0/1) variables — the literal count of the product.
  std::size_t literal_count() const {
    const std::uint64_t* d = data();
    std::size_t lits = 0;
    for (std::size_t w = 0; w < words_; ++w)
      lits += static_cast<std::size_t>(__builtin_popcountll(d[w] ^ d[words_ + w]));
    return lits;
  }

  // Containment: every assignment in `other` is in *this.
  bool contains(const Cube& other) const {
    const std::uint64_t* a = data();
    const std::uint64_t* b = other.data();
    for (std::size_t w = 0; w < words_; ++w) {
      if (b[w] & ~a[w]) return false;
      if (b[words_ + w] & ~a[words_ + w]) return false;
    }
    return true;
  }

  // Non-empty intersection?  True iff every variable keeps at least one
  // allowed value in both cubes — a pure mask test, no temporary cube.
  bool intersects(const Cube& other) const {
    const std::uint64_t* a = data();
    const std::uint64_t* b = other.data();
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t alive = (a[w] & b[w]) | (a[words_ + w] & b[words_ + w]);
      if ((alive & live_mask(w)) != live_mask(w)) return false;
    }
    return true;
  }

  Cube intersect(const Cube& other) const {  // may be invalid
    Cube out = *this;
    out.intersect_with(other);
    return out;
  }
  void intersect_with(const Cube& other) {
    std::uint64_t* a = data();
    const std::uint64_t* b = other.data();
    for (std::size_t w = 0; w < 2 * words_; ++w) a[w] &= b[w];
  }

  // Smallest cube containing both.
  Cube supercube(const Cube& other) const {
    Cube out = *this;
    out.supercube_with(other);
    return out;
  }
  void supercube_with(const Cube& other) {
    std::uint64_t* a = data();
    const std::uint64_t* b = other.data();
    for (std::size_t w = 0; w < 2 * words_; ++w) a[w] |= b[w];
  }

  friend bool operator==(const Cube& a, const Cube& b) {
    if (a.n_ != b.n_) return false;
    return std::memcmp(a.data(), b.data(), 2 * a.words_ * sizeof(std::uint64_t)) == 0;
  }

  // Arbitrary total order for sorted containers and deterministic
  // iteration: lexicographic over the can0 words, then the can1 words —
  // exactly the order the original std::vector-backed representation gave
  // std::set<Cube>, so candidate pools sort identically.
  bool operator<(const Cube& o) const {
    const std::uint64_t* a = data();
    const std::uint64_t* b = o.data();
    for (std::size_t w = 0; w < words_ && w < o.words_; ++w)
      if (a[w] != b[w]) return a[w] < b[w];
    if (words_ != o.words_) return words_ < o.words_;
    for (std::size_t w = 0; w < words_; ++w)
      if (a[words_ + w] != b[words_ + w]) return a[words_ + w] < b[words_ + w];
    return false;
  }

  // FNV-1a over the mask words (and n), for hash-based cube pools.
  std::uint64_t hash() const {
    const std::uint64_t* d = data();
    std::uint64_t h = 0xcbf29ce484222325ull ^ n_;
    for (std::size_t w = 0; w < 2 * words_; ++w) {
      h ^= d[w];
      h *= 0x100000001b3ull;
    }
    return h;
  }

  // Raw mask access for word-parallel consumers (fingerprinting,
  // serialization).  can0 at words()[0..word_count), can1 after it.
  std::size_t word_count() const { return words_; }
  const std::uint64_t* words() const { return data(); }

  // Rendering: one character per variable (0, 1, -).
  std::string to_string() const;

 private:
  static std::uint32_t word_count(std::size_t n) {
    return static_cast<std::uint32_t>((n + kBitsPerWord - 1) / kBitsPerWord);
  }
  // Mask of the bits that correspond to live variables in word w.
  std::uint64_t live_mask(std::size_t w) const {
    if (w + 1 == words_ && n_ % kBitsPerWord != 0)
      return (std::uint64_t{1} << (n_ % kBitsPerWord)) - 1;
    return ~std::uint64_t{0};
  }
  std::uint64_t* data() { return words_ <= kInlineWords ? sbo_ : heap_.get(); }
  const std::uint64_t* data() const {
    return words_ <= kInlineWords ? sbo_ : heap_.get();
  }

  std::uint32_t n_ = 0;
  std::uint32_t words_ = 0;
  std::uint64_t sbo_[2 * kInlineWords] = {};
  std::unique_ptr<std::uint64_t[]> heap_;
};

// Open-addressing hash set of cubes — the deduplicating candidate pool of
// the minimizer.  Insert-only; `sorted()` renders the canonical ascending
// order (Cube::operator<) the covering step iterates in.
class CubeSet {
 public:
  explicit CubeSet(std::size_t expected = 16) { rehash(capacity_for(expected)); }

  // True when the cube was new.
  bool insert(const Cube& c) {
    if ((items_.size() + 1) * 4 >= slots_.size() * 3) rehash(slots_.size() * 2);
    std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(c.hash()) & mask;
    while (slots_[i] != kEmpty) {
      if (items_[slots_[i]] == c) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = items_.size();
    items_.push_back(c);
    return true;
  }

  std::size_t size() const { return items_.size(); }
  const std::vector<Cube>& items() const { return items_; }

  std::vector<Cube> sorted() const;

 private:
  static constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);
  static std::size_t capacity_for(std::size_t expected) {
    std::size_t cap = 16;
    while (cap * 3 < expected * 4) cap *= 2;
    return cap;
  }
  void rehash(std::size_t new_cap);

  std::vector<std::size_t> slots_;  // index into items_, kEmpty = free
  std::vector<Cube> items_;
};

}  // namespace adc
