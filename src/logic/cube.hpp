#pragma once
// Cube algebra for two-level hazard-free logic minimization.
//
// A cube over n binary variables assigns each variable one of {0, 1, X}.
// Representation: two bitmasks per word — can0 (the variable may be 0) and
// can1 (the variable may be 1).  0 = can0, 1 = can1, X = both.  A variable
// with neither bit is an empty (contradictory) cube.

#include <cstdint>
#include <string>
#include <vector>

namespace adc {

class Cube {
 public:
  Cube() = default;
  // The universal cube (all X) over n variables.
  explicit Cube(std::size_t n);

  std::size_t var_count() const { return n_; }

  enum class V : std::uint8_t { kZero, kOne, kFree, kEmpty };

  V get(std::size_t var) const;
  void set(std::size_t var, V v);
  Cube with(std::size_t var, V v) const;

  bool valid() const;  // no variable is kEmpty
  // Number of fixed (0/1) variables — the literal count of the product.
  std::size_t literal_count() const;

  // Containment: every assignment in `other` is in *this.
  bool contains(const Cube& other) const;
  // Non-empty intersection?
  bool intersects(const Cube& other) const;
  Cube intersect(const Cube& other) const;  // may be invalid
  // Smallest cube containing both.
  Cube supercube(const Cube& other) const;

  friend bool operator==(const Cube&, const Cube&) = default;
  bool operator<(const Cube& o) const;  // arbitrary total order for sets

  // Rendering: one character per variable (0, 1, -).
  std::string to_string() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> can0_, can1_;
};

}  // namespace adc
