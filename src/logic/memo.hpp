#pragma once
// Content-addressed memo for hazard-free covers — the logic-level analogue
// of the stage cache's prefix reuse.
//
// A cover is a pure function of the FunctionSpec *content* (variable
// count, required / OFF / dynamic cube sets) and the covering options.
// DSE grid points and serve traffic frequently reach identical specs —
// e.g. every recipe that leaves a controller's machine untouched after
// local transforms — so the minimizer can replay the cover instead of
// regrowing implicants.  The key is a canonical fingerprint: cube lists
// are sorted before hashing so any spec with the same *sets* hits, and the
// function name is excluded (issue strings are stored as name-free
// suffixes and re-prefixed on replay).
//
// Two tiers, mirroring the point cache: a bounded in-memory LRU map shared
// by all workers of an executor, and an optional crash-safe disk tier
// (runtime/disk_cache) keyed `logic-<fingerprint>`.  Disk payloads carry
// their own checksum *inside* the ADCK envelope; a torn or bit-flipped
// entry is detected on parse, evicted from disk, and recomputed — never
// replayed wrong.  Fault-injection sites: `logic.memo.fill` (fail/stall
// the fill path; failures are swallowed and counted, the memo is an
// accelerator) and `logic.memo.put.payload` (corrupt the serialized cover
// before it reaches the disk tier).

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "logic/hazard_free.hpp"
#include "runtime/fingerprint.hpp"

namespace adc {

class DiskCache;

class LogicMemo {
 public:
  // A memoized cover, name-free: `issue_suffixes` hold the text after the
  // "<name>: " prefix, which the minimizer re-applies for its own spec.
  struct Entry {
    bool feasible = true;
    std::vector<Cube> products;
    std::vector<std::string> issue_suffixes;
  };

  struct Stats {
    std::uint64_t hits = 0;          // served from memory
    std::uint64_t disk_hits = 0;     // served from the disk tier
    std::uint64_t misses = 0;        // caller computed
    std::uint64_t fills = 0;         // entries stored
    std::uint64_t fill_errors = 0;   // injected/IO failures, swallowed
    std::uint64_t disk_corrupt = 0;  // torn disk payloads detected+evicted
    std::uint64_t evictions = 0;     // in-memory LRU removals
    std::uint64_t entries = 0;       // resident in-memory entries
  };

  // capacity == 0 disables the in-memory tier (and with no disk attached,
  // the memo as a whole: every lookup misses, every fill is dropped).
  explicit LogicMemo(std::size_t capacity = 4096) : capacity_(capacity) {}

  // Borrowed; must outlive the memo.  Null detaches.
  void attach_disk(DiskCache* disk) { disk_ = disk; }

  // Null on miss.  The returned entry is immutable and shared.
  std::shared_ptr<const Entry> lookup(const Fingerprint& key);

  // Stores a computed cover in both tiers.  Failures never propagate.
  void fill(const Fingerprint& key, std::shared_ptr<const Entry> entry);

  Stats stats() const;
  void clear();  // memory tier only; the disk tier persists

  // Payload codec for the disk tier (exposed for tests): version-tagged,
  // self-checksummed text.  deserialize returns nullopt on any defect.
  static std::string serialize(const Entry& e);
  static std::optional<Entry> deserialize(const std::string& payload);

  static std::string disk_key(const Fingerprint& key) {
    return "logic-" + key.hex();
  }

 private:
  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::uint64_t lru = 0;
  };
  void insert_locked(const Fingerprint& key, std::shared_ptr<const Entry> e);

  std::size_t capacity_;
  DiskCache* disk_ = nullptr;
  mutable std::mutex mu_;
  std::map<Fingerprint, Slot> slots_;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

// Canonical content fingerprint of a spec + covering options: cube lists
// are hashed in sorted order (cover results are order-independent — the
// candidate pool and the reduced requirement list are set-derived), the
// name is excluded.
Fingerprint spec_fingerprint(const FunctionSpec& f, bool exact, int exact_limit);

}  // namespace adc
