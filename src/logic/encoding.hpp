#pragma once
// State assignment for the concretized machine.
//
// Codes follow a Gray sequence along a depth-first walk of the transition
// structure, so that most state changes flip a single feedback bit (the
// race-free ideal; the fraction achieved is reported).  Unused codes are
// global don't-cares.  This substitutes for the exact critical-race-free
// assignment engines inside Minimalist/3D, which are out of scope; see
// DESIGN.md.

#include <cstdint>
#include <vector>

#include "logic/flow_table.hpp"

namespace adc {

struct Encoding {
  std::size_t bits = 0;
  std::vector<std::uint32_t> code;  // per concrete state
  int distance1 = 0;                // transitions whose codes differ in one bit
  int total = 0;                    // state-changing transitions
};

Encoding assign_codes(const ConcreteMachine& cm);

}  // namespace adc
