#include "logic/memo.hpp"

#include <algorithm>
#include <cstdio>

#include "runtime/disk_cache.hpp"
#include "runtime/fault.hpp"

namespace adc {

namespace {

constexpr char kMagic[] = "ADCM v1 ";

void add_cube(FingerprintBuilder& b, const Cube& c) {
  b.add(static_cast<std::uint64_t>(c.var_count()));
  const std::uint64_t* w = c.words();
  for (std::size_t i = 0; i < 2 * c.word_count(); ++i) b.add(w[i]);
}

bool dynamic_less(const HfDynamic& x, const HfDynamic& y) {
  if (!(x.t == y.t)) return x.t < y.t;
  if (!(x.a == y.a)) return x.a < y.a;
  if (!(x.b == y.b)) return x.b < y.b;
  return static_cast<int>(x.type) < static_cast<int>(y.type);
}

std::optional<Cube> cube_from_pattern(const std::string& pat) {
  Cube c(pat.size());
  for (std::size_t i = 0; i < pat.size(); ++i) {
    switch (pat[i]) {
      case '0': c.set(i, Cube::V::kZero); break;
      case '1': c.set(i, Cube::V::kOne); break;
      case '-': break;
      default: return std::nullopt;  // covers never hold empty cubes
    }
  }
  return c;
}

}  // namespace

Fingerprint spec_fingerprint(const FunctionSpec& f, bool exact, int exact_limit) {
  FingerprintBuilder b;
  b.add("logic-memo-v1");
  b.add(static_cast<std::uint64_t>(f.vars));
  b.add(exact);
  b.add(static_cast<std::int64_t>(exact_limit));

  std::vector<Cube> required = f.required;
  std::sort(required.begin(), required.end());
  b.add(static_cast<std::uint64_t>(required.size()));
  for (const auto& c : required) add_cube(b, c);

  std::vector<Cube> off = f.off;
  std::sort(off.begin(), off.end());
  b.add(static_cast<std::uint64_t>(off.size()));
  for (const auto& c : off) add_cube(b, c);

  std::vector<HfDynamic> dyn = f.dynamic;
  std::sort(dyn.begin(), dyn.end(), dynamic_less);
  b.add(static_cast<std::uint64_t>(dyn.size()));
  for (const auto& d : dyn) {
    b.add(static_cast<std::uint64_t>(d.type == HfType::kRise ? 1 : 2));
    add_cube(b, d.t);
    add_cube(b, d.a);
    add_cube(b, d.b);
  }
  return b.digest();
}

std::string LogicMemo::serialize(const Entry& e) {
  std::size_t vars = e.products.empty() ? 0 : e.products.front().var_count();
  std::string body;
  char line[128];
  std::snprintf(line, sizeof line, "spec vars %zu feasible %d products %zu issues %zu\n",
                vars, e.feasible ? 1 : 0, e.products.size(), e.issue_suffixes.size());
  body += line;
  for (const auto& p : e.products) body += "p " + p.to_string() + "\n";
  for (const auto& s : e.issue_suffixes) body += "i " + s + "\n";

  // The ADCK envelope only checksums what *it* was handed; a payload
  // corrupted before the put (the logic.memo.put.payload site) would pass
  // that check, so the body carries its own checksum.
  char head[64];
  std::snprintf(head, sizeof head, "%s%016llx\n", kMagic,
                static_cast<unsigned long long>(DiskCache::checksum(body)));
  return head + body;
}

std::optional<LogicMemo::Entry> LogicMemo::deserialize(const std::string& payload) {
  constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;
  if (payload.size() < kMagicLen + 17) return std::nullopt;
  if (payload.compare(0, kMagicLen, kMagic) != 0) return std::nullopt;
  unsigned long long want = 0;
  if (std::sscanf(payload.c_str() + kMagicLen, "%16llx", &want) != 1) return std::nullopt;
  std::size_t body_at = payload.find('\n');
  if (body_at == std::string::npos) return std::nullopt;
  std::string body = payload.substr(body_at + 1);
  if (DiskCache::checksum(body) != want) return std::nullopt;

  std::size_t vars = 0, n_products = 0, n_issues = 0;
  int feasible = 0;
  std::size_t pos = body.find('\n');
  if (pos == std::string::npos) return std::nullopt;
  if (std::sscanf(body.substr(0, pos).c_str(),
                  "spec vars %zu feasible %d products %zu issues %zu", &vars,
                  &feasible, &n_products, &n_issues) != 4)
    return std::nullopt;
  if (feasible != 0 && feasible != 1) return std::nullopt;

  Entry e;
  e.feasible = feasible == 1;
  std::size_t at = pos + 1;
  auto next_line = [&](char tag) -> std::optional<std::string> {
    if (at + 2 > body.size() || body[at] != tag || body[at + 1] != ' ')
      return std::nullopt;
    std::size_t end = body.find('\n', at);
    if (end == std::string::npos) return std::nullopt;
    std::string text = body.substr(at + 2, end - at - 2);
    at = end + 1;
    return text;
  };
  for (std::size_t i = 0; i < n_products; ++i) {
    auto pat = next_line('p');
    if (!pat || pat->size() != vars) return std::nullopt;
    auto c = cube_from_pattern(*pat);
    if (!c) return std::nullopt;
    e.products.push_back(std::move(*c));
  }
  for (std::size_t i = 0; i < n_issues; ++i) {
    auto s = next_line('i');
    if (!s) return std::nullopt;
    e.issue_suffixes.push_back(std::move(*s));
  }
  if (at != body.size()) return std::nullopt;  // trailing garbage
  return e;
}

std::shared_ptr<const LogicMemo::Entry> LogicMemo::lookup(const Fingerprint& key) {
  if (capacity_ > 0) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = slots_.find(key);
    if (it != slots_.end()) {
      it->second.lru = ++tick_;
      ++stats_.hits;
      return it->second.entry;
    }
  }
  if (disk_ && disk_->enabled()) {
    if (auto payload = disk_->get(disk_key(key))) {
      if (auto parsed = deserialize(*payload)) {
        auto entry = std::make_shared<const Entry>(std::move(*parsed));
        std::lock_guard<std::mutex> lk(mu_);
        insert_locked(key, entry);
        ++stats_.disk_hits;
        return entry;
      }
      // Torn payload inside a structurally valid envelope: evict at this
      // layer so the next run recomputes instead of re-parsing garbage.
      disk_->remove(disk_key(key), /*count_corrupt=*/true);
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.disk_corrupt;
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.misses;
  return nullptr;
}

void LogicMemo::fill(const Fingerprint& key, std::shared_ptr<const Entry> entry) {
  if (!entry) return;
  try {
    fault().maybe_fail_or_stall("logic.memo.fill", key.hex());
  } catch (...) {
    // The memo is an accelerator: a failed fill costs a future recompute,
    // never the current answer.
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.fill_errors;
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    insert_locked(key, entry);
    ++stats_.fills;
  }
  if (disk_ && disk_->enabled()) {
    std::string payload = serialize(*entry);
    try {
      fault().mutate_payload("logic.memo.put.payload", payload, key.hex());
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.fill_errors;
      return;
    }
    disk_->put(disk_key(key), payload);  // put swallows its own failures
  }
}

void LogicMemo::insert_locked(const Fingerprint& key, std::shared_ptr<const Entry> e) {
  if (capacity_ == 0) return;
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    it->second.lru = ++tick_;
    return;  // first value wins; entries are deterministic anyway
  }
  slots_.emplace(key, Slot{std::move(e), ++tick_});
  while (slots_.size() > capacity_) {
    auto victim = slots_.begin();
    for (auto sit = slots_.begin(); sit != slots_.end(); ++sit)
      if (sit->second.lru < victim->second.lru) victim = sit;
    slots_.erase(victim);
    ++stats_.evictions;
  }
}

LogicMemo::Stats LogicMemo::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s = stats_;
  s.entries = slots_.size();
  return s;
}

void LogicMemo::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  slots_.clear();
}

}  // namespace adc
