#pragma once
// Datapath / control delay model shared by the timing analyses (GT3, LT
// safety checks) and the simulators.  Delays are in abstract time units
// (think tenths of a nanosecond in a late-1990s process, matching the
// paper's setting of ALUs being faster than array multipliers).
//
// Every delay is an interval [min, max]: asynchronous operations take
// variable time, and the relative-timing analysis must reason about the
// worst case in both directions.

#include <cstdint>
#include <map>
#include <string>

namespace adc {

struct DelayRange {
  std::int64_t min = 1;
  std::int64_t max = 1;
};

struct DelayModel {
  // Datapath operation delay per FU class ("alu", "mul", ...).
  std::map<std::string, DelayRange> fu_op;
  // Pure register moves (mux + latch, no FU).
  DelayRange move{2, 4};
  // Control-node processing (LOOP/IF evaluation, ENDLOOP sync).
  DelayRange control{1, 2};
  // Per-micro-operation controller overhead (one local handshake).
  DelayRange micro_op{1, 2};
  // Register strobe-to-written delay.  The LT4/LT1 timing assumptions
  // ("user-supplied timing information", paper §5.4) require the latch
  // path to be faster than the FU done-reset path below; keep
  // latch_write.max < done_reset.min or the relative-timing bets lose.
  DelayRange latch_write{1, 1};
  // go-withdrawal to done-deassertion through the FU's completion logic.
  DelayRange done_reset{2, 4};
  // Inter-controller ready-wire propagation.  LT1 sends dones in parallel
  // with the result latch; receivers (including conditional samplers) see
  // the transition only after this delay, so keep wire.min > latch_write.max
  // or the move-up bet loses.
  DelayRange wire{2, 3};

  // Default model: adders/comparators are fast, multipliers ~4x slower.
  static DelayModel typical() {
    DelayModel m;
    m.fu_op["alu"] = {4, 8};
    m.fu_op["mul"] = {18, 30};
    return m;
  }

  DelayRange op_delay(const std::string& fu_class) const {
    auto it = fu_op.find(fu_class);
    return it == fu_op.end() ? DelayRange{4, 8} : it->second;
  }
};

}  // namespace adc
