#pragma once
// Strongly-typed integer ids used throughout the library.
//
// All IR objects (CDFG nodes/arcs, functional units, channels, XBM states,
// signals, ...) are stored in vectors and referenced by index wrapped in a
// distinct type, so that a NodeId cannot be accidentally passed where an
// ArcId is expected.  Invalid ids are represented by Id::invalid().

#include <cstddef>
#include <cstdint>
#include <functional>

namespace adc {

template <class Tag>
class Id {
 public:
  using underlying = std::uint32_t;
  static constexpr underlying kInvalid = static_cast<underlying>(-1);

  constexpr Id() : value_(kInvalid) {}
  constexpr explicit Id(underlying v) : value_(v) {}
  constexpr explicit Id(std::size_t v) : value_(static_cast<underlying>(v)) {}

  static constexpr Id invalid() { return Id(); }

  constexpr bool valid() const { return value_ != kInvalid; }
  constexpr underlying value() const { return value_; }
  constexpr std::size_t index() const { return static_cast<std::size_t>(value_); }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

 private:
  underlying value_;
};

struct NodeTag {};
struct ArcTag {};
struct FuTag {};
struct BlockTag {};
struct ChannelTag {};
struct StateTag {};
struct TransitionTag {};
struct SignalTag {};

using NodeId = Id<NodeTag>;
using ArcId = Id<ArcTag>;
using FuId = Id<FuTag>;
using BlockId = Id<BlockTag>;
using ChannelId = Id<ChannelTag>;
using StateId = Id<StateTag>;
using TransitionId = Id<TransitionTag>;
using SignalId = Id<SignalTag>;

}  // namespace adc

namespace std {
template <class Tag>
struct hash<adc::Id<Tag>> {
  size_t operator()(adc::Id<Tag> id) const noexcept {
    return std::hash<typename adc::Id<Tag>::underlying>()(id.value());
  }
};
}  // namespace std
