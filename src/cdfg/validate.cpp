#include "cdfg/validate.hpp"

#include <algorithm>
#include <stdexcept>

#include "cdfg/analysis.hpp"

namespace adc {

namespace {

void check_block_structure(const Cdfg& g, std::vector<std::string>& errors) {
  for (BlockId b : g.block_ids()) {
    const Block& blk = g.block(b);
    if (!g.node(blk.root).alive || !g.node(blk.end).alive) {
      errors.push_back("block root/end node is dead");
      continue;
    }
    NodeKind want_root = blk.kind == NodeKind::kLoop ? NodeKind::kLoop : NodeKind::kIf;
    NodeKind want_end = blk.kind == NodeKind::kLoop ? NodeKind::kEndLoop : NodeKind::kEndIf;
    if (g.node(blk.root).kind != want_root)
      errors.push_back("block root " + g.node(blk.root).label() + " has wrong kind");
    if (g.node(blk.end).kind != want_end)
      errors.push_back("block end " + g.node(blk.end).label() + " has wrong kind");
  }

  // Data / register-allocation arcs may not cross block boundaries except at
  // the block root (paper: block-structured CDFG restriction).  Control and
  // scheduling arcs to/from the root and end nodes are the sanctioned way in
  // and out.
  auto effective_block = [&g](NodeId n) {
    const Node& node = g.node(n);
    // The root and end nodes of a block act as members of the *enclosing*
    // block for boundary purposes.
    return node.block;
  };
  for (ArcId aid : g.arc_ids()) {
    const Arc& a = g.arc(aid);
    bool data_like = has_role(a.roles, ArcRole::kDataDep) || has_role(a.roles, ArcRole::kRegAlloc);
    if (!data_like) continue;
    BlockId sb = effective_block(a.src);
    BlockId db = effective_block(a.dst);
    if (sb != db) {
      const Node& src = g.node(a.src);
      const Node& dst = g.node(a.dst);
      bool via_root = src.is_control() || dst.is_control();
      if (!via_root)
        errors.push_back("data arc crosses block boundary: " + src.label() + " -> " +
                         dst.label());
    }
  }
}

}  // namespace

std::vector<std::string> validate(const Cdfg& g, const ValidateOptions& opts) {
  std::vector<std::string> errors;

  // Node payloads.
  for (NodeId nid : g.node_ids()) {
    const Node& n = g.node(nid);
    switch (n.kind) {
      case NodeKind::kOperation:
        if (n.stmts.empty()) errors.push_back("operation node without statements");
        if (!n.fu.valid()) errors.push_back("operation node not bound to an FU");
        break;
      case NodeKind::kAssign:
        if (n.stmts.empty()) errors.push_back("assign node without statements");
        for (const auto& s : n.stmts)
          if (!s.is_move())
            errors.push_back("assign node carries non-move statement " + s.to_string());
        break;
      case NodeKind::kLoop:
      case NodeKind::kIf:
        if (n.cond_reg.empty())
          errors.push_back(std::string(to_string(n.kind)) + " node without condition register");
        break;
      default:
        if (!n.stmts.empty())
          errors.push_back(std::string(to_string(n.kind)) + " node carries statements");
        break;
    }
  }

  // Unique START / END.
  if (!g.find_unique(NodeKind::kStart)) errors.push_back("missing or duplicate START node");
  if (!g.find_unique(NodeKind::kEnd)) errors.push_back("missing or duplicate END node");

  // Arc sanity.
  for (ArcId aid : g.arc_ids()) {
    const Arc& a = g.arc(aid);
    if (!g.node(a.src).alive || !g.node(a.dst).alive)
      errors.push_back("arc touches dead node");
    if (a.backward && !opts.allow_backward_arcs)
      errors.push_back("backward arc present before GT1: " + g.node(a.src).label() + " -> " +
                       g.node(a.dst).label());
  }

  // Scheduling consistency: consecutive nodes in every FU order must be
  // (possibly transitively) ordered by forward constraints.
  for (FuId fu : g.fu_ids()) {
    const auto& order = g.fu_order(fu);
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      if (!is_implied(g, order[i], order[i + 1], 0, /*include_fu_wrap=*/false))
        errors.push_back("FU " + g.fu(fu).name + " schedule not enforced between " +
                         g.node(order[i]).label() + " and " + g.node(order[i + 1]).label());
    }
    for (NodeId n : order)
      if (g.node(n).fu != fu)
        errors.push_back("FU order of " + g.fu(fu).name + " contains foreign node");
  }

  // Forward subgraph must be acyclic (a legal schedule exists).
  if (!forward_topo_order(g)) errors.push_back("forward constraint graph has a cycle");

  check_block_structure(g, errors);
  return errors;
}

void validate_or_throw(const Cdfg& g, const ValidateOptions& opts) {
  auto errors = validate(g, opts);
  if (errors.empty()) return;
  std::string msg = "CDFG '" + g.name() + "' invalid:";
  for (const auto& e : errors) msg += "\n  - " + e;
  throw std::runtime_error(msg);
}

}  // namespace adc
