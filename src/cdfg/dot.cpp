#include "cdfg/dot.hpp"

#include <sstream>

namespace adc {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const Cdfg& g) {
  std::ostringstream os;
  os << "digraph \"" << escape(g.name()) << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";

  // One cluster per functional unit (the paper's columns).
  for (FuId fu : g.fu_ids()) {
    os << "  subgraph cluster_" << fu.value() << " {\n";
    os << "    label=\"" << escape(g.fu(fu).name) << "\";\n";
    for (NodeId n : g.node_ids()) {
      if (g.node(n).fu == fu)
        os << "    n" << n.value() << " [label=\"" << escape(g.node(n).label()) << "\"];\n";
    }
    os << "  }\n";
  }
  // Unbound nodes (START / END).
  for (NodeId n : g.node_ids()) {
    if (!g.node(n).fu.valid())
      os << "  n" << n.value() << " [label=\"" << escape(g.node(n).label())
         << "\", shape=ellipse];\n";
  }

  for (ArcId aid : g.arc_ids()) {
    const Arc& a = g.arc(aid);
    const char* style = "dashed";
    if (has_role(a.roles, ArcRole::kControl)) style = "solid";
    else if (has_role(a.roles, ArcRole::kScheduling)) style = "dotted";
    os << "  n" << a.src.value() << " -> n" << a.dst.value() << " [style=" << style;
    if (a.backward) os << ", penwidth=2, color=gray40, constraint=false";
    if (!a.tag.empty()) os << ", label=\"" << escape(a.tag) << "\"";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace adc
