#include "cdfg/rtl.hpp"

#include <cctype>
#include <stdexcept>

namespace adc {

bool is_comparison(RtlOp op) {
  return op == RtlOp::kLt || op == RtlOp::kGt || op == RtlOp::kEq || op == RtlOp::kNe;
}

const char* to_string(RtlOp op) {
  switch (op) {
    case RtlOp::kAdd: return "+";
    case RtlOp::kSub: return "-";
    case RtlOp::kMul: return "*";
    case RtlOp::kDiv: return "/";
    case RtlOp::kLt: return "<";
    case RtlOp::kGt: return ">";
    case RtlOp::kEq: return "==";
    case RtlOp::kNe: return "!=";
    case RtlOp::kShl: return "<<";
    case RtlOp::kShr: return ">>";
    case RtlOp::kMove: return ":=";
  }
  return "?";
}

Operand Operand::make_reg(std::string name, std::int64_t scale) {
  Operand o;
  o.kind = Kind::kReg;
  o.reg = std::move(name);
  o.scale = scale;
  return o;
}

Operand Operand::make_const(std::int64_t value) {
  Operand o;
  o.kind = Kind::kConst;
  o.literal = value;
  return o;
}

std::int64_t Operand::eval(std::int64_t reg_value) const {
  return is_const() ? literal : scale * reg_value;
}

std::string Operand::to_string() const {
  if (is_const()) return std::to_string(literal);
  if (scale == 1) return reg;
  return std::to_string(scale) + reg;
}

RtlStatement RtlStatement::binary(std::string dest, Operand lhs, RtlOp op, Operand rhs) {
  RtlStatement s;
  s.dest = std::move(dest);
  s.op = op;
  s.lhs = std::move(lhs);
  s.rhs = std::move(rhs);
  return s;
}

RtlStatement RtlStatement::move(std::string dest, Operand src) {
  RtlStatement s;
  s.dest = std::move(dest);
  s.op = RtlOp::kMove;
  s.lhs = std::move(src);
  return s;
}

std::vector<std::string> RtlStatement::reads() const {
  std::vector<std::string> out;
  auto add = [&out](const Operand& o) {
    if (!o.is_reg()) return;
    for (const auto& r : out)
      if (r == o.reg) return;
    out.push_back(o.reg);
  };
  add(lhs);
  if (rhs) add(*rhs);
  return out;
}

bool RtlStatement::reads_its_dest() const {
  for (const auto& r : reads())
    if (r == dest) return true;
  return false;
}

std::string RtlStatement::to_string() const {
  std::string out = dest + " := " + lhs.to_string();
  if (rhs) {
    out += ' ';
    out += adc::to_string(op);
    out += ' ';
    out += rhs->to_string();
  }
  return out;
}

namespace {

struct Lexer {
  const std::string& text;
  std::size_t pos = 0;

  explicit Lexer(const std::string& t) : text(t) {}

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  bool eof() {
    skip_ws();
    return pos >= text.size();
  }

  char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  bool consume(const char* s) {
    skip_ws();
    std::size_t n = 0;
    while (s[n] != '\0') ++n;
    if (text.compare(pos, n, s) == 0) {
      pos += n;
      return true;
    }
    return false;
  }

  // Identifier: letters/digits/underscore, starting with a letter or '_'.
  std::string ident() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) || text[pos] == '_'))
      ++pos;
    return text.substr(start, pos - start);
  }

  std::int64_t integer() {
    skip_ws();
    std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    return std::stoll(text.substr(start, pos - start));
  }
};

Operand parse_operand(Lexer& lex) {
  lex.skip_ws();
  if (lex.pos >= lex.text.size())
    throw std::invalid_argument("rtl: missing operand in '" + lex.text + "'");
  char c = lex.text[lex.pos];
  if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
    std::int64_t value = lex.integer();
    // A register name directly following a number denotes a scaled register,
    // as in the paper's "2dx".
    if (lex.pos < lex.text.size() &&
        (std::isalpha(static_cast<unsigned char>(lex.text[lex.pos])) || lex.text[lex.pos] == '_')) {
      return Operand::make_reg(lex.ident(), value);
    }
    return Operand::make_const(value);
  }
  std::string name = lex.ident();
  if (name.empty())
    throw std::invalid_argument("rtl: malformed operand in '" + lex.text + "'");
  return Operand::make_reg(std::move(name));
}

}  // namespace

RtlStatement parse_rtl(const std::string& text) {
  Lexer lex(text);
  std::string dest = lex.ident();
  if (dest.empty()) throw std::invalid_argument("rtl: missing destination in '" + text + "'");
  if (!lex.consume(":=")) throw std::invalid_argument("rtl: missing ':=' in '" + text + "'");
  Operand lhs = parse_operand(lex);
  if (lex.eof()) return RtlStatement::move(std::move(dest), std::move(lhs));

  RtlOp op;
  if (lex.consume("==")) op = RtlOp::kEq;
  else if (lex.consume("!=")) op = RtlOp::kNe;
  else if (lex.consume("<<")) op = RtlOp::kShl;
  else if (lex.consume(">>")) op = RtlOp::kShr;
  else if (lex.consume("+")) op = RtlOp::kAdd;
  else if (lex.consume("-")) op = RtlOp::kSub;
  else if (lex.consume("*")) op = RtlOp::kMul;
  else if (lex.consume("/")) op = RtlOp::kDiv;
  else if (lex.consume("<")) op = RtlOp::kLt;
  else if (lex.consume(">")) op = RtlOp::kGt;
  else throw std::invalid_argument("rtl: unknown operator in '" + text + "'");

  Operand rhs = parse_operand(lex);
  if (!lex.eof()) throw std::invalid_argument("rtl: trailing input in '" + text + "'");
  return RtlStatement::binary(std::move(dest), std::move(lhs), op, std::move(rhs));
}

}  // namespace adc
