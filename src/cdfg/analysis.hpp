#pragma once
// Graph analyses on CDFGs used by the transformations:
//  * offset-aware reachability (a 0-1 shortest-path on constraint offsets),
//  * dominance of constraint arcs (paper §3.2),
//  * topological order of the forward (offset-0) subgraph.
//
// Constraint semantics: a forward arc (a,b) means "b in iteration k fires
// after a in iteration k" (offset 0); a backward arc means "b in iteration
// k+1 fires after a in iteration k" (offset 1).  A path's offset is the sum
// of its arc offsets.  An arc with offset d is *dominated* (implied) if a
// different path from its source to its destination exists with total
// offset <= d — because each node's firings are totally ordered across
// iterations (its controller is sequential), a smaller-offset path is a
// stronger constraint.
//
// The analyses may include the *implicit wrap* constraints: each functional
// unit controller executes its bound nodes cyclically, so there is an
// implicit offset-1 constraint from the last node of an FU's schedule back
// to the first (and between consecutive firings of every node).  These
// always hold in the target architecture and are therefore legitimate to
// use when checking dominance.

#include <optional>
#include <vector>

#include "cdfg/cdfg.hpp"

namespace adc {

struct ReachOptions {
  bool include_fu_wrap = true;               // use implicit last->first FU arcs
  std::optional<ArcId> exclude;              // ignore this arc (dominance checks)
  int max_offset = 8;                        // offsets are capped here
};

// Minimum total offset of any path src -> dst under the options, or
// std::nullopt if dst is unreachable from src.  0-1 BFS, O(V + E) per query.
std::optional<int> min_path_offset(const Cdfg& g, NodeId src, NodeId dst,
                                   const ReachOptions& opts = {});

// True if the live arc `a` is implied by the remaining constraints:
// a path src->dst avoiding `a` exists with total offset <= a's offset.
bool is_dominated(const Cdfg& g, ArcId a, bool include_fu_wrap = true);

// As above, but for a hypothetical arc that is not in the graph.
bool is_implied(const Cdfg& g, NodeId src, NodeId dst, int offset,
                bool include_fu_wrap = true);

// Topological order of live nodes over forward (offset-0) live arcs.
// Returns std::nullopt if the forward subgraph has a cycle (an invalid
// schedule).
std::optional<std::vector<NodeId>> forward_topo_order(const Cdfg& g);

// All live nodes bound to `fu` in schedule order, optionally restricted to a
// block (the loop body).  Nodes whose enclosing block chain does not contain
// `block` are skipped when `block` is valid.
std::vector<NodeId> fu_nodes_in_block(const Cdfg& g, FuId fu, BlockId block);

// True if node n is inside block b (directly or nested).
bool in_block(const Cdfg& g, NodeId n, BlockId b);

}  // namespace adc
