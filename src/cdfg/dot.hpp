#pragma once
// Graphviz export of CDFGs, mirroring the paper's figure conventions:
// solid arcs = control flow, dotted = FU scheduling, dashed = data
// dependency / register allocation, bold dashed = backward arcs.  Nodes are
// grouped into per-FU clusters (the paper's "columns").

#include <string>

#include "cdfg/cdfg.hpp"

namespace adc {

std::string to_dot(const Cdfg& g);

}  // namespace adc
