#pragma once
// Structural validation of CDFGs per paper §2.1.  Returns human-readable
// error strings; an empty vector means the graph is well-formed.

#include <string>
#include <vector>

#include "cdfg/cdfg.hpp"

namespace adc {

struct ValidateOptions {
  // Backward arcs only appear after GT1; the initial frontend output must
  // not contain any.
  bool allow_backward_arcs = true;
};

std::vector<std::string> validate(const Cdfg& g, const ValidateOptions& opts = {});

// Convenience: throws std::runtime_error with all messages if invalid.
void validate_or_throw(const Cdfg& g, const ValidateOptions& opts = {});

}  // namespace adc
