#pragma once
// Control/Data-Flow Graph IR — the input representation of the synthesis
// method (paper §2.1).
//
// A Cdfg holds:
//  * functional units (FUs) — the bound resources (ALUs, multipliers, ...),
//  * nodes — START/END, LOOP/ENDLOOP, IF/ENDIF and RTL operation /
//    assignment nodes, each bound to an FU (control-structure nodes are
//    bound too: in the paper LOOP and ENDLOOP are bound to ALU2),
//  * constraint arcs — control flow, per-FU scheduling, data dependency and
//    register allocation.  One arc can carry several semantic roles at once
//    (the paper's example: (M1:=U*X1, U:=U-M1) is a register-allocation arc
//    w.r.t. U *and* would be a data-dependency arc w.r.t. M1), so roles are
//    a bit-set on a single arc between a node pair.
//  * blocks — the block structure (LOOP..ENDLOOP, IF..ENDIF ranges).
//
// Arcs may be marked `backward`: a backward arc is ignored during the first
// execution of a loop body (it is a pre-enabled constraint for the first
// iteration) and constrains iteration k+1 against iteration k afterwards.
// Forward arcs constrain within one iteration (offset 0), backward arcs
// across consecutive iterations (offset 1).
//
// Nodes and arcs are removed by tombstoning so ids stay stable; iteration
// helpers skip dead objects.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cdfg/ids.hpp"
#include "cdfg/rtl.hpp"

namespace adc {

enum class NodeKind {
  kStart,
  kEnd,
  kLoop,
  kEndLoop,
  kIf,
  kEndIf,
  kOperation,  // RTL statement using the functional unit
  kAssign,     // pure register move, does not use the functional unit
};

const char* to_string(NodeKind kind);

// Semantic roles of a constraint arc (bit-set; an arc can have several).
enum class ArcRole : std::uint8_t {
  kControl = 1 << 0,     // from/to START, END, IF, ENDIF, LOOP, ENDLOOP
  kScheduling = 1 << 1,  // orders the operations bound to one FU
  kDataDep = 1 << 2,     // producer -> consumer of a register value
  kRegAlloc = 1 << 3,    // reader-of-old-value -> overwriting write
};

constexpr ArcRole operator|(ArcRole a, ArcRole b) {
  return static_cast<ArcRole>(static_cast<std::uint8_t>(a) | static_cast<std::uint8_t>(b));
}
constexpr bool has_role(ArcRole set, ArcRole role) {
  return (static_cast<std::uint8_t>(set) & static_cast<std::uint8_t>(role)) != 0;
}

std::string to_string(ArcRole roles);

// A bound resource.  The class string ("alu", "mul", ...) selects the delay
// model entry and which RtlOps the unit may execute.
struct FunctionalUnit {
  FuId id;
  std::string name;   // e.g. "ALU1"
  std::string cls;    // e.g. "alu", "mul"
};

struct Node {
  NodeId id;
  NodeKind kind = NodeKind::kOperation;
  FuId fu;                          // invalid for START/END
  std::vector<RtlStatement> stmts;  // >1 after GT4 merging; empty for control nodes
  BlockId block;                    // enclosing block, invalid at top level
  std::string cond_reg;             // LOOP/IF only: the examined condition register
  bool alive = true;

  bool is_control() const {
    return kind != NodeKind::kOperation && kind != NodeKind::kAssign;
  }
  // The statement label used in diagnostics, e.g. "A := Y + M1" or "LOOP".
  std::string label() const;
};

struct Arc {
  ArcId id;
  NodeId src;
  NodeId dst;
  ArcRole roles{};
  bool backward = false;           // iteration-crossing (offset 1) constraint
  std::vector<std::string> vars;   // registers that motivated the arc (debugging)
  std::string tag;                 // optional label matching the paper's figures
  bool alive = true;

  int offset() const { return backward ? 1 : 0; }
};

// A structured block: the node range between a LOOP/ENDLOOP or IF/ENDIF pair.
struct Block {
  BlockId id;
  NodeKind kind = NodeKind::kLoop;  // kLoop or kIf
  NodeId root;                      // the LOOP / IF node
  NodeId end;                       // the ENDLOOP / ENDIF node
  BlockId parent;                   // enclosing block, invalid at top level
};

class Cdfg {
 public:
  explicit Cdfg(std::string name = "cdfg") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // --- construction -------------------------------------------------------
  FuId add_fu(std::string name, std::string cls);
  NodeId add_node(NodeKind kind, FuId fu, std::vector<RtlStatement> stmts = {},
                  BlockId block = BlockId::invalid());
  BlockId add_block(NodeKind kind, NodeId root, NodeId end,
                    BlockId parent = BlockId::invalid());
  // Adds (or extends) the arc src->dst.  If an arc with the same src, dst and
  // backward flag already exists, the roles/vars are merged into it.
  ArcId add_arc(NodeId src, NodeId dst, ArcRole roles, bool backward = false,
                std::string var = {});

  void remove_arc(ArcId id);
  void remove_node(NodeId id);  // also removes incident arcs

  // Appends node `victim`'s statements to `survivor` (GT4), reroutes all of
  // victim's arcs to survivor (dropping self-arcs), removes victim, and
  // splices the FU schedule.
  void merge_nodes(NodeId survivor, NodeId victim);

  // Sets the execution order of the nodes bound to `fu` (scheduling).
  void set_fu_order(FuId fu, std::vector<NodeId> order);

  // --- access -------------------------------------------------------------
  const FunctionalUnit& fu(FuId id) const { return fus_.at(id.index()); }
  const Node& node(NodeId id) const { return nodes_.at(id.index()); }
  Node& node(NodeId id) { return nodes_.at(id.index()); }
  const Arc& arc(ArcId id) const { return arcs_.at(id.index()); }
  Arc& arc(ArcId id) { return arcs_.at(id.index()); }
  const Block& block(BlockId id) const { return blocks_.at(id.index()); }
  Block& block(BlockId id) { return blocks_.at(id.index()); }

  std::size_t fu_count() const { return fus_.size(); }
  std::size_t node_capacity() const { return nodes_.size(); }  // incl. dead
  std::size_t arc_capacity() const { return arcs_.size(); }    // incl. dead

  // Live objects.
  std::vector<NodeId> node_ids() const;
  std::vector<ArcId> arc_ids() const;
  std::vector<FuId> fu_ids() const;
  std::vector<BlockId> block_ids() const;
  std::size_t live_node_count() const;
  std::size_t live_arc_count() const;

  // Adjacency (live arcs only).
  std::vector<ArcId> in_arcs(NodeId n) const;
  std::vector<ArcId> out_arcs(NodeId n) const;
  std::vector<NodeId> preds(NodeId n) const;
  std::vector<NodeId> succs(NodeId n) const;

  // The existing arc src->dst with the given backward flag, if any.
  std::optional<ArcId> find_arc(NodeId src, NodeId dst, bool backward = false) const;

  // The scheduled order of live nodes bound to `fu`.
  const std::vector<NodeId>& fu_order(FuId fu) const;

  // Lookup helpers.
  std::optional<FuId> find_fu(const std::string& name) const;
  std::optional<NodeId> find_node_by_label(const std::string& label) const;
  std::optional<NodeId> find_unique(NodeKind kind) const;  // e.g. the START node

  // Registers appearing anywhere in the graph (reads plus writes).
  std::vector<std::string> registers() const;

  Cdfg clone() const { return *this; }

 private:
  std::string name_;
  std::vector<FunctionalUnit> fus_;
  std::vector<Node> nodes_;
  std::vector<Arc> arcs_;
  std::vector<Block> blocks_;
  std::vector<std::vector<NodeId>> fu_orders_;
  std::vector<std::vector<ArcId>> in_;   // per node, may contain dead arcs
  std::vector<std::vector<ArcId>> out_;
};

}  // namespace adc
