#pragma once
// Register-transfer-level (RTL) statements as they appear in CDFG nodes.
//
// The paper's CDFG nodes carry statements of the form
//     R1 := R2 op R3        (operation node, executed by a functional unit)
//     R1 := R2              (assignment node, bypasses the functional unit)
// Operands are registers, optionally with a small constant scale factor so
// that statements like  B := 2dx + dx  (a shift-add computing 3*dx) can be
// expressed without a multiplier.  Literal integer constants are also
// supported for synthetic benchmarks.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace adc {

// Binary/unary operation kinds executable by functional units.
enum class RtlOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,    // less-than comparison, writes a 0/1 condition register
  kGt,
  kEq,
  kNe,
  kShl,   // left shift
  kShr,
  kMove,  // pure register assignment R1 := R2 (no functional unit needed)
};

// True for operations that produce a 0/1 condition value (loop/if tests).
bool is_comparison(RtlOp op);

// Short printable mnemonic: "+", "-", "*", "<", ...
const char* to_string(RtlOp op);

// An operand: either `scale * register` or an integer literal.
struct Operand {
  enum class Kind { kReg, kConst } kind = Kind::kReg;
  std::string reg;        // register name when kind == kReg
  std::int64_t literal = 0;  // value when kind == kConst
  std::int64_t scale = 1;    // multiplier applied to the register value

  static Operand make_reg(std::string name, std::int64_t scale = 1);
  static Operand make_const(std::int64_t value);

  bool is_reg() const { return kind == Kind::kReg; }
  bool is_const() const { return kind == Kind::kConst; }

  // Evaluate given the register value (ignored for constants).
  std::int64_t eval(std::int64_t reg_value) const;

  std::string to_string() const;

  friend bool operator==(const Operand&, const Operand&) = default;
};

// A single RTL statement `dest := lhs op rhs` or `dest := lhs`.
struct RtlStatement {
  std::string dest;
  RtlOp op = RtlOp::kMove;
  Operand lhs;
  std::optional<Operand> rhs;  // absent for kMove / unary forms

  static RtlStatement binary(std::string dest, Operand lhs, RtlOp op, Operand rhs);
  static RtlStatement move(std::string dest, Operand src);

  bool is_move() const { return op == RtlOp::kMove; }

  // Registers read by this statement (deduplicated, in operand order).
  std::vector<std::string> reads() const;
  // The register written.
  const std::string& writes() const { return dest; }
  // True if the statement both reads and writes the same register.
  bool reads_its_dest() const;

  // Render as the paper writes statements, e.g. "A := Y + M1".
  std::string to_string() const;

  friend bool operator==(const RtlStatement&, const RtlStatement&) = default;
};

// Parse a statement from the textual form used by the paper and the DSL,
// e.g. "A := Y + M1", "B := 2dx + dx", "X1 := X", "C := X < a".
// Identifiers are register names; an identifier with a leading integer
// (e.g. "2dx") denotes a scaled register; a bare integer is a literal.
// Throws std::invalid_argument on malformed input.
RtlStatement parse_rtl(const std::string& text);

}  // namespace adc
