#include "cdfg/analysis.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>

namespace adc {

namespace {

struct Edge {
  NodeId dst;
  int offset;
  ArcId arc;  // invalid for implicit wrap edges
};

// Build the adjacency used by reachability queries: live arcs plus the
// implicit per-FU wrap edges (last scheduled node -> first, offset 1).
std::vector<std::vector<Edge>> build_adjacency(const Cdfg& g, const ReachOptions& opts) {
  std::vector<std::vector<Edge>> adj(g.node_capacity());
  for (ArcId aid : g.arc_ids()) {
    if (opts.exclude && *opts.exclude == aid) continue;
    const Arc& a = g.arc(aid);
    adj[a.src.index()].push_back(Edge{a.dst, a.offset(), aid});
  }
  if (opts.include_fu_wrap) {
    // A controller executes the nodes of one repetition region cyclically,
    // so the last node of each (FU, block) group is followed (offset 1) by
    // the first node of that group in the next repetition.  Grouping by the
    // node's block keeps this sound when an FU also has nodes outside the
    // loop: those never repeat, and an offset-1 constraint on a node that
    // never refires is vacuous.
    for (FuId fu : g.fu_ids()) {
      std::map<BlockId::underlying, std::pair<NodeId, NodeId>> group;  // first/last
      for (NodeId n : g.fu_order(fu)) {
        auto [it, inserted] =
            group.try_emplace(g.node(n).block.value(), std::make_pair(n, n));
        if (!inserted) it->second.second = n;
      }
      for (const auto& [block, fl] : group) {
        (void)block;
        if (fl.first != fl.second)
          adj[fl.second.index()].push_back(Edge{fl.first, 1, ArcId::invalid()});
      }
    }
    // Each loop's root refires after its end node (the loop-back).
    for (BlockId b : g.block_ids()) {
      const Block& blk = g.block(b);
      if (blk.kind != NodeKind::kLoop || !blk.end.valid()) continue;
      if (g.node(blk.root).alive && g.node(blk.end).alive)
        adj[blk.end.index()].push_back(Edge{blk.root, 1, ArcId::invalid()});
    }
  }
  return adj;
}

// 0-1 BFS from src; returns per-node minimum path offset (capped).
std::vector<int> zero_one_bfs(const Cdfg& g, NodeId src,
                              const std::vector<std::vector<Edge>>& adj, int cap) {
  constexpr int kInf = std::numeric_limits<int>::max();
  std::vector<int> dist(g.node_capacity(), kInf);
  std::deque<NodeId> queue;
  dist[src.index()] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (const Edge& e : adj[u.index()]) {
      int nd = dist[u.index()] + e.offset;
      if (nd > cap) continue;
      if (nd < dist[e.dst.index()]) {
        dist[e.dst.index()] = nd;
        if (e.offset == 0)
          queue.push_front(e.dst);
        else
          queue.push_back(e.dst);
      }
    }
  }
  return dist;
}

}  // namespace

std::optional<int> min_path_offset(const Cdfg& g, NodeId src, NodeId dst,
                                   const ReachOptions& opts) {
  auto adj = build_adjacency(g, opts);
  auto dist = zero_one_bfs(g, src, adj, opts.max_offset);
  int d = dist[dst.index()];
  if (d == std::numeric_limits<int>::max()) return std::nullopt;
  return d;
}

bool is_dominated(const Cdfg& g, ArcId a, bool include_fu_wrap) {
  const Arc& arc = g.arc(a);
  ReachOptions opts;
  opts.include_fu_wrap = include_fu_wrap;
  opts.exclude = a;
  opts.max_offset = arc.offset();
  auto d = min_path_offset(g, arc.src, arc.dst, opts);
  return d.has_value() && *d <= arc.offset();
}

bool is_implied(const Cdfg& g, NodeId src, NodeId dst, int offset, bool include_fu_wrap) {
  ReachOptions opts;
  opts.include_fu_wrap = include_fu_wrap;
  opts.max_offset = offset;
  auto d = min_path_offset(g, src, dst, opts);
  return d.has_value() && *d <= offset;
}

std::optional<std::vector<NodeId>> forward_topo_order(const Cdfg& g) {
  std::vector<int> indeg(g.node_capacity(), 0);
  std::vector<NodeId> live = g.node_ids();
  for (ArcId aid : g.arc_ids()) {
    const Arc& a = g.arc(aid);
    if (!a.backward) ++indeg[a.dst.index()];
  }
  std::deque<NodeId> ready;
  for (NodeId n : live)
    if (indeg[n.index()] == 0) ready.push_back(n);
  std::vector<NodeId> order;
  order.reserve(live.size());
  while (!ready.empty()) {
    NodeId u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (ArcId aid : g.out_arcs(u)) {
      const Arc& a = g.arc(aid);
      if (a.backward) continue;
      if (--indeg[a.dst.index()] == 0) ready.push_back(a.dst);
    }
  }
  if (order.size() != live.size()) return std::nullopt;  // forward cycle
  return order;
}

bool in_block(const Cdfg& g, NodeId n, BlockId b) {
  BlockId cur = g.node(n).block;
  while (cur.valid()) {
    if (cur == b) return true;
    cur = g.block(cur).parent;
  }
  return false;
}

std::vector<NodeId> fu_nodes_in_block(const Cdfg& g, FuId fu, BlockId block) {
  std::vector<NodeId> out;
  for (NodeId n : g.fu_order(fu)) {
    if (!block.valid() || in_block(g, n, block)) out.push_back(n);
  }
  return out;
}

}  // namespace adc
