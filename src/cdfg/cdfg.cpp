#include "cdfg/cdfg.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace adc {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kStart: return "START";
    case NodeKind::kEnd: return "END";
    case NodeKind::kLoop: return "LOOP";
    case NodeKind::kEndLoop: return "ENDLOOP";
    case NodeKind::kIf: return "IF";
    case NodeKind::kEndIf: return "ENDIF";
    case NodeKind::kOperation: return "OP";
    case NodeKind::kAssign: return "ASSIGN";
  }
  return "?";
}

std::string to_string(ArcRole roles) {
  std::string out;
  auto add = [&out](const char* s) {
    if (!out.empty()) out += '|';
    out += s;
  };
  if (has_role(roles, ArcRole::kControl)) add("ctrl");
  if (has_role(roles, ArcRole::kScheduling)) add("sched");
  if (has_role(roles, ArcRole::kDataDep)) add("data");
  if (has_role(roles, ArcRole::kRegAlloc)) add("reg");
  return out.empty() ? "none" : out;
}

std::string Node::label() const {
  if (is_control()) return to_string(kind);
  std::string out;
  for (const auto& s : stmts) {
    if (!out.empty()) out += "; ";
    out += s.to_string();
  }
  return out;
}

FuId Cdfg::add_fu(std::string name, std::string cls) {
  FuId id(fus_.size());
  fus_.push_back(FunctionalUnit{id, std::move(name), std::move(cls)});
  fu_orders_.emplace_back();
  return id;
}

NodeId Cdfg::add_node(NodeKind kind, FuId fu, std::vector<RtlStatement> stmts, BlockId block) {
  NodeId id(nodes_.size());
  Node n;
  n.id = id;
  n.kind = kind;
  n.fu = fu;
  n.stmts = std::move(stmts);
  n.block = block;
  nodes_.push_back(std::move(n));
  in_.emplace_back();
  out_.emplace_back();
  return id;
}

BlockId Cdfg::add_block(NodeKind kind, NodeId root, NodeId end, BlockId parent) {
  BlockId id(blocks_.size());
  blocks_.push_back(Block{id, kind, root, end, parent});
  return id;
}

ArcId Cdfg::add_arc(NodeId src, NodeId dst, ArcRole roles, bool backward, std::string var) {
  if (src == dst) throw std::invalid_argument("cdfg: self-arc on " + node(src).label());
  if (auto existing = find_arc(src, dst, backward)) {
    Arc& a = arc(*existing);
    a.roles = a.roles | roles;
    if (!var.empty() && std::find(a.vars.begin(), a.vars.end(), var) == a.vars.end())
      a.vars.push_back(std::move(var));
    return *existing;
  }
  ArcId id(arcs_.size());
  Arc a;
  a.id = id;
  a.src = src;
  a.dst = dst;
  a.roles = roles;
  a.backward = backward;
  if (!var.empty()) a.vars.push_back(std::move(var));
  arcs_.push_back(std::move(a));
  out_[src.index()].push_back(id);
  in_[dst.index()].push_back(id);
  return id;
}

void Cdfg::remove_arc(ArcId id) { arcs_.at(id.index()).alive = false; }

void Cdfg::remove_node(NodeId id) {
  Node& n = nodes_.at(id.index());
  n.alive = false;
  for (ArcId a : in_[id.index()]) arcs_[a.index()].alive = false;
  for (ArcId a : out_[id.index()]) arcs_[a.index()].alive = false;
  if (n.fu.valid()) {
    auto& order = fu_orders_[n.fu.index()];
    order.erase(std::remove(order.begin(), order.end(), id), order.end());
  }
}

void Cdfg::merge_nodes(NodeId survivor, NodeId victim) {
  Node& s = nodes_.at(survivor.index());
  Node& v = nodes_.at(victim.index());
  if (!s.alive || !v.alive) throw std::logic_error("cdfg: merging dead node");
  for (auto& stmt : v.stmts) s.stmts.push_back(std::move(stmt));

  // Reroute victim's arcs; drop those that would become self-arcs.
  // Kill the old arc *before* add_arc: the push_back inside may grow
  // arcs_, invalidating any reference held across the call.
  for (ArcId aid : in_arcs(victim)) {
    Arc& a = arc(aid);
    a.alive = false;
    if (a.src == survivor) continue;
    add_arc(a.src, survivor, a.roles, a.backward);
  }
  for (ArcId aid : out_arcs(victim)) {
    Arc& a = arc(aid);
    a.alive = false;
    if (a.dst == survivor) continue;
    add_arc(survivor, a.dst, a.roles, a.backward);
  }
  v.alive = false;
  if (v.fu.valid()) {
    auto& order = fu_orders_[v.fu.index()];
    order.erase(std::remove(order.begin(), order.end(), victim), order.end());
  }
}

void Cdfg::set_fu_order(FuId fu, std::vector<NodeId> order) {
  fu_orders_.at(fu.index()) = std::move(order);
}

std::vector<NodeId> Cdfg::node_ids() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_)
    if (n.alive) out.push_back(n.id);
  return out;
}

std::vector<ArcId> Cdfg::arc_ids() const {
  std::vector<ArcId> out;
  for (const Arc& a : arcs_)
    if (a.alive) out.push_back(a.id);
  return out;
}

std::vector<FuId> Cdfg::fu_ids() const {
  std::vector<FuId> out;
  for (const auto& f : fus_) out.push_back(f.id);
  return out;
}

std::vector<BlockId> Cdfg::block_ids() const {
  std::vector<BlockId> out;
  for (const auto& b : blocks_) out.push_back(b.id);
  return out;
}

std::size_t Cdfg::live_node_count() const {
  std::size_t n = 0;
  for (const Node& node : nodes_)
    if (node.alive) ++n;
  return n;
}

std::size_t Cdfg::live_arc_count() const {
  std::size_t n = 0;
  for (const Arc& a : arcs_)
    if (a.alive) ++n;
  return n;
}

std::vector<ArcId> Cdfg::in_arcs(NodeId n) const {
  std::vector<ArcId> out;
  for (ArcId a : in_.at(n.index()))
    if (arcs_[a.index()].alive) out.push_back(a);
  return out;
}

std::vector<ArcId> Cdfg::out_arcs(NodeId n) const {
  std::vector<ArcId> out;
  for (ArcId a : out_.at(n.index()))
    if (arcs_[a.index()].alive) out.push_back(a);
  return out;
}

std::vector<NodeId> Cdfg::preds(NodeId n) const {
  std::vector<NodeId> out;
  for (ArcId a : in_arcs(n)) out.push_back(arc(a).src);
  return out;
}

std::vector<NodeId> Cdfg::succs(NodeId n) const {
  std::vector<NodeId> out;
  for (ArcId a : out_arcs(n)) out.push_back(arc(a).dst);
  return out;
}

std::optional<ArcId> Cdfg::find_arc(NodeId src, NodeId dst, bool backward) const {
  for (ArcId aid : out_.at(src.index())) {
    const Arc& a = arcs_[aid.index()];
    if (a.alive && a.dst == dst && a.backward == backward) return aid;
  }
  return std::nullopt;
}

const std::vector<NodeId>& Cdfg::fu_order(FuId fu) const {
  return fu_orders_.at(fu.index());
}

std::optional<FuId> Cdfg::find_fu(const std::string& name) const {
  for (const auto& f : fus_)
    if (f.name == name) return f.id;
  return std::nullopt;
}

std::optional<NodeId> Cdfg::find_node_by_label(const std::string& label) const {
  for (const Node& n : nodes_)
    if (n.alive && n.label() == label) return n.id;
  return std::nullopt;
}

std::optional<NodeId> Cdfg::find_unique(NodeKind kind) const {
  std::optional<NodeId> found;
  for (const Node& n : nodes_) {
    if (!n.alive || n.kind != kind) continue;
    if (found) return std::nullopt;  // not unique
    found = n.id;
  }
  return found;
}

std::vector<std::string> Cdfg::registers() const {
  std::set<std::string> regs;
  for (const Node& n : nodes_) {
    if (!n.alive) continue;
    for (const auto& s : n.stmts) {
      regs.insert(s.dest);
      for (const auto& r : s.reads()) regs.insert(r);
    }
    if (!n.cond_reg.empty()) regs.insert(n.cond_reg);
  }
  return {regs.begin(), regs.end()};
}

}  // namespace adc
