#pragma once
// Prometheus text exposition (format 0.0.4) for an obs::Registry.
//
// One renderer, one validator, both sides of the same contract:
// `render_prometheus` turns a consistent registry snapshot into the text
// a scraper expects, and `validate_prometheus_text` re-parses that text
// and checks the invariants scrapers rely on (names legal, TYPE before
// samples, histogram buckets cumulative, `+Inf` == `_count`).  The
// validator is what `adc_obs_check --prom` and the CI smoke scrape run,
// so a format regression fails in-repo instead of in someone's Grafana.
//
// Conventions:
//   * names: `adc_` prefix, dots/dashes become underscores
//     ("serve.queue.wait_us" -> "adc_serve_queue_wait_us");
//   * counters get a `_total` suffix;
//   * durations stay in microseconds and say so in the name (`_us`) —
//     the repo measures µs everywhere and unit fidelity beats convention;
//   * histograms use the registry's power-of-two-µs bucket edges,
//     cumulative, with a final `+Inf`; windowed p50/p95/p99 additionally
//     surface as a `<family>_window_us{quantile=...}` gauge so a human
//     with curl sees latency without running PromQL.

#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace adc {
namespace obs {

// "serve.queue.wait_us" -> "adc_serve_queue_wait_us".  Any character a
// Prometheus metric name cannot hold becomes '_'.
std::string prom_sanitize_name(const std::string& name);

// Label value escaping per the exposition format: backslash, quote, LF.
std::string prom_escape_label(const std::string& value);

std::string render_prometheus(const Registry::Snapshot& snap);

// Returns human-readable problems (empty == valid).  Checks line syntax,
// HELP/TYPE placement, duplicate series, and histogram coherence.
std::vector<std::string> validate_prometheus_text(const std::string& body);

}  // namespace obs
}  // namespace adc
