#pragma once
// The daemon's `/metrics` listener and the matching one-shot GET client.
//
// This is deliberately not an HTTP server — it is the smallest subset a
// Prometheus scraper (or curl) needs: accept, read one request, answer
// one GET with Connection: close, repeat.  Requests are handled serially
// on one thread; a metrics endpoint is scraped every few seconds by one
// or two collectors, and keeping it off the serving threads means a slow
// or hostile scraper can never touch job latency.
//
// The request-line parser is a standalone function for the same reason
// serve::FrameReader is: the part of the surface that eats untrusted
// bytes is pure, allocation-bounded, and fuzzable in isolation
// (tests/test_obs.cpp feeds it the truncation/poison corpus).

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace adc {
namespace obs {

struct HttpRequestLine {
  bool ok = false;
  std::string method;
  std::string target;   // origin-form, always starts with '/'
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  std::string error;    // set when !ok
};

// Parses "METHOD SP target SP HTTP/x.y" (no trailing CR/LF).  Strict on
// purpose: exactly two single spaces, a token method, an origin-form
// target, a known version — anything else is a 400, never a guess.
HttpRequestLine parse_http_request_line(const std::string& line);

// Serves GET requests on a loopback TCP port from one background thread.
class MetricsHttpServer {
 public:
  // Returns true (with body/content_type set) if the path resolves.
  using Handler = std::function<bool(const std::string& path,
                                     std::string* content_type,
                                     std::string* body)>;

  MetricsHttpServer() = default;
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Binds host:port (port 0 = ephemeral) and starts the accept thread.
  // Returns false with *error set on bind/listen failure.
  bool start(const std::string& host, std::uint16_t port, Handler handler,
             std::string* error);
  void stop();

  bool running() const { return running_.load(); }
  std::uint16_t port() const { return port_; }

  // Total requests answered (any status) — a liveness probe for tests.
  std::uint64_t requests_served() const { return served_.load(); }

 private:
  void loop();
  void handle_connection(int fd);

  Handler handler_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
};

// One-shot HTTP/1.0 GET; fills *status and *body (headers dropped).
// Returns false with *error set on connect/transport problems.  This is
// how adc_obs_check --prom-fetch and the smoke test scrape a live
// daemon without assuming curl exists.
bool http_get(const std::string& host, std::uint16_t port,
              const std::string& path, int timeout_ms, int* status,
              std::string* body, std::string* error);

}  // namespace obs
}  // namespace adc
