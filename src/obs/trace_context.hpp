#pragma once
// Request-scoped trace propagation for the serving layer.
//
// The global trace::Tracer (trace/tracer.hpp) answers "what did this
// *process* do" — per-thread tracks, every job of every client
// interleaved.  A daemon serving concurrent clients also needs the
// inverse view: "what happened to *this request*", as one connected span
// tree, regardless of which threads the stages landed on.
//
// A JobTrace is that tree.  The server allocates one per submitted job
// (trace id minted at accept), opens a root span covering the job's
// whole lifetime and a queue-wait child; the TraceContext — a
// {JobTrace, parent-span-id} pair — rides the FlowRequest into the
// executor, where every stage (frontend, each gt step, per-controller
// synthesis, sim, disk replay) opens a child span under its parent.
// Span ids are explicit, so the tree survives the work-stealing pool:
// a controller subtask executing on another thread still parents
// correctly under its stage.
//
// Export is Chrome trace_event JSON with complete ("X") events — one
// self-contained, Perfetto-loadable document per job, fetched from a
// live daemon via the `trace` protocol op (adc_submit --trace-out).
// Everything is inert when the TraceContext is empty: a TraceSpan on a
// context without a JobTrace compiles to two null checks.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace adc {

class JsonWriter;

namespace obs {

struct TraceSpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root (no parent)
  std::string name;
  std::string category;
  std::uint64_t start_us = 0;  // relative to the JobTrace epoch
  std::uint64_t end_us = 0;    // 0 while the span is still open
  std::uint32_t thread = 0;    // stable per-trace thread index
  std::vector<std::pair<std::string, std::string>> args;
};

// Thread-safe per-job span collector.  Span granularity is one stage of
// one synthesis job, so a mutex per operation is noise next to the work
// being traced.
class JobTrace {
 public:
  explicit JobTrace(std::uint64_t trace_id);

  std::uint64_t trace_id() const { return trace_id_; }
  // 16-hex-digit rendering — what the wire protocol echoes.
  std::string trace_id_hex() const;

  // Microseconds since this trace was created (the trace epoch).
  std::uint64_t now_micros() const;

  // Opens a span under `parent` (0 = a root) and returns its id.
  std::uint64_t begin(const std::string& name, const std::string& category,
                      std::uint64_t parent);
  // Closes an open span, attaching `args` to it.  Unknown/already-closed
  // ids are ignored (a late close after export is harmless).
  void end(std::uint64_t id,
           std::vector<std::pair<std::string, std::string>> args = {});
  void annotate(std::uint64_t id, const std::string& key,
                const std::string& value);

  // Snapshot of every span recorded so far (open spans have end_us == 0).
  std::vector<TraceSpanRecord> spans() const;

  // Chrome trace_event JSON ({"traceEvents": [...]}) of the *finished*
  // spans as complete events; `pid` labels the process column (the
  // server passes the job id).  Span/parent/trace ids land in the args,
  // so the causal tree survives the flat event list.
  void write_chrome_trace(JsonWriter& w, std::uint64_t pid) const;

 private:
  std::uint32_t thread_index_locked();

  const std::uint64_t trace_id_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::uint64_t next_span_ = 1;
  std::vector<TraceSpanRecord> spans_;  // span id N lives at index N-1
  std::vector<std::pair<std::thread::id, std::uint32_t>> threads_;
};

// The propagation handle: which trace, and which span new children hang
// under.  Copyable, cheap, and inert when default-constructed — the
// no-daemon CLIs run with an empty context and pay two pointer tests.
class TraceContext {
 public:
  TraceContext() = default;
  TraceContext(std::shared_ptr<JobTrace> trace, std::uint64_t parent)
      : trace_(std::move(trace)), parent_(parent) {}

  bool active() const { return trace_ != nullptr; }
  JobTrace* trace() const { return trace_.get(); }
  const std::shared_ptr<JobTrace>& trace_ptr() const { return trace_; }
  std::uint64_t parent() const { return parent_; }

 private:
  std::shared_ptr<JobTrace> trace_;
  std::uint64_t parent_ = 0;
};

// RAII span on a TraceContext; mirrors trace/tracer.hpp's ScopedSpan
// (args land on the close) but with explicit parentage instead of
// thread-track nesting.
class TraceSpan {
 public:
  TraceSpan() = default;  // inert
  TraceSpan(const TraceContext& ctx, std::string name,
            std::string category = "stage");
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return ctx_.active(); }
  std::uint64_t id() const { return id_; }
  // Context for children of *this* span — what gets passed downstream.
  TraceContext context() const { return TraceContext(ctx_.trace_ptr(), id_); }

  void arg(std::string key, std::string value);
  void arg(std::string key, const char* value) {
    arg(std::move(key), std::string(value));
  }
  void arg(std::string key, std::uint64_t value) {
    arg(std::move(key), std::to_string(value));
  }
  void arg(std::string key, bool value) {
    arg(std::move(key), std::string(value ? "true" : "false"));
  }

 private:
  TraceContext ctx_;
  std::uint64_t id_ = 0;
  std::vector<std::pair<std::string, std::string>> end_args_;
};

}  // namespace obs
}  // namespace adc
