#include "obs/access_log.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "report/json.hpp"
#include "report/json_parse.hpp"

namespace adc {
namespace obs {

namespace {

std::uint64_t wall_clock_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

int open_append(const std::string& path) {
  return ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                0644);
}

}  // namespace

AccessLog::AccessLog(std::string path, std::int64_t max_bytes)
    : path_(std::move(path)), max_bytes_(max_bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  fd_ = open_append(path_);
  if (fd_ >= 0) {
    struct stat st{};
    if (::fstat(fd_, &st) == 0) size_ = st.st_size;
  } else {
    write_error_ = true;
  }
}

AccessLog::~AccessLog() {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool AccessLog::ok() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fd_ >= 0 && !write_error_;
}

void AccessLog::rotate_locked() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  // rename() replaces any previous .1 atomically; the worst crash window
  // leaves both files intact under their new names.
  const std::string old = path_ + ".1";
  if (::rename(path_.c_str(), old.c_str()) != 0 && errno != ENOENT)
    write_error_ = true;
  fd_ = open_append(path_);
  size_ = 0;
  if (fd_ < 0) write_error_ = true;
}

void AccessLog::append(const AccessLogEntry& e) {
  JsonWriter w;
  w.begin_object();
  w.kv("ts_ms", wall_clock_ms());
  w.kv("event", e.event);
  w.kv("id", e.id);
  w.kv("trace_id", e.trace_id);
  w.kv("class", e.priority);
  w.kv("client", e.client);
  w.kv("bench", e.bench);
  w.kv("script", e.script);
  w.kv("status", e.status);
  w.kv("queue_wait_us", e.queue_wait_us);
  w.kv("service_us", e.service_us);
  w.kv("wall_ms", e.wall_ms);
  w.kv("from_disk_cache", e.from_disk_cache);
  w.kv("result_bytes", e.result_bytes);
  if (e.event == "rejected") w.kv("retry_after_ms", e.retry_after_ms);
  w.end_object();
  std::string line = w.str();
  line += '\n';

  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return;
  if (max_bytes_ > 0 &&
      size_ + static_cast<std::int64_t>(line.size()) > max_bytes_ &&
      size_ > 0)
    rotate_locked();
  if (fd_ < 0) return;
  // One write(2) per line on an O_APPEND fd: concurrent appends land
  // whole, in some order, never spliced.
  const ssize_t n = ::write(fd_, line.data(), line.size());
  if (n != static_cast<ssize_t>(line.size()))
    write_error_ = true;
  else {
    size_ += n;
    ++lines_;
  }
}

void AccessLog::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ >= 0) ::fsync(fd_);
}

std::vector<std::string> AccessLog::validate(const std::string& path,
                                             std::uint64_t* lines_out) {
  std::vector<std::string> problems;
  std::ifstream in(path);
  if (!in) {
    problems.push_back("cannot open " + path);
    return problems;
  }
  std::string line;
  std::uint64_t lineno = 0, counted = 0;
  std::uint64_t last_ts = 0;
  auto fail = [&](const std::string& what) {
    problems.push_back(path + ":" + std::to_string(lineno) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    ++counted;
    JsonValue doc;
    try {
      doc = parse_json(line);
    } catch (const std::exception& ex) {
      fail(std::string("bad JSON: ") + ex.what());
      continue;
    }
    if (!doc.is_object()) {
      fail("line is not a JSON object");
      continue;
    }
    for (const char* req :
         {"ts_ms", "event", "id", "trace_id", "class", "client", "bench",
          "script", "status", "queue_wait_us", "service_us", "wall_ms",
          "from_disk_cache", "result_bytes"}) {
      if (!doc.find(req)) fail(std::string("missing member '") + req + "'");
    }
    const JsonValue* ev = doc.find("event");
    if (ev && ev->is_string() && ev->string != "done" &&
        ev->string != "rejected" && ev->string != "cancelled")
      fail("unknown event '" + ev->string + "'");
    const JsonValue* cls = doc.find("class");
    if (cls && cls->is_string() && cls->string != "high" &&
        cls->string != "normal" && cls->string != "low")
      fail("unknown class '" + cls->string + "'");
    if (ev && ev->is_string() && ev->string == "rejected" &&
        !doc.find("retry_after_ms"))
      fail("rejected entry missing retry_after_ms");
    const JsonValue* ts = doc.find("ts_ms");
    if (ts && ts->is_number()) {
      const auto t = static_cast<std::uint64_t>(ts->number);
      if (t + 1000 < last_ts)
        fail("timestamp went backwards by more than a second");
      last_ts = std::max(last_ts, t);
    } else if (ts) {
      fail("ts_ms is not a number");
    }
    for (const char* num :
         {"id", "queue_wait_us", "service_us", "wall_ms", "result_bytes"}) {
      const JsonValue* v = doc.find(num);
      if (v && !v->is_number())
        fail(std::string("'") + num + "' is not a number");
    }
    const JsonValue* tr = doc.find("trace_id");
    if (tr && tr->is_string() && !tr->string.empty() &&
        tr->string.size() != 16)
      fail("trace_id is not 16 hex characters");
  }
  if (lines_out) *lines_out = counted;
  return problems;
}

}  // namespace obs
}  // namespace adc
