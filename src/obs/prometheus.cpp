#include "obs/prometheus.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace adc {
namespace obs {

std::string prom_sanitize_name(const std::string& name) {
  std::string out = "adc_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

std::string escape_help(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string label_block(const Labels& labels,
                        const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + prom_escape_label(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + prom_escape_label(extra_value) + "\"";
  }
  out += '}';
  return out;
}

std::string format_value(double v) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

void emit_header(std::string& out, const std::string& prom_name,
                 const std::string& type, const std::string& help) {
  if (!help.empty())
    out += "# HELP " + prom_name + " " + escape_help(help) + "\n";
  out += "# TYPE " + prom_name + " " + type + "\n";
}

const std::string* family_help(const Registry::Snapshot& snap,
                               const std::string& name) {
  auto it = snap.help.find(name);
  return it == snap.help.end() ? nullptr : &it->second;
}

}  // namespace

std::string render_prometheus(const Registry::Snapshot& snap) {
  std::string out;
  out.reserve(16 * 1024);

  std::string last_family;
  for (const auto& c : snap.counters) {
    std::string prom = prom_sanitize_name(c.name);
    if (prom.size() < 6 || prom.compare(prom.size() - 6, 6, "_total") != 0)
      prom += "_total";
    if (prom != last_family) {
      const std::string* help = family_help(snap, c.name);
      emit_header(out, prom, "counter", help ? *help : "");
      last_family = prom;
    }
    out += prom + label_block(c.labels) + " " + std::to_string(c.value) + "\n";
  }

  last_family.clear();
  for (const auto& g : snap.gauges) {
    const std::string prom = prom_sanitize_name(g.name);
    if (prom != last_family) {
      const std::string* help = family_help(snap, g.name);
      emit_header(out, prom, "gauge", help ? *help : "");
      last_family = prom;
    }
    out += prom + label_block(g.labels) + " " + format_value(g.value) + "\n";
  }

  // Histograms: the full cumulative bucket series, then the windowed
  // quantiles as a sibling gauge family.
  last_family.clear();
  for (const auto& h : snap.histograms) {
    const std::string prom = prom_sanitize_name(h.name);
    if (prom != last_family) {
      const std::string* help = family_help(snap, h.name);
      emit_header(out, prom, "histogram", help ? *help : "");
      last_family = prom;
    }
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < SlidingHistogram::kBuckets; ++i) {
      cum += h.hist.buckets[i];
      out += prom + "_bucket" +
             label_block(h.labels, "le",
                         std::to_string(histogram_bucket_upper_micros(i))) +
             " " + std::to_string(cum) + "\n";
    }
    out += prom + "_bucket" + label_block(h.labels, "le", "+Inf") + " " +
           std::to_string(h.hist.count) + "\n";
    out += prom + "_sum" + label_block(h.labels) + " " +
           std::to_string(h.hist.sum_micros) + "\n";
    out += prom + "_count" + label_block(h.labels) + " " +
           std::to_string(h.hist.count) + "\n";
  }
  std::string last_window;
  for (const auto& h : snap.histograms) {
    const std::string prom = prom_sanitize_name(h.name) + "_window";
    if (prom != last_window) {
      emit_header(out, prom, "gauge",
                  "Windowed (last 60s) latency quantiles in microseconds");
      last_window = prom;
    }
    const std::pair<const char*, std::uint64_t> quantiles[] = {
        {"0.5", h.hist.window_p50_micros},
        {"0.95", h.hist.window_p95_micros},
        {"0.99", h.hist.window_p99_micros},
    };
    for (const auto& [q, v] : quantiles) {
      out += prom + label_block(h.labels, "quantile", q) + " " +
             std::to_string(v) + "\n";
    }
  }
  return out;
}

namespace {

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(s[0])) return false;
  for (char c : s)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

bool valid_label_name(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(s[0])) return false;
  for (char c : s)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

bool parse_sample_value(const std::string& s, double* out) {
  if (s == "+Inf" || s == "Inf") {
    *out = HUGE_VAL;
    return true;
  }
  if (s == "-Inf") {
    *out = -HUGE_VAL;
    return true;
  }
  if (s == "NaN") {
    *out = NAN;
    return true;
  }
  try {
    std::size_t pos = 0;
    *out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

struct ParsedSample {
  std::string name;
  std::string labels_raw;  // canonical text inside {} (escapes intact)
  std::string le;          // value of the le label if present
  double value = 0;
};

// Parses `name{k="v",...} value`; returns false (with *err set) on any
// syntax problem.
bool parse_sample_line(const std::string& line, ParsedSample* out,
                       std::string* err) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ' &&
         line[i] != '\t')
    ++i;
  out->name = line.substr(0, i);
  if (!valid_metric_name(out->name)) {
    *err = "invalid metric name";
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    const std::size_t open = i++;
    bool first = true;
    while (true) {
      if (i >= line.size()) {
        *err = "unterminated label block";
        return false;
      }
      if (line[i] == '}') {
        ++i;
        break;
      }
      if (!first) {
        if (line[i] != ',') {
          *err = "expected ',' between labels";
          return false;
        }
        ++i;
      }
      first = false;
      std::size_t ks = i;
      while (i < line.size() && line[i] != '=') ++i;
      if (i >= line.size() || !valid_label_name(line.substr(ks, i - ks))) {
        *err = "invalid label name";
        return false;
      }
      const std::string lname = line.substr(ks, i - ks);
      ++i;  // '='
      if (i >= line.size() || line[i] != '"') {
        *err = "label value must be quoted";
        return false;
      }
      ++i;
      std::string lvalue;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          if (i + 1 >= line.size()) {
            *err = "dangling escape in label value";
            return false;
          }
          const char e = line[i + 1];
          if (e != '\\' && e != '"' && e != 'n') {
            *err = "bad escape in label value";
            return false;
          }
          lvalue += e == 'n' ? '\n' : e;
          i += 2;
          continue;
        }
        lvalue += line[i++];
      }
      if (i >= line.size()) {
        *err = "unterminated label value";
        return false;
      }
      ++i;  // closing quote
      if (lname == "le") out->le = lvalue;
    }
    out->labels_raw = line.substr(open, i - open);
  }
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  const std::size_t vs = i;
  while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
  if (vs == i) {
    *err = "missing sample value";
    return false;
  }
  if (!parse_sample_value(line.substr(vs, i - vs), &out->value)) {
    *err = "unparseable sample value";
    return false;
  }
  // Anything after the value would be a timestamp; allow one integer.
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i < line.size()) {
    for (std::size_t j = i; j < line.size(); ++j) {
      if (!std::isdigit(static_cast<unsigned char>(line[j])) &&
          line[j] != '-') {
        *err = "trailing garbage after sample value";
        return false;
      }
    }
  }
  return true;
}

std::string strip_suffix(const std::string& name) {
  for (const char* suf : {"_bucket", "_sum", "_count"}) {
    const std::string s = suf;
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0)
      return name.substr(0, name.size() - s.size());
  }
  return name;
}

}  // namespace

std::vector<std::string> validate_prometheus_text(const std::string& body) {
  std::vector<std::string> problems;
  std::map<std::string, std::string> types;  // family -> declared type
  std::set<std::string> seen_series;
  // histogram family+labels(without le) -> {last cumulative, count, inf}
  struct HistState {
    double last_bucket = -1;
    double last_le = -HUGE_VAL;
    bool has_inf = false;
    double inf_value = 0;
    bool has_count = false;
    double count_value = 0;
  };
  std::map<std::string, HistState> hists;

  std::istringstream in(body);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& what) {
    problems.push_back("line " + std::to_string(lineno) + ": " + what +
                       " [" + line.substr(0, 80) + "]");
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name;
      ls >> hash >> kind >> name;
      if (kind == "TYPE") {
        std::string type;
        ls >> type;
        if (!valid_metric_name(name)) fail("TYPE with invalid metric name");
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped")
          fail("unknown TYPE '" + type + "'");
        if (types.count(name)) fail("duplicate TYPE for " + name);
        types[name] = type;
      } else if (kind == "HELP") {
        if (!valid_metric_name(name)) fail("HELP with invalid metric name");
        if (types.count(name)) fail("HELP after TYPE for " + name);
      }
      // other comments are legal and ignored
      continue;
    }
    ParsedSample s;
    std::string err;
    if (!parse_sample_line(line, &s, &err)) {
      fail(err);
      continue;
    }
    const std::string series = s.name + s.labels_raw;
    if (!seen_series.insert(series).second) fail("duplicate series");

    const std::string family = strip_suffix(s.name);
    auto tit = types.find(family);
    const bool is_hist_part = tit != types.end() &&
                              tit->second == "histogram";
    if (tit == types.end()) tit = types.find(s.name);
    if (tit == types.end())
      fail("sample before any TYPE declaration for its family");

    if (is_hist_part) {
      // Key the per-labelset state on the labels minus `le`.
      std::string lb = s.labels_raw;
      if (!s.le.empty()) {
        const std::string needle = "le=\"";
        const std::size_t p = lb.find(needle);
        if (p != std::string::npos) {
          std::size_t q = lb.find('"', p + needle.size());
          if (q != std::string::npos) {
            std::size_t from = p, to = q + 1;
            if (to < lb.size() && lb[to] == ',') ++to;
            else if (from > 1 && lb[from - 1] == ',') --from;
            lb.erase(from, to - from);
          }
        }
      }
      HistState& st = hists[family + lb];
      if (s.name == family + "_bucket") {
        if (s.le.empty()) {
          fail("_bucket sample without le label");
        } else {
          double le = 0;
          if (!parse_sample_value(s.le, &le)) {
            fail("unparseable le value");
          } else {
            if (le <= st.last_le) fail("le edges not strictly increasing");
            st.last_le = le;
            if (st.last_bucket >= 0 && s.value < st.last_bucket)
              fail("histogram buckets not cumulative");
            st.last_bucket = s.value;
            if (std::isinf(le)) {
              st.has_inf = true;
              st.inf_value = s.value;
            }
          }
        }
      } else if (s.name == family + "_count") {
        st.has_count = true;
        st.count_value = s.value;
      }
    }
  }
  for (const auto& [key, st] : hists) {
    if (!st.has_inf)
      problems.push_back("histogram " + key + ": missing +Inf bucket");
    if (!st.has_count)
      problems.push_back("histogram " + key + ": missing _count");
    if (st.has_inf && st.has_count && st.inf_value != st.count_value)
      problems.push_back("histogram " + key + ": +Inf bucket (" +
                         format_value(st.inf_value) + ") != _count (" +
                         format_value(st.count_value) + ")");
  }
  return problems;
}

}  // namespace obs
}  // namespace adc
