#pragma once
// Serving-side metrics registry.
//
// The runtime already has MetricsRegistry (runtime/metrics.hpp) for batch
// runs: unlabeled names, lifetime-cumulative histograms, one JSON dump at
// exit.  A long-lived daemon needs two things that registry deliberately
// does not have:
//
//   * labels — "queue wait" is one *family* with one time series per
//     priority class, not three unrelated names, so a Prometheus scraper
//     can aggregate and a dashboard can facet;
//   * windowed quantiles — "p95 over the last minute", not "p95 since
//     the process started three weeks ago".
//
// obs::Registry provides both.  Counters and gauges are single atomics
// (lock-free after the first lookup); SlidingHistogram keeps the
// *lifetime* cumulative buckets Prometheus needs (monotone `_bucket`
// series) plus a small ring of time slices for live windowed p50/p95/p99.
// `snapshot()` copies everything under one mutex, so a scrape never sees
// torn totals — the same guarantee the `stats` op gets from satellite 1.
//
// Instruments are never unregistered; returned references live as long as
// the registry, so hot paths capture them once and increment forever.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace adc {

class JsonWriter;

namespace obs {

// Sorted (key, value) pairs; part of a time series' identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void set(double v);
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  // Gauges that carry fractional values (EWMA milliseconds, hit ratios)
  // store fixed-point: value() * 1e-3.
  double value_scaled() const;
  bool scaled() const { return scaled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<bool> scaled_{false};
};

// Power-of-two-microsecond histogram: lifetime cumulative buckets for
// Prometheus (bucket i counts durations < 2^(i+1) µs) plus a ring of
// wall-clock slices so live quantiles answer "recently", not "ever".
class SlidingHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;
  static constexpr std::size_t kSlices = 6;
  static constexpr std::uint64_t kSliceSeconds = 10;  // 60 s window total

  void record_micros(std::uint64_t micros);

  struct Snapshot {
    // Lifetime (Prometheus: monotone counters).
    std::uint64_t count = 0;
    std::uint64_t sum_micros = 0;
    std::uint64_t max_micros = 0;
    std::uint64_t buckets[kBuckets] = {};  // non-cumulative per bucket
    // Windowed (last kSlices * kSliceSeconds seconds).
    std::uint64_t window_count = 0;
    std::uint64_t window_p50_micros = 0;
    std::uint64_t window_p95_micros = 0;
    std::uint64_t window_p99_micros = 0;
  };
  Snapshot snapshot() const;

  // Test hook: advance the slice clock as if `seconds` elapsed, expiring
  // old slices without sleeping.
  void advance_for_test(std::uint64_t seconds);

 private:
  struct Slice {
    std::uint64_t epoch = 0;  // slice index since process start; 0 = empty
    std::uint64_t count = 0;
    std::uint64_t buckets[kBuckets] = {};
  };
  std::uint64_t slice_epoch_now() const;
  Slice& slice_for_locked(std::uint64_t epoch);

  mutable std::mutex mu_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t buckets_[kBuckets] = {};
  Slice slices_[kSlices];
  std::uint64_t fake_advance_s_ = 0;
};

// Upper bound of `micros`'s power-of-two bucket; shared with the
// Prometheus renderer so `le=` edges and recorded buckets agree.
std::size_t histogram_bucket_index(std::uint64_t micros);
std::uint64_t histogram_bucket_upper_micros(std::size_t index);

class Registry {
 public:
  // Instrument lookup-or-create.  `help` is kept from the *first*
  // registration of a family and feeds Prometheus # HELP lines.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  SlidingHistogram& histogram(const std::string& name,
                              const Labels& labels = {},
                              const std::string& help = "");

  struct Series {
    std::string name;
    Labels labels;
  };
  struct CounterSample : Series {
    std::uint64_t value = 0;
  };
  struct GaugeSample : Series {
    double value = 0;
  };
  struct HistogramSample : Series {
    SlidingHistogram::Snapshot hist;
  };
  struct Snapshot {
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;
    std::map<std::string, std::string> help;  // family name -> help text
  };
  // One mutex, one instant: no torn cross-metric invariants.
  Snapshot snapshot() const;

  // {"counters": [...], "gauges": [...], "histograms": [...]} — the
  // `metrics` protocol op's payload.
  void write_json(JsonWriter& w) const;

  // Every distinct family name currently registered (the catalogue the
  // CI smoke diff pins down).
  std::vector<std::string> family_names() const;

 private:
  static std::string series_key(const std::string& name, const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<SlidingHistogram>> histograms_;
  std::map<std::string, Series> series_;  // key -> decoded identity
  std::map<std::string, std::string> help_;
};

}  // namespace obs
}  // namespace adc
