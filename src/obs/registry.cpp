#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>

#include "report/json.hpp"

namespace adc {
namespace obs {

void Gauge::set(double v) {
  scaled_.store(true, std::memory_order_relaxed);
  v_.store(static_cast<std::int64_t>(std::llround(v * 1000.0)),
           std::memory_order_relaxed);
}

double Gauge::value_scaled() const {
  const std::int64_t raw = v_.load(std::memory_order_relaxed);
  return scaled() ? static_cast<double>(raw) / 1000.0
                  : static_cast<double>(raw);
}

std::size_t histogram_bucket_index(std::uint64_t micros) {
  std::size_t i = 0;
  while (i + 1 < SlidingHistogram::kBuckets && (micros >> (i + 1)) != 0) ++i;
  return i;
}

std::uint64_t histogram_bucket_upper_micros(std::size_t index) {
  return std::uint64_t{1} << (index + 1);
}

std::uint64_t SlidingHistogram::slice_epoch_now() const {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const auto s = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(now).count());
  // +1 so a live slice's epoch is never 0 (0 marks "empty").
  return (s + fake_advance_s_) / kSliceSeconds + 1;
}

SlidingHistogram::Slice& SlidingHistogram::slice_for_locked(
    std::uint64_t epoch) {
  Slice& s = slices_[epoch % kSlices];
  if (s.epoch != epoch) {
    s.epoch = epoch;
    s.count = 0;
    std::fill(std::begin(s.buckets), std::end(s.buckets), 0);
  }
  return s;
}

void SlidingHistogram::record_micros(std::uint64_t micros) {
  const std::size_t b = histogram_bucket_index(micros);
  std::lock_guard<std::mutex> lk(mu_);
  ++count_;
  sum_ += micros;
  max_ = std::max(max_, micros);
  ++buckets_[b];
  Slice& s = slice_for_locked(slice_epoch_now());
  ++s.count;
  ++s.buckets[b];
}

void SlidingHistogram::advance_for_test(std::uint64_t seconds) {
  std::lock_guard<std::mutex> lk(mu_);
  fake_advance_s_ += seconds;
}

SlidingHistogram::Snapshot SlidingHistogram::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot out;
  out.count = count_;
  out.sum_micros = sum_;
  out.max_micros = max_;
  std::copy(std::begin(buckets_), std::end(buckets_), std::begin(out.buckets));

  // Merge the live slices into one windowed distribution; slices older
  // than the window (epoch too far behind) are dead and skipped.
  const std::uint64_t now_epoch = slice_epoch_now();
  std::uint64_t win[kBuckets] = {};
  for (const Slice& s : slices_) {
    if (s.epoch == 0 || s.epoch + kSlices <= now_epoch) continue;
    out.window_count += s.count;
    for (std::size_t i = 0; i < kBuckets; ++i) win[i] += s.buckets[i];
  }
  auto quantile = [&](double q) -> std::uint64_t {
    if (out.window_count == 0) return 0;
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(out.window_count)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += win[i];
      if (seen >= rank && win[i] > 0)
        return std::min(histogram_bucket_upper_micros(i), max_);
    }
    return max_;
  };
  out.window_p50_micros = quantile(0.50);
  out.window_p95_micros = quantile(0.95);
  out.window_p99_micros = quantile(0.99);
  return out;
}

std::string Registry::series_key(const std::string& name,
                                 const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter& Registry::counter(const std::string& name, const Labels& labels,
                           const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string key = series_key(name, labels);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(key, std::make_unique<Counter>()).first;
    series_[key] = Series{name, labels};
    if (!help.empty()) help_.emplace(name, help);
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels,
                       const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string key = series_key(name, labels);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(key, std::make_unique<Gauge>()).first;
    series_[key] = Series{name, labels};
    if (!help.empty()) help_.emplace(name, help);
  }
  return *it->second;
}

SlidingHistogram& Registry::histogram(const std::string& name,
                                      const Labels& labels,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string key = series_key(name, labels);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_.emplace(key, std::make_unique<SlidingHistogram>()).first;
    series_[key] = Series{name, labels};
    if (!help.empty()) help_.emplace(name, help);
  }
  return *it->second;
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot out;
  out.help = help_;
  for (const auto& [key, c] : counters_) {
    CounterSample s;
    static_cast<Series&>(s) = series_.at(key);
    s.value = c->value();
    out.counters.push_back(std::move(s));
  }
  for (const auto& [key, g] : gauges_) {
    GaugeSample s;
    static_cast<Series&>(s) = series_.at(key);
    s.value = g->value_scaled();
    out.gauges.push_back(std::move(s));
  }
  for (const auto& [key, h] : histograms_) {
    HistogramSample s;
    static_cast<Series&>(s) = series_.at(key);
    s.hist = h->snapshot();
    out.histograms.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> Registry::family_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  for (const auto& [key, series] : series_) {
    (void)key;
    if (names.empty() || names.back() != series.name)
      names.push_back(series.name);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

namespace {

void write_series_ident(JsonWriter& w, const Registry::Series& s) {
  w.kv("name", s.name);
  if (!s.labels.empty()) {
    w.key("labels");
    w.begin_object();
    for (const auto& [k, v] : s.labels) w.kv(k, v);
    w.end_object();
  }
}

}  // namespace

void Registry::write_json(JsonWriter& w) const {
  const Snapshot snap = snapshot();
  w.begin_object();
  w.key("counters");
  w.begin_array();
  for (const auto& c : snap.counters) {
    w.begin_object();
    write_series_ident(w, c);
    w.kv("value", c.value);
    w.end_object();
  }
  w.end_array();
  w.key("gauges");
  w.begin_array();
  for (const auto& g : snap.gauges) {
    w.begin_object();
    write_series_ident(w, g);
    w.kv("value", g.value);
    w.end_object();
  }
  w.end_array();
  w.key("histograms");
  w.begin_array();
  for (const auto& h : snap.histograms) {
    w.begin_object();
    write_series_ident(w, h);
    w.kv("count", h.hist.count);
    w.kv("sum_us", h.hist.sum_micros);
    w.kv("max_us", h.hist.max_micros);
    w.kv("window_count", h.hist.window_count);
    w.kv("window_p50_us", h.hist.window_p50_micros);
    w.kv("window_p95_us", h.hist.window_p95_micros);
    w.kv("window_p99_us", h.hist.window_p99_micros);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace obs
}  // namespace adc
