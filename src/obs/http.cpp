#include "obs/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace adc {
namespace obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8 * 1024;
constexpr int kIoTimeoutMs = 2000;

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

bool is_tchar(char c) {
  // RFC 7230 token characters — what a method may contain.
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
      (c >= '0' && c <= '9'))
    return true;
  return std::strchr("!#$%&'*+-.^_`|~", c) != nullptr;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer gone — nothing useful left to do
    off += static_cast<std::size_t>(n);
  }
}

std::string simple_response(int status, const std::string& reason,
                            const std::string& content_type,
                            const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\n"
                    "Content-Type: " +
                    content_type +
                    "\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) +
                    "\r\n"
                    "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpRequestLine parse_http_request_line(const std::string& line) {
  HttpRequestLine out;
  auto fail = [&](const char* why) {
    out.ok = false;
    out.error = why;
    return out;
  };
  if (line.empty()) return fail("empty request line");
  if (line.size() > kMaxRequestBytes) return fail("request line too long");
  for (char c : line) {
    // CR/LF must have been stripped by the caller; any other control
    // byte (or an embedded NUL via std::string) is poison, not HTTP.
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f)
      return fail("control byte in request line");
  }
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return fail("missing space after method");
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return fail("missing space after target");
  if (line.find(' ', sp2 + 1) != std::string::npos)
    return fail("extra space in request line");

  out.method = line.substr(0, sp1);
  out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  out.version = line.substr(sp2 + 1);

  if (out.method.empty()) return fail("empty method");
  for (char c : out.method)
    if (!is_tchar(c)) return fail("invalid character in method");
  if (out.target.empty() || out.target[0] != '/')
    return fail("target must be origin-form (start with '/')");
  if (out.version != "HTTP/1.0" && out.version != "HTTP/1.1")
    return fail("unsupported HTTP version");
  out.ok = true;
  return out;
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

bool MetricsHttpServer::start(const std::string& host, std::uint16_t port,
                              Handler handler, std::string* error) {
  handler_ = std::move(handler);
  if (::pipe(wake_pipe_) != 0) {
    if (error) *error = std::string("pipe() failed: ") + std::strerror(errno);
    return false;
  }
  set_cloexec(wake_pipe_[0]);
  set_cloexec(wake_pipe_[1]);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error)
      *error = std::string("socket(AF_INET) failed: ") + std::strerror(errno);
    return false;
  }
  set_cloexec(listen_fd_);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "metrics: bad listen address: " + host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error)
      *error = "metrics: cannot bind " + host + ":" + std::to_string(port) +
               ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0)
    port_ = ntohs(bound.sin_port);

  running_ = true;
  thread_ = std::thread([this] { loop(); });
  return true;
}

void MetricsHttpServer::stop() {
  if (!running_.exchange(false)) {
    // Never started (or already stopped): still reclaim the pipe fds.
    for (int& fd : wake_pipe_)
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    return;
  }
  char b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_)
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
}

void MetricsHttpServer::loop() {
  while (running_.load()) {
    pollfd fds[2] = {{wake_pipe_[0], POLLIN, 0}, {listen_fd_, POLLIN, 0}};
    const int r = ::poll(fds, 2, 500);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents & POLLIN) {
      char buf[16];
      [[maybe_unused]] ssize_t got = ::read(wake_pipe_[0], buf, sizeof(buf));
    }
    if (!running_.load()) break;
    if (fds[1].revents & POLLIN) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        set_cloexec(fd);
        handle_connection(fd);
        ::close(fd);
      }
    }
  }
}

void MetricsHttpServer::handle_connection(int fd) {
  timeval tv{};
  tv.tv_sec = kIoTimeoutMs / 1000;
  tv.tv_usec = (kIoTimeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  // Only the request line matters (we answer and close); read until the
  // first newline or the size cap, whichever comes first.
  std::string req;
  while (req.size() < kMaxRequestBytes &&
         req.find('\n') == std::string::npos) {
    char buf[1024];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }
  served_.fetch_add(1);
  std::size_t eol = req.find('\n');
  if (eol == std::string::npos) {
    send_all(fd, simple_response(400, "Bad Request", "text/plain",
                                 "truncated request\n"));
    return;
  }
  std::string line = req.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const HttpRequestLine parsed = parse_http_request_line(line);
  if (!parsed.ok) {
    send_all(fd, simple_response(400, "Bad Request", "text/plain",
                                 parsed.error + "\n"));
    return;
  }
  if (parsed.method != "GET" && parsed.method != "HEAD") {
    send_all(fd, simple_response(405, "Method Not Allowed", "text/plain",
                                 "only GET is served here\n"));
    return;
  }
  // Strip any query string; handlers route on the bare path.
  std::string path = parsed.target;
  const std::size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);

  std::string content_type = "text/plain";
  std::string body;
  if (!handler_ || !handler_(path, &content_type, &body)) {
    send_all(fd, simple_response(404, "Not Found", "text/plain",
                                 "unknown path " + path + "\n"));
    return;
  }
  if (parsed.method == "HEAD") body.clear();
  send_all(fd, simple_response(200, "OK", content_type, body));
}

bool http_get(const std::string& host, std::uint16_t port,
              const std::string& path, int timeout_ms, int* status,
              std::string* body, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket() failed: ") + std::strerror(errno);
    return false;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad address: " + host;
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error)
      *error = "connect " + host + ":" + std::to_string(port) + " failed: " +
               std::strerror(errno);
    ::close(fd);
    return false;
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  send_all(fd, req);
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    raw.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  if (raw.empty()) {
    if (error) *error = "empty response";
    return false;
  }
  const std::size_t eol = raw.find("\r\n");
  if (eol == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    if (error) *error = "malformed status line";
    return false;
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > eol) {
    if (error) *error = "malformed status line";
    return false;
  }
  if (status) *status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t hdr_end = raw.find("\r\n\r\n");
  if (body)
    *body = hdr_end == std::string::npos ? std::string()
                                         : raw.substr(hdr_end + 4);
  return true;
}

}  // namespace obs
}  // namespace adc
