#include "obs/trace_context.hpp"

#include <algorithm>

#include "report/json.hpp"

namespace adc {
namespace obs {

JobTrace::JobTrace(std::uint64_t trace_id)
    : trace_id_(trace_id), epoch_(std::chrono::steady_clock::now()) {}

std::string JobTrace::trace_id_hex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  std::uint64_t v = trace_id_;
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::uint64_t JobTrace::now_micros() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint32_t JobTrace::thread_index_locked() {
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& [tid, idx] : threads_) {
    if (tid == self) return idx;
  }
  const auto idx = static_cast<std::uint32_t>(threads_.size());
  threads_.emplace_back(self, idx);
  return idx;
}

std::uint64_t JobTrace::begin(const std::string& name,
                              const std::string& category,
                              std::uint64_t parent) {
  const std::uint64_t start = now_micros();
  std::lock_guard<std::mutex> lk(mu_);
  TraceSpanRecord rec;
  rec.id = next_span_++;
  rec.parent = parent;
  rec.name = name;
  rec.category = category;
  rec.start_us = start;
  rec.thread = thread_index_locked();
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void JobTrace::end(std::uint64_t id,
                   std::vector<std::pair<std::string, std::string>> args) {
  const std::uint64_t end = now_micros();
  std::lock_guard<std::mutex> lk(mu_);
  if (id == 0 || id >= next_span_) return;
  TraceSpanRecord& rec = spans_[id - 1];
  if (rec.end_us != 0) return;
  // A stage can finish so fast the µs clock doesn't tick; keep end > start
  // so the exported complete event has a visible (and nonzero) duration.
  rec.end_us = std::max(end, rec.start_us + 1);
  for (auto& kv : args) rec.args.push_back(std::move(kv));
}

void JobTrace::annotate(std::uint64_t id, const std::string& key,
                        const std::string& value) {
  std::lock_guard<std::mutex> lk(mu_);
  if (id == 0 || id >= next_span_) return;
  spans_[id - 1].args.emplace_back(key, value);
}

std::vector<TraceSpanRecord> JobTrace::spans() const {
  std::lock_guard<std::mutex> lk(mu_);
  return spans_;
}

void JobTrace::write_chrome_trace(JsonWriter& w, std::uint64_t pid) const {
  std::vector<TraceSpanRecord> spans;
  std::size_t n_threads = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    spans = spans_;
    n_threads = threads_.size();
  }
  const std::string trace_hex = trace_id_hex();
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  // Metadata: name the process after the job so several merged job traces
  // stay distinguishable in one Perfetto session.
  w.begin_object();
  w.kv("ph", "M");
  w.kv("pid", pid);
  w.kv("tid", std::uint64_t{0});
  w.kv("name", "process_name");
  w.key("args");
  w.begin_object();
  w.kv("name", "job " + std::to_string(pid) + " trace " + trace_hex);
  w.end_object();
  w.end_object();
  for (std::size_t t = 0; t < n_threads; ++t) {
    w.begin_object();
    w.kv("ph", "M");
    w.kv("pid", pid);
    w.kv("tid", static_cast<std::uint64_t>(t));
    w.kv("name", "thread_name");
    w.key("args");
    w.begin_object();
    w.kv("name", t == 0 ? std::string("server") : "worker-" + std::to_string(t));
    w.end_object();
    w.end_object();
  }
  for (const auto& s : spans) {
    if (s.end_us == 0) continue;  // still open — not exportable yet
    w.begin_object();
    w.kv("ph", "X");
    w.kv("pid", pid);
    w.kv("tid", static_cast<std::uint64_t>(s.thread));
    w.kv("name", s.name);
    w.kv("cat", s.category);
    w.kv("ts", s.start_us);
    w.kv("dur", s.end_us - s.start_us);
    w.key("args");
    w.begin_object();
    w.kv("trace_id", trace_hex);
    w.kv("span_id", s.id);
    w.kv("parent_span_id", s.parent);
    for (const auto& [k, v] : s.args) w.kv(k, v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

TraceSpan::TraceSpan(const TraceContext& ctx, std::string name,
                     std::string category)
    : ctx_(ctx) {
  if (ctx_.active()) id_ = ctx_.trace()->begin(name, category, ctx_.parent());
}

TraceSpan::~TraceSpan() {
  if (ctx_.active() && id_ != 0) ctx_.trace()->end(id_, std::move(end_args_));
}

void TraceSpan::arg(std::string key, std::string value) {
  if (!ctx_.active()) return;
  end_args_.emplace_back(std::move(key), std::move(value));
}

}  // namespace obs
}  // namespace adc
