#pragma once
// Structured access log for the serving daemon.
//
// One JSON object per line, one line per *finished* job — completed,
// rejected at admission, or cancelled — appended as a single write so
// concurrent completions never interleave mid-line.  JSONL because the
// consumers are `grep | jq`, not a database: "every busy rejection in
// the last hour, by class" must be a one-liner at 3am.
//
// Rotation is by size: when an append would push the file past the
// limit, the current file is renamed to `<path>.1` (replacing any
// previous `.1`) and a fresh file starts.  Two generations bound disk
// usage at roughly 2x the limit without a compaction thread; anyone
// needing real retention ships the files somewhere else anyway.
//
// `validate()` is the schema's executable form — adc_obs_check
// --access-log runs it, CI runs adc_obs_check, so the schema documented
// in docs/OBSERVABILITY.md cannot silently drift from what the daemon
// writes.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace adc {
namespace obs {

struct AccessLogEntry {
  // "done" | "rejected" | "cancelled"
  std::string event;
  std::uint64_t id = 0;          // job id (0 for rejected: none assigned)
  std::string trace_id;          // 16 hex chars; empty for rejected
  std::string priority;          // high | normal | low
  std::string client;            // client-supplied name; may be empty
  std::string bench;             // benchmark or source name
  std::string script;            // transform recipe
  std::string status;            // FlowPoint status for done; reject code
  std::uint64_t queue_wait_us = 0;
  std::uint64_t service_us = 0;
  std::uint64_t wall_ms = 0;     // submit -> finish, client-visible
  bool from_disk_cache = false;
  std::uint64_t result_bytes = 0;   // serialized FlowPoint size
  std::uint64_t retry_after_ms = 0; // rejected only
};

class AccessLog {
 public:
  // max_bytes <= 0 disables rotation.
  AccessLog(std::string path, std::int64_t max_bytes);
  ~AccessLog();

  const std::string& path() const { return path_; }
  bool ok() const;           // stream healthy (open + no write errors)
  std::uint64_t lines() const { return lines_; }

  void append(const AccessLogEntry& e);
  void flush();

  // Parses a log file and returns problems (empty == valid).  Checks
  // JSON well-formedness, required members, event/priority enums, and
  // that every line carries a wall-clock timestamp.
  static std::vector<std::string> validate(const std::string& path,
                                           std::uint64_t* lines_out = nullptr);

 private:
  void rotate_locked();

  const std::string path_;
  const std::int64_t max_bytes_;
  mutable std::mutex mu_;
  int fd_ = -1;
  std::int64_t size_ = 0;
  std::uint64_t lines_ = 0;
  bool write_error_ = false;
};

}  // namespace obs
}  // namespace adc
