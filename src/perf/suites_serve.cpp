// The serve.* suites: the adc_serve daemon measured end-to-end through
// its own wire protocol.  Each iteration runs a real server (in-process,
// Unix-domain socket) and real clients on their own threads, so the
// numbers cover framing, queueing, dispatch and result delivery — the
// full client-observed path, not just FlowExecutor::run.
//
//   serve.roundtrip   one warm-cache submit→result round-trip: the
//                     protocol + queue overhead floor
//   serve.saturation  N concurrent clients driving the DIFFEQ GT ablation
//                     grid; counters report client-observed p50/p99 job
//                     latency and aggregate jobs/sec

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "perf/measure.hpp"
#include "perf/suites.hpp"
#include "report/json.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

#include <unistd.h>

namespace adc {
namespace perf {

namespace {

// Per-benchmark socket paths: serve.roundtrip keeps its warm server alive
// for the whole process, so serve.saturation must not contend for the
// same endpoint.
std::string bench_socket_path(const char* which) {
  return "/tmp/adc_serve_bench_" + std::to_string(::getpid()) + "_" + which +
         ".sock";
}

std::string submit_payload(const std::string& script) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "submit");
  w.kv("bench", "diffeq");
  w.kv("script", script);
  w.kv("simulate", false);
  w.end_object();
  return w.str();
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[idx];
}

serve::ServerOptions bench_server_options(const char* which) {
  serve::ServerOptions o;
  o.unix_socket = bench_socket_path(which);
  o.workers = 2;
  o.queue_capacity = 256;  // above every grid size used here: no rejects,
                           // the suite measures latency, not backpressure
  return o;
}

}  // namespace

void register_serve_suites() {
  BenchRegistry::instance().add(
      {"serve", "serve.roundtrip", [](BenchContext& ctx) {
         // Persistent warm server: after the first iteration every job is
         // a stage-cache hit, so the measured time is protocol + queue +
         // dispatch overhead.
         static const std::shared_ptr<serve::ServeServer> server = [] {
           auto s = std::make_shared<serve::ServeServer>(
               bench_server_options("rt"));
           s->start();
           return s;
         }();
         serve::ServeClient client =
             serve::ServeClient::connect_unix(server->unix_path());
         std::uint64_t id = client.submit(
             submit_payload("gt1; gt2; gt3; gt4; gt2; gt5; lt"));
         JsonValue point = client.wait_result(id);
         const JsonValue* lits = point.find("literals");
         ctx.counters["literals"] = lits ? lits->number : 0.0;
       }});

  BenchRegistry::instance().add(
      {"serve", "serve.saturation", [](BenchContext& ctx) {
         const std::size_t n_clients = ctx.quick ? 2 : 4;
         std::vector<std::string> grid = gt_ablation_grid(true);
         if (ctx.quick) grid.resize(8);

         // Fresh server per iteration: every client resolves the same
         // grid, so cross-client stage-cache sharing is part of what is
         // being measured (as in production), but nothing leaks across
         // iterations.
         serve::ServeServer server(bench_server_options("sat"));
         server.start();

         std::vector<std::vector<double>> latencies(n_clients);
         std::vector<std::thread> clients;
         std::uint64_t t0 = wall_now_micros();
         for (std::size_t c = 0; c < n_clients; ++c) {
           clients.emplace_back([&, c] {
             serve::ServeClient cl =
                 serve::ServeClient::connect_unix(server.unix_path());
             std::vector<std::pair<std::uint64_t, std::uint64_t>> submitted;
             for (const auto& script : grid)
               submitted.push_back(
                   {cl.submit(submit_payload(script)), wall_now_micros()});
             for (auto [id, at] : submitted) {
               cl.wait_result(id);
               latencies[c].push_back(
                   static_cast<double>(wall_now_micros() - at) / 1000.0);
             }
           });
         }
         for (auto& t : clients) t.join();
         double wall_s = static_cast<double>(wall_now_micros() - t0) / 1e6;
         server.request_shutdown(true);
         server.wait();

         std::vector<double> all;
         for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
         ctx.counters["clients"] = static_cast<double>(n_clients);
         ctx.counters["jobs"] = static_cast<double>(all.size());
         ctx.counters["jobs_per_sec"] =
             wall_s > 0.0 ? static_cast<double>(all.size()) / wall_s : 0.0;
         ctx.counters["p50_ms"] = percentile(all, 0.50);
         ctx.counters["p99_ms"] = percentile(all, 0.99);
       }});
}

}  // namespace perf
}  // namespace adc
