#pragma once
// Benchmark measurement harness: the registry `adc_bench` and the legacy
// `bench/perf_*` drivers run, plus the clocks behind it.
//
// Policy: every benchmark body is one iteration of the thing being
// measured.  The harness runs `warmup` untimed iterations (cache and
// allocator settling), then `repeats` timed ones — wall time from
// std::chrono::steady_clock, CPU time from getrusage(RUSAGE_SELF) (user +
// system, summed over every thread, so a pooled DSE run shows its true
// parallel cost) — and reduces the samples with record.hpp's
// trim-the-worst outlier policy.  Peak RSS comes from ru_maxrss after the
// repeats (monotone over the process; still a usable per-report ceiling).
//
// A benchmark communicates results back through its BenchContext: scalar
// counters (simulated latency, cache hit rate) and per-stage timings
// (FlowPoint::timings), both attached to the emitted BenchRecord.

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "perf/record.hpp"

namespace adc {
namespace perf {

// --- clocks ----------------------------------------------------------------

// Monotonic wall clock, microseconds since an arbitrary epoch.
std::uint64_t wall_now_micros();
// Process CPU time (user + system, all threads), microseconds.
std::uint64_t process_cpu_micros();
// Peak resident set size of the process, kilobytes (0 where unsupported).
std::int64_t peak_rss_kb();

// Environment fingerprint for BenchReport::env: git sha (ADC_GIT_SHA env
// var, else `git rev-parse` in the working directory, else "unknown"),
// compiler banner, build flags/type (baked in at compile time), OS and
// core count, current UTC timestamp.
BenchEnv capture_env();

// --- registry --------------------------------------------------------------

struct BenchContext {
  bool quick = false;  // shrink grids / iteration counts when set
  // Written by the benchmark body; the last timed repetition wins.
  std::map<std::string, double> counters;
  std::vector<BenchStage> stages;
};

struct Benchmark {
  std::string suite;
  std::string name;  // convention: "<suite>.<what>"
  std::function<void(BenchContext&)> run;
};

class BenchRegistry {
 public:
  static BenchRegistry& instance();

  void add(Benchmark b);
  const std::vector<Benchmark>& all() const { return benches_; }
  std::vector<std::string> suites() const;

 private:
  std::vector<Benchmark> benches_;
};

// --- measurement -----------------------------------------------------------

struct MeasureOptions {
  unsigned warmup = 2;
  unsigned repeats = 9;
  bool trim_outliers = true;
  bool quick = false;  // forwarded into BenchContext
  // Wall budget for one benchmark (warmup + all repeats together); 0 =
  // unlimited.  A benchmark that overruns is abandoned on a detached
  // thread and recorded with status="timeout" and zeroed statistics, so a
  // hung suite cannot wedge the harness — the remaining suites still run.
  std::uint64_t deadline_ms = 600000;
  // Invoked by run_registered after every completed benchmark with the
  // report accumulated so far (env/policy already filled).  adc_bench
  // points its artifact-flush callback at the latest snapshot, so a run
  // cut short by SIGINT/SIGTERM still leaves a valid partial BENCH file.
  std::function<void(const BenchReport&)> on_record;

  static MeasureOptions quick_mode() {
    MeasureOptions o;
    o.warmup = 1;
    o.repeats = 3;
    o.quick = true;
    return o;
  }
};

// Warmup + timed repeats of one benchmark.
BenchRecord measure(const Benchmark& b, const MeasureOptions& opts);

// Paired measurement for cross-benchmark ratio gates: alternates one timed
// iteration of `a` and one of `b` per round (after alternating warmups)
// instead of running each benchmark's repeats back to back.  Slow in-process
// drift — allocator growth, CPU frequency, cache state — then lands on both
// sides of the ratio equally rather than on whichever benchmark happens to
// run later, which is worth several percent of systematic skew on a busy
// 1-core container.  opts.deadline_ms bounds the whole pair; a timeout or
// exception marks both records.
std::pair<BenchRecord, BenchRecord> measure_interleaved(
    const Benchmark& a, const Benchmark& b, const MeasureOptions& opts);

// Measures every registered benchmark whose suite is in `suites` (empty =
// all) and whose name contains `filter` (empty = all), in registration
// order, into a complete report (env + policy filled in).  Benchmarks named
// in `exclude` are skipped — adc_bench measures its --ratio pairs through
// measure_interleaved instead and must not time them twice.
BenchReport run_registered(const std::vector<std::string>& suites,
                           const std::string& filter, const MeasureOptions& opts,
                           const std::string& tool = "adc_bench",
                           const std::vector<std::string>& exclude = {});

// Human rendering of a report (one row per benchmark).
std::string render_report(const BenchReport& rep);

}  // namespace perf
}  // namespace adc
