#include "perf/suites.hpp"

#include <memory>
#include <mutex>

#include "analysis/build.hpp"
#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "frontend/parser.hpp"
#include "logic/memo.hpp"
#include "logic/minimize.hpp"
#include "ltrans/local.hpp"
#include "perf/measure.hpp"
#include "runtime/flow.hpp"
#include "sim/event_sim.hpp"
#include "sim/token_sim.hpp"
#include "transforms/global.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace perf {

namespace {

constexpr const char* kFullRecipe = "gt1; gt2; gt3; gt4; gt2; gt5; lt";

RandomProgramParams sized(int stmts) {
  RandomProgramParams p;
  p.alus = 3;
  p.mults = 2;
  p.stmts = stmts;
  p.regs = 8;
  return p;
}

// Lazily-built shared inputs: the fully synthesized DIFFEQ system at the
// paper's full recipe, reused by the lt/logic/sim suites so each suite
// times only its own stage.
struct DiffeqArtifacts {
  Cdfg g{"empty"};
  ChannelPlan plan;
  std::vector<ControllerInstance> instances;
};

std::shared_ptr<const DiffeqArtifacts> diffeq_artifacts() {
  static std::shared_ptr<const DiffeqArtifacts> cached = [] {
    auto a = std::make_shared<DiffeqArtifacts>();
    a->g = diffeq();
    auto res = run_global_transforms(a->g);
    a->plan = std::move(res.plan);
    for (auto& c : extract_controllers(a->g, a->plan)) {
      ControllerInstance inst;
      inst.shared_signals = run_local_transforms(c).shared_signals;
      inst.controller = std::move(c);
      a->instances.push_back(std::move(inst));
    }
    return a;
  }();
  return cached;
}

std::map<std::string, std::int64_t> diffeq_init(std::int64_t a = 8) {
  return {{"X", 0}, {"a", a}, {"dx", 1}, {"U", 3}, {"Y", 1}, {"X1", 0}, {"C", 1}};
}

void add(const char* suite, const char* name,
         std::function<void(BenchContext&)> fn) {
  BenchRegistry::instance().add({suite, name, std::move(fn)});
}

void register_frontend() {
  add("frontend", "frontend.diffeq_build", [](BenchContext&) {
    Cdfg g = diffeq();
    volatile std::size_t sink = g.live_arc_count();
    (void)sink;
  });
  add("frontend", "frontend.diffeq_parse", [](BenchContext&) {
    Cdfg g = parse_program(diffeq_source());
    volatile std::size_t sink = g.live_arc_count();
    (void)sink;
  });
  add("frontend", "frontend.random_arcgen", [](BenchContext& ctx) {
    Cdfg g = random_program(sized(ctx.quick ? 20 : 80), 42);
    ctx.counters["arcs"] = static_cast<double>(g.live_arc_count());
  });
}

void register_gt() {
  add("gt", "gt.pipeline_diffeq", [](BenchContext& ctx) {
    Cdfg g = diffeq();
    auto res = run_global_transforms(g);
    ctx.counters["channels"] =
        static_cast<double>(res.plan.count_controller_channels());
  });
  add("gt", "gt.pipeline_random", [](BenchContext& ctx) {
    Cdfg g = random_program(sized(ctx.quick ? 10 : 40), 42);
    auto res = run_global_transforms(g);
    ctx.counters["channels"] =
        static_cast<double>(res.plan.count_controller_channels());
  });
  add("gt", "gt.gt2_random", [](BenchContext& ctx) {
    Cdfg g = random_program(sized(ctx.quick ? 20 : 80), 42);
    auto res = gt2_remove_dominated(g);
    ctx.counters["arcs_removed"] = static_cast<double>(res.arcs_removed);
  });
}

void register_lt() {
  add("lt", "lt.extract_plus_lt_diffeq", [](BenchContext& ctx) {
    auto a = diffeq_artifacts();
    auto controllers = extract_controllers(a->g, a->plan);
    std::size_t states = 0;
    for (auto& c : controllers) {
      run_local_transforms(c);
      states += c.machine.state_count();
    }
    ctx.counters["states"] = static_cast<double>(states);
  });
}

// The hazard-free specifications of every DIFFEQ controller function —
// the shared input of the stage-local logic.* micro-benches below.
std::shared_ptr<const std::vector<FunctionSpec>> diffeq_specs() {
  static std::shared_ptr<const std::vector<FunctionSpec>> cached = [] {
    auto a = diffeq_artifacts();
    auto v = std::make_shared<std::vector<FunctionSpec>>();
    for (const auto& inst : a->instances) {
      ConcreteMachine cm =
          concretize(inst.controller.machine, &inst.controller.bindings);
      Encoding enc = assign_codes(cm);
      const std::size_t n_out = cm.output_names.size();
      for (std::size_t fi = 0; fi < n_out + enc.bits; ++fi) {
        const bool state_bit = fi >= n_out;
        const std::size_t index = state_bit ? fi - n_out : fi;
        std::string name = state_bit ? "Y" + std::to_string(index)
                                     : cm.output_names[index];
        v->push_back(build_function_spec(cm, enc, state_bit, index,
                                         std::move(name)));
      }
    }
    return v;
  }();
  return cached;
}

void register_logic() {
  add("logic", "logic.minimize_diffeq", [](BenchContext& ctx) {
    auto a = diffeq_artifacts();
    std::size_t lits = 0;
    for (const auto& inst : a->instances)
      lits += synthesize_logic(inst.controller).literal_count(true);
    ctx.counters["literals"] = static_cast<double>(lits);
  });
  add("logic", "logic.spec_build_diffeq", [](BenchContext& ctx) {
    auto a = diffeq_artifacts();
    std::size_t required = 0;
    for (const auto& inst : a->instances) {
      ConcreteMachine cm =
          concretize(inst.controller.machine, &inst.controller.bindings);
      Encoding enc = assign_codes(cm);
      const std::size_t n_out = cm.output_names.size();
      for (std::size_t fi = 0; fi < n_out + enc.bits; ++fi) {
        const bool state_bit = fi >= n_out;
        const std::size_t index = state_bit ? fi - n_out : fi;
        required +=
            build_function_spec(cm, enc, state_bit, index, "f").required.size();
      }
    }
    ctx.counters["required"] = static_cast<double>(required);
  });
  add("logic", "logic.candidates_diffeq", [](BenchContext& ctx) {
    auto specs = diffeq_specs();
    std::size_t candidates = 0;
    for (const auto& f : *specs) candidates += candidate_implicants(f).size();
    ctx.counters["candidates"] = static_cast<double>(candidates);
  });
  add("logic", "logic.cover_greedy_diffeq", [](BenchContext& ctx) {
    auto specs = diffeq_specs();
    std::size_t products = 0;
    for (const auto& f : *specs) products += minimize_hazard_free(f).products.size();
    ctx.counters["products"] = static_cast<double>(products);
  });
  add("logic", "logic.cover_exact_diffeq", [](BenchContext& ctx) {
    auto specs = diffeq_specs();
    CoverOptions o;
    o.exact = true;
    std::size_t products = 0;
    for (const auto& f : *specs) products += minimize_hazard_free(f, o).products.size();
    ctx.counters["products"] = static_cast<double>(products);
  });
  add("logic", "logic.memo_warm_diffeq", [](BenchContext& ctx) {
    // Replay path: every spec is already in the memo, so the iteration
    // times fingerprint + lookup + cover materialization only.
    static const std::shared_ptr<LogicMemo> memo = [] {
      auto m = std::make_shared<LogicMemo>();
      auto a = diffeq_artifacts();
      SynthesisOptions sopts;
      sopts.cover.memo = m.get();
      for (const auto& inst : a->instances)
        synthesize_logic(inst.controller, sopts);
      return m;
    }();
    auto a = diffeq_artifacts();
    SynthesisOptions sopts;
    sopts.cover.memo = memo.get();
    std::size_t lits = 0;
    for (const auto& inst : a->instances)
      lits += synthesize_logic(inst.controller, sopts).literal_count(true);
    ctx.counters["literals"] = static_cast<double>(lits);
    ctx.counters["memo_hits"] = static_cast<double>(memo->stats().hits);
  });
}

void register_sim() {
  add("sim", "sim.token_diffeq_gt", [](BenchContext& ctx) {
    static const std::shared_ptr<const Cdfg> g = [] {
      auto gp = std::make_shared<Cdfg>(diffeq());
      run_global_transforms(*gp);
      return gp;
    }();
    Cdfg run_g = *g;
    TokenSimOptions o;
    o.randomize_delays = false;
    auto r = run_token_sim(run_g, diffeq_init(8), o);
    ctx.counters["finish_time"] = static_cast<double>(r.finish_time);
  });
  add("sim", "sim.event_diffeq_full", [](BenchContext& ctx) {
    auto a = diffeq_artifacts();
    EventSimOptions o;
    o.randomize_delays = false;
    auto r = run_event_sim(a->g, a->plan, a->instances, diffeq_init(8), o);
    ctx.counters["latency"] = static_cast<double>(r.finish_time);
    ctx.counters["events"] = static_cast<double>(r.events);
    ctx.counters["operations"] = static_cast<double>(r.operations);
  });
}

void register_flow() {
  add("flow", "flow.cold_diffeq", [](BenchContext& ctx) {
    FlowRequest req = make_builtin_request(*find_builtin("diffeq"), kFullRecipe);
    req.simulate = false;
    FlowExecutor::Options o;
    o.cache_capacity = 0;
    FlowExecutor exec(nullptr, o);
    FlowPoint p = exec.run(req);
    ctx.counters["literals"] = static_cast<double>(p.literals);
    for (const auto& t : p.timings)
      ctx.stages.push_back({t.stage, t.micros, t.cpu_micros, t.cached});
  });
  add("flow", "flow.warm_diffeq", [](BenchContext& ctx) {
    static const std::shared_ptr<FlowExecutor> exec = [] {
      auto e = std::make_shared<FlowExecutor>(nullptr);
      FlowRequest req = make_builtin_request(*find_builtin("diffeq"), kFullRecipe);
      req.simulate = false;
      e->run(req);  // prime the stage cache
      return e;
    }();
    FlowRequest req = make_builtin_request(*find_builtin("diffeq"), kFullRecipe);
    req.simulate = false;
    FlowPoint p = exec->run(req);
    ctx.counters["literals"] = static_cast<double>(p.literals);
    for (const auto& t : p.timings)
      ctx.stages.push_back({t.stage, t.micros, t.cpu_micros, t.cached});
  });
}

void register_dse() {
  // The representative cold DSE sweep: structure metrics AND the event
  // simulation, exactly what `adc_dse --bench diffeq --grid gt` runs.
  // dse.grid_profiled repeats it with full attribution + profile/grid
  // analyses on top; the two are gated against each other (profiling
  // overhead <= 5% p50) by cli_bench_profiled_ratio.
  add("dse", "dse.grid_cold_serial", [](BenchContext& ctx) {
    auto grid = gt_ablation_grid(true);
    if (ctx.quick) grid.resize(8);
    std::vector<FlowRequest> reqs;
    for (const auto& script : grid)
      reqs.push_back(make_builtin_request(*find_builtin("diffeq"), script));
    FlowExecutor exec(nullptr);  // fresh cache every iteration
    auto points = exec.run_all(reqs);
    CacheStats cs = exec.cache().stats();
    ctx.counters["points"] = static_cast<double>(points.size());
    ctx.counters["cache_hit_rate"] = cs.hit_rate();
  });
  add("dse", "dse.grid_profiled", [](BenchContext& ctx) {
    auto grid = gt_ablation_grid(true);
    if (ctx.quick) grid.resize(8);
    std::vector<FlowRequest> reqs;
    for (const auto& script : grid) {
      FlowRequest req = make_builtin_request(*find_builtin("diffeq"), script);
      req.critical_path = true;
      reqs.push_back(std::move(req));
    }
    FlowExecutor exec(nullptr);  // fresh cache every iteration
    auto points = exec.run_all(reqs);
    auto profile = analysis::build_dse_profile(points, "adc_bench");
    ctx.counters["points"] = static_cast<double>(points.size());
    ctx.counters["frontier_size"] =
        static_cast<double>(profile.grid.frontier.size());
    ctx.counters["top_bottleneck_ticks"] =
        profile.grid.channels.empty()
            ? 0.0
            : static_cast<double>(profile.grid.channels.front().ticks);
  });
}

}  // namespace

void register_default_suites() {
  static std::once_flag once;
  std::call_once(once, [] {
    register_frontend();
    register_gt();
    register_lt();
    register_logic();
    register_sim();
    register_flow();
    register_dse();
    register_serve_suites();
  });
}

}  // namespace perf
}  // namespace adc
