#include "perf/measure.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#ifdef __unix__
#include <sys/resource.h>
#endif

#include "report/table.hpp"

#ifndef ADC_BUILD_TYPE
#define ADC_BUILD_TYPE "unknown"
#endif
#ifndef ADC_BUILD_FLAGS
#define ADC_BUILD_FLAGS ""
#endif

namespace adc {
namespace perf {

std::uint64_t wall_now_micros() {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

std::uint64_t process_cpu_micros() {
#ifdef __unix__
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    auto us = [](const timeval& tv) {
      return static_cast<std::uint64_t>(tv.tv_sec) * 1000000u +
             static_cast<std::uint64_t>(tv.tv_usec);
    };
    return us(ru.ru_utime) + us(ru.ru_stime);
  }
#endif
  return static_cast<std::uint64_t>(std::clock()) * 1000000u / CLOCKS_PER_SEC;
}

std::int64_t peak_rss_kb() {
#ifdef __unix__
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#ifdef __APPLE__
    return ru.ru_maxrss / 1024;  // bytes on Darwin
#else
    return ru.ru_maxrss;  // kilobytes on Linux
#endif
  }
#endif
  return 0;
}

namespace {

std::string git_sha_from_tree() {
  FILE* p = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
  if (!p) return {};
  char buf[64] = {};
  std::string out;
  if (std::fgets(buf, sizeof buf, p)) out = buf;
  ::pclose(p);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out;
}

}  // namespace

BenchEnv capture_env() {
  BenchEnv env;
  if (const char* sha = std::getenv("ADC_GIT_SHA"); sha && *sha) env.git_sha = sha;
  if (env.git_sha.empty()) env.git_sha = git_sha_from_tree();
  if (env.git_sha.empty()) env.git_sha = "unknown";
#ifdef __VERSION__
  env.compiler = __VERSION__;
#else
  env.compiler = "unknown";
#endif
  env.flags = ADC_BUILD_FLAGS;
  env.build_type = ADC_BUILD_TYPE;
#if defined(__linux__)
  env.os = "linux";
#elif defined(__APPLE__)
  env.os = "darwin";
#elif defined(_WIN32)
  env.os = "windows";
#else
  env.os = "unknown";
#endif
  env.cores = std::max(1u, std::thread::hardware_concurrency());
  std::time_t now = std::time(nullptr);
  char stamp[32] = {};
  std::tm tm_utc{};
#ifdef _WIN32
  gmtime_s(&tm_utc, &now);
#else
  gmtime_r(&now, &tm_utc);
#endif
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  env.timestamp = stamp;
  return env;
}

BenchRegistry& BenchRegistry::instance() {
  static BenchRegistry reg;
  return reg;
}

void BenchRegistry::add(Benchmark b) { benches_.push_back(std::move(b)); }

std::vector<std::string> BenchRegistry::suites() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto& b : benches_)
    if (seen.insert(b.suite).second) out.push_back(b.suite);
  return out;
}

namespace {

// Everything the measurement thread touches, shared_ptr-owned so an
// abandoned (detached) thread after a timeout never writes freed memory.
struct MeasureShared {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  BenchContext ctx;
  std::vector<double> wall, cpu;
  bool failed = false;
  std::string error;
};

}  // namespace

BenchRecord measure(const Benchmark& b, const MeasureOptions& opts) {
  BenchRecord rec;
  rec.suite = b.suite;
  rec.name = b.name;
  unsigned repeats = std::max(1u, opts.repeats);

  auto sh = std::make_shared<MeasureShared>();
  sh->ctx.quick = opts.quick;
  // The body runs on its own thread (copying the Benchmark — a detached
  // thread must not reference the caller's frame) so the harness can
  // abandon it when the deadline fires.
  Benchmark job = b;
  std::thread worker([sh, job, opts, repeats] {
    try {
      for (unsigned i = 0; i < opts.warmup; ++i) job.run(sh->ctx);
      sh->wall.reserve(repeats);
      sh->cpu.reserve(repeats);
      for (unsigned i = 0; i < repeats; ++i) {
        sh->ctx.counters.clear();
        sh->ctx.stages.clear();
        std::uint64_t c0 = process_cpu_micros();
        std::uint64_t w0 = wall_now_micros();
        job.run(sh->ctx);
        sh->wall.push_back(static_cast<double>(wall_now_micros() - w0));
        sh->cpu.push_back(static_cast<double>(process_cpu_micros() - c0));
      }
    } catch (const std::exception& e) {
      sh->failed = true;
      sh->error = e.what();
    } catch (...) {
      sh->failed = true;
      sh->error = "unknown exception";
    }
    std::lock_guard<std::mutex> lk(sh->mu);
    sh->done = true;
    sh->cv.notify_all();
  });

  bool finished = true;
  {
    std::unique_lock<std::mutex> lk(sh->mu);
    if (opts.deadline_ms == 0) {
      sh->cv.wait(lk, [&] { return sh->done; });
    } else {
      finished = sh->cv.wait_for(lk, std::chrono::milliseconds(opts.deadline_ms),
                                 [&] { return sh->done; });
    }
  }
  if (finished) {
    worker.join();
  } else {
    // Hung benchmark: leave the thread behind (it owns `sh`) and report a
    // structured timeout.  The zeroed stats satisfy the schema invariants.
    worker.detach();
    rec.repeats = 1;
    rec.status = "timeout";
    rec.error = "deadline exceeded after " + std::to_string(opts.deadline_ms) + " ms";
    rec.peak_rss_kb = peak_rss_kb();
    return rec;
  }
  if (sh->failed) {
    rec.repeats = 1;
    rec.status = "error";
    rec.error = sh->error;
    rec.peak_rss_kb = peak_rss_kb();
    return rec;
  }
  rec.repeats = repeats;
  rec.wall_us = stat_from_samples(std::move(sh->wall), opts.trim_outliers);
  rec.cpu_us = stat_from_samples(std::move(sh->cpu), opts.trim_outliers);
  rec.peak_rss_kb = peak_rss_kb();
  rec.counters = std::move(sh->ctx.counters);
  rec.stages = std::move(sh->ctx.stages);
  return rec;
}

namespace {

// Everything the paired measurement thread touches; same ownership story
// as MeasureShared.
struct PairShared {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  BenchContext ctx_a, ctx_b;
  std::vector<double> wall_a, cpu_a, wall_b, cpu_b;
  bool failed = false;
  std::string error;
};

}  // namespace

std::pair<BenchRecord, BenchRecord> measure_interleaved(
    const Benchmark& a, const Benchmark& b, const MeasureOptions& opts) {
  BenchRecord ra, rb;
  ra.suite = a.suite;
  ra.name = a.name;
  rb.suite = b.suite;
  rb.name = b.name;
  unsigned repeats = std::max(1u, opts.repeats);

  auto sh = std::make_shared<PairShared>();
  sh->ctx_a.quick = opts.quick;
  sh->ctx_b.quick = opts.quick;
  Benchmark job_a = a, job_b = b;
  std::thread worker([sh, job_a, job_b, opts, repeats] {
    try {
      for (unsigned i = 0; i < opts.warmup; ++i) {
        job_a.run(sh->ctx_a);
        job_b.run(sh->ctx_b);
      }
      sh->wall_a.reserve(repeats);
      sh->cpu_a.reserve(repeats);
      sh->wall_b.reserve(repeats);
      sh->cpu_b.reserve(repeats);
      for (unsigned i = 0; i < repeats; ++i) {
        sh->ctx_a.counters.clear();
        sh->ctx_a.stages.clear();
        std::uint64_t c0 = process_cpu_micros();
        std::uint64_t w0 = wall_now_micros();
        job_a.run(sh->ctx_a);
        sh->wall_a.push_back(static_cast<double>(wall_now_micros() - w0));
        sh->cpu_a.push_back(static_cast<double>(process_cpu_micros() - c0));
        sh->ctx_b.counters.clear();
        sh->ctx_b.stages.clear();
        c0 = process_cpu_micros();
        w0 = wall_now_micros();
        job_b.run(sh->ctx_b);
        sh->wall_b.push_back(static_cast<double>(wall_now_micros() - w0));
        sh->cpu_b.push_back(static_cast<double>(process_cpu_micros() - c0));
      }
    } catch (const std::exception& e) {
      sh->failed = true;
      sh->error = e.what();
    } catch (...) {
      sh->failed = true;
      sh->error = "unknown exception";
    }
    std::lock_guard<std::mutex> lk(sh->mu);
    sh->done = true;
    sh->cv.notify_all();
  });

  bool finished = true;
  {
    std::unique_lock<std::mutex> lk(sh->mu);
    if (opts.deadline_ms == 0) {
      sh->cv.wait(lk, [&] { return sh->done; });
    } else {
      finished = sh->cv.wait_for(lk, std::chrono::milliseconds(opts.deadline_ms),
                                 [&] { return sh->done; });
    }
  }
  if (!finished) {
    worker.detach();
    for (BenchRecord* r : {&ra, &rb}) {
      r->repeats = 1;
      r->status = "timeout";
      r->error =
          "deadline exceeded after " + std::to_string(opts.deadline_ms) + " ms";
      r->peak_rss_kb = peak_rss_kb();
    }
    return {std::move(ra), std::move(rb)};
  }
  worker.join();
  if (sh->failed) {
    for (BenchRecord* r : {&ra, &rb}) {
      r->repeats = 1;
      r->status = "error";
      r->error = sh->error;
      r->peak_rss_kb = peak_rss_kb();
    }
    return {std::move(ra), std::move(rb)};
  }
  ra.repeats = repeats;
  ra.wall_us = stat_from_samples(std::move(sh->wall_a), opts.trim_outliers);
  ra.cpu_us = stat_from_samples(std::move(sh->cpu_a), opts.trim_outliers);
  ra.peak_rss_kb = peak_rss_kb();
  ra.counters = std::move(sh->ctx_a.counters);
  ra.stages = std::move(sh->ctx_a.stages);
  rb.repeats = repeats;
  rb.wall_us = stat_from_samples(std::move(sh->wall_b), opts.trim_outliers);
  rb.cpu_us = stat_from_samples(std::move(sh->cpu_b), opts.trim_outliers);
  rb.peak_rss_kb = peak_rss_kb();
  rb.counters = std::move(sh->ctx_b.counters);
  rb.stages = std::move(sh->ctx_b.stages);
  return {std::move(ra), std::move(rb)};
}

BenchReport run_registered(const std::vector<std::string>& suites,
                           const std::string& filter, const MeasureOptions& opts,
                           const std::string& tool,
                           const std::vector<std::string>& exclude) {
  BenchReport rep;
  rep.tool = tool;
  rep.env = capture_env();
  rep.policy.warmup = opts.warmup;
  rep.policy.repeats = opts.repeats;
  rep.policy.trim_outliers = opts.trim_outliers;
  rep.policy.quick = opts.quick;
  for (const auto& b : BenchRegistry::instance().all()) {
    if (!suites.empty() &&
        std::find(suites.begin(), suites.end(), b.suite) == suites.end())
      continue;
    if (!filter.empty() && b.name.find(filter) == std::string::npos) continue;
    if (std::find(exclude.begin(), exclude.end(), b.name) != exclude.end())
      continue;
    rep.benchmarks.push_back(measure(b, opts));
    if (opts.on_record) opts.on_record(rep);
  }
  return rep;
}

std::string render_report(const BenchReport& rep) {
  Table t({"benchmark", "suite", "wall p50 us", "p90", "p99", "cpu p50 us",
           "repeats"});
  for (const auto& b : rep.benchmarks) {
    char p50[32], p90[32], p99[32], cpu[32];
    std::snprintf(p50, sizeof p50, "%.1f", b.wall_us.p50);
    std::snprintf(p90, sizeof p90, "%.1f", b.wall_us.p90);
    std::snprintf(p99, sizeof p99, "%.1f", b.wall_us.p99);
    std::snprintf(cpu, sizeof cpu, "%.1f", b.cpu_us.p50);
    t.add_row({b.name, b.suite, p50, p90, p99, cpu, std::to_string(b.repeats)});
  }
  char head[160];
  std::snprintf(head, sizeof head,
                "env: %s | %s | %s | %u cores | %s\n",
                rep.env.git_sha.c_str(), rep.env.build_type.c_str(),
                rep.env.os.c_str(), rep.env.cores, rep.env.timestamp.c_str());
  return std::string(head) + t.to_string();
}

}  // namespace perf
}  // namespace adc
