#pragma once
// The BENCH JSON schema (kind "adc-bench", version 1) — the machine-readable
// benchmark record every perf driver in the toolchain emits, and the diff
// logic `adc_bench --baseline --check` gates regressions with.
//
// One BenchReport is one measurement session: an environment fingerprint
// (git sha, compiler, flags, core count — the things that make two numbers
// comparable or not), the measurement policy (warmup/repeat/outlier
// handling), and one BenchRecord per benchmark with wall-clock and CPU
// sample statistics (p50/p90/p99), peak RSS, free-form counters (cache hit
// rates, simulated latencies) and optional per-stage timings lifted from
// the FlowExecutor.
//
// The schema is deliberately closed: emit (write_json), parse
// (parse_bench_report), validate (validate_bench_json — what
// `adc_obs_check --bench` runs) and compare (compare_reports) all live
// here, so `adc_bench` and the legacy `bench/perf_*` drivers agree
// byte-for-byte on record structure.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace adc {

class JsonWriter;
struct JsonValue;

namespace perf {

inline constexpr const char* kBenchKind = "adc-bench";
inline constexpr int kBenchVersion = 1;

// Sample statistics in microseconds.  Quantiles are nearest-rank over the
// retained samples, so p50 <= p90 <= p99 and min <= p50, p99 <= max hold
// by construction — validate_bench_json re-checks them on parsed files.
struct Stat {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

// Computes a Stat from raw samples (any order).  With trim_outliers and
// >= 5 samples, the single largest sample is excluded from p50/p90/mean
// (one scheduler hiccup must not shift the medians) but still reported as
// max / p99.
Stat stat_from_samples(std::vector<double> samples, bool trim_outliers = true);

// One per-stage timing row (mirrors runtime StageTiming, kept
// dependency-free here).
struct BenchStage {
  std::string stage;
  std::uint64_t us = 0;
  std::uint64_t cpu_us = 0;
  bool cached = false;
};

struct BenchRecord {
  std::string suite;
  std::string name;  // globally unique within a report
  std::uint64_t repeats = 0;
  Stat wall_us;
  Stat cpu_us;
  std::int64_t peak_rss_kb = 0;
  // Free-form scalar results: cache hit rates, simulated latencies, ...
  std::map<std::string, double> counters;
  // Per-stage breakdown of the last repetition (FlowExecutor timings).
  std::vector<BenchStage> stages;
  // Lifecycle of the measurement itself: "ok", "timeout" (the per-suite
  // deadline fired; stats are zeroed) or "error" (the body threw; `error`
  // carries the message).  Emitted to JSON only when != "ok" so clean
  // reports are byte-identical to schema v1 fixtures.
  std::string status = "ok";
  std::string error;
};

// The things that make two reports comparable (or explain why they are
// not): same sha + compiler + flags + cores means a diff is meaningful.
struct BenchEnv {
  std::string git_sha;
  std::string compiler;
  std::string flags;
  std::string build_type;
  std::string os;
  std::string timestamp;  // ISO-8601 UTC
  unsigned cores = 0;
};

struct BenchPolicy {
  unsigned warmup = 0;
  unsigned repeats = 0;
  bool trim_outliers = true;
  bool quick = false;
};

struct BenchReport {
  int version = kBenchVersion;
  std::string tool;  // "adc_bench", "perf_dse", ...
  BenchEnv env;
  BenchPolicy policy;
  std::vector<BenchRecord> benchmarks;

  const BenchRecord* find(const std::string& name) const;
};

// --- serialization ---------------------------------------------------------

void write_json(JsonWriter& w, const Stat& s);
void write_json(JsonWriter& w, const BenchRecord& r);
void write_json(JsonWriter& w, const BenchReport& rep);
std::string to_json(const BenchReport& rep, bool pretty = true);

// Parses a BENCH document; throws std::runtime_error on schema violations
// (wrong kind/version, missing members, malformed statistics).
BenchReport parse_bench_report(const JsonValue& doc);
BenchReport parse_bench_report(const std::string& text);

// Schema + internal-consistency check without throwing: every problem as
// one line (empty = valid).  This is what `adc_obs_check --bench` prints.
std::vector<std::string> validate_bench_json(const JsonValue& doc);

// --- baseline comparison ---------------------------------------------------

struct CompareOptions {
  double threshold_pct = 10.0;  // p50 wall growth beyond this is a regression
  // Benchmarks whose baseline AND current p50 sit under this floor are
  // never flagged: sub-threshold timings are scheduler noise.
  double min_us = 50.0;
};

struct BenchDelta {
  std::string name;
  double baseline_p50 = 0.0;
  double current_p50 = 0.0;
  double pct = 0.0;  // (current - baseline) / baseline * 100
  bool regressed = false;
  bool only_in_baseline = false;  // benchmark disappeared
  bool only_in_current = false;   // new benchmark (never a regression)
  bool errored = false;  // current record's status != "ok" (always regressed)
};

std::vector<BenchDelta> compare_reports(const BenchReport& baseline,
                                        const BenchReport& current,
                                        const CompareOptions& opts = {});

// True when any delta is a regression or a benchmark vanished.
bool has_regression(const std::vector<BenchDelta>& deltas);

// Human rendering of a comparison (report/table.hpp format).
std::string render_deltas(const std::vector<BenchDelta>& deltas,
                          const CompareOptions& opts);

}  // namespace perf
}  // namespace adc
