#include "perf/record.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "report/table.hpp"

namespace adc {
namespace perf {

Stat stat_from_samples(std::vector<double> samples, bool trim_outliers) {
  Stat s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0.0;
  for (double v : samples) sum += v;
  // p99 and max always see every sample; the trimmed view feeds the
  // location statistics.
  auto rank = [](const std::vector<double>& v, double q) {
    auto i = static_cast<std::size_t>(std::ceil(q * static_cast<double>(v.size())));
    if (i > 0) --i;
    return v[i];
  };
  s.p99 = rank(samples, 0.99);
  std::size_t n = samples.size();
  if (trim_outliers && n >= 5) {
    sum -= samples.back();
    samples.pop_back();
  }
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = rank(samples, 0.50);
  s.p90 = rank(samples, 0.90);
  // Trimming never inverts the ordering, but guard against FP surprises.
  s.p90 = std::max(s.p90, s.p50);
  s.p99 = std::max(s.p99, s.p90);
  return s;
}

const BenchRecord* BenchReport::find(const std::string& name) const {
  for (const auto& b : benchmarks)
    if (b.name == name) return &b;
  return nullptr;
}

void write_json(JsonWriter& w, const Stat& s) {
  w.begin_object();
  w.kv("p50", s.p50);
  w.kv("p90", s.p90);
  w.kv("p99", s.p99);
  w.kv("mean", s.mean);
  w.kv("min", s.min);
  w.kv("max", s.max);
  w.end_object();
}

void write_json(JsonWriter& w, const BenchRecord& r) {
  w.begin_object();
  w.kv("name", r.name);
  w.kv("suite", r.suite);
  w.kv("repeats", r.repeats);
  w.key("wall_us");
  write_json(w, r.wall_us);
  w.key("cpu_us");
  write_json(w, r.cpu_us);
  w.kv("peak_rss_kb", r.peak_rss_kb);
  if (r.status != "ok") {
    w.kv("status", r.status);
    if (!r.error.empty()) w.kv("error", r.error);
  }
  w.key("counters");
  w.begin_object();
  for (const auto& [k, v] : r.counters) w.kv(k, v);
  w.end_object();
  w.key("stages");
  w.begin_array();
  for (const auto& st : r.stages) {
    w.begin_object();
    w.kv("stage", st.stage);
    w.kv("us", st.us);
    w.kv("cpu_us", st.cpu_us);
    w.kv("cached", st.cached);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_json(JsonWriter& w, const BenchReport& rep) {
  w.begin_object();
  w.kv("kind", kBenchKind);
  w.kv("version", static_cast<std::int64_t>(rep.version));
  w.kv("tool", rep.tool);
  w.key("env");
  w.begin_object();
  w.kv("git_sha", rep.env.git_sha);
  w.kv("compiler", rep.env.compiler);
  w.kv("flags", rep.env.flags);
  w.kv("build_type", rep.env.build_type);
  w.kv("os", rep.env.os);
  w.kv("timestamp", rep.env.timestamp);
  w.kv("cores", rep.env.cores);
  w.end_object();
  w.key("policy");
  w.begin_object();
  w.kv("warmup", rep.policy.warmup);
  w.kv("repeats", rep.policy.repeats);
  w.kv("trim_outliers", rep.policy.trim_outliers);
  w.kv("quick", rep.policy.quick);
  w.end_object();
  w.key("benchmarks");
  w.begin_array();
  for (const auto& b : rep.benchmarks) write_json(w, b);
  w.end_array();
  w.end_object();
}

std::string to_json(const BenchReport& rep, bool pretty) {
  JsonWriter w(pretty);
  write_json(w, rep);
  return w.str();
}

namespace {

double num(const JsonValue& v, const char* key) {
  const JsonValue* m = v.find(key);
  if (!m || !m->is_number())
    throw std::runtime_error(std::string("bench json: missing number '") + key + "'");
  return m->number;
}

std::string str(const JsonValue& v, const char* key) {
  const JsonValue* m = v.find(key);
  if (!m || !m->is_string())
    throw std::runtime_error(std::string("bench json: missing string '") + key + "'");
  return m->string;
}

Stat parse_stat(const JsonValue& v) {
  Stat s;
  s.p50 = num(v, "p50");
  s.p90 = num(v, "p90");
  s.p99 = num(v, "p99");
  s.mean = num(v, "mean");
  s.min = num(v, "min");
  s.max = num(v, "max");
  return s;
}

}  // namespace

BenchReport parse_bench_report(const JsonValue& doc) {
  if (!doc.is_object()) throw std::runtime_error("bench json: not an object");
  if (str(doc, "kind") != kBenchKind)
    throw std::runtime_error("bench json: kind is not '" + std::string(kBenchKind) + "'");
  BenchReport rep;
  rep.version = static_cast<int>(num(doc, "version"));
  if (rep.version != kBenchVersion)
    throw std::runtime_error("bench json: unsupported version " +
                             std::to_string(rep.version));
  rep.tool = str(doc, "tool");
  const JsonValue& env = doc.at("env");
  rep.env.git_sha = str(env, "git_sha");
  rep.env.compiler = str(env, "compiler");
  rep.env.flags = str(env, "flags");
  rep.env.build_type = str(env, "build_type");
  rep.env.os = str(env, "os");
  rep.env.timestamp = str(env, "timestamp");
  rep.env.cores = static_cast<unsigned>(num(env, "cores"));
  const JsonValue& pol = doc.at("policy");
  rep.policy.warmup = static_cast<unsigned>(num(pol, "warmup"));
  rep.policy.repeats = static_cast<unsigned>(num(pol, "repeats"));
  rep.policy.trim_outliers = pol.at("trim_outliers").boolean;
  rep.policy.quick = pol.at("quick").boolean;
  const JsonValue* benches = doc.find("benchmarks");
  if (!benches || !benches->is_array())
    throw std::runtime_error("bench json: missing benchmarks array");
  for (const JsonValue& b : benches->array) {
    BenchRecord r;
    r.name = str(b, "name");
    r.suite = str(b, "suite");
    r.repeats = static_cast<std::uint64_t>(num(b, "repeats"));
    r.wall_us = parse_stat(b.at("wall_us"));
    r.cpu_us = parse_stat(b.at("cpu_us"));
    r.peak_rss_kb = static_cast<std::int64_t>(num(b, "peak_rss_kb"));
    if (const JsonValue* s = b.find("status"); s && s->is_string())
      r.status = s->string;
    if (const JsonValue* e = b.find("error"); e && e->is_string())
      r.error = e->string;
    if (const JsonValue* c = b.find("counters"); c && c->is_object())
      for (const auto& [k, v] : c->object) r.counters[k] = v.number;
    if (const JsonValue* st = b.find("stages"); st && st->is_array())
      for (const JsonValue& s : st->array) {
        BenchStage stage;
        stage.stage = str(s, "stage");
        stage.us = static_cast<std::uint64_t>(num(s, "us"));
        stage.cpu_us = static_cast<std::uint64_t>(num(s, "cpu_us"));
        stage.cached = s.at("cached").boolean;
        r.stages.push_back(std::move(stage));
      }
    rep.benchmarks.push_back(std::move(r));
  }
  return rep;
}

BenchReport parse_bench_report(const std::string& text) {
  return parse_bench_report(parse_json(text));
}

std::vector<std::string> validate_bench_json(const JsonValue& doc) {
  std::vector<std::string> problems;
  auto bad = [&](const std::string& what) { problems.push_back(what); };
  if (!doc.is_object()) {
    bad("document is not an object");
    return problems;
  }
  const JsonValue* kind = doc.find("kind");
  if (!kind || !kind->is_string() || kind->string != kBenchKind)
    bad("kind is not 'adc-bench'");
  const JsonValue* ver = doc.find("version");
  if (!ver || !ver->is_number() || static_cast<int>(ver->number) != kBenchVersion)
    bad("version is not " + std::to_string(kBenchVersion));
  for (const char* k : {"tool", "env", "policy"})
    if (!doc.find(k)) bad(std::string("missing '") + k + "'");
  if (const JsonValue* env = doc.find("env"); env && env->is_object()) {
    for (const char* k :
         {"git_sha", "compiler", "flags", "build_type", "os", "timestamp", "cores"})
      if (!env->find(k)) bad(std::string("env missing '") + k + "'");
    if (const JsonValue* c = env->find("cores"); c && c->is_number() && c->number < 1)
      bad("env.cores < 1");
  }
  const JsonValue* benches = doc.find("benchmarks");
  if (!benches || !benches->is_array()) {
    bad("missing benchmarks array");
    return problems;
  }
  if (benches->array.empty()) bad("benchmarks array is empty");
  std::set<std::string> names;
  for (const JsonValue& b : benches->array) {
    const JsonValue* name = b.find("name");
    std::string label =
        name && name->is_string() ? name->string : "<unnamed benchmark>";
    if (!name || !name->is_string()) bad("benchmark missing 'name'");
    else if (!names.insert(name->string).second) bad("duplicate benchmark '" + label + "'");
    if (!b.find("suite")) bad(label + ": missing 'suite'");
    const JsonValue* reps = b.find("repeats");
    if (!reps || !reps->is_number() || reps->number < 1)
      bad(label + ": repeats < 1");
    for (const char* stat : {"wall_us", "cpu_us"}) {
      const JsonValue* s = b.find(stat);
      if (!s || !s->is_object()) {
        bad(label + ": missing '" + stat + "'");
        continue;
      }
      bool complete = true;
      for (const char* k : {"p50", "p90", "p99", "mean", "min", "max"}) {
        const JsonValue* m = s->find(k);
        if (!m || !m->is_number()) {
          bad(label + ": " + stat + " missing '" + k + "'");
          complete = false;
        } else if (m->number < 0) {
          bad(label + ": " + stat + "." + k + " is negative");
        }
      }
      if (!complete) continue;
      double p50 = s->at("p50").number, p90 = s->at("p90").number,
             p99 = s->at("p99").number, mn = s->at("min").number,
             mx = s->at("max").number;
      if (p50 > p90) bad(label + ": " + stat + " p50 > p90");
      if (p90 > p99) bad(label + ": " + stat + " p90 > p99");
      if (mn > p50) bad(label + ": " + stat + " min > p50");
      if (p99 > mx) bad(label + ": " + stat + " p99 > max");
    }
    if (const JsonValue* rss = b.find("peak_rss_kb");
        !rss || !rss->is_number() || rss->number < 0)
      bad(label + ": peak_rss_kb missing or negative");
    if (const JsonValue* st = b.find("status")) {
      if (!st->is_string() ||
          (st->string != "ok" && st->string != "timeout" && st->string != "error"))
        bad(label + ": status is not ok/timeout/error");
    }
  }
  return problems;
}

std::vector<BenchDelta> compare_reports(const BenchReport& baseline,
                                        const BenchReport& current,
                                        const CompareOptions& opts) {
  std::vector<BenchDelta> out;
  for (const auto& b : baseline.benchmarks) {
    BenchDelta d;
    d.name = b.name;
    d.baseline_p50 = b.wall_us.p50;
    const BenchRecord* cur = current.find(b.name);
    if (!cur) {
      d.only_in_baseline = true;
      d.regressed = true;  // a vanished benchmark breaks the trajectory
      out.push_back(std::move(d));
      continue;
    }
    d.current_p50 = cur->wall_us.p50;
    if (cur->status != "ok") {
      // A benchmark that timed out or crashed has no meaningful timing;
      // it gates the check exactly like a vanished one.
      d.errored = true;
      d.regressed = true;
      out.push_back(std::move(d));
      continue;
    }
    if (d.baseline_p50 > 0.0)
      d.pct = (d.current_p50 - d.baseline_p50) / d.baseline_p50 * 100.0;
    bool above_floor = d.baseline_p50 >= opts.min_us || d.current_p50 >= opts.min_us;
    d.regressed = above_floor && d.pct > opts.threshold_pct;
    out.push_back(std::move(d));
  }
  for (const auto& c : current.benchmarks) {
    if (baseline.find(c.name)) continue;
    BenchDelta d;
    d.name = c.name;
    d.current_p50 = c.wall_us.p50;
    d.only_in_current = true;
    out.push_back(std::move(d));
  }
  return out;
}

bool has_regression(const std::vector<BenchDelta>& deltas) {
  for (const auto& d : deltas)
    if (d.regressed) return true;
  return false;
}

std::string render_deltas(const std::vector<BenchDelta>& deltas,
                          const CompareOptions& opts) {
  Table t({"benchmark", "baseline p50 us", "current p50 us", "delta", "verdict"});
  for (const auto& d : deltas) {
    char p50a[32], p50b[32], pct[32];
    std::snprintf(p50a, sizeof p50a, "%.1f", d.baseline_p50);
    std::snprintf(p50b, sizeof p50b, "%.1f", d.current_p50);
    std::snprintf(pct, sizeof pct, "%+.1f%%", d.pct);
    const char* verdict = d.only_in_baseline ? "MISSING"
                          : d.errored         ? "ERRORED"
                          : d.only_in_current ? "new"
                          : d.regressed       ? "REGRESSED"
                                              : "ok";
    t.add_row({d.name, d.only_in_current ? "-" : p50a,
               d.only_in_baseline ? "-" : p50b,
               d.only_in_baseline || d.only_in_current ? "-" : pct, verdict});
  }
  std::string out = t.to_string();
  char tail[96];
  std::snprintf(tail, sizeof tail,
                "threshold: +%.0f%% on p50 wall (floor %.0f us)\n",
                opts.threshold_pct, opts.min_us);
  return out + tail;
}

}  // namespace perf
}  // namespace adc
