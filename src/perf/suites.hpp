#pragma once
// The toolchain's registered benchmark suites — the `bench/perf_*` drivers
// and `tools/adc_bench` run these through perf/measure.hpp:
//
//   frontend  graph construction and DSL parsing
//   gt        the global-transform pipeline (and GT2 alone) on growing CDFGs
//   lt        controller extraction + the local-transform pipeline
//   logic     hazard-free two-level logic minimization
//   sim       token- and gate-level event simulation of DIFFEQ
//   flow      FlowExecutor end-to-end (cold and warm cache), with the
//             executor's per-stage wall+CPU timings attached to the record
//   dse       the batch GT ablation grid through the parallel runtime
//
// register_default_suites() is idempotent; quick mode (BenchContext::quick)
// shrinks the random-program sizes and the DSE grid.

namespace adc {
namespace perf {

void register_default_suites();

}  // namespace perf
}  // namespace adc
