#pragma once
// The toolchain's registered benchmark suites — the `bench/perf_*` drivers
// and `tools/adc_bench` run these through perf/measure.hpp:
//
//   frontend  graph construction and DSL parsing
//   gt        the global-transform pipeline (and GT2 alone) on growing CDFGs
//   lt        controller extraction + the local-transform pipeline
//   logic     hazard-free two-level logic minimization
//   sim       token- and gate-level event simulation of DIFFEQ
//   flow      FlowExecutor end-to-end (cold and warm cache), with the
//             executor's per-stage wall+CPU timings attached to the record
//   dse       the batch GT ablation grid through the parallel runtime
//   serve     the adc_serve daemon end-to-end over its wire protocol
//             (suites_serve.cpp): warm round-trip floor + multi-client
//             saturation with client-observed p50/p99 and jobs/sec
//
// register_default_suites() is idempotent; quick mode (BenchContext::quick)
// shrinks the random-program sizes, the DSE grid and the client counts.

namespace adc {
namespace perf {

void register_default_suites();

// The serve.* suites (registered by register_default_suites; split out
// because they pull in the serving layer).
void register_serve_suites();

}  // namespace perf
}  // namespace adc
