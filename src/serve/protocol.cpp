#include "serve/protocol.hpp"

#include <cstring>

#include "report/json.hpp"

namespace adc {
namespace serve {

std::string encode_frame(const std::string& payload,
                         std::uint32_t max_frame_bytes) {
  if (payload.size() > max_frame_bytes)
    throw FrameError("frame payload of " + std::to_string(payload.size()) +
                     " bytes exceeds the " + std::to_string(max_frame_bytes) +
                     "-byte frame limit");
  std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
  out += payload;
  return out;
}

bool FrameReader::next(std::string& payload) {
  if (poisoned_)
    throw FrameError("frame stream poisoned by an earlier oversized frame");
  if (buf_.size() < kFrameHeaderBytes) return false;  // truncated prefix
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i)
    n |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[i])) << (8 * i);
  if (n > max_) {
    poisoned_ = true;
    throw FrameError("peer declared a " + std::to_string(n) +
                     "-byte frame; limit is " + std::to_string(max_) + " bytes");
  }
  if (buf_.size() < kFrameHeaderBytes + n) return false;  // partial payload
  payload.assign(buf_, kFrameHeaderBytes, n);
  buf_.erase(0, kFrameHeaderBytes + n);
  return true;
}

std::string error_reply(const std::string& op, const std::string& code,
                        const std::string& message,
                        std::uint64_t retry_after_ms) {
  JsonWriter w;
  w.begin_object();
  w.kv("ok", false);
  w.kv("op", op);
  w.kv("code", code);
  w.kv("error", message);
  if (retry_after_ms > 0) w.kv("retry_after_ms", retry_after_ms);
  w.end_object();
  return w.str();
}

void begin_ok_reply(JsonWriter& w, const std::string& op) {
  w.begin_object();
  w.kv("ok", true);
  w.kv("op", op);
}

const char* to_string(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "normal";
}

bool parse_priority(const std::string& text, Priority* out) {
  if (text == "high" || text == "0") *out = Priority::kHigh;
  else if (text == "normal" || text == "1" || text.empty()) *out = Priority::kNormal;
  else if (text == "low" || text == "2") *out = Priority::kLow;
  else return false;
  return true;
}

}  // namespace serve
}  // namespace adc
