#pragma once
// The synthesis-as-a-service daemon core (tools/adc_serve is a thin CLI
// over this class; tests and the serve.* bench suites embed it directly).
//
// One ServeServer owns
//  * the listeners: a Unix-domain socket and/or a loopback TCP socket,
//    each accepting length-prefixed JSON frames (serve/protocol.hpp);
//  * a bounded multi-class JobQueue (serve/queue.hpp) — the backpressure
//    boundary: a submit against a full queue is rejected with a
//    structured "busy" reply carrying a retry-after hint derived from the
//    observed service rate, never buffered unboundedly;
//  * a shared FlowExecutor on a work-stealing ThreadPool.  Every job of
//    every client runs through the same content-addressed StageCache, so
//    overlapping recipe grids from different clients share their
//    synthesis work; with Options::flow.disk_cache_dir set, completed
//    points also land in the crash-safe disk tier and replay warm across
//    daemon restarts — the second client over the same cache directory
//    starts hot;
//  * `workers` dispatcher threads pulling jobs off the queue and running
//    them to completion, with per-job deadlines and cancellation wired to
//    the job's CancelToken (runtime/cancel.hpp + the Watchdog).
//
// Shutdown: request_shutdown(drain) — from the shutdown op, the CLI's
// SIGTERM hook (via the async-signal-safe shutdown_pipe_fd()) or a test —
// stops the accept loop, closes the queue, and either drains the accepted
// backlog (drain=true: every queued and running job still completes and
// its waiters get their replies) or cancels it (drain=false: queued jobs
// report status=cancelled, running jobs' tokens trip).  wait() returns
// once every thread has been joined; artifact flushing stays the caller's
// business (trace/flush.hpp).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/grid.hpp"
#include "obs/access_log.hpp"
#include "obs/http.hpp"
#include "obs/registry.hpp"
#include "obs/trace_context.hpp"
#include "runtime/flow.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"

namespace adc {

struct JsonValue;  // report/json_parse.hpp

namespace serve {

struct ServerOptions {
  // Listeners: either or both.  An empty unix_socket disables it; a
  // negative port disables TCP, port 0 binds an ephemeral port (read it
  // back with tcp_port()).
  std::string unix_socket;
  std::string host = "127.0.0.1";
  int port = -1;

  std::size_t workers = 2;          // concurrent jobs in flight
  std::size_t queue_capacity = 64;  // 0 = unbounded (tests only)
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

  // Pool backing the FlowExecutor (controller fan-out inside each job);
  // 0 = hardware concurrency.
  std::size_t pool_threads = 0;

  // Per-job budgets applied to every submission (a client's own
  // deadline_ms may only tighten, never exceed, max_deadline_ms).
  std::uint64_t stage_deadline_ms = 0;
  std::uint64_t default_deadline_ms = 0;
  std::uint64_t max_deadline_ms = 0;  // 0 = no cap

  // Forwarded to the shared executor (disk_cache_dir is the persistent,
  // client-shared tier; tracer spans cover every job of every client).
  FlowExecutor::Options flow;

  // --- observability (src/obs/) --------------------------------------------
  // Prometheus text exposition over loopback HTTP ("GET /metrics"); -1
  // disables the endpoint, 0 binds an ephemeral port (read it back with
  // metrics_http_port()).
  int metrics_port = -1;
  std::string metrics_host = "127.0.0.1";
  // Structured JSONL access log, one line per finished/rejected job
  // (obs/access_log.hpp); empty disables it.
  std::string access_log;
  std::int64_t access_log_max_bytes = 64ll << 20;
};

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   // reached a terminal FlowStatus via a worker
  std::uint64_t cancelled = 0;   // cancelled while still queued
  std::uint64_t rejected = 0;    // backpressure + drain rejections
  std::uint64_t bad_requests = 0;
  std::uint64_t connections = 0;
  std::size_t queued = 0;   // instantaneous
  std::size_t running = 0;  // instantaneous
};

class ServeServer {
 public:
  explicit ServeServer(ServerOptions opts);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  // Binds the configured listeners and spawns the accept/worker threads.
  // Throws std::runtime_error when nothing could be bound.
  void start();

  // Actual TCP port after start() (ephemeral binds resolved); -1 when TCP
  // is disabled.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return opts_.unix_socket; }

  // Thread-safe shutdown request; idempotent (the first request's drain
  // mode wins).  Returns immediately — wait() observes completion.
  void request_shutdown(bool drain);

  // Write end of the self-pipe: writing 'd' requests a draining shutdown,
  // 'c' a cancelling one.  A single write() is async-signal-safe, which
  // is exactly what the SIGTERM hook needs.
  int shutdown_pipe_fd() const { return wake_pipe_[1]; }

  // Blocks until a shutdown request has been fully processed and every
  // thread joined.  Returns 0 after a clean drain, 5 after a cancelling
  // shutdown that aborted jobs (mirrors the CLI timeout/cancel exit code).
  int wait();

  bool running() const { return started_ && !stopped_; }

  ServerStats stats() const;
  const JobQueue& queue() const { return queue_; }
  FlowExecutor& executor() { return *exec_; }

  // Serving-side telemetry registry (obs/registry.hpp) — what /metrics and
  // the `metrics` op export.  Live for the server's lifetime.
  obs::Registry& obs_registry() { return registry_; }
  // Actual /metrics port after start() (ephemeral binds resolved); -1 when
  // the endpoint is disabled.
  int metrics_http_port() const {
    return metrics_http_.running() ? static_cast<int>(metrics_http_.port()) : -1;
  }

 private:
  enum class JobState { kQueued, kRunning, kDone, kCancelled };

  struct Job {
    std::uint64_t id = 0;
    Priority priority = Priority::kNormal;
    JobState state = JobState::kQueued;
    FlowRequest req;
    FlowPoint result;
    std::string client;  // client-supplied name (access-log attribution)
    // Per-request span tree (obs/trace_context.hpp): the root span covers
    // submit -> terminal state, queue_span the submit -> dequeue wait.
    std::shared_ptr<obs::JobTrace> trace;
    std::uint64_t root_span = 0;
    std::uint64_t queue_span = 0;
    std::uint64_t submit_micros = 0;   // steady-clock stamp at accept
    std::uint64_t dequeue_micros = 0;  // steady-clock stamp at worker claim
    std::uint64_t wall_ms = 0;         // queue + service time at completion
  };

  void accept_loop();
  void handle_connection(int fd);
  void worker_loop();
  std::string handle_request(const std::string& payload, bool& close_conn);

  // Op handlers (payload already parsed; each returns the reply JSON).
  std::string op_submit(const JsonValue& req);
  std::string op_status(const JsonValue& req);
  std::string op_result(const JsonValue& req);
  std::string op_cancel(const JsonValue& req);
  std::string op_stats();
  std::string op_metrics();
  std::string op_trace(const JsonValue& req);
  std::string op_shutdown(const JsonValue& req);

  std::uint64_t retry_after_ms_locked() const;
  void finish_shutdown();

  // --- observability helpers ----------------------------------------------
  // Resolves every instrument the hot paths touch and pre-registers the
  // sampled gauge families, so the exported metric catalogue is complete
  // (and deterministic) from the first scrape.
  void register_instruments();
  // Refreshes the sampled gauges (queue depths, cache/disk/pool occupancy,
  // retry-after EWMA) from one consistent pass over the sources.
  void sample_observability();
  void sampler_loop();
  void count_bad_request_locked();
  // Closes a cancelled job's spans, counts it, and writes its access-log
  // line.  Call *outside* mu_ — the job is terminal, nobody writes it now.
  void observe_cancelled(const std::shared_ptr<Job>& job);

  ServerOptions opts_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<FlowExecutor> exec_;
  JobQueue queue_;

  mutable std::mutex mu_;
  std::condition_variable job_cv_;  // job state transitions (result waiters)
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
  ServerStats stats_;
  double service_ewma_ms_ = 0.0;  // completed-job wall time, exp. smoothed

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};
  bool owns_unix_path_ = false;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> accepting_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> drain_{true};
  std::uint64_t start_micros_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::set<int> conn_fds_;

  // --- observability -------------------------------------------------------
  obs::Registry registry_;
  // Live Pareto frontier over (control area x cycle time): every
  // simulated ok job folds in, exported as the analysis.* gauges.
  analysis::FrontierTracker frontier_;
  std::unique_ptr<obs::AccessLog> access_log_;
  obs::MetricsHttpServer metrics_http_;
  std::thread sampler_thread_;
  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  // Hot-path instruments resolved once in register_instruments(); indexed
  // by priority class where labeled.
  obs::Counter* submissions_[kPriorityClasses] = {};
  obs::Counter* rejections_busy_[kPriorityClasses] = {};
  obs::Counter* rejections_closed_[kPriorityClasses] = {};
  obs::Counter* completions_[kPriorityClasses] = {};
  obs::Counter* cancellations_ = nullptr;
  obs::Counter* bad_requests_ = nullptr;
  obs::SlidingHistogram* queue_wait_[kPriorityClasses] = {};
  obs::SlidingHistogram* service_time_[kPriorityClasses] = {};
};

}  // namespace serve
}  // namespace adc
