#pragma once
// Wire protocol of the synthesis service (adc_serve / adc_submit).
//
// Transport: a byte stream (TCP or Unix-domain socket) carrying frames,
//
//   offset  size  field
//        0     4  payload length N (little-endian u32)
//        4     N  payload: one UTF-8 JSON document
//
// Every request payload is a JSON object with an "op" member; every reply
// is a JSON object with "ok" (bool) and the echoed "op".  Failed requests
// carry "error" (human-readable) and "code" (stable machine tag:
// "bad_request", "busy", "not_found", "shutting_down", "too_large").  A
// backpressure rejection ("busy") additionally carries "retry_after_ms".
//
// Framing is deliberately dumb so a client in any language is a dozen
// lines; the FrameReader below is the single decoder both sides use.  It
// accepts input in arbitrary slices (partial length prefixes, frames
// split across recv() boundaries) and treats an oversized declared length
// as an unrecoverable stream error — there is no way to resync once a
// peer lies about a length, so the connection must be dropped.
//
// docs/SERVING.md is the protocol reference (ops, fields, exit codes).

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace adc {

class JsonWriter;

namespace serve {

// Upper bound a peer may declare for one frame before the stream is
// considered hostile/corrupt.  Large enough for a full 32-point report,
// small enough to bound a malicious allocation.
constexpr std::uint32_t kDefaultMaxFrameBytes = 8u << 20;

constexpr std::size_t kFrameHeaderBytes = 4;

// Thrown by FrameReader on an unrecoverable stream defect.
class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what) : std::runtime_error(what) {}
};

// payload -> length-prefixed frame bytes.  Throws FrameError when the
// payload itself exceeds `max_frame_bytes`.
std::string encode_frame(const std::string& payload,
                         std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

// Incremental frame decoder.  feed() any number of bytes, then drain
// complete frames with next(); a truncated prefix or partial payload is
// simply "not yet" (next() returns false), an oversized declared length
// throws FrameError and poisons the reader.
class FrameReader {
 public:
  explicit FrameReader(std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_(max_frame_bytes) {}

  void feed(const char* data, std::size_t n) { buf_.append(data, n); }
  void feed(const std::string& data) { buf_.append(data); }

  // Extracts the next complete frame's payload.  Returns false when the
  // buffer holds only a partial frame (or nothing).  Throws FrameError
  // (and keeps throwing) once the stream declared an oversized frame.
  bool next(std::string& payload);

  // Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size(); }
  bool poisoned() const { return poisoned_; }

 private:
  std::uint32_t max_;
  std::string buf_;
  bool poisoned_ = false;
};

// --- reply helpers ---------------------------------------------------------
// The server and client agree on these canonical shapes; everything
// op-specific is appended by the caller before end_object().

// {"ok": false, "op": op, "code": code, "error": message
//  [, "retry_after_ms": N]}
std::string error_reply(const std::string& op, const std::string& code,
                        const std::string& message,
                        std::uint64_t retry_after_ms = 0);

// Begins {"ok": true, "op": op, ... — caller appends members and closes.
void begin_ok_reply(JsonWriter& w, const std::string& op);

// --- job priorities --------------------------------------------------------
// Three classes; lower value = served first.  FIFO within a class.

enum class Priority { kHigh = 0, kNormal = 1, kLow = 2 };
constexpr std::size_t kPriorityClasses = 3;

const char* to_string(Priority p);
// Accepts "high"/"normal"/"low" (and "0"/"1"/"2"); returns false on
// anything else.
bool parse_priority(const std::string& text, Priority* out);

}  // namespace serve
}  // namespace adc
