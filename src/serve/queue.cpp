#include "serve/queue.hpp"

namespace adc {
namespace serve {

std::size_t JobQueue::depth_locked() const {
  std::size_t n = 0;
  for (const auto& q : classes_) n += q.size();
  return n;
}

JobQueue::PushResult JobQueue::push(std::uint64_t id, Priority p) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    ++stats_.rejected_closed;
    return PushResult::kClosed;
  }
  if (capacity_ > 0 && depth_locked() >= capacity_) {
    ++stats_.rejected_full;
    return PushResult::kFull;
  }
  classes_[static_cast<std::size_t>(p)].push_back(id);
  ++stats_.accepted;
  std::uint64_t d = depth_locked();
  if (d > stats_.max_depth) stats_.max_depth = d;
  cv_.notify_one();
  return PushResult::kAccepted;
}

bool JobQueue::pop(std::uint64_t* id) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || depth_locked() > 0; });
  for (auto& q : classes_) {
    if (q.empty()) continue;
    *id = q.front();
    q.pop_front();
    ++stats_.popped;
    return true;
  }
  return false;  // closed and drained
}

bool JobQueue::try_pop(std::uint64_t* id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& q : classes_) {
    if (q.empty()) continue;
    *id = q.front();
    q.pop_front();
    ++stats_.popped;
    return true;
  }
  return false;
}

bool JobQueue::remove(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& q : classes_)
    for (auto it = q.begin(); it != q.end(); ++it)
      if (*it == id) {
        q.erase(it);
        ++stats_.removed;
        return true;
      }
  return false;
}

void JobQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_locked();
}

std::size_t JobQueue::depth(Priority p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return classes_[static_cast<std::size_t>(p)].size();
}

std::size_t JobQueue::position(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t ahead = 0;
  for (const auto& q : classes_) {
    for (const std::uint64_t queued : q) {
      if (queued == id) return ahead;
      ++ahead;
    }
  }
  return static_cast<std::size_t>(-1);
}

JobQueue::Stats JobQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace serve
}  // namespace adc
