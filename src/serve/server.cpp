#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "trace/log.hpp"

namespace adc {
namespace serve {

namespace {

std::uint64_t steady_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_cloexec(int fd) {
  int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

// Full-buffer send, riding out EINTR and short writes.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

const char* job_state_name(int s) {
  switch (s) {
    case 0: return "queued";
    case 1: return "running";
    case 2: return "done";
    case 3: return "cancelled";
  }
  return "unknown";
}

}  // namespace

ServeServer::ServeServer(ServerOptions opts)
    : opts_(std::move(opts)), queue_(opts_.queue_capacity) {
  pool_ = std::make_unique<ThreadPool>(opts_.pool_threads);
  exec_ = std::make_unique<FlowExecutor>(pool_.get(), opts_.flow);
  if (opts_.workers == 0) opts_.workers = 1;
}

ServeServer::~ServeServer() {
  if (started_ && !stopped_) {
    request_shutdown(false);
    wait();
  }
  for (int fd : {wake_pipe_[0], wake_pipe_[1]})
    if (fd >= 0) ::close(fd);
}

void ServeServer::start() {
  if (started_) throw std::logic_error("serve: start() called twice");
  if (opts_.unix_socket.empty() && opts_.port < 0)
    throw std::invalid_argument("serve: no listener configured (need a unix "
                                "socket path and/or a TCP port)");
  if (::pipe(wake_pipe_) != 0)
    throw std::runtime_error("serve: pipe() failed: " +
                             std::string(std::strerror(errno)));
  set_cloexec(wake_pipe_[0]);
  set_cloexec(wake_pipe_[1]);

  if (!opts_.unix_socket.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.unix_socket.size() >= sizeof(addr.sun_path))
      throw std::invalid_argument("serve: unix socket path too long: " +
                                  opts_.unix_socket);
    std::strncpy(addr.sun_path, opts_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0)
      throw std::runtime_error("serve: socket(AF_UNIX) failed: " +
                               std::string(std::strerror(errno)));
    set_cloexec(unix_fd_);
    bool bound =
        ::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    if (!bound && errno == EADDRINUSE) {
      // A stale socket file from a dead daemon refuses connections; detect
      // that, reclaim the path, and retry once.
      int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      bool live = probe >= 0 &&
                  ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) == 0;
      if (probe >= 0) ::close(probe);
      if (!live) {
        ::unlink(opts_.unix_socket.c_str());
        bound = ::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0;
      }
    }
    if (!bound) {
      ::close(unix_fd_);
      unix_fd_ = -1;
      throw std::runtime_error("serve: cannot bind " + opts_.unix_socket +
                               ": " + std::strerror(errno));
    }
    owns_unix_path_ = true;
    if (::listen(unix_fd_, 64) != 0)
      throw std::runtime_error("serve: listen(" + opts_.unix_socket +
                               ") failed: " + std::strerror(errno));
  }

  if (opts_.port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0)
      throw std::runtime_error("serve: socket(AF_INET) failed: " +
                               std::string(std::strerror(errno)));
    set_cloexec(tcp_fd_);
    int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
    if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1)
      throw std::invalid_argument("serve: bad host '" + opts_.host + "'");
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(tcp_fd_, 64) != 0)
      throw std::runtime_error("serve: cannot bind " + opts_.host + ":" +
                               std::to_string(opts_.port) + ": " +
                               std::strerror(errno));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      tcp_port_ = ntohs(bound.sin_port);
  }

  start_micros_ = steady_micros();
  started_ = true;
  accepting_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (std::size_t i = 0; i < opts_.workers; ++i)
    worker_threads_.emplace_back([this] { worker_loop(); });
  ADC_LOG_INFO("serve", "server started",
               {{"unix", opts_.unix_socket},
                {"port", static_cast<std::int64_t>(tcp_port_)},
                {"workers", opts_.workers},
                {"queue_capacity", opts_.queue_capacity}});
}

void ServeServer::accept_loop() {
  while (!shutdown_requested_) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {wake_pipe_[0], POLLIN, 0};
    if (unix_fd_ >= 0) fds[n++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n++] = {tcp_fd_, POLLIN, 0};
    int r = ::poll(fds, n, 500);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents & POLLIN) {
      char buf[16];
      ssize_t got = ::read(wake_pipe_[0], buf, sizeof(buf));
      for (ssize_t i = 0; i < got; ++i)
        if (buf[i] == 'd' || buf[i] == 'c') request_shutdown(buf[i] == 'd');
      continue;  // re-check shutdown_requested_
    }
    for (nfds_t i = 1; i < n; ++i) {
      if (!(fds[i].revents & POLLIN)) continue;
      int fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      set_cloexec(fd);
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (shutdown_requested_) {
        ::close(fd);
        continue;
      }
      conn_fds_.insert(fd);
      conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
      std::lock_guard<std::mutex> slock(mu_);
      ++stats_.connections;
    }
  }
  // Close the listeners right away: a client sitting in the listen
  // backlog that was never accepted sees EOF on its first read instead of
  // hanging until wait() tears the socket down.
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  accepting_ = false;
}

void ServeServer::handle_connection(int fd) {
  FrameReader reader(opts_.max_frame_bytes);
  char buf[64 * 1024];
  bool close_conn = false;
  while (!close_conn) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed (or our drain shut the read side)
    reader.feed(buf, static_cast<std::size_t>(n));
    std::string payload;
    try {
      while (!close_conn && reader.next(payload)) {
        std::string reply = handle_request(payload, close_conn);
        if (!send_all(fd, encode_frame(reply, opts_.max_frame_bytes))) {
          close_conn = true;
          break;
        }
      }
    } catch (const FrameError& e) {
      // Unrecoverable stream defect: reply best-effort, then drop the
      // connection — there is no frame boundary left to resync on.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_requests;
      send_all(fd, encode_frame(error_reply("", "too_large", e.what()),
                                opts_.max_frame_bytes));
      close_conn = true;
    }
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(fd);
  ::close(fd);
}

std::string ServeServer::handle_request(const std::string& payload,
                                        bool& close_conn) {
  JsonValue doc;
  try {
    doc = parse_json(payload);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.bad_requests;
    return error_reply("", "bad_request",
                       std::string("malformed JSON: ") + e.what());
  }
  const JsonValue* opv = doc.find("op");
  if (!doc.is_object() || !opv || !opv->is_string()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.bad_requests;
    return error_reply("", "bad_request",
                       "request must be an object with a string \"op\"");
  }
  const std::string& op = opv->string;
  try {
    if (op == "ping") {
      JsonWriter w;
      begin_ok_reply(w, op);
      w.end_object();
      return w.str();
    }
    if (op == "submit") return op_submit(doc);
    if (op == "status") return op_status(doc);
    if (op == "result") return op_result(doc);
    if (op == "cancel") return op_cancel(doc);
    if (op == "stats") return op_stats();
    if (op == "shutdown") {
      std::string reply = op_shutdown(doc);
      close_conn = true;
      return reply;
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.bad_requests;
    return error_reply(op, "bad_request", e.what());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.bad_requests;
  }
  return error_reply(op, "bad_request", "unknown op '" + op + "'");
}

std::uint64_t ServeServer::retry_after_ms_locked() const {
  // How long until a queue slot plausibly frees up: the smoothed per-job
  // service time times the backlog ahead of a new arrival, spread over
  // the worker lanes.  Clamped so a cold server still suggests a sane
  // pause and a deep backlog cannot push clients out forever.
  double per_job = service_ewma_ms_ > 0.0 ? service_ewma_ms_ : 100.0;
  double backlog = static_cast<double>(queue_.depth() + stats_.running + 1);
  double ms = per_job * backlog / static_cast<double>(opts_.workers);
  if (ms < 25.0) ms = 25.0;
  if (ms > 10000.0) ms = 10000.0;
  return static_cast<std::uint64_t>(ms);
}

std::string ServeServer::op_submit(const JsonValue& doc) {
  if (shutdown_requested_)
    return error_reply("submit", "shutting_down", "server is draining");

  FlowRequest req;
  const JsonValue* bench = doc.find("bench");
  const JsonValue* source = doc.find("source");
  if (bench && bench->is_string()) {
    const BuiltinBenchmark* b = find_builtin(bench->string);
    if (!b)
      return error_reply("submit", "bad_request",
                         "unknown builtin benchmark '" + bench->string + "'");
    req = make_builtin_request(*b, req.script);
  } else if (source && source->is_string()) {
    req.source = source->string;
    req.benchmark = "client";
    if (const JsonValue* name = doc.find("name"); name && name->is_string())
      req.benchmark = name->string;
  } else {
    return error_reply("submit", "bad_request",
                       "submit needs \"bench\" (builtin name) or \"source\" "
                       "(program text)");
  }
  if (const JsonValue* script = doc.find("script"); script && script->is_string())
    req.script = script->string;
  try {
    // Reject unparseable recipes at the door — a queue slot is too
    // expensive to spend on a guaranteed status=error.
    req.script = TransformScript::parse(req.script).to_string();
  } catch (const std::exception& e) {
    return error_reply("submit", "bad_request",
                       std::string("bad script: ") + e.what());
  }
  if (const JsonValue* init = doc.find("init"); init && init->is_object())
    for (const auto& [k, v] : init->object)
      req.init[k] = static_cast<std::int64_t>(v.number);
  if (const JsonValue* v = doc.find("seed"); v && v->is_number())
    req.sim.seed = static_cast<std::uint64_t>(v->number);
  if (const JsonValue* v = doc.find("simulate"); v && v->is_bool())
    req.simulate = v->boolean;
  req.stage_deadline_ms = opts_.stage_deadline_ms;
  req.deadline_ms = opts_.default_deadline_ms;
  if (const JsonValue* v = doc.find("deadline_ms"); v && v->is_number())
    req.deadline_ms = static_cast<std::uint64_t>(v->number);
  if (opts_.max_deadline_ms > 0 &&
      (req.deadline_ms == 0 || req.deadline_ms > opts_.max_deadline_ms))
    req.deadline_ms = opts_.max_deadline_ms;

  Priority prio = Priority::kNormal;
  if (const JsonValue* v = doc.find("priority")) {
    if (!v->is_string() || !parse_priority(v->string, &prio))
      return error_reply("submit", "bad_request",
                         "priority must be \"high\", \"normal\" or \"low\"");
  }

  auto job = std::make_shared<Job>();
  job->priority = prio;
  job->req = std::move(req);
  job->submit_micros = steady_micros();

  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    job->id = id;
    jobs_[id] = job;
  }
  JobQueue::PushResult pushed = queue_.push(id, prio);
  if (pushed != JobQueue::PushResult::kAccepted) {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.erase(id);
    ++stats_.rejected;
    if (pushed == JobQueue::PushResult::kClosed)
      return error_reply("submit", "shutting_down", "server is draining");
    return error_reply("submit", "busy",
                       "job queue is full (" +
                           std::to_string(queue_.capacity()) + " jobs)",
                       retry_after_ms_locked());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
  }
  ADC_LOG_DEBUG("serve", "job accepted",
                {{"id", id},
                 {"benchmark", job->req.benchmark},
                 {"script", job->req.script},
                 {"priority", std::string(to_string(prio))}});
  JsonWriter w;
  begin_ok_reply(w, "submit");
  w.kv("id", id);
  w.kv("priority", to_string(prio));
  w.kv("queue_depth", static_cast<std::uint64_t>(queue_.depth()));
  w.end_object();
  return w.str();
}

std::string ServeServer::op_status(const JsonValue& doc) {
  const JsonValue* idv = doc.find("id");
  if (!idv || !idv->is_number())
    return error_reply("status", "bad_request", "status needs a numeric \"id\"");
  std::uint64_t id = static_cast<std::uint64_t>(idv->number);
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job)
    return error_reply("status", "not_found",
                       "no job " + std::to_string(id));
  JsonWriter w;
  begin_ok_reply(w, "status");
  w.kv("id", id);
  {
    std::lock_guard<std::mutex> lock(mu_);
    w.kv("state", job_state_name(static_cast<int>(job->state)));
    if (job->state == JobState::kQueued) {
      std::size_t pos = queue_.position(id);
      if (pos != static_cast<std::size_t>(-1))
        w.kv("position", static_cast<std::uint64_t>(pos));
    }
    if (job->state == JobState::kDone) {
      w.kv("status", to_string(job->result.status));
      w.kv("wall_ms", job->wall_ms);
      if (job->result.from_disk_cache) w.kv("from_disk_cache", true);
    }
  }
  w.end_object();
  return w.str();
}

std::string ServeServer::op_result(const JsonValue& doc) {
  const JsonValue* idv = doc.find("id");
  if (!idv || !idv->is_number())
    return error_reply("result", "bad_request", "result needs a numeric \"id\"");
  std::uint64_t id = static_cast<std::uint64_t>(idv->number);
  bool block = true;
  if (const JsonValue* v = doc.find("wait"); v && v->is_bool()) block = v->boolean;
  std::uint64_t timeout_ms = 0;
  if (const JsonValue* v = doc.find("timeout_ms"); v && v->is_number())
    timeout_ms = static_cast<std::uint64_t>(v->number);

  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job)
    return error_reply("result", "not_found", "no job " + std::to_string(id));

  FlowPoint point;
  std::uint64_t wall_ms = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto terminal = [&] {
      return job->state == JobState::kDone || job->state == JobState::kCancelled;
    };
    if (block) {
      if (timeout_ms > 0) {
        if (!job_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                              terminal))
          return error_reply("result", "busy",
                             "job " + std::to_string(id) +
                                 " still " +
                                 job_state_name(static_cast<int>(job->state)),
                             retry_after_ms_locked());
      } else {
        job_cv_.wait(lock, terminal);
      }
    } else if (!terminal()) {
      JsonWriter w;
      begin_ok_reply(w, "result");
      w.kv("id", id);
      w.kv("state", job_state_name(static_cast<int>(job->state)));
      w.end_object();
      return w.str();
    }
    point = job->result;
    wall_ms = job->wall_ms;
  }
  JsonWriter w;
  begin_ok_reply(w, "result");
  w.kv("id", id);
  w.kv("state", "done");
  w.kv("wall_ms", wall_ms);
  w.key("point");
  write_json(w, point);
  w.end_object();
  return w.str();
}

std::string ServeServer::op_cancel(const JsonValue& doc) {
  const JsonValue* idv = doc.find("id");
  if (!idv || !idv->is_number())
    return error_reply("cancel", "bad_request", "cancel needs a numeric \"id\"");
  std::uint64_t id = static_cast<std::uint64_t>(idv->number);
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job)
    return error_reply("cancel", "not_found", "no job " + std::to_string(id));

  std::string outcome;
  if (queue_.remove(id)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (job->state == JobState::kQueued) {
      job->state = JobState::kCancelled;
      job->result.benchmark = job->req.benchmark;
      job->result.script = job->req.script;
      job->result.ok = false;
      job->result.status = FlowStatus::kCancelled;
      job->result.error = "cancelled by client";
      ++stats_.cancelled;
      job_cv_.notify_all();
    }
    outcome = "dequeued";
  } else {
    // Already claimed by a worker (or finished): trip the token; the
    // stages unwind cooperatively and the job completes as cancelled.
    job->req.cancel.request("cancelled by client");
    std::lock_guard<std::mutex> lock(mu_);
    outcome = job->state == JobState::kDone ? "already_done" : "signalled";
  }
  JsonWriter w;
  begin_ok_reply(w, "cancel");
  w.kv("id", id);
  w.kv("outcome", outcome);
  w.end_object();
  return w.str();
}

std::string ServeServer::op_stats() {
  JsonWriter w;
  begin_ok_reply(w, "stats");
  w.kv("state", shutdown_requested_ ? "draining" : "serving");
  w.kv("uptime_ms", (steady_micros() - start_micros_) / 1000);
  ServerStats s = stats();
  w.key("jobs");
  w.begin_object();
  w.kv("submitted", s.submitted);
  w.kv("completed", s.completed);
  w.kv("cancelled", s.cancelled);
  w.kv("rejected", s.rejected);
  w.kv("queued", static_cast<std::uint64_t>(s.queued));
  w.kv("running", static_cast<std::uint64_t>(s.running));
  w.end_object();
  JobQueue::Stats qs = queue_.stats();
  w.key("queue");
  w.begin_object();
  w.kv("depth", static_cast<std::uint64_t>(queue_.depth()));
  w.kv("capacity", static_cast<std::uint64_t>(queue_.capacity()));
  w.kv("max_depth", qs.max_depth);
  w.kv("accepted", qs.accepted);
  w.kv("rejected_full", qs.rejected_full);
  w.kv("rejected_closed", qs.rejected_closed);
  w.end_object();
  CacheStats cs = exec_->cache().stats();
  w.key("cache");
  w.begin_object();
  w.kv("hits", cs.hits);
  w.kv("joins", cs.joins);
  w.kv("misses", cs.misses);
  w.kv("entries", cs.entries);
  w.kv("hit_rate", cs.hit_rate());
  w.end_object();
  if (const DiskCache* dc = exec_->disk_cache()) {
    DiskCache::Stats ds = dc->stats();
    w.key("disk_cache");
    w.begin_object();
    w.kv("dir", dc->dir());
    w.kv("hits", ds.hits);
    w.kv("misses", ds.misses);
    w.kv("stores", ds.puts);
    w.kv("evictions", ds.evictions);
    w.kv("corrupt", ds.corrupt);
    w.kv("total_bytes", dc->total_bytes());
    w.end_object();
  }
  w.key("pool");
  w.begin_object();
  w.kv("threads", static_cast<std::uint64_t>(pool_->size()));
  w.kv("pending", static_cast<std::uint64_t>(pool_->pending()));
  w.kv("tasks_executed", pool_->tasks_executed());
  w.end_object();
  w.kv("workers", static_cast<std::uint64_t>(opts_.workers));
  w.key("metrics");
  exec_->metrics().write_json(w);
  w.end_object();
  return w.str();
}

std::string ServeServer::op_shutdown(const JsonValue& doc) {
  bool drain = true;
  if (const JsonValue* v = doc.find("drain"); v && v->is_bool()) drain = v->boolean;
  JsonWriter w;
  begin_ok_reply(w, "shutdown");
  w.kv("drain", drain);
  w.kv("pending_jobs", static_cast<std::uint64_t>(queue_.depth()));
  w.end_object();
  request_shutdown(drain);
  return w.str();
}

void ServeServer::request_shutdown(bool drain) {
  bool expected = false;
  if (!shutdown_requested_.compare_exchange_strong(expected, true)) return;
  drain_ = drain;
  ADC_LOG_INFO("serve", "shutdown requested",
               {{"drain", drain},
                {"queued", queue_.depth()}});
  queue_.close();
  if (!drain) {
    // Cancel mode: empty the backlog, then trip every running job.
    std::uint64_t id;
    while (queue_.try_pop(&id)) {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      Job& job = *it->second;
      job.state = JobState::kCancelled;
      job.result.benchmark = job.req.benchmark;
      job.result.script = job.req.script;
      job.result.ok = false;
      job.result.status = FlowStatus::kCancelled;
      job.result.error = "cancelled by server shutdown";
      ++stats_.cancelled;
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [jid, job] : jobs_)
      if (job->state == JobState::kRunning)
        job->req.cancel.request("cancelled by server shutdown");
    job_cv_.notify_all();
  }
  // Wake the accept loop's poll.
  if (wake_pipe_[1] >= 0) {
    char b = drain ? 'd' : 'c';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void ServeServer::worker_loop() {
  std::uint64_t id;
  while (queue_.pop(&id)) {
    std::shared_ptr<Job> job;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      job = it->second;
      if (job->state != JobState::kQueued) continue;  // raced with a cancel
      job->state = JobState::kRunning;
      ++stats_.running;
    }
    FlowPoint p = exec_->run(job->req);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job->result = std::move(p);
      job->state = JobState::kDone;
      job->wall_ms = (steady_micros() - job->submit_micros) / 1000;
      --stats_.running;
      ++stats_.completed;
      // Service-time EWMA feeding the busy replies' retry-after hint.
      double w = static_cast<double>(job->wall_ms);
      service_ewma_ms_ =
          service_ewma_ms_ > 0.0 ? 0.8 * service_ewma_ms_ + 0.2 * w : w;
      job_cv_.notify_all();
    }
    ADC_LOG_DEBUG("serve", "job done",
                  {{"id", id},
                   {"status", std::string(to_string(job->result.status))},
                   {"wall_ms", job->wall_ms}});
  }
}

int ServeServer::wait() {
  if (!started_) return 0;
  if (stopped_) return drain_ ? 0 : 5;
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : worker_threads_) t.join();
  worker_threads_.clear();
  finish_shutdown();
  stopped_ = true;
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.cancelled > 0 && !drain_ ? 5 : 0;
}

void ServeServer::finish_shutdown() {
  // Workers have exited: every job is terminal, so any connection thread
  // blocked in op_result has been woken.  Shut the read side of every
  // live connection — recv() returns 0, the thread flushes its last reply
  // and exits — then join.
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_cv_.notify_all();
  }
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    conns.swap(conn_threads_);
  }
  for (auto& t : conns) t.join();
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  if (owns_unix_path_) ::unlink(opts_.unix_socket.c_str());
  ADC_LOG_INFO("serve", "server stopped",
               {{"completed", stats().completed},
                {"cancelled", stats().cancelled}});
}

ServerStats ServeServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats s = stats_;
  s.queued = queue_.depth();
  return s;
}

}  // namespace serve
}  // namespace adc
