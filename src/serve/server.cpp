#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "analysis/build.hpp"
#include "obs/prometheus.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "trace/log.hpp"

namespace adc {
namespace serve {

namespace {

std::uint64_t steady_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_cloexec(int fd) {
  int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

// Full-buffer send, riding out EINTR and short writes.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// splitmix64 finalizer.  Trace ids derive from the daemon start stamp and
// the job id: deterministic enough to test against, distinct across
// restarts, no PRNG state to seed or lock.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

const char* kClassNames[kPriorityClasses] = {"high", "normal", "low"};

const char* job_state_name(int s) {
  switch (s) {
    case 0: return "queued";
    case 1: return "running";
    case 2: return "done";
    case 3: return "cancelled";
  }
  return "unknown";
}

}  // namespace

ServeServer::ServeServer(ServerOptions opts)
    : opts_(std::move(opts)), queue_(opts_.queue_capacity) {
  pool_ = std::make_unique<ThreadPool>(opts_.pool_threads);
  exec_ = std::make_unique<FlowExecutor>(pool_.get(), opts_.flow);
  if (opts_.workers == 0) opts_.workers = 1;
}

ServeServer::~ServeServer() {
  if (started_ && !stopped_) {
    request_shutdown(false);
    wait();
  }
  for (int fd : {wake_pipe_[0], wake_pipe_[1]})
    if (fd >= 0) ::close(fd);
}

void ServeServer::start() {
  if (started_) throw std::logic_error("serve: start() called twice");
  if (opts_.unix_socket.empty() && opts_.port < 0)
    throw std::invalid_argument("serve: no listener configured (need a unix "
                                "socket path and/or a TCP port)");
  if (::pipe(wake_pipe_) != 0)
    throw std::runtime_error("serve: pipe() failed: " +
                             std::string(std::strerror(errno)));
  set_cloexec(wake_pipe_[0]);
  set_cloexec(wake_pipe_[1]);

  if (!opts_.unix_socket.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.unix_socket.size() >= sizeof(addr.sun_path))
      throw std::invalid_argument("serve: unix socket path too long: " +
                                  opts_.unix_socket);
    std::strncpy(addr.sun_path, opts_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0)
      throw std::runtime_error("serve: socket(AF_UNIX) failed: " +
                               std::string(std::strerror(errno)));
    set_cloexec(unix_fd_);
    bool bound =
        ::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    if (!bound && errno == EADDRINUSE) {
      // A stale socket file from a dead daemon refuses connections; detect
      // that, reclaim the path, and retry once.
      int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      bool live = probe >= 0 &&
                  ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) == 0;
      if (probe >= 0) ::close(probe);
      if (!live) {
        ::unlink(opts_.unix_socket.c_str());
        bound = ::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0;
      }
    }
    if (!bound) {
      ::close(unix_fd_);
      unix_fd_ = -1;
      throw std::runtime_error("serve: cannot bind " + opts_.unix_socket +
                               ": " + std::strerror(errno));
    }
    owns_unix_path_ = true;
    if (::listen(unix_fd_, 64) != 0)
      throw std::runtime_error("serve: listen(" + opts_.unix_socket +
                               ") failed: " + std::strerror(errno));
  }

  if (opts_.port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0)
      throw std::runtime_error("serve: socket(AF_INET) failed: " +
                               std::string(std::strerror(errno)));
    set_cloexec(tcp_fd_);
    int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
    if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1)
      throw std::invalid_argument("serve: bad host '" + opts_.host + "'");
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(tcp_fd_, 64) != 0)
      throw std::runtime_error("serve: cannot bind " + opts_.host + ":" +
                               std::to_string(opts_.port) + ": " +
                               std::strerror(errno));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      tcp_port_ = ntohs(bound.sin_port);
  }

  start_micros_ = steady_micros();
  register_instruments();
  if (!opts_.access_log.empty())
    access_log_ = std::make_unique<obs::AccessLog>(opts_.access_log,
                                                   opts_.access_log_max_bytes);
  if (opts_.metrics_port >= 0) {
    std::string err;
    bool up = metrics_http_.start(
        opts_.metrics_host, static_cast<std::uint16_t>(opts_.metrics_port),
        [this](const std::string& path, std::string* type, std::string* body) {
          if (path != "/metrics") return false;
          *type = "text/plain; version=0.0.4; charset=utf-8";
          *body = obs::render_prometheus(registry_.snapshot());
          return true;
        },
        &err);
    if (!up) throw std::runtime_error("serve: metrics endpoint: " + err);
  }
  started_ = true;
  accepting_ = true;
  sampler_thread_ = std::thread([this] { sampler_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (std::size_t i = 0; i < opts_.workers; ++i)
    worker_threads_.emplace_back([this] { worker_loop(); });
  ADC_LOG_INFO("serve", "server started",
               {{"unix", opts_.unix_socket},
                {"port", static_cast<std::int64_t>(tcp_port_)},
                {"metrics_port", static_cast<std::int64_t>(metrics_http_port())},
                {"workers", opts_.workers},
                {"queue_capacity", opts_.queue_capacity}});
}

void ServeServer::register_instruments() {
  for (std::size_t i = 0; i < kPriorityClasses; ++i) {
    obs::Labels cls{{"class", kClassNames[i]}};
    submissions_[i] = &registry_.counter(
        "serve.submissions", cls, "jobs accepted into the queue");
    rejections_busy_[i] = &registry_.counter(
        "serve.rejections", {{"class", kClassNames[i]}, {"reason", "busy"}},
        "submissions rejected, by class and reason");
    rejections_closed_[i] = &registry_.counter(
        "serve.rejections",
        {{"class", kClassNames[i]}, {"reason", "shutting_down"}}, "");
    completions_[i] = &registry_.counter(
        "serve.completions", cls, "jobs run to a terminal status by a worker");
    queue_wait_[i] = &registry_.histogram(
        "serve.queue.wait_us", cls, "submit-to-dequeue wait per priority class");
    service_time_[i] = &registry_.histogram(
        "serve.service_us", cls, "dequeue-to-done service time per priority class");
    registry_.gauge("serve.queue.depth", cls, "jobs waiting, per priority class");
  }
  cancellations_ =
      &registry_.counter("serve.cancellations", {}, "jobs cancelled while queued");
  bad_requests_ = &registry_.counter(
      "serve.bad_requests", {}, "malformed frames, bad JSON and unknown ops");
  // Sampled gauges; registered up front so the exported family catalogue
  // never depends on which code paths have run yet.
  registry_.gauge("serve.running", {}, "jobs executing right now");
  registry_.gauge("serve.connections", {}, "client connections accepted since start");
  registry_.gauge("serve.retry_after_ms", {},
                  "backpressure hint currently sent with busy replies");
  registry_.gauge("serve.service_ewma_ms", {},
                  "exponentially smoothed per-job wall time feeding that hint");
  registry_.gauge("serve.cache.entries", {}, "stage-cache entries resident");
  registry_.gauge("serve.cache.bytes", {}, "stage-cache bytes resident");
  registry_.gauge("serve.cache.hit_ratio", {},
                  "stage-cache hits+joins over lookups, lifetime");
  registry_.gauge("serve.disk.hits", {}, "disk-tier replays served");
  registry_.gauge("serve.disk.misses", {}, "disk-tier probes that missed");
  registry_.gauge("serve.disk.stores", {}, "points persisted to the disk tier");
  registry_.gauge("serve.disk.corrupt", {}, "disk-tier entries failing checksum");
  registry_.gauge("serve.disk.bytes", {}, "disk-tier bytes resident");
  registry_.gauge("serve.pool.pending", {}, "pool subtasks queued");
  registry_.gauge("serve.pool.tasks_executed", {}, "pool subtasks completed");
  registry_.gauge("serve.flow.timeouts", {}, "jobs unwound by a deadline watchdog");
  registry_.gauge("serve.flow.faults", {}, "jobs stopped by an injected fault");
  registry_.gauge("serve.flow.deadlocks", {}, "jobs whose event simulation stalled");
  // The executor's content-addressed cover memo (logic/memo.hpp): repeated
  // function specifications replay their minimized cover instead of
  // re-running candidate generation + covering.
  registry_.gauge("logic.memo.hits", {}, "cover-memo replays from memory");
  registry_.gauge("logic.memo.disk_hits", {}, "cover-memo replays from the disk tier");
  registry_.gauge("logic.memo.misses", {}, "cover-memo lookups that ran the minimizer");
  registry_.gauge("logic.memo.fills", {}, "covers computed and stored in the memo");
  registry_.gauge("logic.memo.fill_errors", {},
                  "memo fills abandoned (injected fault or bad payload)");
  registry_.gauge("logic.memo.disk_corrupt", {},
                  "torn disk memo entries detected and evicted");
  registry_.gauge("logic.memo.entries", {}, "memo entries resident in memory");
  // Design-space explainability (analysis/grid.hpp): the live Pareto
  // frontier over (control area x cycle time) across every simulated ok
  // job this daemon has completed.
  registry_.gauge("analysis.points", {}, "simulated ok jobs folded into the frontier");
  registry_.gauge("analysis.frontier_size", {}, "non-dominated (area, cycle) points");
  registry_.gauge("analysis.dominated", {}, "jobs dominated by a frontier member");
  registry_.gauge("analysis.best_cycle_time", {}, "fastest simulated cycle time seen");
  registry_.gauge("analysis.best_area_transistors", {},
                  "smallest control-area estimate seen");
}

void ServeServer::sample_observability() {
  ServerStats s = stats();
  double ewma_ms, retry_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ewma_ms = service_ewma_ms_;
    retry_ms = static_cast<double>(retry_after_ms_locked());
  }
  for (std::size_t i = 0; i < kPriorityClasses; ++i)
    registry_.gauge("serve.queue.depth", {{"class", kClassNames[i]}})
        .set(static_cast<std::int64_t>(queue_.depth(static_cast<Priority>(i))));
  registry_.gauge("serve.running").set(static_cast<std::int64_t>(s.running));
  registry_.gauge("serve.connections")
      .set(static_cast<std::int64_t>(s.connections));
  registry_.gauge("serve.retry_after_ms").set(retry_ms);
  registry_.gauge("serve.service_ewma_ms").set(ewma_ms);
  // Each source hands out an internally consistent snapshot (satellite 1);
  // the gauges here are mirrors, refreshed as one pass.
  CacheStats cs = exec_->cache().stats();
  registry_.gauge("serve.cache.entries").set(static_cast<std::int64_t>(cs.entries));
  registry_.gauge("serve.cache.bytes").set(static_cast<std::int64_t>(cs.bytes));
  registry_.gauge("serve.cache.hit_ratio").set(cs.hit_rate());
  if (const DiskCache* dc = exec_->disk_cache()) {
    DiskCache::Stats ds = dc->stats();
    registry_.gauge("serve.disk.hits").set(static_cast<std::int64_t>(ds.hits));
    registry_.gauge("serve.disk.misses").set(static_cast<std::int64_t>(ds.misses));
    registry_.gauge("serve.disk.stores").set(static_cast<std::int64_t>(ds.puts));
    registry_.gauge("serve.disk.corrupt").set(static_cast<std::int64_t>(ds.corrupt));
    registry_.gauge("serve.disk.bytes")
        .set(static_cast<std::int64_t>(dc->total_bytes()));
  }
  registry_.gauge("serve.pool.pending")
      .set(static_cast<std::int64_t>(pool_->pending()));
  registry_.gauge("serve.pool.tasks_executed")
      .set(static_cast<std::int64_t>(pool_->tasks_executed()));
  auto ec = exec_->metrics().counters();
  auto exec_count = [&ec](const char* name) -> std::int64_t {
    auto it = ec.find(name);
    return it == ec.end() ? 0 : static_cast<std::int64_t>(it->second);
  };
  registry_.gauge("serve.flow.timeouts").set(exec_count("flow.timeouts"));
  registry_.gauge("serve.flow.faults").set(exec_count("flow.faults"));
  registry_.gauge("serve.flow.deadlocks").set(exec_count("flow.deadlocks"));
  LogicMemo::Stats ms = exec_->logic_memo().stats();
  registry_.gauge("logic.memo.hits").set(static_cast<std::int64_t>(ms.hits));
  registry_.gauge("logic.memo.disk_hits")
      .set(static_cast<std::int64_t>(ms.disk_hits));
  registry_.gauge("logic.memo.misses").set(static_cast<std::int64_t>(ms.misses));
  registry_.gauge("logic.memo.fills").set(static_cast<std::int64_t>(ms.fills));
  registry_.gauge("logic.memo.fill_errors")
      .set(static_cast<std::int64_t>(ms.fill_errors));
  registry_.gauge("logic.memo.disk_corrupt")
      .set(static_cast<std::int64_t>(ms.disk_corrupt));
  registry_.gauge("logic.memo.entries").set(static_cast<std::int64_t>(ms.entries));
  analysis::FrontierTracker::Snapshot fs = frontier_.snapshot();
  registry_.gauge("analysis.points").set(static_cast<std::int64_t>(fs.points));
  registry_.gauge("analysis.frontier_size")
      .set(static_cast<std::int64_t>(fs.frontier_size));
  registry_.gauge("analysis.dominated")
      .set(static_cast<std::int64_t>(fs.dominated));
  registry_.gauge("analysis.best_cycle_time").set(fs.best_cycle_time);
  registry_.gauge("analysis.best_area_transistors")
      .set(static_cast<std::int64_t>(fs.best_area_transistors));
}

void ServeServer::sampler_loop() {
  std::unique_lock<std::mutex> lk(sampler_mu_);
  while (!sampler_stop_) {
    lk.unlock();
    sample_observability();
    lk.lock();
    sampler_cv_.wait_for(lk, std::chrono::milliseconds(500),
                         [this] { return sampler_stop_; });
  }
}

void ServeServer::accept_loop() {
  while (!shutdown_requested_) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {wake_pipe_[0], POLLIN, 0};
    if (unix_fd_ >= 0) fds[n++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n++] = {tcp_fd_, POLLIN, 0};
    int r = ::poll(fds, n, 500);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents & POLLIN) {
      char buf[16];
      ssize_t got = ::read(wake_pipe_[0], buf, sizeof(buf));
      for (ssize_t i = 0; i < got; ++i)
        if (buf[i] == 'd' || buf[i] == 'c') request_shutdown(buf[i] == 'd');
      continue;  // re-check shutdown_requested_
    }
    for (nfds_t i = 1; i < n; ++i) {
      if (!(fds[i].revents & POLLIN)) continue;
      int fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      set_cloexec(fd);
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (shutdown_requested_) {
        ::close(fd);
        continue;
      }
      conn_fds_.insert(fd);
      conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
      std::lock_guard<std::mutex> slock(mu_);
      ++stats_.connections;
    }
  }
  // Close the listeners right away: a client sitting in the listen
  // backlog that was never accepted sees EOF on its first read instead of
  // hanging until wait() tears the socket down.
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  accepting_ = false;
}

void ServeServer::handle_connection(int fd) {
  FrameReader reader(opts_.max_frame_bytes);
  char buf[64 * 1024];
  bool close_conn = false;
  while (!close_conn) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed (or our drain shut the read side)
    reader.feed(buf, static_cast<std::size_t>(n));
    std::string payload;
    try {
      while (!close_conn && reader.next(payload)) {
        std::string reply = handle_request(payload, close_conn);
        if (!send_all(fd, encode_frame(reply, opts_.max_frame_bytes))) {
          close_conn = true;
          break;
        }
      }
    } catch (const FrameError& e) {
      // Unrecoverable stream defect: reply best-effort, then drop the
      // connection — there is no frame boundary left to resync on.
      std::lock_guard<std::mutex> lock(mu_);
      count_bad_request_locked();
      send_all(fd, encode_frame(error_reply("", "too_large", e.what()),
                                opts_.max_frame_bytes));
      close_conn = true;
    }
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(fd);
  ::close(fd);
}

std::string ServeServer::handle_request(const std::string& payload,
                                        bool& close_conn) {
  JsonValue doc;
  try {
    doc = parse_json(payload);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu_);
    count_bad_request_locked();
    return error_reply("", "bad_request",
                       std::string("malformed JSON: ") + e.what());
  }
  const JsonValue* opv = doc.find("op");
  if (!doc.is_object() || !opv || !opv->is_string()) {
    std::lock_guard<std::mutex> lock(mu_);
    count_bad_request_locked();
    return error_reply("", "bad_request",
                       "request must be an object with a string \"op\"");
  }
  const std::string& op = opv->string;
  try {
    if (op == "ping") {
      JsonWriter w;
      begin_ok_reply(w, op);
      w.end_object();
      return w.str();
    }
    if (op == "submit") return op_submit(doc);
    if (op == "status") return op_status(doc);
    if (op == "result") return op_result(doc);
    if (op == "cancel") return op_cancel(doc);
    if (op == "stats") return op_stats();
    if (op == "metrics") return op_metrics();
    if (op == "trace") return op_trace(doc);
    if (op == "shutdown") {
      std::string reply = op_shutdown(doc);
      close_conn = true;
      return reply;
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu_);
    count_bad_request_locked();
    return error_reply(op, "bad_request", e.what());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    count_bad_request_locked();
  }
  return error_reply(op, "bad_request", "unknown op '" + op + "'");
}

std::uint64_t ServeServer::retry_after_ms_locked() const {
  // How long until a queue slot plausibly frees up: the smoothed per-job
  // service time times the backlog ahead of a new arrival, spread over
  // the worker lanes.  Clamped so a cold server still suggests a sane
  // pause and a deep backlog cannot push clients out forever.
  double per_job = service_ewma_ms_ > 0.0 ? service_ewma_ms_ : 100.0;
  double backlog = static_cast<double>(queue_.depth() + stats_.running + 1);
  double ms = per_job * backlog / static_cast<double>(opts_.workers);
  if (ms < 25.0) ms = 25.0;
  if (ms > 10000.0) ms = 10000.0;
  return static_cast<std::uint64_t>(ms);
}

std::string ServeServer::op_submit(const JsonValue& doc) {
  if (shutdown_requested_)
    return error_reply("submit", "shutting_down", "server is draining");

  FlowRequest req;
  const JsonValue* bench = doc.find("bench");
  const JsonValue* source = doc.find("source");
  if (bench && bench->is_string()) {
    const BuiltinBenchmark* b = find_builtin(bench->string);
    if (!b)
      return error_reply("submit", "bad_request",
                         "unknown builtin benchmark '" + bench->string + "'");
    req = make_builtin_request(*b, req.script);
  } else if (source && source->is_string()) {
    req.source = source->string;
    req.benchmark = "client";
    if (const JsonValue* name = doc.find("name"); name && name->is_string())
      req.benchmark = name->string;
  } else {
    return error_reply("submit", "bad_request",
                       "submit needs \"bench\" (builtin name) or \"source\" "
                       "(program text)");
  }
  if (const JsonValue* script = doc.find("script"); script && script->is_string())
    req.script = script->string;
  try {
    // Reject unparseable recipes at the door — a queue slot is too
    // expensive to spend on a guaranteed status=error.
    req.script = TransformScript::parse(req.script).to_string();
  } catch (const std::exception& e) {
    return error_reply("submit", "bad_request",
                       std::string("bad script: ") + e.what());
  }
  if (const JsonValue* init = doc.find("init"); init && init->is_object())
    for (const auto& [k, v] : init->object)
      req.init[k] = static_cast<std::int64_t>(v.number);
  if (const JsonValue* v = doc.find("seed"); v && v->is_number())
    req.sim.seed = static_cast<std::uint64_t>(v->number);
  if (const JsonValue* v = doc.find("simulate"); v && v->is_bool())
    req.simulate = v->boolean;
  req.stage_deadline_ms = opts_.stage_deadline_ms;
  req.deadline_ms = opts_.default_deadline_ms;
  if (const JsonValue* v = doc.find("deadline_ms"); v && v->is_number())
    req.deadline_ms = static_cast<std::uint64_t>(v->number);
  if (opts_.max_deadline_ms > 0 &&
      (req.deadline_ms == 0 || req.deadline_ms > opts_.max_deadline_ms))
    req.deadline_ms = opts_.max_deadline_ms;

  Priority prio = Priority::kNormal;
  if (const JsonValue* v = doc.find("priority")) {
    if (!v->is_string() || !parse_priority(v->string, &prio))
      return error_reply("submit", "bad_request",
                         "priority must be \"high\", \"normal\" or \"low\"");
  }
  const std::size_t cls = static_cast<std::size_t>(prio);

  auto job = std::make_shared<Job>();
  job->priority = prio;
  if (const JsonValue* v = doc.find("client"); v && v->is_string())
    job->client = v->string;
  job->req = std::move(req);
  job->submit_micros = steady_micros();

  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    job->id = id;
    // Trace minted at accept: the root span covers the job's whole
    // lifetime, queue.wait its time until a worker claims it.
    job->trace = std::make_shared<obs::JobTrace>(mix64(start_micros_ + id));
    job->root_span = job->trace->begin("job", "serve", 0);
    job->trace->annotate(job->root_span, "benchmark", job->req.benchmark);
    job->trace->annotate(job->root_span, "script", job->req.script);
    job->trace->annotate(job->root_span, "priority", to_string(prio));
    job->queue_span = job->trace->begin("queue.wait", "serve", job->root_span);
    jobs_[id] = job;
  }
  JobQueue::PushResult pushed = queue_.push(id, prio);
  if (pushed != JobQueue::PushResult::kAccepted) {
    bool closed = pushed == JobQueue::PushResult::kClosed;
    std::uint64_t retry = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.erase(id);
      ++stats_.rejected;
      retry = retry_after_ms_locked();
    }
    (closed ? rejections_closed_ : rejections_busy_)[cls]->add();
    if (access_log_) {
      obs::AccessLogEntry e;
      e.event = "rejected";  // schema: no id/trace — the client never got one
      e.priority = to_string(prio);
      e.client = job->client;
      e.bench = job->req.benchmark;
      e.script = job->req.script;
      e.status = closed ? "shutting_down" : "busy";
      e.retry_after_ms = closed ? 0 : retry;
      access_log_->append(e);
    }
    if (closed)
      return error_reply("submit", "shutting_down", "server is draining");
    // error_reply() plus the rejecting class — a client deciding whether
    // to retry at a different priority needs to know *which* lane is full.
    JsonWriter w;
    w.begin_object();
    w.kv("ok", false);
    w.kv("op", "submit");
    w.kv("code", "busy");
    w.kv("error", "job queue is full (" + std::to_string(queue_.capacity()) +
                      " jobs)");
    w.kv("class", to_string(prio));
    w.kv("retry_after_ms", retry);
    w.end_object();
    return w.str();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
  }
  submissions_[cls]->add();
  ADC_LOG_DEBUG("serve", "job accepted",
                {{"id", id},
                 {"benchmark", job->req.benchmark},
                 {"script", job->req.script},
                 {"priority", std::string(to_string(prio))}});
  JsonWriter w;
  begin_ok_reply(w, "submit");
  w.kv("id", id);
  w.kv("trace_id", job->trace->trace_id_hex());
  w.kv("priority", to_string(prio));
  w.kv("queue_depth", static_cast<std::uint64_t>(queue_.depth()));
  w.end_object();
  return w.str();
}

std::string ServeServer::op_status(const JsonValue& doc) {
  const JsonValue* idv = doc.find("id");
  if (!idv || !idv->is_number())
    return error_reply("status", "bad_request", "status needs a numeric \"id\"");
  std::uint64_t id = static_cast<std::uint64_t>(idv->number);
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job)
    return error_reply("status", "not_found",
                       "no job " + std::to_string(id));
  JsonWriter w;
  begin_ok_reply(w, "status");
  w.kv("id", id);
  if (job->trace) w.kv("trace_id", job->trace->trace_id_hex());
  {
    std::lock_guard<std::mutex> lock(mu_);
    w.kv("state", job_state_name(static_cast<int>(job->state)));
    if (job->state == JobState::kQueued) {
      std::size_t pos = queue_.position(id);
      if (pos != static_cast<std::size_t>(-1))
        w.kv("position", static_cast<std::uint64_t>(pos));
    }
    if (job->state == JobState::kDone) {
      w.kv("status", to_string(job->result.status));
      w.kv("wall_ms", job->wall_ms);
      if (job->result.from_disk_cache) w.kv("from_disk_cache", true);
    }
  }
  w.end_object();
  return w.str();
}

std::string ServeServer::op_result(const JsonValue& doc) {
  const JsonValue* idv = doc.find("id");
  if (!idv || !idv->is_number())
    return error_reply("result", "bad_request", "result needs a numeric \"id\"");
  std::uint64_t id = static_cast<std::uint64_t>(idv->number);
  bool block = true;
  if (const JsonValue* v = doc.find("wait"); v && v->is_bool()) block = v->boolean;
  std::uint64_t timeout_ms = 0;
  if (const JsonValue* v = doc.find("timeout_ms"); v && v->is_number())
    timeout_ms = static_cast<std::uint64_t>(v->number);

  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job)
    return error_reply("result", "not_found", "no job " + std::to_string(id));

  FlowPoint point;
  std::uint64_t wall_ms = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto terminal = [&] {
      return job->state == JobState::kDone || job->state == JobState::kCancelled;
    };
    if (block) {
      if (timeout_ms > 0) {
        if (!job_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                              terminal))
          return error_reply("result", "busy",
                             "job " + std::to_string(id) +
                                 " still " +
                                 job_state_name(static_cast<int>(job->state)),
                             retry_after_ms_locked());
      } else {
        job_cv_.wait(lock, terminal);
      }
    } else if (!terminal()) {
      JsonWriter w;
      begin_ok_reply(w, "result");
      w.kv("id", id);
      w.kv("state", job_state_name(static_cast<int>(job->state)));
      w.end_object();
      return w.str();
    }
    point = job->result;
    wall_ms = job->wall_ms;
  }
  JsonWriter w;
  begin_ok_reply(w, "result");
  w.kv("id", id);
  if (job->trace) w.kv("trace_id", job->trace->trace_id_hex());
  w.kv("state", "done");
  w.kv("wall_ms", wall_ms);
  w.key("point");
  write_json(w, point);
  w.end_object();
  return w.str();
}

std::string ServeServer::op_cancel(const JsonValue& doc) {
  const JsonValue* idv = doc.find("id");
  if (!idv || !idv->is_number())
    return error_reply("cancel", "bad_request", "cancel needs a numeric \"id\"");
  std::uint64_t id = static_cast<std::uint64_t>(idv->number);
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job)
    return error_reply("cancel", "not_found", "no job " + std::to_string(id));

  std::string outcome;
  if (queue_.remove(id)) {
    bool cancelled = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job->state == JobState::kQueued) {
        job->state = JobState::kCancelled;
        job->result.benchmark = job->req.benchmark;
        job->result.script = job->req.script;
        job->result.ok = false;
        job->result.status = FlowStatus::kCancelled;
        job->result.error = "cancelled by client";
        job->wall_ms = (steady_micros() - job->submit_micros) / 1000;
        ++stats_.cancelled;
        cancelled = true;
        job_cv_.notify_all();
      }
    }
    if (cancelled) observe_cancelled(job);
    outcome = "dequeued";
  } else {
    // Already claimed by a worker (or finished): trip the token; the
    // stages unwind cooperatively and the job completes as cancelled.
    job->req.cancel.request("cancelled by client");
    std::lock_guard<std::mutex> lock(mu_);
    outcome = job->state == JobState::kDone ? "already_done" : "signalled";
  }
  JsonWriter w;
  begin_ok_reply(w, "cancel");
  w.kv("id", id);
  w.kv("outcome", outcome);
  w.end_object();
  return w.str();
}

std::string ServeServer::op_stats() {
  JsonWriter w;
  begin_ok_reply(w, "stats");
  w.kv("state", shutdown_requested_ ? "draining" : "serving");
  w.kv("uptime_ms", (steady_micros() - start_micros_) / 1000);
  ServerStats s = stats();
  w.key("jobs");
  w.begin_object();
  w.kv("submitted", s.submitted);
  w.kv("completed", s.completed);
  w.kv("cancelled", s.cancelled);
  w.kv("rejected", s.rejected);
  w.kv("queued", static_cast<std::uint64_t>(s.queued));
  w.kv("running", static_cast<std::uint64_t>(s.running));
  w.end_object();
  JobQueue::Stats qs = queue_.stats();
  w.key("queue");
  w.begin_object();
  w.kv("depth", static_cast<std::uint64_t>(queue_.depth()));
  w.kv("capacity", static_cast<std::uint64_t>(queue_.capacity()));
  w.kv("max_depth", qs.max_depth);
  w.kv("accepted", qs.accepted);
  w.kv("rejected_full", qs.rejected_full);
  w.kv("rejected_closed", qs.rejected_closed);
  w.end_object();
  CacheStats cs = exec_->cache().stats();
  w.key("cache");
  w.begin_object();
  w.kv("hits", cs.hits);
  w.kv("joins", cs.joins);
  w.kv("misses", cs.misses);
  w.kv("entries", cs.entries);
  w.kv("hit_rate", cs.hit_rate());
  w.end_object();
  if (const DiskCache* dc = exec_->disk_cache()) {
    DiskCache::Stats ds = dc->stats();
    w.key("disk_cache");
    w.begin_object();
    w.kv("dir", dc->dir());
    w.kv("hits", ds.hits);
    w.kv("misses", ds.misses);
    w.kv("stores", ds.puts);
    w.kv("evictions", ds.evictions);
    w.kv("corrupt", ds.corrupt);
    w.kv("total_bytes", dc->total_bytes());
    w.end_object();
  }
  w.key("pool");
  w.begin_object();
  w.kv("threads", static_cast<std::uint64_t>(pool_->size()));
  w.kv("pending", static_cast<std::uint64_t>(pool_->pending()));
  w.kv("tasks_executed", pool_->tasks_executed());
  w.end_object();
  w.kv("workers", static_cast<std::uint64_t>(opts_.workers));
  w.kv("metrics_port", static_cast<std::int64_t>(metrics_http_port()));
  w.key("metrics");
  exec_->metrics().write_json(w);
  w.end_object();
  return w.str();
}

void ServeServer::count_bad_request_locked() {
  ++stats_.bad_requests;
  if (bad_requests_) bad_requests_->add();
}

void ServeServer::observe_cancelled(const std::shared_ptr<Job>& job) {
  if (cancellations_) cancellations_->add();
  if (job->trace) {
    job->trace->end(job->queue_span, {{"outcome", "cancelled"}});
    job->trace->end(job->root_span, {{"status", "cancelled"}});
  }
  if (!access_log_) return;
  obs::AccessLogEntry e;
  e.event = "cancelled";
  e.id = job->id;
  e.trace_id = job->trace ? job->trace->trace_id_hex() : "";
  e.priority = to_string(job->priority);
  e.client = job->client;
  e.bench = job->req.benchmark;
  e.script = job->req.script;
  e.status = "cancelled";
  e.wall_ms = job->wall_ms;
  access_log_->append(e);
}

std::string ServeServer::op_metrics() {
  // Refresh the sampled gauges first so a poller (adc_top) reads "now",
  // not wherever the background sampler's last tick left them.
  sample_observability();
  ServerStats s = stats();
  JsonWriter w;
  begin_ok_reply(w, "metrics");
  w.kv("state", shutdown_requested_ ? "draining" : "serving");
  w.kv("uptime_ms", (steady_micros() - start_micros_) / 1000);
  w.kv("workers", static_cast<std::uint64_t>(opts_.workers));
  w.key("jobs");
  w.begin_object();
  w.kv("submitted", s.submitted);
  w.kv("completed", s.completed);
  w.kv("cancelled", s.cancelled);
  w.kv("rejected", s.rejected);
  w.kv("queued", static_cast<std::uint64_t>(s.queued));
  w.kv("running", static_cast<std::uint64_t>(s.running));
  w.end_object();
  w.key("obs");
  registry_.write_json(w);
  w.end_object();
  return w.str();
}

std::string ServeServer::op_trace(const JsonValue& doc) {
  const JsonValue* idv = doc.find("id");
  if (!idv || !idv->is_number())
    return error_reply("trace", "bad_request", "trace needs a numeric \"id\"");
  std::uint64_t id = static_cast<std::uint64_t>(idv->number);
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job || !job->trace)
    return error_reply("trace", "not_found",
                       "no trace for job " + std::to_string(id));
  JsonWriter w;
  begin_ok_reply(w, "trace");
  w.kv("id", id);
  w.kv("trace_id", job->trace->trace_id_hex());
  w.key("trace");
  job->trace->write_chrome_trace(w, id);
  w.end_object();
  return w.str();
}

std::string ServeServer::op_shutdown(const JsonValue& doc) {
  bool drain = true;
  if (const JsonValue* v = doc.find("drain"); v && v->is_bool()) drain = v->boolean;
  JsonWriter w;
  begin_ok_reply(w, "shutdown");
  w.kv("drain", drain);
  w.kv("pending_jobs", static_cast<std::uint64_t>(queue_.depth()));
  w.end_object();
  request_shutdown(drain);
  return w.str();
}

void ServeServer::request_shutdown(bool drain) {
  bool expected = false;
  if (!shutdown_requested_.compare_exchange_strong(expected, true)) return;
  drain_ = drain;
  ADC_LOG_INFO("serve", "shutdown requested",
               {{"drain", drain},
                {"queued", queue_.depth()}});
  queue_.close();
  if (!drain) {
    // Cancel mode: empty the backlog, then trip every running job.
    std::vector<std::shared_ptr<Job>> cancelled;
    std::uint64_t id;
    while (queue_.try_pop(&id)) {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      Job& job = *it->second;
      job.state = JobState::kCancelled;
      job.result.benchmark = job.req.benchmark;
      job.result.script = job.req.script;
      job.result.ok = false;
      job.result.status = FlowStatus::kCancelled;
      job.result.error = "cancelled by server shutdown";
      job.wall_ms = (steady_micros() - job.submit_micros) / 1000;
      ++stats_.cancelled;
      cancelled.push_back(it->second);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [jid, job] : jobs_)
        if (job->state == JobState::kRunning)
          job->req.cancel.request("cancelled by server shutdown");
      job_cv_.notify_all();
    }
    for (auto& job : cancelled) observe_cancelled(job);
  }
  // Wake the accept loop's poll.
  if (wake_pipe_[1] >= 0) {
    char b = drain ? 'd' : 'c';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void ServeServer::worker_loop() {
  std::uint64_t id;
  while (queue_.pop(&id)) {
    std::shared_ptr<Job> job;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      job = it->second;
      if (job->state != JobState::kQueued) continue;  // raced with a cancel
      job->state = JobState::kRunning;
      job->dequeue_micros = steady_micros();
      ++stats_.running;
    }
    const std::size_t cls = static_cast<std::size_t>(job->priority);
    const std::uint64_t wait_us = job->dequeue_micros - job->submit_micros;
    queue_wait_[cls]->record_micros(wait_us);
    job->trace->end(job->queue_span);
    // Hand the executor this job's trace, parented under the root span —
    // every stage it runs lands in the same tree, whatever thread it is on.
    job->req.trace = obs::TraceContext(job->trace, job->root_span);
    FlowPoint p = exec_->run(job->req);
    if (p.ok && p.latency > 0)
      frontier_.add(analysis::point_area_transistors(p), p.latency);
    const std::uint64_t service_us = steady_micros() - job->dequeue_micros;
    service_time_[cls]->record_micros(service_us);
    completions_[cls]->add();
    job->trace->end(job->root_span,
                    {{"status", to_string(p.status)},
                     {"ok", p.ok ? "true" : "false"},
                     {"queue_wait_us", std::to_string(wait_us)}});
    std::uint64_t result_bytes = 0;
    if (access_log_) result_bytes = to_json(p).size();
    {
      std::lock_guard<std::mutex> lock(mu_);
      job->result = std::move(p);
      job->state = JobState::kDone;
      job->wall_ms = (steady_micros() - job->submit_micros) / 1000;
      --stats_.running;
      ++stats_.completed;
      // Service-time EWMA feeding the busy replies' retry-after hint.
      double w = static_cast<double>(job->wall_ms);
      service_ewma_ms_ =
          service_ewma_ms_ > 0.0 ? 0.8 * service_ewma_ms_ + 0.2 * w : w;
      job_cv_.notify_all();
    }
    if (access_log_) {
      obs::AccessLogEntry e;
      e.event = "done";
      e.id = id;
      e.trace_id = job->trace->trace_id_hex();
      e.priority = to_string(job->priority);
      e.client = job->client;
      e.bench = job->req.benchmark;
      e.script = job->req.script;
      e.status = to_string(job->result.status);
      e.queue_wait_us = wait_us;
      e.service_us = service_us;
      e.wall_ms = job->wall_ms;
      e.from_disk_cache = job->result.from_disk_cache;
      e.result_bytes = result_bytes;
      access_log_->append(e);
    }
    ADC_LOG_DEBUG("serve", "job done",
                  {{"id", id},
                   {"status", std::string(to_string(job->result.status))},
                   {"wall_ms", job->wall_ms}});
  }
}

int ServeServer::wait() {
  if (!started_) return 0;
  if (stopped_) return drain_ ? 0 : 5;
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : worker_threads_) t.join();
  worker_threads_.clear();
  finish_shutdown();
  stopped_ = true;
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.cancelled > 0 && !drain_ ? 5 : 0;
}

void ServeServer::finish_shutdown() {
  // Workers have exited: every job is terminal, so any connection thread
  // blocked in op_result has been woken.  Shut the read side of every
  // live connection — recv() returns 0, the thread flushes its last reply
  // and exits — then join.
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_cv_.notify_all();
  }
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    conns.swap(conn_threads_);
  }
  for (auto& t : conns) t.join();
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  // Tear the observability surfaces down last: one final gauge sample so
  // a post-mortem scrape of the registry reflects the end state, then the
  // sampler, the /metrics listener and the access log.
  {
    std::lock_guard<std::mutex> lk(sampler_mu_);
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_thread_.joinable()) sampler_thread_.join();
  sample_observability();
  metrics_http_.stop();
  if (access_log_) access_log_->flush();
  if (owns_unix_path_) ::unlink(opts_.unix_socket.c_str());
  ADC_LOG_INFO("serve", "server stopped",
               {{"completed", stats().completed},
                {"cancelled", stats().cancelled}});
}

ServerStats ServeServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats s = stats_;
  s.queued = queue_.depth();
  return s;
}

}  // namespace serve
}  // namespace adc
