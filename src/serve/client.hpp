#pragma once
// Blocking client for the adc_serve wire protocol.  One ServeClient owns
// one connection; request() frames a JSON payload, sends it, and blocks
// for the single reply frame.  The submit/wait helpers layer the common
// job lifecycle on top, including the backpressure dance: a "busy" reply
// is retried after the server's retry_after_ms hint (capped), so callers
// saturating the daemon observe throttling, not failures.
//
// Used by tools/adc_submit, the serve.* bench suites and the integration
// tests; thread-compatible (one client per thread), not thread-safe.

#include <cstdint>
#include <string>

#include "report/json_parse.hpp"
#include "serve/protocol.hpp"

namespace adc {
namespace serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;

  // Throws std::runtime_error when the endpoint cannot be reached.
  static ServeClient connect_unix(const std::string& path,
                                  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);
  static ServeClient connect_tcp(const std::string& host, int port,
                                 std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  bool connected() const { return fd_ >= 0; }
  void close();

  // One round-trip: send `payload` as a frame, parse the reply frame.
  // Throws std::runtime_error on transport errors (peer gone, oversized
  // or malformed reply).  Protocol-level errors come back as parsed
  // {"ok":false,...} documents — inspect, don't catch.
  JsonValue request(const std::string& payload);

  // submit, retrying "busy" rejections after the server's retry_after_ms
  // hint (each pause capped at 250 ms so tests stay fast).  Returns the
  // job id.  Throws on transport errors and on non-busy rejections
  // (bad_request, shutting_down, ...) with the server's message.
  std::uint64_t submit(const std::string& payload, int max_attempts = 100);

  // Blocks until the job is terminal and returns the reply's "point"
  // member (object).  Throws on transport/protocol errors.
  JsonValue wait_result(std::uint64_t id);

 private:
  explicit ServeClient(int fd, std::uint32_t max_frame_bytes)
      : fd_(fd), max_frame_bytes_(max_frame_bytes) {}

  int fd_ = -1;
  std::uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace serve
}  // namespace adc
