#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "report/json.hpp"

namespace adc {
namespace serve {

namespace {

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ServeClient::~ServeClient() { close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      max_frame_bytes_(other.max_frame_bytes_) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    max_frame_bytes_ = other.max_frame_bytes_;
  }
  return *this;
}

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ServeClient ServeClient::connect_unix(const std::string& path,
                                      std::uint32_t max_frame_bytes) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("serve: unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error("serve: socket(AF_UNIX) failed: " +
                             std::string(std::strerror(errno)));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error("serve: cannot connect to " + path + ": " +
                             std::strerror(err));
  }
  return ServeClient(fd, max_frame_bytes);
}

ServeClient ServeClient::connect_tcp(const std::string& host, int port,
                                     std::uint32_t max_frame_bytes) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("serve: bad host '" + host + "'");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error("serve: socket(AF_INET) failed: " +
                             std::string(std::strerror(errno)));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error("serve: cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + std::strerror(err));
  }
  return ServeClient(fd, max_frame_bytes);
}

JsonValue ServeClient::request(const std::string& payload) {
  if (fd_ < 0) throw std::runtime_error("serve: client not connected");
  if (!send_all(fd_, encode_frame(payload, max_frame_bytes_)))
    throw std::runtime_error("serve: send failed: " +
                             std::string(std::strerror(errno)));
  FrameReader reader(max_frame_bytes_);
  char buf[64 * 1024];
  std::string reply;
  while (!reader.next(reply)) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0)
      throw std::runtime_error("serve: connection closed mid-reply");
    reader.feed(buf, static_cast<std::size_t>(n));
  }
  return parse_json(reply);
}

std::uint64_t ServeClient::submit(const std::string& payload, int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    JsonValue reply = request(payload);
    if (const JsonValue* ok = reply.find("ok"); ok && ok->is_bool() && ok->boolean) {
      const JsonValue* id = reply.find("id");
      if (!id || !id->is_number())
        throw std::runtime_error("serve: submit reply missing id");
      return static_cast<std::uint64_t>(id->number);
    }
    const JsonValue* code = reply.find("code");
    if (!code || !code->is_string() || code->string != "busy") {
      const JsonValue* err = reply.find("error");
      throw std::runtime_error("serve: submit rejected: " +
                               (err && err->is_string() ? err->string
                                                        : std::string("?")));
    }
    std::uint64_t pause_ms = 50;
    if (const JsonValue* ra = reply.find("retry_after_ms"); ra && ra->is_number())
      pause_ms = static_cast<std::uint64_t>(ra->number);
    if (pause_ms > 250) pause_ms = 250;  // bounded so saturation tests finish
    std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
  }
  throw std::runtime_error("serve: submit still rejected after retries");
}

JsonValue ServeClient::wait_result(std::uint64_t id) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "result");
  w.kv("id", id);
  w.kv("wait", true);
  w.end_object();
  JsonValue reply = request(w.str());
  const JsonValue* ok = reply.find("ok");
  if (!ok || !ok->is_bool() || !ok->boolean) {
    const JsonValue* err = reply.find("error");
    throw std::runtime_error("serve: result failed: " +
                             (err && err->is_string() ? err->string
                                                      : std::string("?")));
  }
  const JsonValue* point = reply.find("point");
  if (!point || !point->is_object())
    throw std::runtime_error("serve: result reply missing point");
  return *point;
}

}  // namespace serve
}  // namespace adc
