#pragma once
// Bounded multi-class job queue for the synthesis service.
//
// Three priority classes (serve/protocol.hpp); pop() always serves the
// highest non-empty class and is strictly FIFO *within* a class, so a
// burst of low-priority work can be overtaken but never reordered.  The
// bound is the backpressure mechanism: a push against a full queue is
// rejected immediately (the server turns that into a structured "busy"
// reply with a retry-after hint) instead of buffering unboundedly or
// blocking the accept path.
//
// close() flips the queue into drain mode: further pushes are rejected
// with kClosed, but poppers keep draining what was already accepted and
// finally observe pop() == false when the queue is empty — exactly the
// SIGTERM drain sequence.
//
// The queue stores job ids only; the server's registry owns the payloads.
// Everything is guarded by one mutex — queue operations are trivial next
// to a synthesis job, so contention is irrelevant.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "serve/protocol.hpp"

namespace adc {
namespace serve {

class JobQueue {
 public:
  enum class PushResult { kAccepted, kFull, kClosed };

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_full = 0;    // backpressure rejections
    std::uint64_t rejected_closed = 0;  // submissions during drain
    std::uint64_t popped = 0;
    std::uint64_t removed = 0;  // cancelled while still queued
    std::uint64_t max_depth = 0;
  };

  // capacity == 0 means unbounded (tests; production callers should bound).
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  PushResult push(std::uint64_t id, Priority p);

  // Blocks until a job is available or the queue is closed and empty.
  // Returns false only in the latter case (the popper should exit).
  bool pop(std::uint64_t* id);

  // Non-blocking pop; false when nothing is immediately available.
  bool try_pop(std::uint64_t* id);

  // Removes a still-queued job (cancellation).  False when the job was
  // already popped (the caller must cancel it cooperatively instead).
  bool remove(std::uint64_t id);

  // No further pushes; poppers drain the remainder then see pop()==false.
  void close();
  bool closed() const;

  std::size_t depth() const;
  // Jobs waiting in one priority class (the per-class depth gauges).
  std::size_t depth(Priority p) const;
  std::size_t capacity() const { return capacity_; }

  // 0-based dequeue position of a queued job (its own class's queue ahead
  // of it plus every job in stronger classes); SIZE_MAX when not queued.
  std::size_t position(std::uint64_t id) const;

  Stats stats() const;

 private:
  std::size_t depth_locked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t capacity_;
  bool closed_ = false;
  std::deque<std::uint64_t> classes_[kPriorityClasses];
  Stats stats_;
};

}  // namespace serve
}  // namespace adc
