#pragma once
// Minimal streaming JSON writer shared by every machine-readable report in
// the toolchain (adc_synth --json, adc_dse --json, metrics snapshots).
// Handles nesting, comma placement and string escaping; the caller supplies
// structure.  No DOM, no allocation beyond the output string.
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("states"); w.value(12);
//   w.key("rows");   w.begin_array(); w.value("a"); w.end_array();
//   w.end_object();
//   std::string out = w.str();

#include <cstdint>
#include <string>
#include <vector>

namespace adc {

class JsonWriter {
 public:
  explicit JsonWriter(bool pretty = false) : pretty_(pretty) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Object member key; must be followed by exactly one value/container.
  void key(const std::string& k);

  void value(const std::string& v);
  void value(const char* v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(double v);
  void value(bool v);
  void null();

  // Shorthand for key+value.
  template <typename T>
  void kv(const std::string& k, const T& v) {
    key(k);
    value(v);
  }

  const std::string& str() const { return out_; }

  static std::string escape(const std::string& s);

 private:
  void comma();
  void newline();

  std::string out_;
  bool pretty_ = false;
  // Per nesting level: has the container already emitted an element?
  std::vector<bool> has_element_{false};
  bool after_key_ = false;
};

}  // namespace adc
