#include "report/table.hpp"

#include <algorithm>
#include <sstream>

namespace adc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& r : rows_)
    for (std::size_t i = 0; i < r.cells.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], r.cells[i].size());

  auto line = [&widths](const std::vector<std::string>& cells) {
    std::ostringstream os;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      std::string c = i < cells.size() ? cells[i] : "";
      os << (i == 0 ? "| " : " | ");
      os << c << std::string(widths[i] - c.size(), ' ');
    }
    os << " |";
    return os.str();
  };
  auto rule = [&widths]() {
    std::ostringstream os;
    for (std::size_t w : widths) os << "+" << std::string(w + 2, '-');
    os << "+";
    return os.str();
  };

  std::ostringstream os;
  os << rule() << "\n" << line(header_) << "\n" << rule() << "\n";
  for (const auto& r : rows_) {
    if (r.separator)
      os << rule() << "\n";
    else
      os << line(r.cells) << "\n";
  }
  os << rule() << "\n";
  return os.str();
}

std::string pair_cell(std::size_t a, std::size_t b) {
  return std::to_string(a) + "/" + std::to_string(b);
}

}  // namespace adc
