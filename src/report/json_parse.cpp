#include "report/json_parse.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>

#include "report/json.hpp"

namespace adc {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (!v) throw std::runtime_error("json: missing member '" + key + "'");
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  // Recursion guard: deeply nested documents must error, not smash the
  // stack.  200 levels is far beyond any report this toolchain emits.
  static constexpr int kMaxDepth = 200;

  JsonValue parse_value() {
    skip_ws();
    if (depth_ >= kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    ++depth_;
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return v;
    }
  }

  JsonValue parse_array() {
    ++depth_;
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate halves pass through raw).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
      fail("bad number");
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(s_.c_str() + start, nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse_document(); }

void write_json_value(JsonWriter& w, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      w.null();
      break;
    case JsonValue::Kind::kBool:
      w.value(v.boolean);
      break;
    case JsonValue::Kind::kNumber:
      // NaN/Inf have no JSON rendering: normalize to null rather than
      // emit an unparseable token (attribution ratios can divide by ~0).
      if (!std::isfinite(v.number))
        w.null();
      // Integral doubles (the common case: every counter/metric the
      // toolchain emits) round-trip as integers, not "12.000000".
      else if (std::floor(v.number) == v.number && std::abs(v.number) < 9.0e15)
        w.value(static_cast<std::int64_t>(v.number));
      else
        w.value(v.number);
      break;
    case JsonValue::Kind::kString:
      w.value(v.string);
      break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& e : v.array) write_json_value(w, e);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [k, e] : v.object) {
        w.key(k);
        write_json_value(w, e);
      }
      w.end_object();
      break;
  }
}

std::string to_json(const JsonValue& v, bool pretty) {
  JsonWriter w(pretty);
  write_json_value(w, v);
  return w.str();
}

}  // namespace adc
