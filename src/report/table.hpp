#pragma once
// Minimal ASCII table formatting for the paper-style benchmark reports.

#include <string>
#include <vector>

namespace adc {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void add_separator();

  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<Row> rows_;
};

// Convenience: "a/b" cell for the paper's "#states #trans" style pairs.
std::string pair_cell(std::size_t a, std::size_t b);

}  // namespace adc
