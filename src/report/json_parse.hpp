#pragma once
// Minimal recursive-descent JSON parser (DOM).  The inverse of
// report/json.hpp's writer, used where the toolchain must validate its own
// machine-readable artifacts: the trace/provenance schema tests and the
// adc_obs_check CI validator.  Not a general-purpose parser — no streaming,
// no \uXXXX surrogate pairs beyond the BMP, numbers land in a double.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace adc {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Member order preserved (duplicate keys kept; find returns the first).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // First member with the given key, or nullptr (also when not an object).
  const JsonValue* find(const std::string& key) const;
  // find() that throws std::runtime_error when the member is missing.
  const JsonValue& at(const std::string& key) const;
};

// Parses one JSON document; trailing non-whitespace is an error.  Throws
// std::runtime_error with a byte offset on malformed input.
JsonValue parse_json(const std::string& text);

// Re-serializes a parsed value through the streaming writer (member order
// preserved).  This is how the serving layer relays sub-documents — a
// stored FlowPoint, an embedded metrics object — without re-parsing them
// into their native structs.  Numbers render as integers when the double
// holds one exactly, so round-tripped documents keep integer fields
// integral.
void write_json_value(class JsonWriter& w, const JsonValue& v);
std::string to_json(const JsonValue& v, bool pretty = false);

}  // namespace adc
