#include "report/json.hpp"

#include <cmath>
#include <cstdio>

namespace adc {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  newline();
}

void JsonWriter::newline() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(2 * (has_element_.size() - 1), ' ');
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::end_object() {
  bool had = has_element_.back();
  has_element_.pop_back();
  if (had) newline();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::end_array() {
  bool had = has_element_.back();
  has_element_.pop_back();
  if (had) newline();
  out_ += ']';
}

void JsonWriter::key(const std::string& k) {
  comma();
  out_ += '"';
  out_ += escape(k);
  out_ += pretty_ ? "\": " : "\":";
  after_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  comma();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ += buf;
}

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  comma();
  out_ += "null";
}

}  // namespace adc
