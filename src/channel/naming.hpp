#pragma once
// Compact signal names for global ready wires, in the style the paper's
// Figure 11 uses (e.g. "A1M" for an ALU1 -> MUL ready, "M1A+" for its
// rising phase).  Used by the controller extraction when naming XBM inputs
// and outputs.

#include <string>

#include "channel/channel.hpp"

namespace adc {

// A short unique mnemonic per channel, derived from the endpoint FU names:
// first letter + trailing digit of each ("A1" for ALU1, "M2" for MUL2).
std::string short_wire_name(const Cdfg& g, const Channel& c);

// Abbreviates one FU name ("ALU1" -> "A1", "MUL2" -> "M2", "ENV" for none).
std::string abbreviate_fu(const Cdfg& g, FuId fu);

}  // namespace adc
