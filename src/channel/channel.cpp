#include "channel/channel.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace adc {

std::size_t Channel::arc_count() const {
  std::size_t n = 0;
  for (const auto& e : events) n += e.arcs.size();
  return n;
}

ChannelPlan ChannelPlan::derive(const Cdfg& g) {
  ChannelPlan plan;
  for (ArcId aid : g.arc_ids()) {
    const Arc& a = g.arc(aid);
    FuId sf = g.node(a.src).fu;
    FuId df = g.node(a.dst).fu;
    if (sf == df) continue;  // controller-internal sequencing, no wire
    Channel c;
    c.id = ChannelId(plan.channels_.size());
    c.src_fu = sf;
    if (df.valid()) c.receivers.push_back(df);
    c.events.push_back(ChannelEvent{a.src, {aid}});
    plan.channels_.push_back(std::move(c));
  }
  plan.rename_wires(g);
  return plan;
}

std::size_t ChannelPlan::count_controller_channels() const {
  std::size_t n = 0;
  for (const auto& c : channels_)
    if (!c.involves_environment()) ++n;
  return n;
}

std::size_t ChannelPlan::count_all_channels() const { return channels_.size(); }

std::size_t ChannelPlan::count_multiway() const {
  std::size_t n = 0;
  for (const auto& c : channels_)
    if (c.multiway()) ++n;
  return n;
}

std::optional<ChannelId> ChannelPlan::channel_of(ArcId arc) const {
  for (const auto& c : channels_)
    for (const auto& e : c.events)
      for (ArcId a : e.arcs)
        if (a == arc) return c.id;
  return std::nullopt;
}

std::vector<ChannelId> ChannelPlan::inputs_of(FuId fu) const {
  std::vector<ChannelId> out;
  for (const auto& c : channels_)
    if (std::find(c.receivers.begin(), c.receivers.end(), fu) != c.receivers.end())
      out.push_back(c.id);
  return out;
}

std::vector<ChannelId> ChannelPlan::outputs_of(FuId fu) const {
  std::vector<ChannelId> out;
  for (const auto& c : channels_)
    if (c.src_fu == fu) out.push_back(c.id);
  return out;
}

void ChannelPlan::rename_wires(const Cdfg& g) {
  for (auto& c : channels_) {
    std::string name = "rdy_";
    name += c.src_fu.valid() ? g.fu(c.src_fu).name : std::string("ENV");
    name += "_to";
    if (c.receivers.empty()) name += "_ENV";
    for (FuId f : c.receivers) name += "_" + g.fu(f).name;
    c.wire = name;
  }
  // Disambiguate channels sharing endpoints.
  std::map<std::string, int> seen;
  for (auto& c : channels_) {
    int n = seen[c.wire]++;
    if (n > 0) c.wire += "_" + std::to_string(n);
  }
}

std::vector<std::string> ChannelPlan::validate(const Cdfg& g) const {
  std::vector<std::string> errors;
  std::set<ArcId::underlying> carried;
  for (const auto& c : channels_) {
    std::set<FuId::underlying> rcv;
    for (const auto& e : c.events) {
      if (e.arcs.empty()) errors.push_back("channel event with no arcs on " + c.wire);
      for (ArcId aid : e.arcs) {
        if (!g.arc(aid).alive) {
          errors.push_back("channel " + c.wire + " carries dead arc");
          continue;
        }
        const Arc& a = g.arc(aid);
        if (a.src != e.source)
          errors.push_back("channel " + c.wire + " event source mismatch");
        if (g.node(a.src).fu != c.src_fu)
          errors.push_back("channel " + c.wire + " source FU mismatch");
        if (g.node(a.dst).fu.valid()) rcv.insert(g.node(a.dst).fu.value());
        if (!carried.insert(aid.value()).second)
          errors.push_back("arc carried by two channels");
      }
    }
    std::set<FuId::underlying> declared;
    for (FuId f : c.receivers) declared.insert(f.value());
    if (rcv != declared) errors.push_back("channel " + c.wire + " receiver set mismatch");
  }
  for (ArcId aid : g.arc_ids()) {
    const Arc& a = g.arc(aid);
    if (g.node(a.src).fu == g.node(a.dst).fu) continue;
    if (!carried.count(aid.value()))
      errors.push_back("inter-controller arc not carried by any channel: " +
                       g.node(a.src).label() + " -> " + g.node(a.dst).label());
  }
  return errors;
}

std::string describe(const Channel& c, const Cdfg& g) {
  std::string out = c.src_fu.valid() ? g.fu(c.src_fu).name : std::string("ENV");
  out += " -> {";
  for (std::size_t i = 0; i < c.receivers.size(); ++i) {
    if (i) out += ",";
    out += g.fu(c.receivers[i]).name;
  }
  if (c.receivers.empty()) out += "ENV";
  out += "}";
  out += " events=" + std::to_string(c.events.size());
  return out;
}

}  // namespace adc
