#include "channel/naming.hpp"

#include <cctype>

namespace adc {

std::string abbreviate_fu(const Cdfg& g, FuId fu) {
  if (!fu.valid()) return "ENV";
  const std::string& name = g.fu(fu).name;
  if (name.empty()) return "FU";
  std::string out(1, name.front());
  // Trailing digits distinguish units of the same class (ALU1 vs ALU2).
  std::size_t i = name.size();
  while (i > 0 && std::isdigit(static_cast<unsigned char>(name[i - 1]))) --i;
  out += name.substr(i);
  return out;
}

std::string short_wire_name(const Cdfg& g, const Channel& c) {
  std::string out = abbreviate_fu(g, c.src_fu);
  for (FuId f : c.receivers) out += abbreviate_fu(g, f);
  if (c.receivers.empty()) out += "ENV";
  return out;
}

}  // namespace adc
