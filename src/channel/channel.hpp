#pragma once
// Communication channels between functional-unit controllers.
//
// Each constraint arc that crosses controllers is implemented by a global
// "ready" wire (paper §2.2/§2.3): a single transition (req+ or req-), with
// no acknowledgment.  GT5 reduces the number of wires by letting several
// arcs share one channel:
//
//  * a *multiplexed* channel carries events from several source nodes of
//    the same sending FU; successive events become alternating phases,
//  * a *multi-way* channel forks one wire to several receiving FUs; every
//    receiver sees every transition and counts the ones that concern it.
//
// A Channel is therefore an ordered list of *events*; each event is the
// completion of one source CDFG node and satisfies one or more constraint
// arcs (possibly into different FUs, possibly with different iteration
// offsets).  The order of events is the per-iteration emission order, which
// is well-defined because the sending controller is sequential.
//
// Channels whose source or destination is the environment (START/END arcs)
// are tracked too but reported separately; the paper's tables count
// controller-controller channels.

#include <optional>
#include <string>
#include <vector>

#include "cdfg/cdfg.hpp"

namespace adc {

struct ChannelEvent {
  NodeId source;             // the CDFG node whose completion is signalled
  std::vector<ArcId> arcs;   // constraints satisfied by this transition
};

struct Channel {
  ChannelId id;
  FuId src_fu;                       // invalid: environment
  std::vector<FuId> receivers;       // distinct, sorted by id
  std::vector<ChannelEvent> events;  // emission order within one iteration
  std::string wire;                  // e.g. "rdy_ALU1_to_MUL1_MUL2"

  bool multiway() const { return receivers.size() > 1; }
  bool multiplexed() const { return events.size() > 1; }
  std::size_t arc_count() const;
  bool involves_environment() const { return !src_fu.valid() || receivers.empty(); }
};

class ChannelPlan {
 public:
  // The unoptimized assignment: one channel per inter-controller arc.
  static ChannelPlan derive(const Cdfg& g);

  const std::vector<Channel>& channels() const { return channels_; }
  std::vector<Channel>& channels() { return channels_; }

  // Channel counts as reported in the paper's Figure 12 column 1.
  std::size_t count_controller_channels() const;
  std::size_t count_all_channels() const;
  std::size_t count_multiway() const;

  // The channel carrying a given constraint arc, if any.
  std::optional<ChannelId> channel_of(ArcId arc) const;

  // Incoming / outgoing channels of a functional unit.
  std::vector<ChannelId> inputs_of(FuId fu) const;
  std::vector<ChannelId> outputs_of(FuId fu) const;

  // Recomputes wire names from endpoints (after GT5 rewrites).
  void rename_wires(const Cdfg& g);

  // Consistency checks: every live inter-controller arc is carried by
  // exactly one channel; events reference live arcs; receiver sets match
  // the arcs.  Returns error strings (empty = consistent).
  std::vector<std::string> validate(const Cdfg& g) const;

 private:
  std::vector<Channel> channels_;
};

// Human-readable one-line summary of a channel ("ALU1 -> {MUL1,MUL2} : 2 events").
std::string describe(const Channel& c, const Cdfg& g);

}  // namespace adc
