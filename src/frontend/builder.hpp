#pragma once
// ProgramBuilder — the CDFG frontend.
//
// The paper's method takes a *scheduled, resource-bound* CDFG as given.  The
// builder reconstructs that front end: the user states an RTL program in
// sequential program order, with each statement bound to a functional unit;
// per-FU schedule order is the program-order subsequence of statements bound
// to that unit (exactly the paper's Figure 1 "columns").  finish() then
// derives every constraint arc automatically per paper §2.1:
//
//   * control arcs (START/END/LOOP/ENDLOOP/IF/ENDIF entry and exit),
//   * scheduling arcs between consecutive operations of one FU,
//   * data-dependency arcs (producer -> consumers of each register value),
//   * register-allocation arcs (readers of the old value -> overwriting
//     write), to avoid early overwriting.
//
// Loops are do-while shaped: the LOOP node examines its condition register
// each iteration (the environment must initialize it before START; the body
// recomputes it).  LOOP and ENDLOOP must be bound to the same functional
// unit, which matches the paper's target architecture (the loop-back is the
// controller's own cycle).

#include <string>
#include <vector>

#include "cdfg/cdfg.hpp"

namespace adc {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name = "program");

  // Declare a functional unit (e.g. fu("ALU1", "alu")).
  FuId fu(const std::string& name, const std::string& cls);

  // Append an RTL statement (parsed from the paper's textual form) bound to
  // the given unit, in the current block.  Statements of the form "R1 := R2"
  // become assignment nodes (they do not use the FU datapath).
  NodeId stmt(FuId fu, const std::string& rtl_text);

  // Open / close a loop whose LOOP node examines `cond_reg`.
  NodeId begin_loop(FuId fu, const std::string& cond_reg);
  NodeId end_loop();

  // Open / close an IF block whose IF node examines `cond_reg` (body runs
  // only when the register is non-zero).
  NodeId begin_if(FuId fu, const std::string& cond_reg);
  NodeId end_if();

  // Generates all constraint arcs, adds START/END, validates, and returns
  // the finished graph.  The builder must not be reused afterwards.
  Cdfg finish();

 private:
  struct OpenBlock {
    BlockId block;
    NodeId root;
    FuId fu;
  };

  NodeId add(NodeKind kind, FuId fu, std::vector<RtlStatement> stmts);

  Cdfg graph_;
  std::vector<OpenBlock> open_;
  std::vector<NodeId> program_order_;
  std::vector<std::vector<NodeId>> fu_seq_;
  bool finished_ = false;
};

// Generates every constraint arc of §2.1 into `g`, given that nodes carry
// statements/blocks and FU orders are set.  `program_order` is the original
// sequential statement order.  Exposed separately so tests can exercise it
// and so the scheduler substrate can reuse it.
void generate_constraint_arcs(Cdfg& g, const std::vector<NodeId>& program_order);

}  // namespace adc
