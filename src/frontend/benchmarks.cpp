#include "frontend/benchmarks.hpp"

#include <random>

#include "frontend/builder.hpp"
#include "frontend/parser.hpp"

namespace adc {

Cdfg diffeq() {
  ProgramBuilder b("diffeq");
  FuId alu1 = b.fu("ALU1", "alu");
  FuId mul1 = b.fu("MUL1", "mul");
  FuId mul2 = b.fu("MUL2", "mul");
  FuId alu2 = b.fu("ALU2", "alu");

  // Loop condition C is initialized by the environment (C = X < a at entry)
  // and recomputed each iteration by ALU2.  Statement program order is the
  // sequential RTL program; per-FU schedules are its subsequences, matching
  // the paper's Figure 1 columns.
  b.begin_loop(alu2, "C");
  b.stmt(alu1, "B := 2dx + dx");  // B = 3*dx via shift-add, no multiplier
  b.stmt(mul1, "M1 := U * X1");
  b.stmt(mul2, "M2 := U * dx");
  b.stmt(alu2, "X := X + dx");
  b.stmt(alu1, "A := Y + M1");
  b.stmt(mul1, "M1 := A * B");
  b.stmt(alu2, "Y := Y + M2");
  b.stmt(alu2, "X1 := X");
  b.stmt(alu1, "U := U - M1");
  b.stmt(alu2, "C := X < a");
  b.end_loop();
  return b.finish();
}

std::string diffeq_source() {
  return R"(program diffeq {
  fu ALU1 : alu;
  fu MUL1 : mul;
  fu MUL2 : mul;
  fu ALU2 : alu;
  loop C on ALU2 {
    ALU1: B := 2dx + dx;    # B = 3*dx (shift-add)
    MUL1: M1 := U * X1;
    MUL2: M2 := U * dx;
    ALU2: X := X + dx;
    ALU1: A := Y + M1;
    MUL1: M1 := A * B;
    ALU2: Y := Y + M2;
    ALU2: X1 := X;
    ALU1: U := U - M1;
    ALU2: C := X < a;
  }
})";
}

Cdfg gcd() {
  return parse_program(R"(program gcd {
  fu ALU1 : alu;
  fu CMP1 : alu;
  loop C on CMP1 {
    CMP1: D := A > B;
    if D on ALU1 {
      ALU1: A := A - B;
    }
    CMP1: E := B > A;
    if E on ALU1 {
      ALU1: B := B - A;
    }
    CMP1: C := A != B;
  }
})");
}

Cdfg fir4() {
  return parse_program(R"(program fir4 {
  fu MUL1 : mul;
  fu MUL2 : mul;
  fu ALU1 : alu;
  fu ALU2 : alu;
  MUL1: P0 := X0 * K0;
  MUL2: P1 := X1 * K1;
  MUL1: P2 := X2 * K2;
  MUL2: P3 := X3 * K3;
  ALU1: S0 := P0 + P1;
  ALU2: S1 := P2 + P3;
  ALU1: Y := S0 + S1;
  ALU2: X3 := X2;
  ALU2: X2 := X1;
  ALU1: X1 := X0;
})");
}

Cdfg mac_reduce() {
  return parse_program(R"(program mac_reduce {
  fu MUL1 : mul;
  fu ALU1 : alu;
  fu ALU2 : alu;
  loop C on ALU2 {
    MUL1: P := X * K;
    ALU1: S := S + P;
    ALU1: D := S > T;
    if D on ALU1 {
      ALU1: S := S - T;
    }
    ALU2: X := X + dx;
    ALU2: C := X < N;
  }
})");
}

Cdfg ewf_lite() {
  return parse_program(R"(program ewf_lite {
  fu ALU1 : alu;
  fu ALU2 : alu;
  fu MUL1 : mul;
  fu MUL2 : mul;
  ALU1: T1 := IN + S1;
  ALU2: T2 := S2 + S3;
  MUL1: P1 := T1 * K1;
  MUL2: P2 := T2 * K2;
  ALU1: T3 := T1 + P2;
  ALU2: T4 := T2 + P1;
  MUL1: P3 := T3 * K3;
  MUL2: P4 := T4 * K1;
  ALU1: T5 := P3 + P4;
  ALU2: T6 := T5 + T3;
  ALU1: S1 := T5 + T1;
  ALU2: S2 := T6 + T4;
  ALU1: S3 := S1 + S2;
  ALU2: OUT := T6 + S3;
})");
}

Cdfg random_program(const RandomProgramParams& params, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&rng](int n) { return static_cast<int>(rng() % static_cast<unsigned>(n)); };

  ProgramBuilder b("random_" + std::to_string(seed));
  std::vector<FuId> alus, muls;
  for (int i = 0; i < params.alus; ++i)
    alus.push_back(b.fu("ALU" + std::to_string(i + 1), "alu"));
  for (int i = 0; i < params.mults; ++i)
    muls.push_back(b.fu("MUL" + std::to_string(i + 1), "mul"));

  std::vector<std::string> regs;
  for (int i = 0; i < params.regs; ++i) regs.push_back("r" + std::to_string(i));
  auto reg = [&] { return regs[static_cast<std::size_t>(pick(params.regs))]; };

  auto emit_random_stmts = [&](int count) {
    for (int i = 0; i < count; ++i) {
      bool mul_op = !muls.empty() && pick(3) == 0;
      FuId fu = mul_op ? muls[static_cast<std::size_t>(pick(params.mults))]
                       : alus[static_cast<std::size_t>(pick(params.alus))];
      std::string d = reg(), l = reg(), r = reg();
      const char* op = mul_op ? "*" : (pick(2) == 0 ? "+" : "-");
      if (!mul_op && pick(6) == 0) {
        b.stmt(fu, d + " := " + l);  // occasional pure assignment
      } else {
        b.stmt(fu, d + " := " + l + " " + op + " " + r);
      }
    }
  };

  if (params.with_loop) {
    // Count-down loop: environment initializes n > 0 and cond = 1.
    b.begin_loop(alus[0], "cond");
    emit_random_stmts(params.stmts - 2);
    b.stmt(alus[0], "n := n - 1");
    b.stmt(alus[0], "cond := 0 < n");
    b.end_loop();
  } else {
    emit_random_stmts(params.stmts);
  }
  return b.finish();
}

}  // namespace adc
