#include "frontend/builder.hpp"

#include <map>
#include <set>
#include <stdexcept>

#include "cdfg/analysis.hpp"

namespace adc {

namespace {

// A def-use participant within one block scope.  Nested blocks are atomic:
// they participate through their boundary nodes, with reads/writes
// summarizing the entire nested region (the paper's rule that data arcs
// only enter or exit a block at its root).  Constraints *into* the region
// attach at the entry node (the root); constraints *out of* the region must
// wait for its completion: the ENDIF node for IF blocks, and the LOOP root
// for loops (whose exit firing is the completion signal — ENDLOOP only
// fires per iteration, never at exit).
struct Member {
  NodeId entry;
  NodeId exit;
  std::vector<std::string> reads;
  std::vector<std::string> writes;
};

// Key for scope maps; BlockId::invalid() (top level) hashes fine via value.
using ScopeMap = std::map<BlockId::underlying, std::vector<Member>>;

std::vector<std::string> block_reads(const Cdfg& g, BlockId b);
std::vector<std::string> block_writes(const Cdfg& g, BlockId b);

// Finds the block whose root is `n`, if any.
std::optional<BlockId> block_rooted_at(const Cdfg& g, NodeId n) {
  for (BlockId b : g.block_ids())
    if (g.block(b).root == n) return b;
  return std::nullopt;
}

std::vector<std::string> block_reads(const Cdfg& g, BlockId b) {
  std::set<std::string> acc;
  acc.insert(g.node(g.block(b).root).cond_reg);
  for (NodeId n : g.node_ids()) {
    if (!in_block(g, n, b)) continue;
    for (const auto& s : g.node(n).stmts)
      for (const auto& r : s.reads()) acc.insert(r);
    if (!g.node(n).cond_reg.empty()) acc.insert(g.node(n).cond_reg);
  }
  acc.erase("");
  return {acc.begin(), acc.end()};
}

std::vector<std::string> block_writes(const Cdfg& g, BlockId b) {
  std::set<std::string> acc;
  for (NodeId n : g.node_ids()) {
    if (!in_block(g, n, b)) continue;
    for (const auto& s : g.node(n).stmts) acc.insert(s.dest);
  }
  return {acc.begin(), acc.end()};
}

ScopeMap build_scopes(const Cdfg& g, const std::vector<NodeId>& program_order) {
  ScopeMap scopes;
  for (NodeId nid : program_order) {
    const Node& n = g.node(nid);
    if (!n.alive) continue;
    if (n.kind == NodeKind::kEndLoop || n.kind == NodeKind::kEndIf) continue;

    Member m;
    m.entry = nid;
    m.exit = nid;
    if (n.kind == NodeKind::kLoop || n.kind == NodeKind::kIf) {
      auto b = block_rooted_at(g, nid);
      if (!b) throw std::logic_error("arcgen: loop/if node without block");
      if (n.kind == NodeKind::kIf) m.exit = g.block(*b).end;
      m.reads = block_reads(g, *b);
      m.writes = block_writes(g, *b);
    } else {
      std::set<std::string> reads, writes;
      for (const auto& s : n.stmts) {
        for (const auto& r : s.reads()) reads.insert(r);
        writes.insert(s.dest);
      }
      m.reads.assign(reads.begin(), reads.end());
      m.writes.assign(writes.begin(), writes.end());
    }
    scopes[n.block.value()].push_back(std::move(m));
  }
  return scopes;
}

// Data-dependency and register-allocation arcs within one scope, per §2.1:
//  * producer -> consumer for each register value (data dependency),
//  * reader-of-old-value -> overwriting write (register allocation),
//  * writer -> next writer when no read intervenes (write ordering; usually
//    dominated, kept for safety).
void def_use_arcs(Cdfg& g, const std::vector<Member>& members) {
  struct RegState {
    std::optional<NodeId> last_writer;
    std::vector<NodeId> readers_since_write;
  };
  std::map<std::string, RegState> state;

  for (const Member& m : members) {
    // Reads first: the member consumes the previously produced values.
    for (const auto& r : m.reads) {
      RegState& st = state[r];
      if (st.last_writer && *st.last_writer != m.entry && *st.last_writer != m.exit)
        g.add_arc(*st.last_writer, m.entry, ArcRole::kDataDep, false, r);
      st.readers_since_write.push_back(m.exit);
    }
    // Then writes: the member overwrites; all readers of the old value (and
    // the previous writer, if unread) must have fired.
    for (const auto& w : m.writes) {
      RegState& st = state[w];
      bool had_reader = false;
      for (NodeId reader : st.readers_since_write) {
        if (reader == m.entry || reader == m.exit) continue;
        g.add_arc(reader, m.entry, ArcRole::kRegAlloc, false, w);
        had_reader = true;
      }
      if (!had_reader && st.last_writer && *st.last_writer != m.entry &&
          *st.last_writer != m.exit)
        g.add_arc(*st.last_writer, m.entry, ArcRole::kRegAlloc, false, w);
      st.last_writer = m.exit;
      st.readers_since_write.clear();
    }
  }
}

// Control arcs for one block scope: root -> first node of each FU used in
// the scope, last node of each FU -> end.  This is the paper's Figure 1
// synchronization ("all four functional unit controllers are synchronized
// with an ENDLOOP node").
void control_arcs(Cdfg& g, NodeId root, NodeId end, const std::vector<Member>& members) {
  std::map<FuId::underlying, std::pair<NodeId, NodeId>> first_last;  // per FU
  for (const Member& m : members) {
    FuId fu = g.node(m.entry).fu;
    if (!fu.valid()) continue;
    auto [it, inserted] =
        first_last.try_emplace(fu.value(), std::make_pair(m.entry, m.exit));
    if (!inserted) it->second.second = m.exit;
  }
  for (const auto& [fu, fl] : first_last) {
    if (fl.first != root) g.add_arc(root, fl.first, ArcRole::kControl);
    if (fl.second != end) g.add_arc(fl.second, end, ArcRole::kControl);
  }
  // A scope with no FU-bound members still needs a path root -> end.
  if (first_last.empty()) g.add_arc(root, end, ArcRole::kControl);
}

}  // namespace

void generate_constraint_arcs(Cdfg& g, const std::vector<NodeId>& program_order) {
  // 1. Scheduling arcs: consecutive operations bound to one FU.
  for (FuId fu : g.fu_ids()) {
    const auto& order = g.fu_order(fu);
    for (std::size_t i = 0; i + 1 < order.size(); ++i)
      g.add_arc(order[i], order[i + 1], ArcRole::kScheduling);
  }

  // 2. Data-dependency and register-allocation arcs, per block scope.
  ScopeMap scopes = build_scopes(g, program_order);
  for (const auto& [block, members] : scopes) {
    (void)block;
    def_use_arcs(g, members);
  }

  // 3. Control arcs.  Every loop/if block synchronizes at its root and end
  // nodes; the top-level scope synchronizes at START and END.
  NodeId start = g.add_node(NodeKind::kStart, FuId::invalid());
  NodeId end = g.add_node(NodeKind::kEnd, FuId::invalid());

  for (BlockId b : g.block_ids()) {
    const Block& blk = g.block(b);
    auto it = scopes.find(b.value());
    static const std::vector<Member> kEmpty;
    const auto& members = it == scopes.end() ? kEmpty : it->second;
    control_arcs(g, blk.root, blk.end, members);
    // IF blocks additionally get the skip arc for the false branch.
    if (blk.kind == NodeKind::kIf) g.add_arc(blk.root, blk.end, ArcRole::kControl);
  }
  {
    auto it = scopes.find(BlockId::invalid().value());
    static const std::vector<Member> kEmpty;
    const auto& members = it == scopes.end() ? kEmpty : it->second;
    control_arcs(g, start, end, members);
  }
}

}  // namespace adc
