#pragma once
// A small textual front-end language for scheduled, resource-bound CDFGs.
//
//   program diffeq {
//     fu ALU1 : alu;
//     fu MUL1 : mul;
//     loop C on ALU2 {
//       ALU1: B := 2dx + dx;
//       MUL1: M1 := U * X1;
//       ...
//     }
//   }
//
// Statements appear in sequential program order; `FU:` prefixes give the
// resource binding; per-FU schedule order is the program-order subsequence.
// `loop <condreg> on <FU> { ... }` and `if <condreg> on <FU> { ... }` open
// structured blocks.  Comments run from '#' to end of line.

#include <string>

#include "cdfg/cdfg.hpp"

namespace adc {

// Parses and elaborates the program; throws std::invalid_argument with a
// line number on syntax errors.
Cdfg parse_program(const std::string& source);

}  // namespace adc
