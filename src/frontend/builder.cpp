#include "frontend/builder.hpp"

#include <stdexcept>

#include "cdfg/validate.hpp"

namespace adc {

ProgramBuilder::ProgramBuilder(std::string name) : graph_(std::move(name)) {}

FuId ProgramBuilder::fu(const std::string& name, const std::string& cls) {
  if (graph_.find_fu(name)) throw std::invalid_argument("duplicate FU " + name);
  FuId id = graph_.add_fu(name, cls);
  fu_seq_.emplace_back();
  return id;
}

NodeId ProgramBuilder::add(NodeKind kind, FuId fu, std::vector<RtlStatement> stmts) {
  if (finished_) throw std::logic_error("builder already finished");
  BlockId block = open_.empty() ? BlockId::invalid() : open_.back().block;
  NodeId id = graph_.add_node(kind, fu, std::move(stmts), block);
  program_order_.push_back(id);
  if (fu.valid()) fu_seq_.at(fu.index()).push_back(id);
  return id;
}

NodeId ProgramBuilder::stmt(FuId fu, const std::string& rtl_text) {
  RtlStatement s = parse_rtl(rtl_text);
  NodeKind kind = s.is_move() ? NodeKind::kAssign : NodeKind::kOperation;
  return add(kind, fu, {std::move(s)});
}

NodeId ProgramBuilder::begin_loop(FuId fu, const std::string& cond_reg) {
  // The LOOP node belongs to the *enclosing* block; the body nodes will be
  // placed in the new block.
  NodeId root = add(NodeKind::kLoop, fu, {});
  graph_.node(root).cond_reg = cond_reg;
  BlockId parent = open_.empty() ? BlockId::invalid() : open_.back().block;
  BlockId block = graph_.add_block(NodeKind::kLoop, root, NodeId::invalid(), parent);
  open_.push_back(OpenBlock{block, root, fu});
  return root;
}

NodeId ProgramBuilder::end_loop() {
  if (open_.empty() || graph_.block(open_.back().block).kind != NodeKind::kLoop)
    throw std::logic_error("end_loop without begin_loop");
  OpenBlock ob = open_.back();
  open_.pop_back();
  // ENDLOOP also belongs to the enclosing block and must share the LOOP's
  // functional unit (the loop-back is that controller's own cycle).
  NodeId end = add(NodeKind::kEndLoop, ob.fu, {});
  graph_.block(ob.block).end = end;
  return end;
}

NodeId ProgramBuilder::begin_if(FuId fu, const std::string& cond_reg) {
  NodeId root = add(NodeKind::kIf, fu, {});
  graph_.node(root).cond_reg = cond_reg;
  BlockId parent = open_.empty() ? BlockId::invalid() : open_.back().block;
  BlockId block = graph_.add_block(NodeKind::kIf, root, NodeId::invalid(), parent);
  open_.push_back(OpenBlock{block, root, fu});
  return root;
}

NodeId ProgramBuilder::end_if() {
  if (open_.empty() || graph_.block(open_.back().block).kind != NodeKind::kIf)
    throw std::logic_error("end_if without begin_if");
  OpenBlock ob = open_.back();
  open_.pop_back();
  NodeId end = add(NodeKind::kEndIf, ob.fu, {});
  graph_.block(ob.block).end = end;
  return end;
}

Cdfg ProgramBuilder::finish() {
  if (finished_) throw std::logic_error("builder already finished");
  if (!open_.empty()) throw std::logic_error("unclosed block at finish()");
  finished_ = true;

  for (FuId fu : graph_.fu_ids()) graph_.set_fu_order(fu, fu_seq_.at(fu.index()));

  generate_constraint_arcs(graph_, program_order_);

  validate_or_throw(graph_, ValidateOptions{.allow_backward_arcs = false});
  return std::move(graph_);
}

}  // namespace adc
