#include "frontend/parser.hpp"

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>

#include "frontend/builder.hpp"

namespace adc {

namespace {

struct Token {
  enum class Kind { kIdent, kPunct, kRtlText, kEof } kind;
  std::string text;
  int line;
};

class Scanner {
 public:
  explicit Scanner(const std::string& src) : src_(src) {}

  [[noreturn]] void fail(const std::string& msg, int line) const {
    throw std::invalid_argument("parse error at line " + std::to_string(line) + ": " + msg);
  }

  Token next() {
    skip_ws_and_comments();
    if (pos_ >= src_.size()) return {Token::Kind::kEof, "", line_};
    char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_'))
        ++pos_;
      return {Token::Kind::kIdent, src_.substr(start, pos_ - start), line_};
    }
    ++pos_;
    return {Token::Kind::kPunct, std::string(1, c), line_};
  }

  // Everything up to the next ';' — used for the RTL statement body, which
  // has its own parser.
  std::string until_semicolon(int line) {
    std::size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] != ';') {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ >= src_.size()) fail("unterminated statement (missing ';')", line);
    std::string out = src_.substr(start, pos_ - start);
    ++pos_;  // consume ';'
    return out;
  }

  int line() const { return line_; }

 private:
  void skip_ws_and_comments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(const std::string& src) : scan_(src) {}

  Cdfg run() {
    expect_ident("program");
    Token name = expect(Token::Kind::kIdent, "program name");
    builder_ = std::make_unique<ProgramBuilder>(name.text);
    expect_punct("{");
    body(/*depth=*/0);
    return builder_->finish();
  }

 private:
  Token expect(Token::Kind kind, const std::string& what) {
    Token t = scan_.next();
    if (t.kind != kind) scan_.fail("expected " + what + ", got '" + t.text + "'", t.line);
    return t;
  }
  void expect_ident(const std::string& word) {
    Token t = scan_.next();
    if (t.kind != Token::Kind::kIdent || t.text != word)
      scan_.fail("expected '" + word + "', got '" + t.text + "'", t.line);
  }
  void expect_punct(const std::string& p) {
    Token t = scan_.next();
    if (t.kind != Token::Kind::kPunct || t.text != p)
      scan_.fail("expected '" + p + "', got '" + t.text + "'", t.line);
  }

  FuId lookup_fu(const std::string& name, int line) {
    auto it = fus_.find(name);
    if (it == fus_.end()) scan_.fail("unknown functional unit '" + name + "'", line);
    return it->second;
  }

  // Parses block contents until the matching '}'.
  void body(int depth) {
    for (;;) {
      Token t = scan_.next();
      if (t.kind == Token::Kind::kPunct && t.text == "}") {
        return;
      }
      if (t.kind == Token::Kind::kEof) scan_.fail("unexpected end of input", t.line);
      if (t.kind != Token::Kind::kIdent) scan_.fail("unexpected '" + t.text + "'", t.line);

      if (t.text == "fu") {
        if (depth != 0) scan_.fail("fu declarations must be top-level", t.line);
        Token name = expect(Token::Kind::kIdent, "FU name");
        expect_punct(":");
        Token cls = expect(Token::Kind::kIdent, "FU class");
        expect_punct(";");
        fus_[name.text] = builder_->fu(name.text, cls.text);
      } else if (t.text == "loop" || t.text == "if") {
        Token cond = expect(Token::Kind::kIdent, "condition register");
        expect_ident("on");
        Token fu = expect(Token::Kind::kIdent, "FU name");
        expect_punct("{");
        if (t.text == "loop") {
          builder_->begin_loop(lookup_fu(fu.text, fu.line), cond.text);
          body(depth + 1);
          builder_->end_loop();
        } else {
          builder_->begin_if(lookup_fu(fu.text, fu.line), cond.text);
          body(depth + 1);
          builder_->end_if();
        }
      } else {
        // "<FU>: <rtl>;"
        FuId fu = lookup_fu(t.text, t.line);
        expect_punct(":");
        std::string rtl = scan_.until_semicolon(t.line);
        try {
          builder_->stmt(fu, rtl);
        } catch (const std::invalid_argument& e) {
          scan_.fail(e.what(), t.line);
        }
      }
    }
  }

  Scanner scan_;
  std::unique_ptr<ProgramBuilder> builder_;
  std::map<std::string, FuId> fus_;
};

}  // namespace

Cdfg parse_program(const std::string& source) { return Parser(source).run(); }

}  // namespace adc
