#pragma once
// Benchmark CDFGs.
//
// diffeq() is the paper's case study: the differential-equation solver
// (HAL) benchmark, scheduled and bound exactly as in the paper's Figure 1 —
// two ALUs, two multipliers, LOOP/ENDLOOP bound to ALU2, with the RTL
// statements named in the text (B := 2dx + dx, A := Y + M1, U := U - M1,
// M1 := U * X1, M1 := A * B, M2 := U * dx, X := X + dx, Y := Y + M2,
// X1 := X, C := X < a).
//
// The others exercise the flow on additional shapes: straight-line code,
// IF blocks, and deeper loops.  random_program() generates valid scheduled
// CDFGs for property-based tests.

#include <cstdint>
#include <string>

#include "cdfg/cdfg.hpp"

namespace adc {

// The paper's DIFFEQ benchmark (Figure 1 schedule/binding).
Cdfg diffeq();

// The same benchmark in the textual DSL (exercises the parser; elaborates
// to a graph isomorphic to diffeq()).
std::string diffeq_source();

// Greatest common divisor by repeated subtraction: a LOOP containing two IF
// blocks, single ALU plus a comparator ALU.
Cdfg gcd();

// Four-tap FIR filter, fully unrolled: straight-line code on 2 MULs + 2 ALUs.
Cdfg fir4();

// A modular multiply-accumulate loop with an IF block (conditional reduce).
Cdfg mac_reduce();

// An elliptic-wave-filter-like dependency-rich straight-line kernel.
Cdfg ewf_lite();

// The full elliptic-wave-filter-class kernel (34 operations: 26 additions
// and 8 multiplications over 8 state registers), scheduled and bound by
// the HLS substrate onto the requested resources.  The largest bundled
// benchmark; exercises deep multiplexed channels and long controller rings.
Cdfg ewf(int alus = 3, int mults = 2);

struct RandomProgramParams {
  int alus = 2;
  int mults = 2;
  int stmts = 12;       // loop-body statements
  bool with_loop = true;
  int regs = 6;         // size of the register pool
};

// A pseudo-random but always-valid scheduled CDFG (deterministic in `seed`).
Cdfg random_program(const RandomProgramParams& params, std::uint64_t seed);

}  // namespace adc
