#pragma once
// Common result type for the global (CDFG-level) transformations GT1-GT5.
// Every transform reports what it changed so pipelines and benches can
// print per-stage statistics, mirroring the paper's experimental tables.
//
// Beyond the aggregate counters and free-form notes, every individual
// rewrite decision is recorded as a typed ProvenanceRecord (trace/
// provenance.hpp); the per-record deltas must sum to the counters, which
// ProvenanceReport::reconcile() verifies against the Figure-12/13 stats.

#include <string>
#include <vector>

#include "trace/provenance.hpp"

namespace adc {

struct TransformResult {
  std::string name;
  int arcs_removed = 0;
  int arcs_added = 0;
  int nodes_merged = 0;
  int channels_merged = 0;
  std::vector<std::string> notes;              // human-readable change log
  std::vector<ProvenanceRecord> decisions;     // typed, reconcilable log

  bool changed() const {
    return arcs_removed || arcs_added || nodes_merged || channels_merged;
  }
  void note(std::string n) { notes.push_back(std::move(n)); }
  // Appends a typed decision record; set its deltas/fields on the result.
  ProvenanceRecord& decide(std::string pass, std::string kind) {
    decisions.emplace_back(std::move(pass), std::move(kind));
    return decisions.back();
  }
  void absorb(const TransformResult& other) {
    arcs_removed += other.arcs_removed;
    arcs_added += other.arcs_added;
    nodes_merged += other.nodes_merged;
    channels_merged += other.channels_merged;
    for (const auto& n : other.notes) notes.push_back(n);
    for (const auto& d : other.decisions) decisions.push_back(d);
  }
};

}  // namespace adc
