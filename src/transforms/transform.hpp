#pragma once
// Common result type for the global (CDFG-level) transformations GT1-GT5.
// Every transform reports what it changed so pipelines and benches can
// print per-stage statistics, mirroring the paper's experimental tables.

#include <string>
#include <vector>

namespace adc {

struct TransformResult {
  std::string name;
  int arcs_removed = 0;
  int arcs_added = 0;
  int nodes_merged = 0;
  int channels_merged = 0;
  std::vector<std::string> notes;  // human-readable change log

  bool changed() const {
    return arcs_removed || arcs_added || nodes_merged || channels_merged;
  }
  void note(std::string n) { notes.push_back(std::move(n)); }
  void absorb(const TransformResult& other) {
    arcs_removed += other.arcs_removed;
    arcs_added += other.arcs_added;
    nodes_merged += other.nodes_merged;
    channels_merged += other.channels_merged;
    for (const auto& n : other.notes) notes.push_back(n);
  }
};

}  // namespace adc
