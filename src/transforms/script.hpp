#pragma once
// Transform scripting — the paper closes with "algorithmic heuristics and
// scripts based on the set of transformations … are forthcoming"; this
// module supplies them.  A script is a semicolon-separated sequence of
// transformation steps applied in order (steps may repeat), in the spirit
// of SIS scripts:
//
//   gt1; gt2; gt3(margin=2); gt4; gt2; gt5(broadcast=all); lt(no_sharing)
//
// Steps and options:
//   gt1                         loop parallelism
//   gt2 | gt2(all)              dominated-constraint removal (all: also
//                               intra-controller arcs)
//   gt3(margin=N, samples=N)    relative-timing removal
//   gt4                         assignment merging
//   gt5(broadcast=first|all|none, no_mux, no_sym, concred)
//                               channel elimination
//   lt(no_move_up, no_move_down, no_presel, no_acks, no_sharing)
//                               configures the local pipeline applied to
//                               every extracted controller
//
// parse() throws std::invalid_argument with a position on malformed input.

#include <string>
#include <vector>

#include "ltrans/local.hpp"
#include "transforms/pipeline.hpp"

namespace adc {

class TransformScript {
 public:
  static TransformScript parse(const std::string& source);

  // Applies the global steps in script order; returns the per-stage log
  // and the final channel plan (derived fresh if the script has no gt5).
  GlobalPipelineResult run(Cdfg& g, const DelayModel& delays = DelayModel::typical()) const;

  // --- per-step execution (the parallel runtime's stage-cache unit) -------
  // Number of parsed steps (including the `lt` step, which is a global
  // no-op — run_step returns immediately for it).
  std::size_t step_count() const { return steps_.size(); }
  // Normalized rendering of step `i` alone, and of the prefix [0, n) —
  // stable strings suitable as content-address components.
  std::string step_string(std::size_t i) const;
  std::string prefix_string(std::size_t n) const;
  // Applies step `i` to `g`, appending its log to `res.stages` (and setting
  // `res.plan` for gt5).  Returns true when the step produced a plan.
  bool run_step(Cdfg& g, std::size_t i, const DelayModel& delays,
                GlobalPipelineResult& res) const;

  // The LT configuration collected from the script's `lt(...)` step
  // (defaults when absent).
  const LocalTransformOptions& local_options() const { return local_; }
  bool has_local_step() const { return has_lt_; }

  // Normalized rendering (for logs and round-trip tests).
  std::string to_string() const;

 private:
  struct Step {
    std::string name;
    std::vector<std::pair<std::string, std::string>> args;
  };
  std::vector<Step> steps_;
  LocalTransformOptions local_;
  bool has_lt_ = false;
};

}  // namespace adc
