#include <algorithm>
#include <set>
#include <vector>

#include "cdfg/analysis.hpp"
#include "transforms/global.hpp"

namespace adc {

namespace {

std::set<std::string> reads_of(const Node& n) {
  std::set<std::string> out;
  for (const auto& s : n.stmts)
    for (const auto& r : s.reads()) out.insert(r);
  return out;
}

std::set<std::string> writes_of(const Node& n) {
  std::set<std::string> out;
  for (const auto& s : n.stmts) out.insert(s.dest);
  return out;
}

bool disjoint(const std::set<std::string>& a, const std::set<std::string>& b) {
  for (const auto& x : a)
    if (b.count(x)) return false;
  return true;
}

// The merged node executes the assignment in parallel with the operation,
// which is only legal when they are register-independent: the assignment
// must not consume the operation's result, overwrite its sources, or race
// on a common destination (and vice versa).
bool independent(const Node& assign, const Node& op) {
  auto ar = reads_of(assign), aw = writes_of(assign);
  auto orr = reads_of(op), ow = writes_of(op);
  return disjoint(ar, ow) && disjoint(aw, orr) && disjoint(aw, ow) && disjoint(ar, aw);
}

// Merging `first` and `second` (schedule order) collapses them into one
// node; any *indirect* forward path first -> ... -> second would then
// become a cycle through the merged node.  Checks by hiding the direct
// arcs and asking whether an offset-0 path remains.
bool merge_creates_cycle(Cdfg& g, NodeId first, NodeId second) {
  std::vector<ArcId> hidden;
  for (ArcId aid : g.out_arcs(first)) {
    if (g.arc(aid).dst == second && !g.arc(aid).backward) {
      g.arc(aid).alive = false;
      hidden.push_back(aid);
    }
  }
  bool indirect = is_implied(g, first, second, /*offset=*/0, /*include_fu_wrap=*/false);
  for (ArcId aid : hidden) g.arc(aid).alive = true;
  return indirect;
}

}  // namespace

TransformResult gt4_merge_assignments(Cdfg& g) {
  TransformResult res;
  res.name = "GT4 merge assignment nodes";
  bool changed = true;
  while (changed) {
    changed = false;
    for (FuId fu : g.fu_ids()) {
      const auto order = g.fu_order(fu);  // copy: merging edits the schedule
      for (std::size_t i = 0; i < order.size(); ++i) {
        const Node& v = g.node(order[i]);
        if (!v.alive || v.kind != NodeKind::kAssign) continue;

        // Prefer merging into the *preceding* schedule neighbour (the
        // assignment rides along with the operation already in flight);
        // fall back to the succeeding one.
        for (int dir : {-1, +1}) {
          std::size_t j = i + static_cast<std::size_t>(dir);
          if (dir < 0 && i == 0) continue;
          if (j >= order.size()) continue;
          const Node& s = g.node(order[j]);
          if (!s.alive || s.is_control()) continue;
          if (s.block != v.block) continue;  // never across block boundaries
          if (!independent(v, s)) continue;
          NodeId earlier = dir < 0 ? order[j] : order[i];
          NodeId later = dir < 0 ? order[i] : order[j];
          if (merge_creates_cycle(g, earlier, later)) continue;

          res.note("merged '" + v.label() + "' into '" + s.label() + "' on " +
                   g.fu(fu).name);
          // merge_nodes drops the arcs between the pair outright (they
          // would become self-arcs) and a rerouted arc can fold into an
          // already-existing one (add_arc dedupes), so the net removal is
          // not derivable from the pair's arcs alone — measure it, so the
          // arc ledger stays balanced.  Labels are captured first: the
          // merge moves the assignment's statements into the host.
          std::string assign_label = v.label();
          std::string host_label = s.label();
          std::size_t live_before = g.live_arc_count();
          g.merge_nodes(order[j], order[i]);
          int removed = static_cast<int>(live_before - g.live_arc_count());
          res.decide("gt4", "assignments_merged")
              .merged_nodes()
              .removed(removed)
              .field("assign", assign_label)
              .field("host", host_label)
              .field("fu", g.fu(fu).name)
              .field("arcs_removed", static_cast<std::int64_t>(removed));
          ++res.nodes_merged;
          res.arcs_removed += removed;
          changed = true;
          break;
        }
        if (changed) break;
      }
      if (changed) break;
    }
  }
  return res;
}

}  // namespace adc
