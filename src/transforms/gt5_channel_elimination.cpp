#include "transforms/gt5.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "cdfg/analysis.hpp"
#include "transforms/concurrency.hpp"
#include "transforms/timing_analysis.hpp"

namespace adc {

namespace {

void renumber(ChannelPlan& plan) {
  for (std::size_t i = 0; i < plan.channels().size(); ++i)
    plan.channels()[i].id = ChannelId(i);
}

void erase_channel(ChannelPlan& plan, std::size_t idx) {
  plan.channels().erase(plan.channels().begin() + static_cast<std::ptrdiff_t>(idx));
  renumber(plan);
}

std::vector<FuId> receivers_of_arcs(const Cdfg& g, const std::vector<ChannelEvent>& events) {
  std::set<FuId::underlying> set;
  for (const auto& e : events)
    for (ArcId aid : e.arcs)
      if (g.node(g.arc(aid).dst).fu.valid()) set.insert(g.node(g.arc(aid).dst).fu.value());
  std::vector<FuId> out;
  for (auto v : set) out.push_back(FuId(v));
  return out;
}

// First node of each (FU, block) repetition group — the head of the
// receiving controller's cycle.
bool is_first_of_cycle(const Cdfg& g, NodeId n) {
  FuId fu = g.node(n).fu;
  if (!fu.valid()) return false;
  for (NodeId m : g.fu_order(fu)) {
    if (g.node(m).block == g.node(n).block) return m == n;
  }
  return false;
}

// Steady-state completion proxy used by the concurrency-reduction slack
// check: the latest completion over all nodes in the last unrolled copy in
// which they exist.
std::int64_t steady_latest(const Cdfg& g, const DelayModel& delays) {
  UnrolledTiming t(g, delays, 4);
  std::int64_t worst = 0;
  for (NodeId n : g.node_ids()) {
    for (int copy = t.unroll() - 1; copy >= 0; --copy) {
      if (auto c = t.completion(n, copy)) {
        worst = std::max(worst, c->latest);
        break;
      }
    }
  }
  return worst;
}

}  // namespace

bool try_multiplex(const Cdfg& g, ChannelPlan& plan, std::size_t a, std::size_t b) {
  if (a == b || a >= plan.channels().size() || b >= plan.channels().size()) return false;
  Channel& ca = plan.channels()[a];
  Channel& cb = plan.channels()[b];
  if (!can_multiplex(g, ca, cb)) return false;
  ca.events = merged_events(g, ca, cb);
  erase_channel(plan, b);
  return true;
}

int form_multiway(const Cdfg& g, ChannelPlan& plan, NodeId source) {
  std::vector<std::size_t> group;
  for (std::size_t i = 0; i < plan.channels().size(); ++i) {
    const Channel& c = plan.channels()[i];
    if (c.involves_environment() || c.events.size() != 1) continue;
    if (c.events.front().source == source) group.push_back(i);
  }
  if (group.size() < 2) return 0;

  ChannelEvent merged{source, {}};
  for (std::size_t i : group) {
    const auto& arcs = plan.channels()[i].events.front().arcs;
    merged.arcs.insert(merged.arcs.end(), arcs.begin(), arcs.end());
  }
  Channel candidate = plan.channels()[group.front()];
  candidate.events = {merged};
  candidate.receivers = receivers_of_arcs(g, candidate.events);
  if (!channel_order_consistent(g, candidate)) return 0;

  plan.channels()[group.front()] = std::move(candidate);
  // Erase back-to-front so indices stay valid.
  for (auto it = group.rbegin(); it != group.rend() && *it != group.front(); ++it)
    erase_channel(plan, *it);
  renumber(plan);
  return static_cast<int>(group.size()) - 1;
}

bool try_symmetrize(Cdfg& g, ChannelPlan& plan, std::size_t big, std::size_t small,
                    TransformResult* stats) {
  if (big == small || big >= plan.channels().size() || small >= plan.channels().size())
    return false;
  Channel& cb = plan.channels()[big];
  Channel& cs = plan.channels()[small];
  if (cb.involves_environment() || cs.involves_environment()) return false;
  if (cb.src_fu != cs.src_fu || cs.events.size() != 1) return false;

  // The small channel's receivers must be a strict subset of the big one's.
  std::set<FuId::underlying> rb, rs;
  for (FuId f : cb.receivers) rb.insert(f.value());
  for (FuId f : cs.receivers) rs.insert(f.value());
  if (rs.size() >= rb.size() || !std::includes(rb.begin(), rb.end(), rs.begin(), rs.end()))
    return false;

  NodeId source = cs.events.front().source;
  std::vector<ArcId> added;
  Channel original = cs;

  for (auto fv : rb) {
    if (rs.count(fv)) continue;
    FuId fu{fv};
    // Safe addition: only arcs already implied by the existing constraints
    // may be introduced.  Try each node of the missing FU, nearest offset
    // first.
    bool covered = false;
    for (int offset : {0, 1}) {
      for (NodeId d : g.fu_order(fu)) {
        if (!g.node(d).alive || d == source) continue;
        if (g.find_arc(source, d, offset == 1)) continue;  // already constrained
        if (!is_implied(g, source, d, offset)) continue;
        ArcId aid = g.add_arc(source, d, ArcRole::kControl, offset == 1);
        g.arc(aid).tag = "GT5.3";
        added.push_back(aid);
        cs.events.front().arcs.push_back(aid);
        covered = true;
        break;
      }
      if (covered) break;
    }
    if (!covered) {
      for (ArcId aid : added) g.remove_arc(aid);
      plan.channels()[small] = std::move(original);
      return false;
    }
  }

  cs.receivers = receivers_of_arcs(g, cs.events);
  if (!try_multiplex(g, plan, big, small)) {
    for (ArcId aid : added) g.remove_arc(aid);
    plan.channels()[small] = std::move(original);
    return false;
  }
  if (stats) {
    stats->arcs_added += static_cast<int>(added.size());
    stats->note("GT5.3 symmetrized " + g.node(source).label() + " (+" +
                std::to_string(added.size()) + " safe arcs)");
    // The channel merge itself is counted by the driver; the record carries
    // the delta so the provenance ledger reconciles per decision.
    stats->decide("gt5", "channels_symmetrized")
        .added(static_cast<int>(added.size()))
        .merged_channels()
        .field("source", g.node(source).label())
        .field("safe_arcs", static_cast<std::int64_t>(added.size()));
  }
  return true;
}

bool try_concurrency_reduction(Cdfg& g, ChannelPlan& plan, ArcId direct,
                               const Gt5Options& opts, TransformResult* stats) {
  Arc& d = g.arc(direct);
  if (!d.alive) return false;
  NodeId a = d.src, c = d.dst;
  if (g.node(a).fu == g.node(c).fu) return false;

  // The direct channel must carry only this arc, otherwise removing the
  // arc does not eliminate a wire.
  std::size_t direct_idx = plan.channels().size();
  for (std::size_t i = 0; i < plan.channels().size(); ++i) {
    const Channel& ch = plan.channels()[i];
    if (ch.events.size() == 1 && ch.events.front().arcs.size() == 1 &&
        ch.events.front().arcs.front() == direct)
      direct_idx = i;
  }
  if (direct_idx == plan.channels().size()) return false;

  std::int64_t before = steady_latest(g, opts.delays);

  for (ArcId mid : g.out_arcs(a)) {
    if (mid == direct) continue;
    const Arc& ab = g.arc(mid);
    NodeId b = ab.dst;
    if (g.node(b).fu == g.node(a).fu || g.node(b).fu == g.node(c).fu) continue;
    int new_offset = d.offset() - ab.offset();
    if (new_offset < 0) continue;
    if (g.find_arc(b, c, new_offset == 1)) continue;

    ArcId bc = g.add_arc(b, c, ArcRole::kControl, new_offset == 1);
    g.arc(bc).tag = "GT5.2";
    d.alive = false;

    bool ok = steady_latest(g, opts.delays) - before <= opts.max_period_increase;
    if (ok) {
      // The new arc becomes a candidate channel; it must merge onto an
      // existing channel from b's FU or the reroute gains nothing.
      Channel cand;
      cand.src_fu = g.node(b).fu;
      cand.receivers = {g.node(c).fu};
      cand.events = {ChannelEvent{b, {bc}}};
      std::sort(cand.receivers.begin(), cand.receivers.end());
      std::size_t host = plan.channels().size();
      for (std::size_t i = 0; i < plan.channels().size(); ++i) {
        if (i == direct_idx) continue;
        if (can_multiplex(g, plan.channels()[i], cand)) {
          host = i;
          break;
        }
      }
      if (host < plan.channels().size()) {
        Channel& hc = plan.channels()[host];
        hc.events = merged_events(g, hc, cand);
        bool controller_channel = !plan.channels()[direct_idx].involves_environment();
        erase_channel(plan, direct_idx);
        if (stats) {
          ++stats->arcs_added;
          ++stats->arcs_removed;
          if (controller_channel) ++stats->channels_merged;
          stats->note("GT5.2 rerouted " + g.node(a).label() + " -> " +
                      g.node(c).label() + " via " + g.node(b).label());
          stats->decide("gt5", "constraint_rerouted")
              .removed()
              .added()
              .merged_channels(controller_channel ? 1 : 0)
              .field("src", g.node(a).label())
              .field("dst", g.node(c).label())
              .field("hub", g.node(b).label());
        }
        return true;
      }
    }
    // Roll back.
    g.remove_arc(bc);
    d.alive = true;
  }
  return false;
}

Gt5Result gt5_channel_elimination(Cdfg& g, const Gt5Options& opts) {
  Gt5Result res;
  res.stats.name = "GT5 channel elimination";
  res.plan = ChannelPlan::derive(g);
  std::size_t initial = res.plan.count_controller_channels();

  // Same-source broadcast (multi-way) formation.
  if (opts.same_source != Gt5Options::SameSource::kNone) {
    for (NodeId n : g.node_ids()) {
      if (opts.same_source == Gt5Options::SameSource::kFirstNodeTargets) {
        bool all_first = true;
        int fanout = 0;
        for (ArcId aid : g.out_arcs(n)) {
          const Arc& a = g.arc(aid);
          if (g.node(a.src).fu == g.node(a.dst).fu) continue;
          if (!g.node(a.src).fu.valid() || !g.node(a.dst).fu.valid())
            continue;  // environment handshakes never join a broadcast
          ++fanout;
          if (!is_first_of_cycle(g, a.dst)) all_first = false;
        }
        if (fanout < 2 || !all_first) continue;
      }
      int eliminated = form_multiway(g, res.plan, n);
      if (eliminated > 0) {
        res.stats.channels_merged += eliminated;
        res.stats.note("multi-way broadcast at " + g.node(n).label());
        res.stats.decide("gt5", "broadcast_formed")
            .merged_channels(eliminated)
            .field("source", g.node(n).label())
            .field("eliminated", static_cast<std::int64_t>(eliminated));
      }
    }
  }

  // Multiplexing and symmetrization to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    if (opts.multiplex) {
      // Controller channels only: environment handshakes are singular (the
      // simulator's completion accounting expects one transition each), and
      // keeping them out makes channels_merged reconcile exactly with the
      // Figure-12 controller-channel count.
      for (std::size_t i = 0; i < res.plan.channels().size() && !changed; ++i)
        for (std::size_t j = i + 1; j < res.plan.channels().size() && !changed; ++j)
          if (!res.plan.channels()[i].involves_environment() &&
              !res.plan.channels()[j].involves_environment() &&
              try_multiplex(g, res.plan, i, j)) {
            ++res.stats.channels_merged;
            res.stats.note("GT5.1 multiplexed two channels");
            res.stats.decide("gt5", "channels_multiplexed")
                .merged_channels()
                .field("host", describe(res.plan.channels()[i], g));
            changed = true;
          }
    }
    if (!changed && opts.symmetrize) {
      for (std::size_t i = 0; i < res.plan.channels().size() && !changed; ++i)
        for (std::size_t j = 0; j < res.plan.channels().size() && !changed; ++j)
          if (i != j && try_symmetrize(g, res.plan, i, j, &res.stats)) {
            ++res.stats.channels_merged;
            changed = true;
          }
    }
    if (!changed && opts.concurrency_reduction) {
      for (ArcId aid : g.arc_ids()) {
        if (try_concurrency_reduction(g, res.plan, aid, opts, &res.stats)) {
          changed = true;
          break;
        }
      }
    }
  }

  res.plan.rename_wires(g);
  res.stats.note("controller channels: " + std::to_string(initial) + " -> " +
                 std::to_string(res.plan.count_controller_channels()));
  return res;
}

}  // namespace adc
