#include <map>
#include <optional>
#include <set>

#include "cdfg/analysis.hpp"
#include "transforms/global.hpp"

namespace adc {

namespace {

// Def-use instance bookkeeping at loop-body scope.  Nested blocks take part
// through their boundary nodes, like the frontend's arc generation: reads
// and writes of a nested region are summarized, entering at the root and
// completing at the exit node.
struct ScopedAccess {
  NodeId entry;
  NodeId exit;
  std::set<std::string> reads;
  std::set<std::string> writes;
};

std::vector<ScopedAccess> body_members(const Cdfg& g, BlockId body) {
  std::vector<ScopedAccess> members;
  for (NodeId nid : g.node_ids()) {
    const Node& n = g.node(nid);
    if (n.block != body) continue;
    if (n.kind == NodeKind::kEndLoop || n.kind == NodeKind::kEndIf) continue;
    ScopedAccess m;
    m.entry = nid;
    m.exit = nid;
    if (n.kind == NodeKind::kLoop || n.kind == NodeKind::kIf) {
      BlockId nested;
      for (BlockId b : g.block_ids())
        if (g.block(b).root == nid) nested = b;
      if (n.kind == NodeKind::kIf) m.exit = g.block(nested).end;
      for (NodeId inner : g.node_ids()) {
        if (!in_block(g, inner, nested)) continue;
        for (const auto& s : g.node(inner).stmts) {
          for (const auto& r : s.reads()) m.reads.insert(r);
          m.writes.insert(s.dest);
        }
        if (!g.node(inner).cond_reg.empty()) m.reads.insert(g.node(inner).cond_reg);
      }
      if (!n.cond_reg.empty()) m.reads.insert(n.cond_reg);
    } else {
      for (const auto& s : n.stmts) {
        for (const auto& r : s.reads()) m.reads.insert(r);
        m.writes.insert(s.dest);
      }
    }
    members.push_back(std::move(m));
  }
  // Program order == node creation order.
  std::sort(members.begin(), members.end(),
            [](const ScopedAccess& a, const ScopedAccess& b) { return a.entry < b.entry; });
  return members;
}

TransformResult transform_loop(Cdfg& g, BlockId body) {
  TransformResult res;
  res.name = "GT1 loop parallelism";
  const Block& blk = g.block(body);
  NodeId loop = blk.root;
  NodeId endloop = blk.end;

  // --- Step A: remove synchronization at ENDLOOP -------------------------
  // Keep only the FU scheduling arc from ENDLOOP's schedule predecessor.
  std::optional<NodeId> sched_pred;
  {
    const auto& order = g.fu_order(g.node(endloop).fu);
    for (std::size_t i = 0; i < order.size(); ++i)
      if (order[i] == endloop && i > 0) sched_pred = order[i - 1];
  }
  for (ArcId aid : g.in_arcs(endloop)) {
    const Arc& a = g.arc(aid);
    if (sched_pred && a.src == *sched_pred) continue;
    g.remove_arc(aid);
    ++res.arcs_removed;
    res.note("A: removed " + g.node(a.src).label() + " -> ENDLOOP");
    res.decide("gt1", "sync_arc_removed")
        .removed()
        .field("src", g.node(a.src).label())
        .field("dst", g.node(endloop).label());
  }

  // --- Step B: backward arcs for loop-body variables ---------------------
  // For each register written in the body: from its last instances (one
  // write or the parallel reads after it) back to its first instances.
  auto members = body_members(g, body);
  std::set<std::string> written;
  for (const auto& m : members)
    for (const auto& w : m.writes) written.insert(w);

  for (const auto& reg : written) {
    // First instances: the parallel reads of the incoming value, or the
    // first write if the register is written before any read.  A
    // read-modify-write node counts as a reader (it samples the old value).
    std::vector<NodeId> first;
    for (const auto& m : members) {
      bool reads = m.reads.count(reg) != 0, writes = m.writes.count(reg) != 0;
      if (!reads && !writes) continue;
      if (reads || first.empty()) first.push_back(m.entry);
      if (writes) break;
    }
    // Last instances: the final write, or the parallel reads following it.
    std::vector<NodeId> last;
    for (auto it = members.rbegin(); it != members.rend(); ++it) {
      bool reads = it->reads.count(reg) != 0, writes = it->writes.count(reg) != 0;
      if (!reads && !writes) continue;
      if (writes) {
        if (last.empty()) last.push_back(it->exit);
        break;
      }
      last.push_back(it->exit);
    }
    for (NodeId l : last) {
      for (NodeId f : first) {
        if (l == f) continue;  // a node is ordered with itself by its controller
        if (g.find_arc(l, f, /*backward=*/true)) continue;
        if (is_implied(g, l, f, /*offset=*/1)) continue;
        g.add_arc(l, f, ArcRole::kRegAlloc, /*backward=*/true, reg);
        ++res.arcs_added;
        res.note("B: backward " + g.node(l).label() + " -> " + g.node(f).label() + " (" +
                 reg + ")");
        res.decide("gt1", "backward_arc_added")
            .added()
            .field("src", g.node(l).label())
            .field("dst", g.node(f).label())
            .field("reg", reg);
      }
    }
  }

  // --- Step C: loop variable updated before re-examination ---------------
  {
    const std::string& cond = g.node(loop).cond_reg;
    std::optional<NodeId> last_write;
    for (const auto& m : members)
      if (m.writes.count(cond)) last_write = m.exit;
    if (last_write && *last_write != endloop &&
        !is_implied(g, *last_write, endloop, /*offset=*/0)) {
      g.add_arc(*last_write, endloop, ArcRole::kControl, false, cond);
      ++res.arcs_added;
      res.note("C: " + g.node(*last_write).label() + " -> ENDLOOP");
      res.decide("gt1", "loop_cond_arc_added")
          .added()
          .field("src", g.node(*last_write).label())
          .field("reg", cond);
    }
  }

  // --- Step D: limit parallelism to two consecutive iterations -----------
  // The first use of each functional unit in the body must complete before
  // the next iteration starts, or a second request could queue on the
  // LOOP -> first-use wire.
  {
    std::map<FuId::underlying, NodeId> first_use;
    for (const auto& m : members) {
      FuId fu = g.node(m.entry).fu;
      if (!fu.valid()) continue;
      first_use.try_emplace(fu.value(), m.entry);
    }
    for (const auto& [fu, node] : first_use) {
      (void)fu;
      if (node == endloop) continue;
      if (is_implied(g, node, endloop, /*offset=*/0)) continue;
      g.add_arc(node, endloop, ArcRole::kControl);
      ++res.arcs_added;
      res.note("D: " + g.node(node).label() + " -> ENDLOOP");
      res.decide("gt1", "overlap_limit_arc_added")
          .added()
          .field("src", g.node(node).label());
    }
  }
  return res;
}

}  // namespace

TransformResult gt1_loop_parallelism(Cdfg& g) {
  TransformResult res;
  res.name = "GT1 loop parallelism";
  for (BlockId b : g.block_ids()) {
    if (g.block(b).kind != NodeKind::kLoop) continue;
    res.absorb(transform_loop(g, b));
  }
  res.name = "GT1 loop parallelism";
  return res;
}

}  // namespace adc
