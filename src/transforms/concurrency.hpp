#pragma once
// Channel-sharing legality analysis for GT5.
//
// A shared ("multiplexed") wire carries several events per iteration.  It
// is safe exactly when every receiving controller consumes the transitions
// in the order the sending controller emits them:
//
//  * emission order is the source nodes' position in the sending FU's
//    schedule (the sender is sequential, so events never collide),
//  * a receiver consumes an event at the earliest of its constraint arcs'
//    wait points; a wait point is the pair (iteration offset, position of
//    the destination node in the receiving FU's schedule),
//  * consumption keys must be non-decreasing along the emission order, and
//    must wrap consistently into the next iteration (first key shifted by
//    one iteration must not precede the last key).
//
// This subsumes the paper's "never concurrently active" condition for
// GT5.1 and the multi-way ordering requirements of GT5.3.  Sharing is also
// rejected when the endpoints live under different IF contexts (an event
// emitted conditionally would break transition counting) or in different
// loop blocks (events must repeat together).

#include <optional>

#include "cdfg/cdfg.hpp"
#include "channel/channel.hpp"

namespace adc {

// Index of the node in its FU's schedule; nullopt if unbound.
std::optional<int> schedule_position(const Cdfg& g, NodeId n);

// True if channels a and b may share one wire: same source FU, identical
// receiver sets, every event constraining every receiver, and consistent
// consumption order at every receiver.
bool can_multiplex(const Cdfg& g, const Channel& a, const Channel& b);

// The merged event list (emission order; same-source events combined).
// Precondition: can_multiplex(g, a, b).
std::vector<ChannelEvent> merged_events(const Cdfg& g, const Channel& a, const Channel& b);

// Validates the ordering conditions for a single (possibly already
// multiplexed or multi-way) channel.  Used by ChannelPlan consumers.
bool channel_order_consistent(const Cdfg& g, const Channel& c);

}  // namespace adc
