#include <algorithm>

#include "cdfg/analysis.hpp"
#include "sim/token_sim.hpp"
#include "transforms/global.hpp"

namespace adc {

namespace {

// True if node n sits under any IF block: its firings are conditional, so
// firing counts would not align across instances and the verification
// below would compare the wrong pairs.
bool under_if(const Cdfg& g, NodeId n) {
  BlockId b = g.node(n).block;
  while (b.valid()) {
    if (g.block(b).kind == NodeKind::kIf) return true;
    b = g.block(b).parent;
  }
  return false;
}

// Structural fast path: candidate u = (a -> b, ou) is never last if some
// remaining arc w = (c -> b, ow) satisfies a =>(offset <= ou - ow) c —
// then c's completion (and hence w's arrival) always follows a's.
bool structurally_covered(const Cdfg& g, const Arc& u) {
  for (ArcId wid : g.in_arcs(u.dst)) {
    const Arc& w = g.arc(wid);
    int budget = u.offset() - w.offset();
    if (budget < 0) continue;
    if (w.src == u.src || is_implied(g, u.src, w.src, budget)) return true;
  }
  return false;
}

// Timing verification on the relaxed graph (u already tombstoned): in every
// trial, a's (j - offset)-th completion must precede b's j-th firing by at
// least `margin`.
bool timing_covered(const Cdfg& g, const Arc& u, const DelayModel& delays,
                    const Gt3Options& opts) {
  auto check_trial = [&](const TokenSimOptions& simopts) {
    TokenSimResult r = run_token_sim(g, {}, simopts);
    if (!r.error.empty()) return false;
    const auto fit = r.fire_times.find(u.dst.value());
    const auto cit = r.completion_times.find(u.src.value());
    if (fit == r.fire_times.end()) return true;  // destination never fired
    if (cit == r.completion_times.end()) return false;
    const auto& fires = fit->second;
    const auto& completions = cit->second;
    for (std::size_t j = 0; j < fires.size(); ++j) {
      std::ptrdiff_t k = static_cast<std::ptrdiff_t>(j) - u.offset();
      if (k < 0) continue;  // pre-enabled for the first iteration
      if (static_cast<std::size_t>(k) >= completions.size()) continue;  // straggler
      if (completions[static_cast<std::size_t>(k)] + opts.margin > fires[j]) return false;
    }
    return true;
  };

  TokenSimOptions base;
  base.delays = delays;
  base.record_times = true;
  base.forced_loop_iterations = opts.harness_iterations;
  base.check_wire_discipline = false;  // the harness measures time, not protocol

  TokenSimOptions corner = base;
  corner.randomize_delays = false;
  corner.all_min_delays = false;
  if (!check_trial(corner)) return false;  // all-max
  corner.all_min_delays = true;
  if (!check_trial(corner)) return false;  // all-min
  for (int s = 1; s <= opts.samples; ++s) {
    TokenSimOptions trial = base;
    trial.seed = static_cast<std::uint64_t>(s) * 7919u + 13u;
    if (!check_trial(trial)) return false;
  }
  return true;
}

}  // namespace

TransformResult gt3_relative_timing(Cdfg& g, const DelayModel& delays,
                                    const Gt3Options& opts) {
  TransformResult res;
  res.name = "GT3 relative-timing optimization";

  bool changed = true;
  while (changed) {
    changed = false;
    for (ArcId aid : g.arc_ids()) {
      Arc& a = g.arc(aid);
      if (opts.only_inter_controller && g.node(a.src).fu == g.node(a.dst).fu) continue;
      if (g.in_arcs(a.dst).size() < 2) continue;  // nothing can cover it
      if (under_if(g, a.src) || under_if(g, a.dst)) continue;

      a.alive = false;  // hypothesize removal; prove on the relaxed system
      bool structural = structurally_covered(g, a);
      bool safe = structural || timing_covered(g, a, delays, opts);
      if (safe) {
        ++res.arcs_removed;
        res.note("removed " + g.node(a.src).label() + " -> " + g.node(a.dst).label() +
                 " (never the last arrival under the delay model)");
        res.decide("gt3", "rt_arc_removed")
            .removed()
            .field("src", g.node(a.src).label())
            .field("dst", g.node(a.dst).label())
            .field("proof", structural ? "structural" : "timing")
            .field("margin", static_cast<std::int64_t>(opts.margin));
        changed = true;
      } else {
        a.alive = true;
      }
    }
  }
  return res;
}

}  // namespace adc
