#include "cdfg/analysis.hpp"
#include "transforms/global.hpp"

namespace adc {

TransformResult gt2_remove_dominated(Cdfg& g, const Gt2Options& opts) {
  TransformResult res;
  res.name = "GT2 remove dominated constraints";
  // Arcs are checked in id order; after each removal the remaining graph is
  // what later checks run against, so two arcs that imply each other can
  // never both disappear.
  for (ArcId aid : g.arc_ids()) {
    const Arc& a = g.arc(aid);
    if (opts.only_inter_controller && g.node(a.src).fu == g.node(a.dst).fu) continue;
    if (!is_dominated(g, aid)) continue;
    res.note("removed " + g.node(a.src).label() + " -> " + g.node(a.dst).label() + " (" +
             to_string(a.roles) + (a.backward ? ", backward" : "") + ")");
    res.decide("gt2", "dominated_arc_removed")
        .removed()
        .field("src", g.node(a.src).label())
        .field("dst", g.node(a.dst).label())
        .field("roles", to_string(a.roles))
        .field("backward", a.backward ? "true" : "false");
    g.remove_arc(aid);
    ++res.arcs_removed;
  }
  return res;
}

}  // namespace adc
