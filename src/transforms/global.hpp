#pragma once
// Global transformations GT1-GT4 (paper §3).  GT5 lives in gt5.hpp because
// it also produces the channel plan.
//
// All transforms preserve the precedence order of the original CDFG (GT3
// under an explicitly stated relative-timing assumption).  Each returns a
// TransformResult describing the rewrite.

#include "cdfg/cdfg.hpp"
#include "cdfg/delay.hpp"
#include "transforms/transform.hpp"

namespace adc {

// GT1 "loop parallelism" (§3.1): allows successive loop iterations to
// overlap.  Four steps per loop block:
//   A. remove the synchronization arcs into ENDLOOP (all but the FU
//      scheduling arc from its schedule predecessor),
//   B. add backward arcs from the last to the first instances of every
//      register accessed in the body (skipping arcs already implied),
//   C. add an arc from the last write of the loop condition register to
//      ENDLOOP (skipping it when implied),
//   D. re-establish the single-transition wire discipline: arc from the
//      first use of each FU in the body to ENDLOOP (skipping when implied),
//      restricting overlap to two consecutive iterations.
// Timing assumption (checked dynamically by the simulators, stated by the
// paper): on the final exit, functional units may still be finishing the
// last iteration; all must complete before their results are consumed.
TransformResult gt1_loop_parallelism(Cdfg& g);

struct Gt2Options {
  // Only remove arcs that cost a wire (different controllers).  Intra-
  // controller constraints are free, and keeping them preserves the
  // schedule record.
  bool only_inter_controller = true;
};

// GT2 "removal of dominated constraints" (§3.2): deletes every arc that is
// contained in the transitive closure of the remaining constraints
// (offset-aware; the implicit controller wrap-around constraints count).
TransformResult gt2_remove_dominated(Cdfg& g, const Gt2Options& opts = {});

struct Gt3Options {
  // Randomized delay assignments tried by the timing verification, in
  // addition to the all-min and all-max corners.
  int samples = 24;
  // Required slack (time units) between the removed constraint's event and
  // the destination's firing, in every observed execution.
  std::int64_t margin = 1;
  // Loop iterations exercised by the data-independent timing harness.
  int harness_iterations = 6;
  bool only_inter_controller = true;
};

// GT3 "relative-timing optimization" (§3.3): removes a constraint arc when
// analysis shows it can never be the last to arrive at its destination.
// Two-stage proof, run on the graph with the candidate removed:
//  1. structural: the candidate's source provably precedes the source of a
//     remaining incoming arc (pure precedence, delay-independent);
//  2. timing verification: a data-independent timing harness simulates the
//     relaxed system under the delay model (corner cases plus randomized
//     assignments) and checks that the candidate's event always arrives
//     `margin` before the destination fires.  This mirrors the paper's
//     "detailed timing analysis must be performed": the result is valid
//     exactly under the declared delay model, which is the nature of a
//     relative-timing assumption.
TransformResult gt3_relative_timing(Cdfg& g, const DelayModel& delays,
                                    const Gt3Options& opts = {});

// GT4 "merging of assignment nodes" (§3.4): an assignment node R1 := R2
// does not use its functional unit, so it can execute in parallel with the
// preceding (preferred) or succeeding RTL operation bound to the same unit,
// provided the two are register-independent.  The nodes are merged into one
// CDFG node carrying both statements.
TransformResult gt4_merge_assignments(Cdfg& g);

}  // namespace adc
