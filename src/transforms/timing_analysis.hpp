#pragma once
// Min/max arrival-time analysis on an unrolled-loop DAG, the engine behind
// GT3 (relative-timing arc removal) and the timing-safety queries of the
// local transforms.
//
// Each CDFG node instance completes within [earliest, latest] of the
// analysis origin; completion of arc (a -> b) "arrives" at b when a's
// instance completes.  Arrival intervals are computed independently per
// node (correlations between shared sub-paths are ignored), which makes
// the comparison `latest(u) < earliest(w)` a sound — conservative — proof
// that arc u can never be the last arrival at its destination.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "cdfg/cdfg.hpp"
#include "cdfg/delay.hpp"

namespace adc {

struct ArrivalInterval {
  std::int64_t earliest = 0;
  std::int64_t latest = 0;
};

class UnrolledTiming {
 public:
  // Unrolls every loop `unroll` times (backward arcs connect consecutive
  // copies) and computes completion intervals for every node instance.
  UnrolledTiming(const Cdfg& g, const DelayModel& delays, int unroll = 4);

  // Completion interval of node n in unrolled copy k (0-based).
  // Returns std::nullopt if the instance does not exist.
  std::optional<ArrivalInterval> completion(NodeId n, int copy) const;

  // True if, at arc `u`'s destination, some other incoming arc provably
  // always arrives later than `u` in the steady state (measured at the
  // middle copies, away from start-up effects).  This is GT3's proof
  // obligation: "the removed constraint arc is under no execution path the
  // last to occur".
  bool never_last(ArcId u, std::int64_t margin = 0) const;

  int unroll() const { return unroll_; }

 private:
  const Cdfg& g_;
  DelayModel delays_;
  int unroll_;
  // completion_[copy][node index]
  std::vector<std::vector<std::optional<ArrivalInterval>>> completion_;

  DelayRange node_delay(const Node& n) const;
  void compute();
};

}  // namespace adc
