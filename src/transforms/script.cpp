#include "transforms/script.hpp"

#include <cctype>
#include <stdexcept>

#include "transforms/global.hpp"
#include "transforms/gt5.hpp"

namespace adc {

namespace {

[[noreturn]] void fail(const std::string& msg, std::size_t pos) {
  throw std::invalid_argument("script error at offset " + std::to_string(pos) + ": " + msg);
}

struct Scanner {
  const std::string& s;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
  }
  bool eof() {
    skip_ws();
    return pos >= s.size();
  }
  bool consume(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  std::string ident() {
    skip_ws();
    std::size_t start = pos;
    while (pos < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[pos])) || s[pos] == '_'))
      ++pos;
    if (pos == start) fail("expected identifier", pos);
    return s.substr(start, pos - start);
  }
};

long to_long(const std::string& v, std::size_t pos) {
  try {
    return std::stol(v);
  } catch (...) {
    fail("expected a number, got '" + v + "'", pos);
  }
}

bool flag_set(const std::vector<std::pair<std::string, std::string>>& args,
              const std::string& name) {
  for (const auto& [k, v] : args)
    if (k == name && v.empty()) return true;
  return false;
}

const std::string* arg_value(const std::vector<std::pair<std::string, std::string>>& args,
                             const std::string& name) {
  for (const auto& [k, v] : args)
    if (k == name && !v.empty()) return &v;
  return nullptr;
}

}  // namespace

TransformScript TransformScript::parse(const std::string& source) {
  TransformScript out;
  Scanner sc{source};
  while (!sc.eof()) {
    Step step;
    std::size_t at = sc.pos;
    step.name = sc.ident();
    if (sc.consume('(')) {
      while (!sc.consume(')')) {
        std::string key = sc.ident();
        std::string value;
        if (sc.consume('=')) value = sc.ident();
        step.args.emplace_back(std::move(key), std::move(value));
        if (!sc.consume(',')) {
          if (!sc.consume(')')) fail("expected ',' or ')'", sc.pos);
          break;
        }
      }
    }
    static const char* known[] = {"gt1", "gt2", "gt3", "gt4", "gt5", "lt"};
    bool ok = false;
    for (const char* k : known) ok = ok || step.name == k;
    if (!ok) fail("unknown step '" + step.name + "'", at);

    // Argument validation happens at parse time so scripts fail fast.
    for (const auto& [key, value] : step.args) {
      auto is_num = [](const std::string& v) {
        return !v.empty() && v.find_first_not_of("0123456789") == std::string::npos;
      };
      if (step.name == "gt2" && key != "all") fail("gt2: unknown option '" + key + "'", at);
      if (step.name == "gt3") {
        if (key != "margin" && key != "samples")
          fail("gt3: unknown option '" + key + "'", at);
        if (!is_num(value)) fail("gt3: " + key + " needs a numeric value", at);
      }
      if (step.name == "gt5") {
        if (key == "broadcast") {
          if (value != "first" && value != "all" && value != "none")
            fail("gt5: unknown broadcast policy '" + value + "'", at);
        } else if (key == "maxperiod") {
          if (!is_num(value)) fail("gt5: maxperiod needs a numeric value", at);
        } else if (key != "no_mux" && key != "no_sym" && key != "concred") {
          fail("gt5: unknown option '" + key + "'", at);
        }
      }
      if (step.name == "lt" && key != "no_move_up" && key != "no_move_down" &&
          key != "no_presel" && key != "no_acks" && key != "no_sharing")
        fail("lt: unknown option '" + key + "'", at);
      if ((step.name == "gt1" || step.name == "gt4") && !key.empty())
        fail(step.name + " takes no options", at);
    }

    if (step.name == "lt") {
      out.has_lt_ = true;
      out.local_ = LocalTransformOptions{};
      out.local_.lt1_move_up_dones = !flag_set(step.args, "no_move_up");
      out.local_.lt2_move_down_resets = !flag_set(step.args, "no_move_down");
      out.local_.lt3_mux_preselection = !flag_set(step.args, "no_presel");
      out.local_.lt4_remove_acks = !flag_set(step.args, "no_acks");
      out.local_.lt5_signal_sharing = !flag_set(step.args, "no_sharing");
    }
    out.steps_.push_back(std::move(step));
    if (!sc.consume(';') && !sc.eof()) fail("expected ';'", sc.pos);
  }
  return out;
}

bool TransformScript::run_step(Cdfg& g, std::size_t i, const DelayModel& delays,
                               GlobalPipelineResult& res) const {
  const Step& step = steps_.at(i);
  if (step.name == "gt1") {
    res.stages.push_back(gt1_loop_parallelism(g));
  } else if (step.name == "gt2") {
    Gt2Options o;
    o.only_inter_controller = !flag_set(step.args, "all");
    res.stages.push_back(gt2_remove_dominated(g, o));
  } else if (step.name == "gt3") {
    Gt3Options o;
    if (const auto* m = arg_value(step.args, "margin")) o.margin = to_long(*m, 0);
    if (const auto* n = arg_value(step.args, "samples"))
      o.samples = static_cast<int>(to_long(*n, 0));
    res.stages.push_back(gt3_relative_timing(g, delays, o));
  } else if (step.name == "gt4") {
    res.stages.push_back(gt4_merge_assignments(g));
  } else if (step.name == "gt5") {
    Gt5Options o;
    o.delays = delays;
    if (const auto* b = arg_value(step.args, "broadcast")) {
      if (*b == "all")
        o.same_source = Gt5Options::SameSource::kAll;
      else if (*b == "none")
        o.same_source = Gt5Options::SameSource::kNone;
      else if (*b == "first")
        o.same_source = Gt5Options::SameSource::kFirstNodeTargets;
      else
        throw std::invalid_argument("script: unknown broadcast policy '" + *b + "'");
    }
    o.multiplex = !flag_set(step.args, "no_mux");
    o.symmetrize = !flag_set(step.args, "no_sym");
    o.concurrency_reduction = flag_set(step.args, "concred");
    if (const auto* m = arg_value(step.args, "maxperiod")) {
      o.concurrency_reduction = true;
      o.max_period_increase = to_long(*m, 0);
    }
    auto gt5 = gt5_channel_elimination(g, o);
    res.stages.push_back(std::move(gt5.stats));
    res.plan = std::move(gt5.plan);
    return true;
  }
  // "lt" carries no global action; its options are read by the caller.
  return false;
}

GlobalPipelineResult TransformScript::run(Cdfg& g, const DelayModel& delays) const {
  GlobalPipelineResult res;
  bool have_plan = false;
  for (std::size_t i = 0; i < steps_.size(); ++i)
    have_plan = run_step(g, i, delays, res) || have_plan;
  if (!have_plan) res.plan = ChannelPlan::derive(g);
  return res;
}

std::string TransformScript::step_string(std::size_t i) const {
  const Step& step = steps_.at(i);
  std::string out = step.name;
  if (!step.args.empty()) {
    out += '(';
    for (std::size_t a = 0; a < step.args.size(); ++a) {
      if (a) out += ", ";
      out += step.args[a].first;
      if (!step.args[a].second.empty()) out += "=" + step.args[a].second;
    }
    out += ')';
  }
  return out;
}

std::string TransformScript::prefix_string(std::size_t n) const {
  std::string out;
  for (std::size_t i = 0; i < n && i < steps_.size(); ++i) {
    if (!out.empty()) out += "; ";
    out += step_string(i);
  }
  return out;
}

std::string TransformScript::to_string() const { return prefix_string(steps_.size()); }

}  // namespace adc
