#pragma once
// The scripted global-transformation pipeline (paper §2.3 step 1): GT1
// loop parallelism, GT2 dominated-constraint removal, GT3 relative timing,
// GT4 assignment merging, a GT2 cleanup pass, then GT5 channel elimination.
// Individual transforms can be disabled for ablation studies.

#include "cdfg/cdfg.hpp"
#include "cdfg/delay.hpp"
#include "channel/channel.hpp"
#include "transforms/global.hpp"
#include "transforms/gt5.hpp"

namespace adc {

struct GlobalPipelineOptions {
  bool gt1 = true;
  bool gt2 = true;
  bool gt3 = true;
  bool gt4 = true;
  bool gt5 = true;
  DelayModel delays = DelayModel::typical();
  Gt3Options gt3_options;
  Gt5Options gt5_options;
};

struct GlobalPipelineResult {
  std::vector<TransformResult> stages;
  ChannelPlan plan;  // the final channel assignment (unoptimized if !gt5)

  int total_arcs_removed() const;
  int total_arcs_added() const;
};

GlobalPipelineResult run_global_transforms(Cdfg& g,
                                           const GlobalPipelineOptions& opts = {});

}  // namespace adc
