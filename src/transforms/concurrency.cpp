#include "transforms/concurrency.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace adc {

namespace {

// The chain of IF blocks enclosing a node (innermost first).  Events and
// waits under different IF contexts fire conditionally and cannot share a
// counted wire.
std::vector<BlockId::underlying> if_context(const Cdfg& g, NodeId n) {
  std::vector<BlockId::underlying> out;
  BlockId b = g.node(n).block;
  while (b.valid()) {
    if (g.block(b).kind == NodeKind::kIf) out.push_back(b.value());
    b = g.block(b).parent;
  }
  return out;
}

// The innermost loop block the node repeats with (or invalid): events on
// one wire must repeat together.  LOOP/ENDLOOP boundary nodes repeat with
// the loop they delimit, not with their enclosing block.
BlockId::underlying loop_context(const Cdfg& g, NodeId n) {
  const Node& node = g.node(n);
  if (node.kind == NodeKind::kLoop || node.kind == NodeKind::kEndLoop) {
    for (BlockId b : g.block_ids())
      if (g.block(b).root == n || g.block(b).end == n) return b.value();
  }
  BlockId b = node.block;
  while (b.valid()) {
    if (g.block(b).kind == NodeKind::kLoop) return b.value();
    b = g.block(b).parent;
  }
  return BlockId::invalid().value();
}

using Key = std::pair<int, int>;  // (iteration offset, dst schedule position)

// Earliest wait point of event `e` at receiver `fu`; nullopt when the event
// does not constrain that receiver at all.
std::optional<Key> consumption_key(const Cdfg& g, const ChannelEvent& e, FuId fu) {
  std::optional<Key> best;
  for (ArcId aid : e.arcs) {
    const Arc& a = g.arc(aid);
    if (g.node(a.dst).fu != fu) continue;
    auto pos = schedule_position(g, a.dst);
    if (!pos) return std::nullopt;
    Key k{a.offset(), *pos};
    if (!best || k < *best) best = k;
  }
  return best;
}

bool events_well_ordered(const Cdfg& g, const std::vector<ChannelEvent>& events,
                         const std::vector<FuId>& receivers) {
  if (events.empty()) return false;

  // All sources on one FU, all in the same loop / IF context.
  FuId src_fu = g.node(events.front().source).fu;
  auto ctx = if_context(g, events.front().source);
  auto loop = loop_context(g, events.front().source);
  std::set<NodeId::underlying> sources;
  for (const auto& e : events) {
    if (g.node(e.source).fu != src_fu) return false;
    if (if_context(g, e.source) != ctx) return false;
    if (loop_context(g, e.source) != loop) return false;
    if (!sources.insert(e.source.value()).second) return false;  // must be combined
    for (ArcId aid : e.arcs) {
      const Arc& a = g.arc(aid);
      if (if_context(g, a.dst) != ctx) return false;
      if (loop_context(g, a.dst) != loop) return false;
    }
  }

  // Emission order (already required of `events`): strictly increasing
  // schedule positions.
  int prev_pos = -1;
  for (const auto& e : events) {
    auto pos = schedule_position(g, e.source);
    if (!pos || *pos <= prev_pos) return false;
    prev_pos = *pos;
  }

  // Consumption keys per receiver: every event must constrain every
  // receiver, keys non-decreasing, and the wrap into the next iteration
  // must be consistent.
  for (FuId fu : receivers) {
    std::vector<Key> keys;
    for (const auto& e : events) {
      auto k = consumption_key(g, e, fu);
      if (!k) return false;
      keys.push_back(*k);
    }
    for (std::size_t i = 0; i + 1 < keys.size(); ++i)
      if (keys[i + 1] < keys[i]) return false;
    Key wrapped_first{keys.front().first + 1, keys.front().second};
    if (wrapped_first < keys.back()) return false;
  }
  return true;
}

}  // namespace

std::optional<int> schedule_position(const Cdfg& g, NodeId n) {
  FuId fu = g.node(n).fu;
  if (!fu.valid()) return std::nullopt;
  const auto& order = g.fu_order(fu);
  for (std::size_t i = 0; i < order.size(); ++i)
    if (order[i] == n) return static_cast<int>(i);
  return std::nullopt;
}

std::vector<ChannelEvent> merged_events(const Cdfg& g, const Channel& a, const Channel& b) {
  std::map<NodeId::underlying, ChannelEvent> by_source;
  for (const Channel* c : {&a, &b}) {
    for (const auto& e : c->events) {
      auto [it, inserted] = by_source.try_emplace(e.source.value(), e);
      if (!inserted)
        it->second.arcs.insert(it->second.arcs.end(), e.arcs.begin(), e.arcs.end());
    }
  }
  std::vector<ChannelEvent> out;
  for (auto& [src, e] : by_source) {
    (void)src;
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(), [&g](const ChannelEvent& x, const ChannelEvent& y) {
    return schedule_position(g, x.source).value_or(0) <
           schedule_position(g, y.source).value_or(0);
  });
  return out;
}

bool can_multiplex(const Cdfg& g, const Channel& a, const Channel& b) {
  if (!a.src_fu.valid() || a.src_fu != b.src_fu) return false;
  if (a.receivers != b.receivers) return false;  // sorted by construction
  auto events = merged_events(g, a, b);
  return events_well_ordered(g, events, a.receivers);
}

bool channel_order_consistent(const Cdfg& g, const Channel& c) {
  if (c.involves_environment()) return true;  // env handshakes are singular
  return events_well_ordered(g, c.events, c.receivers);
}

}  // namespace adc
