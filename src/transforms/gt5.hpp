#pragma once
// GT5 "communication channel elimination" (paper §3.5): reduces the number
// of global ready wires between controllers.
//
//  * GT5.1 channel multiplexing — two channels between the same controllers
//    that are never concurrently active share one wire; successive events
//    become alternating phases.
//  * GT5.2 concurrency reduction — a direct constraint a -> c is replaced
//    by the chain a -> b (existing) plus b -> c (new), eliminating the
//    direct channel when the new arc can be multiplexed onto an existing
//    channel.  Costs concurrency; applied only to non-critical constraints.
//  * GT5.3 channel symmetrization — channel sets from the same sending FU
//    with overlapping (but not identical) receiver sets are made symmetric
//    by *safe* (already implied) arc additions, turned into multi-way
//    channels, and multiplexed.
//
// The driver also forms the natural multi-way channels of a single source
// node (a broadcast of one completion event), governed by `same_source`:
//  * kFirstNodeTargets (default, matches the paper's DIFFEQ result): only
//    broadcast events whose receivers all wait at the head of their cycle,
//  * kAll: merge every same-source group (fewest wires, busier receivers),
//  * kNone: keep one wire per arc.

#include "cdfg/cdfg.hpp"
#include "cdfg/delay.hpp"
#include "channel/channel.hpp"
#include "transforms/transform.hpp"

namespace adc {

struct Gt5Options {
  enum class SameSource { kNone, kFirstNodeTargets, kAll };
  SameSource same_source = SameSource::kFirstNodeTargets;
  bool multiplex = true;
  bool symmetrize = true;
  bool concurrency_reduction = false;
  // Concurrency reduction consults the timing analysis and accepts a
  // reroute only when the steady-state completion time grows by at most
  // this many time units (0 = only reroute constraints with full slack).
  std::int64_t max_period_increase = 0;
  DelayModel delays = DelayModel::typical();
};

struct Gt5Result {
  TransformResult stats;
  ChannelPlan plan;
};

// The full GT5 driver: derives the unoptimized plan and applies the enabled
// eliminations to a fixpoint.
Gt5Result gt5_channel_elimination(Cdfg& g, const Gt5Options& opts = {});

// --- individual operations (exposed for tests and manual scripts) --------

// Merges channel `b` into channel `a` if legal.  Indices into plan.channels().
bool try_multiplex(const Cdfg& g, ChannelPlan& plan, std::size_t a, std::size_t b);

// Merges all single-event channels sourced at `source` into one multi-way
// broadcast channel.  Returns the number of channels eliminated.
int form_multiway(const Cdfg& g, ChannelPlan& plan, NodeId source);

// Extends channel `small` (single event) with safe, already-implied arcs so
// that its receiver set matches channel `big`'s, then multiplexes the two.
// Rolls everything back and returns false when impossible.
bool try_symmetrize(Cdfg& g, ChannelPlan& plan, std::size_t big, std::size_t small,
                    TransformResult* stats = nullptr);

// GT5.2 for one constraint arc: reroute a -> c through hub b.  The new arc
// b -> c must merge onto an existing channel.  Returns false if no legal
// hub exists.
bool try_concurrency_reduction(Cdfg& g, ChannelPlan& plan, ArcId direct,
                               const Gt5Options& opts, TransformResult* stats = nullptr);

}  // namespace adc
