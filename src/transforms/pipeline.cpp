#include "transforms/pipeline.hpp"

namespace adc {

int GlobalPipelineResult::total_arcs_removed() const {
  int n = 0;
  for (const auto& s : stages) n += s.arcs_removed;
  return n;
}

int GlobalPipelineResult::total_arcs_added() const {
  int n = 0;
  for (const auto& s : stages) n += s.arcs_added;
  return n;
}

GlobalPipelineResult run_global_transforms(Cdfg& g, const GlobalPipelineOptions& opts) {
  GlobalPipelineResult res;
  Gt3Options gt3_opts = opts.gt3_options;

  if (opts.gt1) res.stages.push_back(gt1_loop_parallelism(g));
  if (opts.gt2) res.stages.push_back(gt2_remove_dominated(g));
  if (opts.gt3) res.stages.push_back(gt3_relative_timing(g, opts.delays, gt3_opts));
  if (opts.gt4) res.stages.push_back(gt4_merge_assignments(g));
  // GT4 node merges can turn surviving arcs into dominated ones.
  if (opts.gt2 && opts.gt4) {
    auto again = gt2_remove_dominated(g);
    again.name = "GT2 cleanup after GT4";
    res.stages.push_back(std::move(again));
  }
  if (opts.gt5) {
    Gt5Options gt5_opts = opts.gt5_options;
    gt5_opts.delays = opts.delays;
    auto gt5 = gt5_channel_elimination(g, gt5_opts);
    res.stages.push_back(std::move(gt5.stats));
    res.plan = std::move(gt5.plan);
  } else {
    res.plan = ChannelPlan::derive(g);
  }
  return res;
}

}  // namespace adc
