#include "transforms/timing_analysis.hpp"

#include <algorithm>

#include "cdfg/analysis.hpp"

namespace adc {

namespace {

// True if the node repeats with the loops (is inside a loop block, or is a
// LOOP/ENDLOOP boundary node of one).
bool repeats(const Cdfg& g, NodeId n) {
  const Node& node = g.node(n);
  if (node.kind == NodeKind::kLoop || node.kind == NodeKind::kEndLoop) return true;
  BlockId b = node.block;
  while (b.valid()) {
    if (g.block(b).kind == NodeKind::kLoop) return true;
    b = g.block(b).parent;
  }
  return false;
}

}  // namespace

UnrolledTiming::UnrolledTiming(const Cdfg& g, const DelayModel& delays, int unroll)
    : g_(g), delays_(delays), unroll_(std::max(2, unroll)) {
  compute();
}

DelayRange UnrolledTiming::node_delay(const Node& n) const {
  switch (n.kind) {
    case NodeKind::kOperation:
      return delays_.op_delay(g_.fu(n.fu).cls);
    case NodeKind::kAssign:
      return delays_.move;
    default:
      return delays_.control;
  }
}

void UnrolledTiming::compute() {
  completion_.assign(static_cast<std::size_t>(unroll_),
                     std::vector<std::optional<ArrivalInterval>>(g_.node_capacity()));

  auto topo = forward_topo_order(g_);
  if (!topo) return;  // invalid schedule; leave everything unknown

  // Constraint edges: (src instance, delay applies at dst).  Collected as
  // (src node, offset) per destination.
  struct In {
    NodeId src;
    int offset;
  };
  std::vector<std::vector<In>> ins(g_.node_capacity());
  for (ArcId aid : g_.arc_ids()) {
    const Arc& a = g_.arc(aid);
    ins[a.dst.index()].push_back(In{a.src, a.offset()});
  }
  // Implicit controller sequencing: per-(FU, block) wrap and per-node
  // self-succession, both offset 1.
  for (FuId fu : g_.fu_ids()) {
    std::map<BlockId::underlying, std::pair<NodeId, NodeId>> group;
    for (NodeId n : g_.fu_order(fu)) {
      auto [it, ins2] = group.try_emplace(g_.node(n).block.value(), std::make_pair(n, n));
      if (!ins2) it->second.second = n;
    }
    for (const auto& [block, fl] : group) {
      (void)block;
      if (fl.first != fl.second) ins[fl.first.index()].push_back(In{fl.second, 1});
    }
  }
  for (BlockId b : g_.block_ids()) {
    const Block& blk = g_.block(b);
    if (blk.kind == NodeKind::kLoop && blk.end.valid())
      ins[blk.root.index()].push_back(In{blk.end, 1});
  }
  for (NodeId n : g_.node_ids())
    if (repeats(g_, n)) ins[n.index()].push_back(In{n, 1});

  for (int copy = 0; copy < unroll_; ++copy) {
    for (NodeId n : *topo) {
      if (copy > 0 && !repeats(g_, n)) continue;  // single-shot nodes: copy 0 only
      DelayRange d = node_delay(g_.node(n));
      ArrivalInterval out{d.min, d.max};  // fire at 0 if unconstrained
      for (const In& in : ins[n.index()]) {
        int src_copy = repeats(g_, in.src) ? copy - in.offset : 0;
        if (src_copy < 0) continue;  // pre-enabled for the first iteration
        if (!repeats(g_, in.src) && copy > 0 && in.offset == 0 &&
            g_.node(in.src).kind != NodeKind::kStart) {
          // A non-repeating source constrains only the first copy directly;
          // e.g. START -> LOOP.  (Conservatively ignored for later copies.)
          continue;
        }
        auto src = completion_[static_cast<std::size_t>(src_copy)][in.src.index()];
        if (!src) continue;
        out.earliest = std::max(out.earliest, src->earliest + d.min);
        out.latest = std::max(out.latest, src->latest + d.max);
      }
      completion_[static_cast<std::size_t>(copy)][n.index()] = out;
    }
  }
}

std::optional<ArrivalInterval> UnrolledTiming::completion(NodeId n, int copy) const {
  if (copy < 0 || copy >= unroll_) return std::nullopt;
  return completion_[static_cast<std::size_t>(copy)][n.index()];
}

bool UnrolledTiming::never_last(ArcId u, std::int64_t margin) const {
  const Arc& arc = g_.arc(u);
  NodeId b = arc.dst;
  bool proven_somewhere = false;
  for (int copy = 0; copy < unroll_; ++copy) {
    if (copy > 0 && !repeats(g_, b)) break;
    int src_copy = repeats(g_, arc.src) ? copy - arc.offset() : 0;
    if (src_copy < 0) continue;  // pre-enabled: u is not a constraint here
    auto u_arr = completion(arc.src, src_copy);
    if (!u_arr) continue;

    bool covered = false;
    for (ArcId wid : g_.in_arcs(b)) {
      if (wid == u) continue;
      const Arc& w = g_.arc(wid);
      int w_copy = repeats(g_, w.src) ? copy - w.offset() : 0;
      if (w_copy < 0) continue;
      auto w_arr = completion(w.src, w_copy);
      if (!w_arr) continue;
      if (u_arr->latest + margin < w_arr->earliest) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
    proven_somewhere = true;
  }
  return proven_somewhere;
}

}  // namespace adc
