#include "trace/tracer.hpp"

#include <algorithm>
#include <atomic>

#include "report/json.hpp"

namespace adc {

namespace {

// thread_local slot per (thread, tracer) pair, keyed by a process-unique
// tracer id (never an address, which could be reused after destruction).
// Weak references let buffers die with their tracer; dead slots are pruned
// on the next lookup miss.  Tracer counts are O(1) in practice (one per
// CLI invocation / test), so the linear scan is fine.
struct LocalSlot {
  std::uint64_t tracer_id = 0;
  std::weak_ptr<void> buffer;
};
thread_local std::vector<LocalSlot> tls_slots;

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer() : id_(next_tracer_id()), epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::now_micros() const {
  auto d = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

Tracer::TrackBuffer& Tracer::local_buffer() {
  for (const LocalSlot& s : tls_slots)
    if (s.tracer_id == id_)
      if (auto held = s.buffer.lock()) return *std::static_pointer_cast<TrackBuffer>(held);
  tls_slots.erase(std::remove_if(tls_slots.begin(), tls_slots.end(),
                                 [](const LocalSlot& s) { return s.buffer.expired(); }),
                  tls_slots.end());
  auto buf = std::make_shared<TrackBuffer>();
  {
    std::lock_guard<std::mutex> lk(mu_);
    buf->id = static_cast<std::uint32_t>(buffers_.size()) + 1;  // tids start at 1
    buffers_.push_back(buf);
  }
  tls_slots.push_back({id_, buf});
  return *buf;
}

std::uint32_t Tracer::track_id() { return local_buffer().id; }

void Tracer::record(TraceEvent ev) {
  TrackBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lk(buf.mu);
  buf.events.push_back(std::move(ev));
}

void Tracer::begin(const std::string& name, const std::string& category,
                   std::vector<std::pair<std::string, std::string>> args) {
  record({TraceEvent::Phase::kBegin, name, category, now_micros(), std::move(args), 0});
}

void Tracer::end(const std::string& name, const std::string& category,
                 std::vector<std::pair<std::string, std::string>> args) {
  record({TraceEvent::Phase::kEnd, name, category, now_micros(), std::move(args), 0});
}

void Tracer::instant(const std::string& name, const std::string& category,
                     std::vector<std::pair<std::string, std::string>> args) {
  record({TraceEvent::Phase::kInstant, name, category, now_micros(), std::move(args), 0});
}

void Tracer::counter(const std::string& name, std::int64_t value) {
  record({TraceEvent::Phase::kCounter, name, "counter", now_micros(), {}, value});
}

std::vector<std::uint32_t> Tracer::tracks() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::uint32_t> out;
  for (const auto& b : buffers_) out.push_back(b->id);
  return out;
}

std::vector<TraceEvent> Tracer::events_for_track(std::uint32_t track) const {
  std::shared_ptr<TrackBuffer> buf;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& b : buffers_)
      if (b->id == track) buf = b;
  }
  if (!buf) return {};
  std::lock_guard<std::mutex> lk(buf->mu);
  return buf->events;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::vector<std::shared_ptr<TrackBuffer>> bufs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    bufs = buffers_;
  }
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  for (const auto& buf : bufs) {
    std::vector<TraceEvent> events;
    {
      std::lock_guard<std::mutex> lk(buf->mu);
      events = buf->events;
    }
    // Close spans still in flight (an interrupted run flushing mid-stage):
    // a synthetic end per unmatched begin keeps B/E balanced per track.
    std::vector<const TraceEvent*> open;
    std::uint64_t last_ts = 0;
    for (const TraceEvent& ev : events) {
      last_ts = std::max(last_ts, ev.ts_micros);
      if (ev.phase == TraceEvent::Phase::kBegin) open.push_back(&ev);
      else if (ev.phase == TraceEvent::Phase::kEnd && !open.empty()) open.pop_back();
    }
    std::vector<TraceEvent> synthetic;  // built first: pushing into
    for (auto it = open.rbegin(); it != open.rend(); ++it) {  // `events`
      TraceEvent end;                   // would invalidate the pointers
      end.phase = TraceEvent::Phase::kEnd;
      end.name = (*it)->name;
      end.category = (*it)->category;
      end.ts_micros = std::max(last_ts, now_micros());
      end.args.emplace_back("flushed", "interrupted");
      synthetic.push_back(std::move(end));
    }
    for (auto& end : synthetic) events.push_back(std::move(end));
    for (const TraceEvent& ev : events) {
      w.begin_object();
      w.kv("name", ev.name);
      w.kv("cat", ev.category.empty() ? "adc" : ev.category);
      w.kv("ph", std::string(1, static_cast<char>(ev.phase)));
      w.kv("ts", ev.ts_micros);
      w.kv("pid", 1);
      w.kv("tid", static_cast<std::uint64_t>(buf->id));
      if (ev.phase == TraceEvent::Phase::kInstant) w.kv("s", "t");  // thread-scoped
      if (ev.phase == TraceEvent::Phase::kCounter) {
        w.key("args");
        w.begin_object();
        w.kv("value", ev.counter_value);
        w.end_object();
      } else if (!ev.args.empty()) {
        w.key("args");
        w.begin_object();
        for (const auto& [k, v] : ev.args) w.kv(k, v);
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  os << w.str();
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name, std::string category,
                       std::vector<std::pair<std::string, std::string>> begin_args)
    : tracer_(tracer), name_(std::move(name)), category_(std::move(category)) {
  if (tracer_) tracer_->begin(name_, category_, std::move(begin_args));
}

ScopedSpan::~ScopedSpan() {
  if (tracer_) tracer_->end(name_, category_, std::move(end_args_));
}

void ScopedSpan::arg(std::string key, std::string value) {
  if (tracer_) end_args_.emplace_back(std::move(key), std::move(value));
}

}  // namespace adc
