#pragma once
// Artifact flush registry: guarantees observability outputs (--trace-out,
// --vcd, --provenance, --json) reach disk as *valid* documents even when
// the run is cut short.
//
// Tools register a named flush callback per pending artifact; the
// callbacks run
//  * on normal exit (std::atexit),
//  * on SIGINT/SIGTERM (the handler flushes, restores the default
//    disposition and re-raises so the exit status still reports the
//    signal),
//  * or explicitly via flush_artifacts_now() right before the tool writes
//    the artifact itself (which unregisters it).
//
// Callbacks must therefore produce a complete, well-formed file from
// whatever has been buffered so far — the span tracer only buffers
// finished spans and the VCD writer emits a full header + change stream,
// so partial-progress flushes still pass `adc_obs_check`.
//
// Signal-safety caveat: the handlers run ordinary buffered I/O, which is
// formally async-signal-unsafe; for a CLI tool interrupted by a user this
// is the standard, pragmatic trade (the alternative is losing the trace).

#include <functional>
#include <string>

namespace adc {

// Registers `flush` under `name` (a label for diagnostics, typically the
// output path).  Returns a token for unregister_artifact_flush.  Re-entrant
// flushes are suppressed: each callback runs at most once.
int register_artifact_flush(const std::string& name, std::function<void()> flush);

// Removes a registered callback (after the tool wrote the artifact itself).
void unregister_artifact_flush(int token);

// Runs (and consumes) every registered callback immediately.
void flush_artifacts_now();

// Installs the atexit hook and the SIGINT/SIGTERM handlers.  Idempotent.
void install_flush_handlers();

// Graceful-termination hook for long-running services (adc_serve): when
// set, the *first* SIGINT/SIGTERM invokes `hook` — which must be
// async-signal-safe, e.g. a single write() onto a server's shutdown pipe —
// instead of the flush+re-raise path, so the daemon can drain in-flight
// jobs and exit normally (running the atexit flush on the way out).  The
// hook is one-shot: a second signal falls back to flush+re-raise, so a
// wedged drain can still be killed.  Pass nullptr to clear.
void set_signal_drain_hook(void (*hook)(int sig));

}  // namespace adc
