#include "trace/flush.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "runtime/fault.hpp"

namespace adc {

namespace {

struct Entry {
  int token = 0;
  std::string name;
  std::function<void()> flush;
  bool done = false;
};

// Both singletons are intentionally leaked: the atexit hook below runs
// interleaved with static destructors, and the first touch of registry()
// happens *after* install_flush_handlers() registers that hook — so a
// function-local static vector would be destroyed before the hook reads
// it (LIFO). A never-destroyed heap object is immune to the ordering and
// stays reachable through the static pointer, so LeakSanitizer is quiet.
std::mutex& registry_mu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::vector<Entry>& registry() {
  static std::vector<Entry>* entries = new std::vector<Entry>;
  return *entries;
}

void run_all_locked_once() {
  // Move the pending callbacks out under the lock, run them outside it:
  // a flush callback may itself unregister (via the tool's normal path).
  std::vector<Entry> pending;
  {
    std::lock_guard<std::mutex> lk(registry_mu());
    for (Entry& e : registry()) {
      if (e.done || !e.flush) continue;
      e.done = true;
      pending.push_back(std::move(e));
    }
  }
  for (Entry& e : pending) {
    try {
      // Injection site: proves one artifact's failing flush cannot take
      // the remaining artifacts down with it.
      fault().maybe_fail_or_stall("flush.artifact", e.name);
      e.flush();
    } catch (...) {
      // Exit/signal path: swallow — the other artifacts still deserve a
      // chance to flush.
    }
  }
}

// Plain function pointer so the handler needs no locks: exchange() is
// async-signal-safe and also makes the hook one-shot.
std::atomic<void (*)(int)> drain_hook{nullptr};

extern "C" void flush_signal_handler(int sig) {
  if (void (*hook)(int) = drain_hook.exchange(nullptr)) {
    hook(sig);
    return;  // graceful path: the service drains and exits via atexit
  }
  run_all_locked_once();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void atexit_hook() { run_all_locked_once(); }

}  // namespace

int register_artifact_flush(const std::string& name, std::function<void()> flush) {
  install_flush_handlers();
  std::lock_guard<std::mutex> lk(registry_mu());
  static int next_token = 1;
  Entry e;
  e.token = next_token++;
  e.name = name;
  e.flush = std::move(flush);
  registry().push_back(std::move(e));
  return registry().back().token;
}

void unregister_artifact_flush(int token) {
  std::lock_guard<std::mutex> lk(registry_mu());
  for (Entry& e : registry())
    if (e.token == token) e.done = true;
}

void flush_artifacts_now() { run_all_locked_once(); }

void set_signal_drain_hook(void (*hook)(int sig)) {
  install_flush_handlers();
  drain_hook.store(hook);
}

void install_flush_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::atexit(atexit_hook);
    std::signal(SIGINT, flush_signal_handler);
    std::signal(SIGTERM, flush_signal_handler);
  });
}

}  // namespace adc
