#pragma once
// Span tracing with Chrome trace_event JSON export.
//
// A Tracer collects timestamped events from any number of threads; the
// resulting file loads directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing, giving a zoomable timeline of the whole synthesis flow:
// which stage ran when, on which worker, nested how, served from the stage
// cache or computed.
//
//   Tracer tracer;
//   {
//     ScopedSpan run(&tracer, "flow.run", "flow");
//     run.arg("benchmark", "diffeq");
//     {
//       ScopedSpan fe(&tracer, "frontend", "stage");
//       fe.arg("cache", "miss");
//       ...
//     }
//   }
//   tracer.counter("cache.entries", 17);
//   std::ofstream out("run.trace.json");
//   tracer.write_chrome_trace(out);
//
// Implementation notes:
//  * every thread gets a stable track id (Chrome "tid") on first use, so
//    spans from one worker nest on one row and B/E pairs balance per track;
//  * events are buffered per thread (a mutex only guards registration and
//    export), so tracing adds two clock reads and a vector push per span;
//  * a null Tracer* everywhere means tracing is off — ScopedSpan collapses
//    to a no-op, which is how the flow runs when --trace-out is absent.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace adc {

struct TraceEvent {
  enum class Phase : char { kBegin = 'B', kEnd = 'E', kCounter = 'C', kInstant = 'i' };
  Phase phase = Phase::kBegin;
  std::string name;
  std::string category;
  std::uint64_t ts_micros = 0;  // relative to the tracer epoch
  std::vector<std::pair<std::string, std::string>> args;
  std::int64_t counter_value = 0;  // kCounter only
};

class Tracer {
 public:
  Tracer();

  // Microseconds since this tracer was constructed (the trace epoch).
  std::uint64_t now_micros() const;

  // Raw event emission; prefer ScopedSpan for begin/end pairing.
  void begin(const std::string& name, const std::string& category,
             std::vector<std::pair<std::string, std::string>> args = {});
  void end(const std::string& name, const std::string& category,
           std::vector<std::pair<std::string, std::string>> args = {});
  void instant(const std::string& name, const std::string& category,
               std::vector<std::pair<std::string, std::string>> args = {});
  // Counter track sample ("C" phase): one series per name.
  void counter(const std::string& name, std::int64_t value);

  // The calling thread's track id (assigned on first event).
  std::uint32_t track_id();

  // Serializes everything recorded so far as Chrome trace_event JSON
  // ({"traceEvents": [...]}).  Thread-safe; concurrent recording continues.
  void write_chrome_trace(std::ostream& os) const;

  // All events of one track, in emission order (test/inspection hook).
  std::vector<TraceEvent> events_for_track(std::uint32_t track) const;
  std::vector<std::uint32_t> tracks() const;

 private:
  struct TrackBuffer {
    std::uint32_t id = 0;
    std::vector<TraceEvent> events;
    std::mutex mu;  // guards `events` between the owner thread and export
  };

  TrackBuffer& local_buffer();
  void record(TraceEvent ev);

  std::uint64_t id_;  // process-unique, keys the thread-local buffer cache
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;  // guards `buffers_`
  std::vector<std::shared_ptr<TrackBuffer>> buffers_;
};

// RAII span: begin at construction, end at destruction.  `arg` attaches
// key=value pairs that land on the *end* event (so results computed during
// the span — cache disposition, counts — are visible in the timeline).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name, std::string category = "stage",
             std::vector<std::pair<std::string, std::string>> begin_args = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void arg(std::string key, std::string value);
  // Literals must not fall into the bool overload (const char* -> bool is a
  // standard conversion and would win overload resolution).
  void arg(std::string key, const char* value) { arg(std::move(key), std::string(value)); }
  void arg(std::string key, std::uint64_t value) { arg(std::move(key), std::to_string(value)); }
  void arg(std::string key, bool value) {
    arg(std::move(key), std::string(value ? "true" : "false"));
  }

 private:
  Tracer* tracer_;
  std::string name_;
  std::string category_;
  std::vector<std::pair<std::string, std::string>> end_args_;
};

}  // namespace adc
