#pragma once
// Value Change Dump (IEEE 1364) writer for the event simulator.
//
// The simulator registers every observable wire up front — global channel
// wires grouped under scope "channels", each controller's local handshake
// wires and its current-state variable under a scope named after the
// controller — then streams value changes as simulation time advances.
// The resulting file opens in GTKWave (or any VCD viewer), which is how
// the E8 deadlock corners become visible: the stalled req with no matching
// ack is right there in the waveform.
//
// Two variable kinds are supported: single-bit wires (req/ack/ready
// levels) and string-valued state variables (GTKWave renders `$var string`
// changes as text labels on the waveform row).
//
// Changes may arrive out of order within one timestamp but must not move
// backwards in time (the event simulator's queue guarantees this); equal
// timestamps share one `#time` section.  Redundant writes (same value as
// the last emitted) are dropped so waveforms stay minimal.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace adc {

class VcdWriter {
 public:
  using VarId = std::size_t;

  // `timescale` is the unit one simulator time step represents.
  explicit VcdWriter(std::string timescale = "1ns");

  // Declaration phase: register variables before the first change.
  VarId add_wire(const std::string& scope, const std::string& name, bool initial = false);
  VarId add_string(const std::string& scope, const std::string& name,
                   std::string initial = {});

  // Streaming phase.
  void change(VarId var, std::int64_t time, bool value);
  void change_string(VarId var, std::int64_t time, const std::string& value);

  // Header + $dumpvars (initial values) + all buffered changes.  Complete
  // file; call once, after the simulation.
  void write(std::ostream& os) const;

  std::size_t var_count() const { return vars_.size(); }
  std::size_t change_count() const { return changes_.size(); }

 private:
  struct Var {
    std::string scope;
    std::string name;
    std::string code;     // short identifier code
    bool is_string = false;
    bool init_bit = false;
    std::string init_str;
    bool last_bit = false;
    std::string last_str;
    bool emitted = false;  // saw at least one change
  };
  struct Change {
    std::int64_t time;
    VarId var;
    bool bit;
    std::string str;
  };

  static std::string code_for(std::size_t index);

  std::string timescale_;
  std::vector<Var> vars_;
  std::vector<Change> changes_;
};

}  // namespace adc
