#pragma once
// Transform provenance — typed decision records and the per-run report.
//
// The paper's argument is quantitative: GT1–GT5 and LT1–LT5 earn their
// keep through the Figure-12/13 deltas (channels, states, transitions,
// literals).  A TransformResult's counters say *how much* changed; the
// decision records here say *what*, one record per rewrite decision:
//
//   gt2.dominated_arc_removed  {src=.., dst=..}          arcs_removed=1
//   gt3.rt_arc_removed         {src=.., dst=.., proof=..} arcs_removed=1
//   gt5.channels_multiplexed   {wire=..}                  channels_merged=1
//   lt5.signals_shared         {kept=.., dropped=..}
//
// Each record also carries its contribution to the aggregate counters
// (arcs removed/added, nodes merged, channels merged), which is what makes
// the report *reconcilable*: ProvenanceReport::reconcile() checks that the
// per-decision deltas sum to each stage's totals and that the stage totals
// explain the observed before/after graph and channel-plan statistics —
// the same numbers the end-to-end tests assert against the paper.
//
// ProvenanceRecord itself is dependency-free so transforms/transform.hpp
// can embed a vector of records in every TransformResult.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace adc {

class JsonWriter;

struct ProvenanceRecord {
  std::string pass;  // "gt1" .. "gt5", "lt1" .. "lt5", "extract", ...
  std::string kind;  // "dominated_arc_removed", "signals_shared", ...
  // This decision's contribution to the stage's aggregate counters.
  int arcs_removed = 0;
  int arcs_added = 0;
  int nodes_merged = 0;
  int channels_merged = 0;
  std::vector<std::pair<std::string, std::string>> fields;

  ProvenanceRecord(std::string p, std::string k) : pass(std::move(p)), kind(std::move(k)) {}

  ProvenanceRecord& field(std::string key, std::string value) {
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  ProvenanceRecord& field(std::string key, std::int64_t value) {
    return field(std::move(key), std::to_string(value));
  }
  ProvenanceRecord& removed(int n = 1) { arcs_removed += n; return *this; }
  ProvenanceRecord& added(int n = 1) { arcs_added += n; return *this; }
  ProvenanceRecord& merged_nodes(int n = 1) { nodes_merged += n; return *this; }
  ProvenanceRecord& merged_channels(int n = 1) { channels_merged += n; return *this; }

  std::string key() const { return pass + "." + kind; }
};

// One global-transform stage of a run (mirrors a TransformResult).
struct ProvenanceStage {
  std::string name;  // human name, e.g. "GT2 remove dominated constraints"
  int arcs_removed = 0;
  int arcs_added = 0;
  int nodes_merged = 0;
  int channels_merged = 0;
  std::vector<ProvenanceRecord> decisions;
};

// One extracted controller: its specification size as extracted and after
// the local transforms, plus the LT decisions that got it there.
struct ControllerProvenance {
  std::string name;
  std::size_t states_extracted = 0;
  std::size_t transitions_extracted = 0;
  std::size_t states_final = 0;
  std::size_t transitions_final = 0;
  std::vector<ProvenanceRecord> decisions;
};

struct ProvenanceReport {
  std::string benchmark;
  std::string script;
  // Graph statistics straddling the global transforms.
  std::size_t arcs_initial = 0;
  std::size_t arcs_final = 0;
  std::size_t nodes_initial = 0;
  std::size_t nodes_final = 0;
  // Channel counts (Figure 12 column 1): the unoptimized one-wire-per-arc
  // plan of the *transformed* graph vs the plan GT5 produced.
  std::size_t channels_unoptimized = 0;
  std::size_t channels_final = 0;

  std::vector<ProvenanceStage> global_stages;
  std::vector<ControllerProvenance> controllers;

  // "pass.kind" -> number of decision records across the whole run.
  std::map<std::string, std::size_t> decision_counts() const;

  // Aggregates over the global stages.
  int total_arcs_removed() const;
  int total_arcs_added() const;
  int total_channels_merged() const;

  // Figure-12 style controller totals (after local transforms).
  std::size_t total_states_final() const;
  std::size_t total_transitions_final() const;

  // Exact cross-checks; empty result = the books balance:
  //  * per stage: decision deltas sum to the stage counters,
  //  * arcs: initial - removed + added == final,
  //  * channels: unoptimized - merged(GT5 stages) == final.
  std::vector<std::string> reconcile() const;

  void write_json(JsonWriter& w) const;
  std::string to_json(bool pretty = true) const;
  // Compact human-readable rendering (per-stage counters + decision tally).
  std::string summary() const;
};

}  // namespace adc
