#include "trace/provenance.hpp"

#include <sstream>

#include "report/json.hpp"

namespace adc {

std::map<std::string, std::size_t> ProvenanceReport::decision_counts() const {
  std::map<std::string, std::size_t> out;
  for (const auto& s : global_stages)
    for (const auto& d : s.decisions) ++out[d.key()];
  for (const auto& c : controllers)
    for (const auto& d : c.decisions) ++out[d.key()];
  return out;
}

int ProvenanceReport::total_arcs_removed() const {
  int n = 0;
  for (const auto& s : global_stages) n += s.arcs_removed;
  return n;
}

int ProvenanceReport::total_arcs_added() const {
  int n = 0;
  for (const auto& s : global_stages) n += s.arcs_added;
  return n;
}

int ProvenanceReport::total_channels_merged() const {
  int n = 0;
  for (const auto& s : global_stages) n += s.channels_merged;
  return n;
}

std::size_t ProvenanceReport::total_states_final() const {
  std::size_t n = 0;
  for (const auto& c : controllers) n += c.states_final;
  return n;
}

std::size_t ProvenanceReport::total_transitions_final() const {
  std::size_t n = 0;
  for (const auto& c : controllers) n += c.transitions_final;
  return n;
}

std::vector<std::string> ProvenanceReport::reconcile() const {
  std::vector<std::string> errors;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) errors.push_back(what);
  };

  for (const auto& s : global_stages) {
    int removed = 0, added = 0, merged = 0, channels = 0;
    for (const auto& d : s.decisions) {
      removed += d.arcs_removed;
      added += d.arcs_added;
      merged += d.nodes_merged;
      channels += d.channels_merged;
    }
    std::ostringstream os;
    os << "stage '" << s.name << "': decisions account for " << removed << "-/" << added
       << "+/" << merged << "m/" << channels << "c, counters say " << s.arcs_removed
       << "-/" << s.arcs_added << "+/" << s.nodes_merged << "m/" << s.channels_merged
       << "c";
    check(removed == s.arcs_removed && added == s.arcs_added &&
              merged == s.nodes_merged && channels == s.channels_merged,
          os.str());
  }

  {
    // Node merges delete one node and re-point its arcs; arc bookkeeping
    // for merges is carried inside the removal/addition counters already,
    // so the arc ledger is independent of nodes_merged.
    long long expect = static_cast<long long>(arcs_initial) - total_arcs_removed() +
                       total_arcs_added();
    std::ostringstream os;
    os << "arc ledger: " << arcs_initial << " initial - " << total_arcs_removed()
       << " removed + " << total_arcs_added() << " added = " << expect << ", graph has "
       << arcs_final;
    check(expect == static_cast<long long>(arcs_final), os.str());
  }

  {
    long long expect =
        static_cast<long long>(channels_unoptimized) - total_channels_merged();
    std::ostringstream os;
    os << "channel ledger: " << channels_unoptimized << " unoptimized - "
       << total_channels_merged() << " merged = " << expect << ", plan has "
       << channels_final;
    check(expect == static_cast<long long>(channels_final), os.str());
  }

  return errors;
}

namespace {

void write_record(JsonWriter& w, const ProvenanceRecord& d) {
  w.begin_object();
  w.kv("pass", d.pass);
  w.kv("kind", d.kind);
  if (d.arcs_removed) w.kv("arcs_removed", d.arcs_removed);
  if (d.arcs_added) w.kv("arcs_added", d.arcs_added);
  if (d.nodes_merged) w.kv("nodes_merged", d.nodes_merged);
  if (d.channels_merged) w.kv("channels_merged", d.channels_merged);
  for (const auto& [k, v] : d.fields) w.kv(k, v);
  w.end_object();
}

}  // namespace

void ProvenanceReport::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("benchmark", benchmark);
  w.kv("script", script);
  w.key("graph");
  w.begin_object();
  w.kv("nodes_initial", nodes_initial);
  w.kv("nodes_final", nodes_final);
  w.kv("arcs_initial", arcs_initial);
  w.kv("arcs_final", arcs_final);
  w.kv("channels_unoptimized", channels_unoptimized);
  w.kv("channels_final", channels_final);
  w.end_object();

  w.key("stages");
  w.begin_array();
  for (const auto& s : global_stages) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("arcs_removed", s.arcs_removed);
    w.kv("arcs_added", s.arcs_added);
    w.kv("nodes_merged", s.nodes_merged);
    w.kv("channels_merged", s.channels_merged);
    w.key("decisions");
    w.begin_array();
    for (const auto& d : s.decisions) write_record(w, d);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("controllers");
  w.begin_array();
  for (const auto& c : controllers) {
    w.begin_object();
    w.kv("name", c.name);
    w.kv("states_extracted", c.states_extracted);
    w.kv("transitions_extracted", c.transitions_extracted);
    w.kv("states_final", c.states_final);
    w.kv("transitions_final", c.transitions_final);
    w.key("decisions");
    w.begin_array();
    for (const auto& d : c.decisions) write_record(w, d);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("decision_counts");
  w.begin_object();
  for (const auto& [key, n] : decision_counts()) w.kv(key, static_cast<std::uint64_t>(n));
  w.end_object();

  w.key("reconciliation");
  w.begin_array();
  for (const auto& e : reconcile()) w.value(e);
  w.end_array();
  w.end_object();
}

std::string ProvenanceReport::to_json(bool pretty) const {
  JsonWriter w(pretty);
  write_json(w);
  return w.str();
}

std::string ProvenanceReport::summary() const {
  std::ostringstream os;
  os << "provenance for " << benchmark << " [" << script << "]\n";
  os << "  graph: " << arcs_initial << " -> " << arcs_final << " arcs, channels "
     << channels_unoptimized << " -> " << channels_final << "\n";
  for (const auto& s : global_stages) {
    os << "  " << s.name << ": " << s.arcs_removed << " arcs removed, " << s.arcs_added
       << " added, " << s.nodes_merged << " nodes merged, " << s.channels_merged
       << " channels merged (" << s.decisions.size() << " decisions)\n";
  }
  for (const auto& c : controllers) {
    os << "  " << c.name << ": " << c.states_extracted << "s/"
       << c.transitions_extracted << "t extracted -> " << c.states_final << "s/"
       << c.transitions_final << "t after LT\n";
  }
  os << "  decisions:";
  for (const auto& [key, n] : decision_counts()) os << ' ' << key << '=' << n;
  os << '\n';
  auto errs = reconcile();
  if (errs.empty()) {
    os << "  reconciliation: ok\n";
  } else {
    for (const auto& e : errs) os << "  reconciliation FAILED: " << e << '\n';
  }
  return os.str();
}

}  // namespace adc
