#pragma once
// Leveled structured logging for the synthesis toolchain.
//
// Every message carries a severity, a component tag and an optional list of
// key=value fields, and is rendered as one line:
//
//   [info ] flow: stage complete stage=global us=1423 cached=false
//
// The active level comes from the ADC_LOG environment variable (error,
// warn, info, debug, trace; default warn) and can be overridden
// programmatically (the CLIs expose --log-level).  Disabled levels cost one
// relaxed atomic load — callers may log from hot paths and worker threads;
// emission is serialized by a mutex so lines never interleave.
//
// This replaces the ad-hoc fprintf(stderr, ...) progress prints that used
// to be scattered through the tools and runtime.

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace adc {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
  kTrace = 5,
};

// "error" -> kError etc.; throws std::invalid_argument on unknown names.
LogLevel log_level_from_string(const std::string& name);
const char* to_string(LogLevel level);

// Global level control.  The initial value is parsed from ADC_LOG once, on
// first use (unknown values fall back to warn rather than throwing).
LogLevel log_level();
void set_log_level(LogLevel level);
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

// One structured field.  Values are pre-rendered to strings; the Field
// constructors cover the common scalar types.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  LogField(std::string k, bool v) : key(std::move(k)), value(v ? "true" : "false") {}
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T> && !std::is_same_v<T, bool>>>
  LogField(std::string k, T v) : key(std::move(k)) {
    std::ostringstream os;
    os << v;
    value = os.str();
  }
};

// Emits one line to the log sink (stderr by default) if `level` is enabled.
void log_message(LogLevel level, const std::string& component, const std::string& message,
                 std::vector<LogField> fields = {});

// Redirects emission into a string buffer (for tests); nullptr restores
// stderr.  Not thread-safe with concurrent logging to a *dying* buffer —
// callers scope the capture around the code under test.
void log_capture_to(std::string* sink);

#define ADC_LOG(level, component, message, ...)                         \
  do {                                                                  \
    if (::adc::log_enabled(level))                                      \
      ::adc::log_message(level, component, message, ##__VA_ARGS__);     \
  } while (0)

#define ADC_LOG_ERROR(component, message, ...) \
  ADC_LOG(::adc::LogLevel::kError, component, message, ##__VA_ARGS__)
#define ADC_LOG_WARN(component, message, ...) \
  ADC_LOG(::adc::LogLevel::kWarn, component, message, ##__VA_ARGS__)
#define ADC_LOG_INFO(component, message, ...) \
  ADC_LOG(::adc::LogLevel::kInfo, component, message, ##__VA_ARGS__)
#define ADC_LOG_DEBUG(component, message, ...) \
  ADC_LOG(::adc::LogLevel::kDebug, component, message, ##__VA_ARGS__)
#define ADC_LOG_TRACE(component, message, ...) \
  ADC_LOG(::adc::LogLevel::kTrace, component, message, ##__VA_ARGS__)

}  // namespace adc
