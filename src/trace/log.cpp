#include "trace/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace adc {

namespace {

std::atomic<int>& level_slot() {
  static std::atomic<int> level{[] {
    const char* env = std::getenv("ADC_LOG");
    if (!env || !*env) return static_cast<int>(LogLevel::kWarn);
    try {
      return static_cast<int>(log_level_from_string(env));
    } catch (const std::invalid_argument&) {
      return static_cast<int>(LogLevel::kWarn);
    }
  }()};
  return level;
}

std::mutex emit_mu;
std::string* capture = nullptr;

}  // namespace

LogLevel log_level_from_string(const std::string& name) {
  if (name == "off" || name == "none") return LogLevel::kOff;
  if (name == "error") return LogLevel::kError;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "info") return LogLevel::kInfo;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "trace") return LogLevel::kTrace;
  throw std::invalid_argument("unknown log level '" + name +
                              "' (expected off|error|warn|info|debug|trace)");
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kOff: return "off";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
  }
  return "?";
}

LogLevel log_level() {
  return static_cast<LogLevel>(level_slot().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_slot().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_capture_to(std::string* sink) {
  std::lock_guard<std::mutex> lk(emit_mu);
  capture = sink;
}

void log_message(LogLevel level, const std::string& component, const std::string& message,
                 std::vector<LogField> fields) {
  if (!log_enabled(level)) return;
  std::string line = "[";
  line += to_string(level);
  line.append(5 - std::string(to_string(level)).size(), ' ');  // align: "warn " etc.
  line += "] " + component + ": " + message;
  for (const auto& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    // Quote values containing spaces so lines stay machine-splittable.
    if (f.value.find(' ') != std::string::npos) {
      line += '"' + f.value + '"';
    } else {
      line += f.value;
    }
  }
  std::lock_guard<std::mutex> lk(emit_mu);
  if (capture) {
    *capture += line + "\n";
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace adc
