// Burst-mode fragments for individual CDFG nodes (paper Figure 11): the
// unoptimized sequential micro-operation expansion.

#include <cctype>
#include <stdexcept>

#include "extract/builder.hpp"

namespace adc::detail {

namespace {

std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  return out;
}

const char* op_name(RtlOp op) {
  switch (op) {
    case RtlOp::kAdd: return "add";
    case RtlOp::kSub: return "sub";
    case RtlOp::kMul: return "mul";
    case RtlOp::kDiv: return "div";
    case RtlOp::kLt: return "lt";
    case RtlOp::kGt: return "gt";
    case RtlOp::kEq: return "eq";
    case RtlOp::kNe: return "ne";
    case RtlOp::kShl: return "shl";
    case RtlOp::kShr: return "shr";
    case RtlOp::kMove: return "mov";
  }
  return "op";
}

}  // namespace

void ControllerBuilder::emit_waits(const std::vector<WireEvent>& waits,
                                   std::vector<XbmEdge> first_out, NodeId origin,
                                   const std::string& note) {
  if (waits.empty()) {
    emit({}, std::move(first_out), origin, note + " (no request)");
    return;
  }
  for (std::size_t i = 0; i + 1 < waits.size(); ++i)
    emit({wait_edge(waits[i].channel)}, {}, origin, note + " wait");
  emit({wait_edge(waits.back().channel)}, std::move(first_out), origin,
       note + " wait+start");
}

void ControllerBuilder::op_fragment(NodeId n) {
  const Node& node = g_.node(n);
  const RtlStatement* op = nullptr;
  std::vector<const RtlStatement*> moves;
  for (const auto& s : node.stmts) {
    if (s.is_move())
      moves.push_back(&s);
    else if (op)
      throw std::invalid_argument("extract: node with two operations: " + node.label());
    else
      op = &s;
  }
  if (!op) {
    assign_fragment(n);
    return;
  }

  const std::string frag = node.label();

  auto sel_signal = [&](int side, const Operand& operand) {
    SignalBinding b;
    b.role = SignalRole::kMuxSelect;
    b.operand = operand;
    b.mux_side = side;
    std::string name = (side == 0 ? "selL_" : "selR_") + sanitize(operand.to_string());
    return intern(name, SignalKind::kOutput, b.role, b);
  };
  auto mux_ack = [&](int side) {
    SignalBinding b;
    b.role = SignalRole::kMuxAck;
    b.mux_side = side;
    return intern(side == 0 ? "ackL" : "ackR", SignalKind::kInput, b.role, b);
  };
  auto rsel = [&](const RtlStatement& s) {
    SignalBinding b;
    b.role = SignalRole::kRegMuxSelect;
    b.reg = s.dest;
    b.operand = s.is_move() ? s.lhs : Operand{};  // moves route a register directly
    b.op = s.op;
    return intern("rsel_" + sanitize(s.dest), SignalKind::kOutput, b.role, b);
  };
  auto rack = [&](const std::string& reg) {
    SignalBinding b;
    b.role = SignalRole::kRegMuxAck;
    b.reg = reg;
    return intern("rack_" + sanitize(reg), SignalKind::kInput, b.role, b);
  };
  auto lat = [&](const std::string& reg) {
    SignalBinding b;
    b.role = SignalRole::kLatch;
    b.reg = reg;
    return intern("lat_" + sanitize(reg), SignalKind::kOutput, b.role, b);
  };
  auto latack = [&](const std::string& reg) {
    SignalBinding b;
    b.role = SignalRole::kLatchAck;
    b.reg = reg;
    return intern("latack_" + sanitize(reg), SignalKind::kInput, b.role, b);
  };

  SignalId selL = sel_signal(0, op->lhs);
  SignalId ackL = mux_ack(0);
  std::optional<SignalId> selR, ackR;
  if (op->rhs) {
    selR = sel_signal(1, *op->rhs);
    ackR = mux_ack(1);
  }
  std::optional<SignalId> opsel, opack;
  if (multi_op_) {
    SignalBinding b;
    b.role = SignalRole::kOpSelect;
    b.op = op->op;
    opsel = intern(std::string("op_") + op_name(op->op), SignalKind::kOutput, b.role, b);
    SignalBinding ba;
    ba.role = SignalRole::kOpAck;
    opack = intern("opack", SignalKind::kInput, ba.role, ba);
  }
  SignalBinding bg;
  bg.role = SignalRole::kFuGo;
  bg.op = op->op;
  SignalId go = intern("go", SignalKind::kOutput, bg.role, bg);
  SignalBinding bd;
  bd.role = SignalRole::kFuDone;
  SignalId fudone = intern("fudone", SignalKind::kInput, bd.role, bd);

  // (i) wait for requests and set the left input mux.
  emit_waits(forward_waits(n), {rise(selL)}, n, frag);
  for (const auto& w : backward_waits(n)) tail_waits_.push_back(w);

  // (i') right input mux.
  SignalId last_ack = ackL;
  if (selR) {
    emit({rise(ackL)}, {rise(*selR)}, n, "set right mux");
    last_ack = *ackR;
  }
  // (ii) select and perform the operation.
  if (opsel) {
    emit({rise(last_ack)}, {rise(*opsel)}, n, "select operation");
    emit({rise(*opack)}, {rise(go)}, n, "do operation");
  } else {
    emit({rise(last_ack)}, {rise(go)}, n, "do operation");
  }
  // (iii) set the destination register mux(es).
  std::vector<XbmEdge> rsels{rise(rsel(*op))};
  std::vector<XbmEdge> racks{rise(rack(op->dest))};
  std::vector<XbmEdge> lats{rise(lat(op->dest))};
  std::vector<XbmEdge> latacks{rise(latack(op->dest))};
  for (const auto* mv : moves) {
    rsels.push_back(rise(rsel(*mv)));
    racks.push_back(rise(rack(mv->dest)));
    lats.push_back(rise(lat(mv->dest)));
    latacks.push_back(rise(latack(mv->dest)));
  }
  emit({rise(fudone)}, rsels, n, "set register mux");
  // (iv) write the register(s).
  emit(racks, lats, n, "write register");
  // (v) reset all local signals in parallel.
  std::vector<XbmEdge> resets{fall(selL)};
  if (selR) resets.push_back(fall(*selR));
  if (opsel) resets.push_back(fall(*opsel));
  resets.push_back(fall(go));
  for (const auto& e : rsels) resets.push_back(fall(e.signal));
  for (const auto& e : lats) resets.push_back(fall(e.signal));
  emit(latacks, resets, n, "reset local signals");
  // (vi) wait the falling acks, send the done signals.
  std::vector<XbmEdge> ack_falls{fall(ackL)};
  if (ackR) ack_falls.push_back(fall(*ackR));
  if (opack) ack_falls.push_back(fall(*opack));
  ack_falls.push_back(fall(fudone));
  for (const auto& e : racks) ack_falls.push_back(fall(e.signal));
  for (const auto& e : latacks) ack_falls.push_back(fall(e.signal));
  emit(ack_falls, done_edges(n), n, "send done signals");
}

void ControllerBuilder::assign_fragment(NodeId n) {
  const Node& node = g_.node(n);
  std::vector<XbmEdge> rsels, racks, lats, latacks, resets, ack_falls;
  for (const auto& s : node.stmts) {
    if (!s.is_move())
      throw std::invalid_argument("extract: non-move in assignment node " + node.label());
    SignalBinding b;
    b.role = SignalRole::kRegMuxSelect;
    b.reg = s.dest;
    b.operand = s.lhs;
    SignalId rs = intern("rsel_" + sanitize(s.dest), SignalKind::kOutput, b.role, b);
    SignalBinding br;
    br.role = SignalRole::kRegMuxAck;
    br.reg = s.dest;
    SignalId ra = intern("rack_" + sanitize(s.dest), SignalKind::kInput, br.role, br);
    SignalBinding bl;
    bl.role = SignalRole::kLatch;
    bl.reg = s.dest;
    SignalId lt = intern("lat_" + sanitize(s.dest), SignalKind::kOutput, bl.role, bl);
    SignalBinding bla;
    bla.role = SignalRole::kLatchAck;
    bla.reg = s.dest;
    SignalId la = intern("latack_" + sanitize(s.dest), SignalKind::kInput, bla.role, bla);
    rsels.push_back(rise(rs));
    racks.push_back(rise(ra));
    lats.push_back(rise(lt));
    latacks.push_back(rise(la));
    resets.push_back(fall(rs));
    resets.push_back(fall(lt));
    ack_falls.push_back(fall(ra));
    ack_falls.push_back(fall(la));
  }
  emit_waits(forward_waits(n), rsels, n, node.label());
  for (const auto& w : backward_waits(n)) tail_waits_.push_back(w);
  emit(racks, lats, n, "write register");
  emit(latacks, resets, n, "reset local signals");
  emit(ack_falls, done_edges(n), n, "send done signals");
}

void ControllerBuilder::node_fragment(NodeId n) {
  const Node& node = g_.node(n);
  switch (node.kind) {
    case NodeKind::kOperation:
      op_fragment(n);
      break;
    case NodeKind::kAssign:
      assign_fragment(n);
      break;
    case NodeKind::kIf: {
      // Waits of the IF root trigger the conditional test; the taken branch
      // proceeds into the body, the skip branch jumps to the join point.
      std::vector<XbmEdge> test_waits;
      auto waits = forward_waits(n);
      for (std::size_t i = 0; i + 1 < waits.size(); ++i)
        emit({wait_edge(waits[i].channel)}, {}, n, "IF wait");
      if (!waits.empty()) test_waits = {wait_edge(waits.back().channel)};
      BranchEnds ends = branch(node.cond_reg, n, test_waits);
      open_ifs_.push_back(OpenIf{ends.skipped});
      break;
    }
    case NodeKind::kEndIf: {
      if (open_ifs_.empty()) throw std::logic_error("extract: ENDIF without IF");
      OpenIf open = open_ifs_.back();
      open_ifs_.pop_back();
      // Join: the skip transitions land on the current state; both paths
      // emit the ENDIF done signals.
      auto dones = done_edges(n);
      for (TransitionId t : last_)
        for (const auto& e : dones) m_.transition(t).outputs.push_back(e);
      for (TransitionId t : open.skipped) {
        m_.transition(t).to = cur_;
        for (const auto& e : dones) m_.transition(t).outputs.push_back(e);
        last_.push_back(t);
      }
      break;
    }
    case NodeKind::kLoop:
    case NodeKind::kEndLoop:
      throw std::logic_error("extract: loop nodes are handled by the assembly");
    default:
      throw std::logic_error("extract: unexpected node kind in fragment");
  }
}

}  // namespace adc::detail
