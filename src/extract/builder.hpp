#pragma once
// Internal shared state of the controller extraction (split across
// extract.cpp and fragment.cpp).  Not part of the public API.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "channel/channel.hpp"
#include "extract/extract.hpp"
#include "xbm/xbm.hpp"

namespace adc::detail {

class ControllerBuilder {
 public:
  ControllerBuilder(const Cdfg& g, const ChannelPlan& plan, FuId fu);

  ExtractedController build(const ExtractOptions& opts);

 private:
  friend struct FragmentEmitter;

  // --- signal management --------------------------------------------------
  SignalId intern(const std::string& name, SignalKind kind, SignalRole role,
                  const SignalBinding& binding);
  SignalId global_wire(std::size_t channel_idx);
  // Wait edge for a channel: toggle for controller-controller wires,
  // rising for the 4-phase environment handshake.
  XbmEdge wait_edge(std::size_t channel_idx);
  SignalId cond_signal(const std::string& reg);
  // Emits the return-to-zero drain of the environment handshake (wait the
  // request's falling phase, withdraw the dones), if this controller has
  // both sides of it.
  void emit_env_drain(NodeId origin);

  // --- transition emission ------------------------------------------------
  // Emits cur -> fresh state.  With an empty input burst the outputs are
  // folded into the output bursts of the previous transition(s) instead
  // (stitching; the paper's fragments are glued this way).
  void emit(std::vector<XbmEdge> in, std::vector<XbmEdge> out, NodeId origin,
            std::string note, std::vector<CondTerm> conds = {});

  // Splits the last transition(s) into a conditional pair; used when a
  // LOOP/IF test has no wire of its own to ride on.
  struct BranchEnds {
    std::vector<TransitionId> taken;
    std::vector<TransitionId> skipped;
  };
  BranchEnds branch(const std::string& cond_reg, NodeId origin,
                    std::vector<XbmEdge> test_waits);

  // --- wait/done bookkeeping ----------------------------------------------
  struct WireEvent {
    std::size_t channel;
    int event;
    bool operator<(const WireEvent& o) const {
      return channel != o.channel ? channel < o.channel : event < o.event;
    }
  };
  std::vector<WireEvent> forward_waits(NodeId n) const;
  std::vector<WireEvent> backward_waits(NodeId n) const;
  // Done toggles for the given arcs-out-of-n, restricted by a block filter:
  // kAll, kIntoBlock (LOOP body broadcast), kOutOfBlock (LOOP exit).
  enum class DoneFilter { kAll, kIntoBlock, kOutOfBlock };
  std::vector<XbmEdge> done_edges(NodeId n, DoneFilter filter = DoneFilter::kAll);

  // --- fragments (fragment.cpp) -------------------------------------------
  void emit_waits(const std::vector<WireEvent>& waits, std::vector<XbmEdge> first_out,
                  NodeId origin, const std::string& note);
  void op_fragment(NodeId n);
  void assign_fragment(NodeId n);
  void node_fragment(NodeId n);  // dispatches on node kind for plain nodes

  const Cdfg& g_;
  const ChannelPlan& plan_;
  FuId fu_;
  bool multi_op_ = false;
  // 4-phase return-to-zero environment handshake requires both sides; a
  // controller with only one (e.g. its START arc was dominated away) keeps
  // plain transition signalling on it.
  bool env_rtz_ = false;

  Xbm m_;
  std::map<SignalId::underlying, SignalBinding> bindings_;
  std::map<ArcId::underlying, WireEvent> arc_event_;
  std::map<std::size_t, SignalId> channel_signal_;

  StateId cur_;
  std::vector<TransitionId> last_;      // fold targets for empty-input emissions
  std::vector<WireEvent> tail_waits_;   // backward-arc waits, emitted at ring end
  std::vector<XbmEdge> pending_entry_outputs_;  // folded onto body-entry transitions

  // Pending IF skip transitions waiting for their join state.
  struct OpenIf {
    std::vector<TransitionId> skipped;
  };
  std::vector<OpenIf> open_ifs_;
};

}  // namespace adc::detail
