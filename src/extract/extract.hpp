#pragma once
// Controller extraction (paper §4): a direct, deterministic translation of
// the CDFG into one extended-burst-mode AFSM per functional unit.
//
// Each CDFG node becomes a burst-mode fragment implementing the basic
// protocol of Figure 11: (a) wait for the ready signals of its incoming
// constraint arcs, (b) drive the datapath micro-operations — set input
// muxes, select and start the operation, set the destination register mux,
// latch the result, reset the local handshakes — and (c) toggle the ready
// wires of its outgoing arcs.  Fragments are stitched into a ring: the
// controller repeats its schedule every loop iteration.
//
// The translation is the *unoptimized* sequential style: one transition per
// local handshake and one wait transition per incoming wire event.  This is
// the baseline the paper's Figure 12 row 1 measures; the local
// transformations (LT1-LT5) then collapse it.
//
// Structural notes:
//  * waits for *backward* (iteration-crossing) constraints are placed at
//    the tail of the ring — they are pre-enabled for the first iteration,
//    and at the tail the previous iteration's event has always been
//    emitted, so the spec needs no first-iteration special case;
//  * the LOOP condition is sampled as an XBM conditional on the transition
//    carrying the loop's last event (the ENDLOOP waits, or the final body
//    transition when GT1 removed them); the taken branch emits the LOOP
//    broadcast, the exit branch emits the environment done;
//  * IF blocks must be local to their root's controller (body nodes bound
//    to the same FU) — the block-structure rules already guarantee no
//    global wires attach inside the body;
//  * request wires that can arrive earlier than their wait point are
//    back-annotated as directed don't-cares (§4.2 step 4).

#include <map>
#include <vector>

#include "cdfg/cdfg.hpp"
#include "channel/channel.hpp"
#include "xbm/xbm.hpp"

namespace adc {

struct ExtractOptions {
  bool back_annotate = true;
};

// What a controller wire means, for the gate-level simulator and reports.
struct SignalBinding {
  SignalRole role = SignalRole::kGlobalReady;
  std::string reg;          // destination register (rsel/lat) or cond register
  Operand operand;          // routed operand for mux selects
  RtlOp op = RtlOp::kMove;  // selected operation (op-select) / executed op (go)
  std::optional<ChannelId> channel;  // global wires
  int mux_side = 0;                  // 0 = left, 1 = right
};

using SignalBindings = std::map<SignalId::underlying, SignalBinding>;

struct ExtractedController {
  FuId fu;
  Xbm machine;
  SignalBindings bindings;
};

// Extracts every functional unit's controller.
std::vector<ExtractedController> extract_controllers(const Cdfg& g, const ChannelPlan& plan,
                                                     const ExtractOptions& opts = {});

ExtractedController extract_controller(const Cdfg& g, const ChannelPlan& plan, FuId fu,
                                       const ExtractOptions& opts = {});

// §4.2 step 4: marks global request edges as directed don't-cares on every
// transition between their previous consumption and their compulsory wait,
// making the spec tolerant of early arrivals.  Exposed for testing.
void back_annotate_early_requests(Xbm& m,
                                  const std::map<SignalId::underlying, SignalBinding>& bindings);

}  // namespace adc
