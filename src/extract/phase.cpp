// Back-annotation of early request arrivals (paper §4.2, step 4).
//
// The stitched fragments assume every ready signal arrives exactly when its
// wait transition needs it.  In the real system senders run concurrently
// and may toggle a request wire much earlier.  XBM expresses this with
// directed don't-cares: the edge is marked on every transition between its
// previous consumption and its compulsory wait, telling the synthesizer the
// signal may change anywhere in that window.

#include <deque>
#include <set>

#include "extract/extract.hpp"

namespace adc {

namespace {

bool mentions(const XbmTransition& t, SignalId s) {
  for (const auto& e : t.inputs)
    if (e.signal == s) return true;
  return false;
}

}  // namespace

void back_annotate_early_requests(Xbm& m,
                                  const std::map<SignalId::underlying, SignalBinding>& bindings) {
  for (TransitionId tid : m.transition_ids()) {
    // Snapshot: we extend input bursts while iterating.
    const auto inputs = m.transition(tid).inputs;
    for (const auto& e : inputs) {
      if (e.directed_dont_care) continue;
      auto it = bindings.find(e.signal.value());
      if (it == bindings.end()) continue;
      if (it->second.role != SignalRole::kGlobalReady &&
          it->second.role != SignalRole::kEnvironment)
        continue;

      // Reverse walk from the wait transition, marking the window.
      std::deque<StateId> queue{m.transition(tid).from};
      std::set<StateId::underlying> visited;
      while (!queue.empty()) {
        StateId s = queue.front();
        queue.pop_front();
        if (!visited.insert(s.value()).second) continue;
        for (TransitionId pid : m.in_transitions(s)) {
          XbmTransition& p = m.transition(pid);
          if (mentions(p, e.signal)) continue;  // previous consumption: stop
          p.inputs.push_back(ddc(toggle(e.signal)));
          queue.push_back(p.from);
        }
      }
    }
  }
}

}  // namespace adc
