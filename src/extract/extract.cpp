#include "extract/extract.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "cdfg/analysis.hpp"
#include "channel/naming.hpp"
#include "extract/builder.hpp"
#include "xbm/validate.hpp"

namespace adc {

namespace detail {

namespace {

std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  return out;
}

}  // namespace

ControllerBuilder::ControllerBuilder(const Cdfg& g, const ChannelPlan& plan, FuId fu)
    : g_(g), plan_(plan), fu_(fu), m_(g.fu(fu).name) {
  // Map every carried arc to its (channel, event index).
  for (std::size_t ci = 0; ci < plan.channels().size(); ++ci) {
    const Channel& c = plan.channels()[ci];
    for (std::size_t ei = 0; ei < c.events.size(); ++ei)
      for (ArcId a : c.events[ei].arcs)
        arc_event_[a.value()] = WireEvent{ci, static_cast<int>(ei)};
  }
  // Multi-op datapaths need operation-select wires.
  std::set<RtlOp> ops;
  for (NodeId n : g.fu_order(fu))
    for (const auto& s : g.node(n).stmts)
      if (!s.is_move()) ops.insert(s.op);
  multi_op_ = ops.size() > 1;

  bool env_in = false, env_out = false;
  for (const Channel& c : plan.channels()) {
    if (!c.involves_environment()) continue;
    if (c.src_fu == fu) env_out = true;
    for (FuId r : c.receivers)
      if (r == fu) env_in = true;
  }
  env_rtz_ = env_in && env_out;
}

SignalId ControllerBuilder::intern(const std::string& name, SignalKind kind, SignalRole role,
                                   const SignalBinding& binding) {
  if (auto existing = m_.find_signal(name)) return *existing;
  SignalId id = m_.add_signal(name, kind, role, false);
  bindings_[id.value()] = binding;
  return id;
}

SignalId ControllerBuilder::global_wire(std::size_t channel_idx) {
  auto cached = channel_signal_.find(channel_idx);
  if (cached != channel_signal_.end()) return cached->second;

  const Channel& c = plan_.channels()[channel_idx];
  bool outgoing = c.src_fu == fu_;
  SignalBinding b;
  b.role = c.involves_environment() ? SignalRole::kEnvironment : SignalRole::kGlobalReady;
  b.channel = ChannelId(channel_idx);
  // Distinct channels between the same endpoints need distinct wires.
  std::string name = short_wire_name(g_, c);
  std::string unique = name;
  for (int n = 1; m_.find_signal(unique); ++n) unique = name + "_" + std::to_string(n);
  SignalId id = intern(unique, outgoing ? SignalKind::kOutput : SignalKind::kInput,
                       b.role, b);
  channel_signal_[channel_idx] = id;
  return id;
}

XbmEdge ControllerBuilder::wait_edge(std::size_t channel_idx) {
  bool env = plan_.channels()[channel_idx].involves_environment();
  SignalId s = global_wire(channel_idx);
  return env && env_rtz_ ? rise(s) : toggle(s);
}

void ControllerBuilder::emit_env_drain(NodeId origin) {
  std::vector<XbmEdge> req_falls, done_falls;
  for (const auto& [ch, sig] : channel_signal_) {
    if (!plan_.channels()[ch].involves_environment()) continue;
    if (m_.signal(sig).kind == SignalKind::kInput)
      req_falls.push_back(fall(sig));
    else
      done_falls.push_back(fall(sig));
  }
  if (!env_rtz_ || req_falls.empty() || done_falls.empty()) return;
  emit(req_falls, done_falls, origin, "environment return-to-zero");
}

SignalId ControllerBuilder::cond_signal(const std::string& reg) {
  SignalBinding b;
  b.role = SignalRole::kConditional;
  b.reg = reg;
  return intern("c_" + sanitize(reg), SignalKind::kInput, SignalRole::kConditional, b);
}

void ControllerBuilder::emit(std::vector<XbmEdge> in, std::vector<XbmEdge> out, NodeId origin,
                             std::string note, std::vector<CondTerm> conds) {
  if (in.empty()) {
    if (last_.empty()) {
      // At the very start of a loop body: the outputs ride on whatever
      // transition enters the body (attached by the assembly code).
      for (const auto& e : out) pending_entry_outputs_.push_back(e);
      return;
    }
    for (TransitionId t : last_)
      for (const auto& e : out) m_.transition(t).outputs.push_back(e);
    return;
  }
  StateId next = m_.add_state();
  TransitionId t = m_.add_transition(cur_, next, std::move(in), std::move(out),
                                     std::move(conds));
  m_.transition(t).origin = origin;
  m_.transition(t).note = std::move(note);
  cur_ = next;
  last_ = {t};
}

ControllerBuilder::BranchEnds ControllerBuilder::branch(const std::string& cond_reg,
                                                        NodeId origin,
                                                        std::vector<XbmEdge> test_waits) {
  SignalId c = cond_signal(cond_reg);
  BranchEnds ends;
  if (!test_waits.empty()) {
    // The test rides on its own wait transition, duplicated per branch.
    StateId next = m_.add_state();
    TransitionId tt = m_.add_transition(cur_, next, test_waits, {}, {CondTerm{c, true}});
    TransitionId tf = m_.add_transition(cur_, next, test_waits, {}, {CondTerm{c, false}});
    m_.transition(tt).origin = m_.transition(tf).origin = origin;
    m_.transition(tt).note = "test taken";
    m_.transition(tf).note = "test not taken";
    cur_ = next;
    ends.taken = {tt};
    ends.skipped = {tf};
    last_ = {tt};
    return ends;
  }
  // No wire to ride on: split the previous transition(s) into a
  // conditional pair.
  if (last_.empty()) throw std::logic_error("extract: conditional with no trigger");
  for (TransitionId t : last_) {
    // Copy the fields first: add_transition may reallocate the storage.
    XbmTransition snapshot = m_.transition(t);
    TransitionId copy = m_.add_transition(snapshot.from, snapshot.to, snapshot.inputs,
                                          snapshot.outputs, snapshot.conds);
    m_.transition(copy).origin = snapshot.origin;
    m_.transition(copy).note = snapshot.note + " (test not taken)";
    m_.transition(t).conds.push_back(CondTerm{c, true});
    m_.transition(copy).conds.push_back(CondTerm{c, false});
    ends.taken.push_back(t);
    ends.skipped.push_back(copy);
  }
  last_ = ends.taken;
  return ends;
}

std::vector<ControllerBuilder::WireEvent> ControllerBuilder::forward_waits(NodeId n) const {
  std::set<WireEvent> events;
  for (ArcId aid : g_.in_arcs(n)) {
    const Arc& a = g_.arc(aid);
    if (a.backward) continue;
    auto it = arc_event_.find(aid.value());
    if (it != arc_event_.end()) events.insert(it->second);
  }
  return {events.begin(), events.end()};
}

std::vector<ControllerBuilder::WireEvent> ControllerBuilder::backward_waits(NodeId n) const {
  std::set<WireEvent> events;
  for (ArcId aid : g_.in_arcs(n)) {
    const Arc& a = g_.arc(aid);
    if (!a.backward) continue;
    auto it = arc_event_.find(aid.value());
    if (it != arc_event_.end()) events.insert(it->second);
  }
  return {events.begin(), events.end()};
}

std::vector<XbmEdge> ControllerBuilder::done_edges(NodeId n, DoneFilter filter) {
  // The node's completion is one event per channel, regardless of how many
  // constraint arcs the channel carries for it.  Controller-controller
  // wires use transition signalling (a toggle); environment handshakes are
  // 4-phase return-to-zero, so the completion is a rising edge and the
  // drain logic resets it.
  std::set<std::size_t> channels;
  BlockId rooted;
  for (BlockId b : g_.block_ids())
    if (g_.block(b).root == n) rooted = b;
  for (ArcId aid : g_.out_arcs(n)) {
    auto it = arc_event_.find(aid.value());
    if (it == arc_event_.end()) continue;
    if (filter != DoneFilter::kAll && rooted.valid()) {
      bool into = in_block(g_, g_.arc(aid).dst, rooted);
      if (filter == DoneFilter::kIntoBlock && !into) continue;
      if (filter == DoneFilter::kOutOfBlock && into) continue;
    }
    channels.insert(it->second.channel);
  }
  std::vector<XbmEdge> out;
  for (std::size_t c : channels) {
    bool env = plan_.channels()[c].involves_environment();
    out.push_back(env && env_rtz_ ? rise(global_wire(c)) : toggle(global_wire(c)));
  }
  return out;
}

ExtractedController ControllerBuilder::build(const ExtractOptions& opts) {
  const auto& order = g_.fu_order(fu_);
  if (order.empty()) {
    ExtractedController ec;
    ec.fu = fu_;
    ec.machine = std::move(m_);
    return ec;
  }

  // Locate a LOOP/ENDLOOP pair owned by this controller (at most one loop
  // per FU is supported by the extraction).
  std::optional<NodeId> loop_root, loop_end;
  for (NodeId n : order) {
    if (g_.node(n).kind == NodeKind::kLoop) {
      if (loop_root) throw std::invalid_argument("extract: multiple loops on one FU");
      loop_root = n;
    }
    if (g_.node(n).kind == NodeKind::kEndLoop) loop_end = n;
  }

  if (loop_root) {
    // --- loop-owning controller (the paper's ALU2) ----------------------
    const Node& loop = g_.node(*loop_root);
    StateId s_idle = m_.add_state("idle");
    m_.set_initial(s_idle);
    SignalId c = cond_signal(loop.cond_reg);

    // The environment request wire (START -> LOOP).
    auto env_waits = forward_waits(*loop_root);

    std::vector<XbmEdge> broadcast = done_edges(*loop_root, DoneFilter::kIntoBlock);
    std::vector<XbmEdge> exit_dones = done_edges(*loop_root, DoneFilter::kOutOfBlock);

    // Body chain.
    StateId s_body = m_.add_state("body");
    cur_ = s_body;
    last_.clear();
    std::vector<TransitionId> entry_fold;  // transitions that enter the body
    bool saw_root = false;
    for (NodeId n : order) {
      if (n == *loop_root) {
        saw_root = true;
        continue;
      }
      if (!saw_root) throw std::invalid_argument("extract: node scheduled before LOOP");
      if (n == *loop_end) break;
      node_fragment(n);
      if (entry_fold.empty() && !last_.empty()) entry_fold = last_;
    }

    // Tail: backward-arc waits (pre-enabled on the first iteration — at the
    // ring tail the previous iteration has always emitted them).
    for (const auto& w : tail_waits_)
      emit({wait_edge(w.channel)}, {}, *loop_root, "backward-arc wait");
    tail_waits_.clear();

    // ENDLOOP synchronization waits, then the loop test.
    std::vector<XbmEdge> test_waits;
    if (loop_end) {
      auto waits = forward_waits(*loop_end);
      for (std::size_t i = 0; i + 1 < waits.size(); ++i)
        emit({wait_edge(waits[i].channel)}, {}, *loop_end, "ENDLOOP wait");
      if (!waits.empty()) test_waits = {wait_edge(waits.back().channel)};
    }
    BranchEnds test = branch(loop.cond_reg, *loop_root, test_waits);
    for (TransitionId t : test.taken) {
      XbmTransition& tr = m_.transition(t);
      tr.to = s_body;
      for (const auto& e : broadcast) tr.outputs.push_back(e);
      for (const auto& e : pending_entry_outputs_) tr.outputs.push_back(e);
      tr.note += " [loop again]";
    }
    // The exit paths land in a drain state where the environment handshake
    // returns to zero before the controller idles again.
    StateId s_exit = m_.add_state("drain");
    for (TransitionId t : test.skipped) {
      XbmTransition& tr = m_.transition(t);
      tr.to = s_exit;
      for (const auto& e : exit_dones) tr.outputs.push_back(e);
      tr.note += " [loop exit]";
    }

    // Idle entry: wait the environment request, test the condition.
    std::vector<XbmEdge> env_in;
    for (const auto& w : env_waits) env_in.push_back(wait_edge(w.channel));
    if (env_in.empty())
      throw std::invalid_argument("extract: LOOP controller without environment request");
    std::vector<XbmEdge> enter_out = broadcast;
    for (const auto& e : pending_entry_outputs_) enter_out.push_back(e);
    TransitionId enter = m_.add_transition(s_idle, s_body, env_in, enter_out,
                                           {CondTerm{c, true}});
    m_.transition(enter).origin = *loop_root;
    m_.transition(enter).note = "enter loop";
    TransitionId skip = m_.add_transition(s_idle, s_exit, env_in, exit_dones,
                                          {CondTerm{c, false}});
    m_.transition(skip).origin = *loop_root;
    m_.transition(skip).note = "zero-iteration exit";
    pending_entry_outputs_.clear();
    (void)entry_fold;

    // Drain: request falls, dones withdraw, back to idle.
    cur_ = s_exit;
    last_.clear();
    emit_env_drain(*loop_root);
    for (TransitionId t : last_) m_.transition(t).to = s_idle;
  } else {
    // --- plain ring controller ------------------------------------------
    StateId s0 = m_.add_state("start");
    m_.set_initial(s0);
    cur_ = s0;
    last_.clear();
    for (NodeId n : order) node_fragment(n);
    for (const auto& w : tail_waits_)
      emit({wait_edge(w.channel)}, {}, order.front(), "backward-arc wait");
    tail_waits_.clear();
    emit_env_drain(order.front());
    // Close the ring.
    if (last_.empty())
      throw std::invalid_argument("extract: controller with no transitions on " + m_.name());
    if (!pending_entry_outputs_.empty())
      throw std::logic_error("extract: first node of " + m_.name() + " has no request wire");
    for (TransitionId t : last_) m_.transition(t).to = s0;
  }

  if (!open_ifs_.empty()) throw std::logic_error("extract: unclosed IF block");

  if (opts.back_annotate) back_annotate_early_requests(m_, bindings_);
  m_.sweep_dead_states();

  ExtractedController ec;
  ec.fu = fu_;
  ec.machine = std::move(m_);
  ec.bindings = std::move(bindings_);
  return ec;
}

}  // namespace detail

ExtractedController extract_controller(const Cdfg& g, const ChannelPlan& plan, FuId fu,
                                       const ExtractOptions& opts) {
  detail::ControllerBuilder builder(g, plan, fu);
  return builder.build(opts);
}

std::vector<ExtractedController> extract_controllers(const Cdfg& g, const ChannelPlan& plan,
                                                     const ExtractOptions& opts) {
  std::vector<ExtractedController> out;
  for (FuId fu : g.fu_ids()) out.push_back(extract_controller(g, plan, fu, opts));
  return out;
}

}  // namespace adc
