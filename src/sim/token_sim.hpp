#pragma once
// CDFG-level token simulator.
//
// Executes a (possibly transformed) CDFG under its asynchronous firing
// semantics: "an operation node may fire if all its predecessors have
// fired" (paper §2.1), generalized to repeated loop executions via per-arc
// token queues:
//
//  * every constraint arc carries a FIFO token count,
//  * a node fires when every live incoming arc holds a token (consuming
//    one from each) and the node is not already busy,
//  * backward arcs and the implicit controller wrap-around constraints are
//    pre-loaded with one token ("pre-enabled for the first iteration"),
//  * LOOP nodes sample their condition register when they fire: on true
//    they emit tokens into the loop body, on false onto their exit arcs,
//  * IF bodies execute transparently when the condition is false: nodes
//    fire (so schedule tokens keep flowing between controllers, exactly as
//    the extracted controllers behave) but skip their RTL effect,
//  * each firing occupies the node for a randomly drawn delay within the
//    delay model's interval.
//
// The simulator doubles as the correctness oracle for the transformations:
// final register state must be invariant under any precedence-preserving
// transform, for any delay assignment.  It also checks the single-wire
// signaling discipline: an inter-controller arc must never accumulate two
// unconsumed tokens (that would be two transitions queued on one ready
// wire, the hazard GT1 step D exists to prevent).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cdfg/cdfg.hpp"
#include "cdfg/delay.hpp"

namespace adc {

struct TokenSimOptions {
  DelayModel delays = DelayModel::typical();
  std::uint64_t seed = 1;          // randomizes per-firing delays
  std::int64_t max_firings = 200000;
  bool check_wire_discipline = true;
  bool randomize_delays = true;    // false: everything takes its max delay
  bool all_min_delays = false;     // with randomize_delays=false: min corner
  // Record per-firing fire/completion times (used by the GT3 relative-
  // timing verification).
  bool record_times = false;
  // Timing-harness mode (data-independent): every LOOP runs exactly this
  // many iterations regardless of its condition register, and IF bodies are
  // always taken.  Negative: normal data-driven execution.
  int forced_loop_iterations = -1;
};

struct TokenSimResult {
  bool completed = false;          // END fired
  std::string error;               // deadlock / wire violation / runaway
  std::map<std::string, std::int64_t> registers;
  std::int64_t finish_time = 0;
  std::int64_t firings = 0;
  std::int64_t loop_iterations = 0;  // total LOOP-node true-firings
  // Maximum number of iterations that were ever in flight at once (>1 only
  // after GT1 loop parallelism): the widest spread of iteration indices
  // among concurrently executing loop-body nodes.
  int max_overlap = 1;
  // Per node (by id value): fire / completion time of each firing, in
  // firing order.  Populated only with TokenSimOptions::record_times.
  std::map<std::uint32_t, std::vector<std::int64_t>> fire_times;
  std::map<std::uint32_t, std::vector<std::int64_t>> completion_times;
};

TokenSimResult run_token_sim(const Cdfg& g,
                             const std::map<std::string, std::int64_t>& initial_registers,
                             const TokenSimOptions& opts = {});

// Reference sequential execution of the same RTL program (program-order
// interpretation of the CDFG), used as the golden model.
std::map<std::string, std::int64_t> run_sequential(
    const Cdfg& g, const std::map<std::string, std::int64_t>& initial_registers,
    std::int64_t max_steps = 1000000);

// Evaluates one RTL statement against a register file.
void execute_statement(const RtlStatement& s, std::map<std::string, std::int64_t>& regs);

}  // namespace adc
