#include "sim/golden.hpp"

#include <stdexcept>

namespace adc {

DiffeqOutputs diffeq_reference(const DiffeqInputs& in, std::int64_t max_iters) {
  DiffeqOutputs out{in.x, in.y, in.u, 0};
  while (out.x < in.a) {
    if (++out.iterations > max_iters)
      throw std::runtime_error("diffeq_reference: iteration bound exceeded");
    std::int64_t x = out.x, y = out.y, u = out.u;
    std::int64_t x1 = x + in.dx;
    std::int64_t u1 = u - 3 * x * u * in.dx - 3 * y * in.dx;
    std::int64_t y1 = y + u * in.dx;
    out.x = x1;
    out.u = u1;
    out.y = y1;
  }
  return out;
}

std::map<std::string, std::int64_t> diffeq_reference_registers(
    const std::map<std::string, std::int64_t>& init) {
  auto get = [&init](const char* k) {
    auto it = init.find(k);
    return it == init.end() ? 0 : it->second;
  };
  DiffeqInputs in{get("X"), get("Y"), get("U"), get("dx"), get("a")};
  DiffeqOutputs ref = diffeq_reference(in);
  std::map<std::string, std::int64_t> regs = init;
  regs["X"] = ref.x;
  regs["Y"] = ref.y;
  regs["U"] = ref.u;
  return regs;
}

}  // namespace adc
