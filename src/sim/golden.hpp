#pragma once
// Independent software reference models ("golden" oracles).  Written
// directly against the benchmark mathematics, not against the CDFG, so
// that frontend bugs cannot hide.

#include <cstdint>
#include <map>
#include <string>

namespace adc {

struct DiffeqInputs {
  std::int64_t x = 0, y = 0, u = 0, dx = 1, a = 0;
};

struct DiffeqOutputs {
  std::int64_t x = 0, y = 0, u = 0;
  std::int64_t iterations = 0;
};

// The differential-equation solver benchmark: while (x < a)
//   { x1 = x + dx; u1 = u - 3*x*u*dx - 3*y*dx; y1 = y + u*dx; ... }
// computed in the same fixed-point integer arithmetic the datapath uses.
DiffeqOutputs diffeq_reference(const DiffeqInputs& in, std::int64_t max_iters = 100000);

// Register-map convenience wrapper matching the CDFG register names.
std::map<std::string, std::int64_t> diffeq_reference_registers(
    const std::map<std::string, std::int64_t>& init);

}  // namespace adc
