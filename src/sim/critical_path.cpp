#include "sim/critical_path.hpp"

#include <algorithm>
#include <cstdio>

#include "report/json.hpp"
#include "report/table.hpp"

namespace adc {

const char* to_string(SimPhase p) {
  switch (p) {
    case SimPhase::kRequestWait: return "request-wait";
    case SimPhase::kMicroOp: return "micro-op";
    case SimPhase::kOp: return "op";
    case SimPhase::kRegWrite: return "register-write";
    case SimPhase::kDone: return "done";
  }
  return "?";
}

namespace {

std::string controller_key(const std::string& controller) {
  return controller.empty() ? "(channels)" : controller;
}

}  // namespace

std::vector<CriticalChain> CriticalPathResult::top_chains(std::size_t k) const {
  std::vector<CriticalChain> chains;
  for (const auto& seg : segments) {
    if (!chains.empty() && chains.back().phase == seg.phase &&
        chains.back().controller == seg.controller &&
        chains.back().label == seg.label) {
      chains.back().end = seg.end;
      chains.back().duration += seg.duration();
      ++chains.back().events;
    } else {
      CriticalChain c;
      c.phase = seg.phase;
      c.controller = seg.controller;
      c.label = seg.label;
      c.start = seg.start;
      c.end = seg.end;
      c.duration = seg.duration();
      c.events = 1;
      chains.push_back(std::move(c));
    }
  }
  std::stable_sort(chains.begin(), chains.end(),
                   [](const CriticalChain& a, const CriticalChain& b) {
                     return a.duration > b.duration;
                   });
  if (chains.size() > k) chains.resize(k);
  return chains;
}

std::string CriticalPathResult::to_table(std::size_t top_k) const {
  std::string out = "critical path: " + std::to_string(attributed) + " of " +
                    std::to_string(total_latency) + " ticks attributed (";
  char pct[16];
  std::snprintf(pct, sizeof pct, "%.1f%%", 100.0 * attributed_fraction());
  out += pct;
  out += "), " + std::to_string(segments.size()) + " segments\n\nby phase:\n";
  Table tp({"phase", "ticks", "share"});
  for (const auto& [phase, ticks] : by_phase) {
    char share[16];
    std::snprintf(share, sizeof share, "%.1f%%",
                  attributed > 0 ? 100.0 * static_cast<double>(ticks) /
                                       static_cast<double>(attributed)
                                 : 0.0);
    tp.add_row({phase, std::to_string(ticks), share});
  }
  out += tp.to_string();
  out += "\nby controller:\n";
  Table tc({"controller", "ticks"});
  for (const auto& [ctrl, ticks] : by_controller)
    tc.add_row({ctrl, std::to_string(ticks)});
  out += tc.to_string();
  if (!by_channel.empty()) {
    out += "\nby channel (request-wait only):\n";
    Table tch({"channel", "ticks"});
    for (const auto& [ch, ticks] : by_channel)
      tch.add_row({ch, std::to_string(ticks)});
    out += tch.to_string();
  }
  out += "\ntop critical chains:\n";
  Table tt({"#", "phase", "controller", "label", "ticks", "window", "events"});
  std::size_t i = 0;
  for (const auto& c : top_chains(top_k)) {
    tt.add_row({std::to_string(++i), to_string(c.phase),
                controller_key(c.controller), c.label, std::to_string(c.duration),
                std::to_string(c.start) + ".." + std::to_string(c.end),
                std::to_string(c.events)});
  }
  out += tt.to_string();
  return out;
}

void CriticalPathResult::write_json(JsonWriter& w, std::size_t top_k) const {
  w.begin_object();
  w.kv("total_latency", total_latency);
  w.kv("attributed", attributed);
  w.kv("attributed_fraction", attributed_fraction());
  w.kv("segments", static_cast<std::uint64_t>(segments.size()));
  w.key("by_phase");
  w.begin_object();
  for (const auto& [phase, ticks] : by_phase) w.kv(phase, ticks);
  w.end_object();
  w.key("by_controller");
  w.begin_object();
  for (const auto& [ctrl, ticks] : by_controller) w.kv(ctrl, ticks);
  w.end_object();
  w.key("by_channel");
  w.begin_object();
  for (const auto& [ch, ticks] : by_channel) w.kv(ch, ticks);
  w.end_object();
  w.key("top_chains");
  w.begin_array();
  for (const auto& c : top_chains(top_k)) {
    w.begin_object();
    w.kv("phase", to_string(c.phase));
    w.kv("controller", controller_key(c.controller));
    w.kv("label", c.label);
    w.kv("ticks", c.duration);
    w.kv("start", c.start);
    w.kv("end", c.end);
    w.kv("events", static_cast<std::uint64_t>(c.events));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::int32_t SimEventLog::intern_controller(const std::string& name) {
  for (std::size_t i = 0; i < controllers.size(); ++i)
    if (controllers[i] == name) return static_cast<std::int32_t>(i);
  controllers.push_back(name);
  return static_cast<std::int32_t>(controllers.size() - 1);
}

std::int32_t SimEventLog::intern_label(const std::string& name) {
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (labels[i] == name) return static_cast<std::int32_t>(i);
  labels.push_back(name);
  return static_cast<std::int32_t>(labels.size() - 1);
}

const std::string& SimEventLog::controller_of(const SimEventRecord& r) const {
  static const std::string kEmpty;
  return r.controller >= 0 &&
                 static_cast<std::size_t>(r.controller) < controllers.size()
             ? controllers[static_cast<std::size_t>(r.controller)]
             : kEmpty;
}

const std::string& SimEventLog::label_of(const SimEventRecord& r) const {
  static const std::string kEmpty;
  return r.label >= 0 && static_cast<std::size_t>(r.label) < labels.size()
             ? labels[static_cast<std::size_t>(r.label)]
             : kEmpty;
}

CriticalPathResult analyze_critical_path(const SimEventLog& log,
                                         std::int64_t final_event,
                                         std::int64_t total_latency) {
  CriticalPathResult res;
  res.total_latency = total_latency;
  if (final_event < 0 || static_cast<std::size_t>(final_event) >= log.size())
    return res;
  // Parent-chain walk, final -> root.
  std::vector<const SimEventRecord*> chain;
  std::int64_t id = final_event;
  while (id >= 0 && static_cast<std::size_t>(id) < log.size()) {
    const SimEventRecord& r = log.records[static_cast<std::size_t>(id)];
    chain.push_back(&r);
    if (r.parent >= id) break;  // defensive: ids increase along schedule order
    id = r.parent;
  }
  std::reverse(chain.begin(), chain.end());
  res.segments.reserve(chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const SimEventRecord& r = *chain[i];
    CriticalSegment seg;
    // The environment's root events carry the launch delay from t=0.
    seg.start = i == 0 ? 0 : chain[i - 1]->time;
    seg.end = r.time;
    if (seg.end < seg.start) seg.end = seg.start;  // defensive clamp
    seg.phase = r.phase;
    seg.controller = log.controller_of(r);
    seg.label = log.label_of(r);
    res.attributed += seg.duration();
    res.by_phase[to_string(seg.phase)] += seg.duration();
    res.by_controller[controller_key(seg.controller)] += seg.duration();
    if (seg.phase == SimPhase::kRequestWait) res.by_channel[seg.label] += seg.duration();
    res.segments.push_back(std::move(seg));
  }
  if (res.attributed > res.total_latency) res.total_latency = res.attributed;
  return res;
}

}  // namespace adc
