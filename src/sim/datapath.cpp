#include "sim/datapath.hpp"

namespace adc {

std::int64_t alu_compute(RtlOp op, std::int64_t l, std::int64_t r) {
  switch (op) {
    case RtlOp::kAdd: return l + r;
    case RtlOp::kSub: return l - r;
    case RtlOp::kMul: return l * r;
    case RtlOp::kDiv: return r == 0 ? 0 : l / r;
    case RtlOp::kLt: return l < r ? 1 : 0;
    case RtlOp::kGt: return l > r ? 1 : 0;
    case RtlOp::kEq: return l == r ? 1 : 0;
    case RtlOp::kNe: return l != r ? 1 : 0;
    case RtlOp::kShl: return l << (r & 63);
    case RtlOp::kShr: return l >> (r & 63);
    case RtlOp::kMove: return l;
  }
  return 0;
}

}  // namespace adc
