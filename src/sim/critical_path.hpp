#pragma once
// Critical-path latency attribution for the gate-level event simulator.
//
// The simulator can record a causal event log: every scheduled event
// remembers which event's application scheduled it (its parent — by
// construction the *last-arriving* precondition, which is exactly the
// critical one).  Walking parents back from the final applied event yields
// the critical path of the whole run, and because consecutive event times
// telescope, the segment durations sum to the end-to-end latency — the
// analyzer attributes it to concrete channels, controllers and
// micro-operation phases:
//
//   request-wait   a channel (global ready / environment) transition
//   micro-op       a local controller<->datapath handshake wire
//   op             a functional-unit computation
//   register-write a latch commit into the register file
//   done           a functional unit's completion wire
//
// The result answers the paper's §3.1 question quantitatively: *which*
// handshake chains the GT/LT transforms must shorten next.  Exposed as
// `adc_synth --critical-path` and per-point in `adc_dse --json`.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace adc {

class JsonWriter;

// Phase taxonomy of one simulator event.
enum class SimPhase { kRequestWait, kMicroOp, kOp, kRegWrite, kDone };
const char* to_string(SimPhase p);

// One scheduled event, as recorded by the simulator.  An event's id is its
// index in SimEventLog::records (ids are dense and increasing in schedule
// order).  Names are interned: `controller` and `label` index into the
// owning log's string tables, so recording an event in the simulator's hot
// loop appends one trivially-copyable struct instead of allocating strings
// — the difference between a free observability layer and a measurable tax
// on every profiled DSE point.
struct SimEventRecord {
  std::int64_t parent = -1;  // scheduling event; -1 = environment root
  std::int64_t time = 0;
  SimPhase phase = SimPhase::kMicroOp;
  std::int32_t controller = -1;  // SimEventLog::controllers; -1 = fabric/env
  std::int32_t label = -1;       // SimEventLog::labels; -1 = unnamed
  bool applied = false;  // popped and applied (vs. drained unapplied)
};

// The causal event log: dense records plus the interned name tables they
// index.  The simulator interns each controller/wire/FU/register name once
// at attach time (or on first use) and the analyzer resolves ids back to
// strings only for the handful of segments on the critical path.
struct SimEventLog {
  std::vector<SimEventRecord> records;
  std::vector<std::string> controllers;
  std::vector<std::string> labels;

  // Linear-scan interning: called during table setup, never per event.
  std::int32_t intern_controller(const std::string& name);
  std::int32_t intern_label(const std::string& name);

  const std::string& controller_of(const SimEventRecord& r) const;
  const std::string& label_of(const SimEventRecord& r) const;

  std::size_t size() const { return records.size(); }
  bool empty() const { return records.empty(); }
  void clear() {
    records.clear();
    controllers.clear();
    labels.clear();
  }
};

// One edge of the critical chain: the wait from the parent's time to this
// event's time, attributed to the event's phase/controller/label.
struct CriticalSegment {
  std::int64_t start = 0;
  std::int64_t end = 0;
  SimPhase phase = SimPhase::kMicroOp;
  std::string controller;
  std::string label;
  std::int64_t duration() const { return end - start; }
};

// A maximal run of consecutive critical segments with the same phase,
// controller and label — "the path sat in MUL1's multiply for 160 ticks",
// "the path crossed channel A2_done 3 times for 90 ticks".
struct CriticalChain {
  SimPhase phase = SimPhase::kMicroOp;
  std::string controller;
  std::string label;
  std::int64_t start = 0;
  std::int64_t end = 0;
  std::int64_t duration = 0;  // sum of member segment durations
  std::size_t events = 0;
};

struct CriticalPathResult {
  std::int64_t total_latency = 0;  // the simulation's finish time
  std::int64_t attributed = 0;     // sum of critical segment durations
  double attributed_fraction() const {
    return total_latency > 0
               ? static_cast<double>(attributed) / static_cast<double>(total_latency)
               : 0.0;
  }

  // Root-to-final order.
  std::vector<CriticalSegment> segments;
  // Aggregations over the critical path (keys: phase name / controller
  // name with "" rendered as "(channels)" / channel label).
  std::map<std::string, std::int64_t> by_phase;
  std::map<std::string, std::int64_t> by_controller;
  std::map<std::string, std::int64_t> by_channel;

  // The k longest contiguous chains, longest first.
  std::vector<CriticalChain> top_chains(std::size_t k) const;

  std::string to_table(std::size_t top_k = 5) const;
  void write_json(JsonWriter& w, std::size_t top_k = 5) const;
};

// Walks the causal log back from `final_event` (the applied event that
// completed the run).  `total_latency` is the simulator's finish time; the
// analyzer never attributes more than it observed.
CriticalPathResult analyze_critical_path(const SimEventLog& log,
                                         std::int64_t final_event,
                                         std::int64_t total_latency);

}  // namespace adc
