#include "sim/event_sim.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <random>
#include <set>

#include "sim/datapath.hpp"
#include "trace/vcd.hpp"

namespace adc {

namespace {

struct Wire {
  bool level = false;
  long count = 0;  // transitions seen
};

enum class EvKind { kChannelToggle, kLocalSet, kFuCompute, kRegWrite };

struct Ev {
  std::int64_t time;
  std::int64_t seq;
  EvKind kind;
  int ctrl = -1;
  SignalId sig;
  bool level = false;
  std::size_t channel = 0;
  std::string reg;
  bool operator>(const Ev& o) const { return time != o.time ? time > o.time : seq > o.seq; }
};

struct Ctrl {
  const ExtractedController* ec = nullptr;
  StateId state;
  std::map<SignalId::underlying, Wire> local;
  std::map<std::size_t, long> consumed_channel;
  std::map<SignalId::underlying, long> consumed_local;
  // alias expansion: kept signal -> all signals it drives (incl. itself)
  std::map<SignalId::underlying, std::vector<SignalId>> fanout;
  // datapath side
  std::optional<Operand> selL, selR;
  std::optional<RtlOp> opsel;
  std::int64_t fu_result = 0;
  std::map<std::string, Operand> route;  // register -> routed source
  std::map<std::string, bool> route_is_fu;
  // waveform capture (unused when no VcdWriter is attached)
  VcdWriter::VarId state_var = 0;
  std::map<SignalId::underlying, VcdWriter::VarId> vcd_vars;
};

class EventSim {
 public:
  EventSim(const Cdfg& g, const ChannelPlan& plan,
           const std::vector<ControllerInstance>& instances,
           const std::map<std::string, std::int64_t>& init, const EventSimOptions& opts)
      : g_(g), plan_(plan), opts_(opts), rng_(opts.seed) {
    regs_.values = init;
    channels_.resize(plan.channels().size());
    for (const auto& inst : instances) {
      Ctrl c;
      c.ec = &inst.controller;
      c.state = inst.controller.machine.initial();
      for (SignalId s : inst.controller.machine.signal_ids())
        c.fanout[s.value()] = {s};
      for (const auto& [kept, dropped] : inst.shared_signals) {
        auto k = inst.controller.machine.find_signal(kept);
        auto d = inst.controller.machine.find_signal(dropped);
        if (k && d) c.fanout[k->value()].push_back(*d);
      }
      ctrls_.push_back(std::move(c));
    }
    // Which environment request wires are 4-phase?  Exactly those whose
    // receiving controller consumes the falling phase (the drain); the
    // others are 2-phase and must never see a withdrawal transition.
    rtz_request_.assign(plan.channels().size(), false);
    for (const auto& c : ctrls_) {
      for (TransitionId tid : c.ec->machine.transition_ids()) {
        for (const auto& e : c.ec->machine.transition(tid).inputs) {
          const SignalBinding* b = binding(c, e.signal);
          if (b && b->role == SignalRole::kEnvironment && b->channel &&
              e.polarity == EdgePolarity::kFalling)
            rtz_request_[b->channel->index()] = true;
        }
      }
    }
    if (opts_.vcd) {
      for (std::size_t ch = 0; ch < plan.channels().size(); ++ch) {
        const Channel& c = plan.channels()[ch];
        std::string name = c.wire.empty() ? "ch" + std::to_string(ch) : c.wire;
        ch_vars_.push_back(opts_.vcd->add_wire("channels", name, false));
      }
      for (Ctrl& c : ctrls_) {
        const std::string& scope = c.ec->machine.name();
        c.state_var =
            opts_.vcd->add_string(scope, "state", c.ec->machine.state(c.state).name);
        for (SignalId s : c.ec->machine.signal_ids())
          c.vcd_vars[s.value()] =
              opts_.vcd->add_wire(scope, c.ec->machine.signal(s).name, false);
      }
    }
    if (opts_.event_log) {
      build_log_tables();
      opts_.event_log->records.reserve(2048);
    }
  }

  EventSimResult run() {
    // The environment raises every request it sources.
    for (std::size_t ch = 0; ch < plan_.channels().size(); ++ch) {
      const Channel& c = plan_.channels()[ch];
      if (!c.src_fu.valid()) schedule(Ev{1, seq_++, EvKind::kChannelToggle, -1,
                                         SignalId{}, false, ch, {}});
      if (c.receivers.empty()) env_sinks_.insert(ch);
    }
    for (std::size_t i = 0; i < ctrls_.size(); ++i) try_advance(static_cast<int>(i), 0);

    while (!events_.empty()) {
      Ev ev = events_.top();
      events_.pop();
      if (++res_.events > opts_.max_events || ev.time > opts_.max_time) {
        res_.error = "event budget exhausted (livelock?)";
        break;
      }
      if (opts_.cancel && (res_.events & 0xff) == 0 && opts_.cancel->cancelled()) {
        res_.cancelled = true;
        res_.error = opts_.cancel->reason();
        if (res_.error.empty()) res_.error = "cancelled";
        break;
      }
      if (opts_.event_log && static_cast<std::size_t>(ev.seq) < opts_.event_log->size()) {
        opts_.event_log->records[static_cast<std::size_t>(ev.seq)].applied = true;
        applying_ = ev.seq;
        if (ev.time >= final_applied_time_) {
          final_applied_time_ = ev.time;
          res_.final_event = ev.seq;
        }
      }
      apply(ev);
      if (!res_.error.empty()) break;
    }

    bool all_done = true;
    for (std::size_t ch : env_sinks_)
      if (channels_[ch].count < 1) all_done = false;
    if (res_.error.empty()) {
      if (all_done) {
        res_.completed = true;
      } else {
        res_.deadlocked = true;
        res_.error = deadlock_report();
      }
    }
    res_.registers = regs_.values;
    return res_;
  }

 private:
  std::int64_t draw(DelayRange r) {
    if (!opts_.randomize_delays || r.min == r.max) return r.max;
    std::uniform_int_distribution<std::int64_t> d(r.min, r.max);
    return d(rng_);
  }

  void schedule(Ev ev) {
    res_.finish_time = std::max(res_.finish_time, ev.time);
    if (opts_.event_log) record(ev);
    events_.push(std::move(ev));
  }

  // One-time name interning for the causal log: every label record() can
  // emit — channel wires, controller signals, FU names — becomes a table
  // lookup, so the hot path appends a trivially-copyable record without
  // touching the allocator.  Register names (few, infrequent writes) are
  // interned lazily in record().
  void build_log_tables() {
    SimEventLog& log = *opts_.event_log;
    chan_label_.reserve(plan_.channels().size());
    for (std::size_t ch = 0; ch < plan_.channels().size(); ++ch) {
      const Channel& c = plan_.channels()[ch];
      chan_label_.push_back(log.intern_label(
          c.wire.empty() ? "ch" + std::to_string(ch) : c.wire));
    }
    ctrl_name_.reserve(ctrls_.size());
    sig_label_.resize(ctrls_.size());
    sig_phase_.resize(ctrls_.size());
    fu_label_.reserve(ctrls_.size());
    for (std::size_t i = 0; i < ctrls_.size(); ++i) {
      const Ctrl& c = ctrls_[i];
      ctrl_name_.push_back(log.intern_controller(c.ec->machine.name()));
      for (SignalId s : c.ec->machine.signal_ids()) {
        auto idx = static_cast<std::size_t>(s.value());
        if (idx >= sig_label_[i].size()) {
          sig_label_[i].resize(idx + 1, -1);
          sig_phase_[i].resize(idx + 1, SimPhase::kMicroOp);
        }
        sig_label_[i][idx] = log.intern_label(c.ec->machine.signal(s).name);
        const SignalBinding* b = binding(c, s);
        sig_phase_[i][idx] = b && b->role == SignalRole::kFuDone
                                 ? SimPhase::kDone
                                 : SimPhase::kMicroOp;
      }
      fu_label_.push_back(log.intern_label(g_.fu(c.ec->fu).name));
    }
  }

  // Appends the scheduled event to the causal log, classified for
  // critical-path attribution.  The parent is the event being applied
  // right now — the last-arriving precondition of this one.
  void record(const Ev& ev) {
    SimEventRecord r;
    r.parent = applying_;
    r.time = ev.time;
    switch (ev.kind) {
      case EvKind::kChannelToggle:
        r.phase = SimPhase::kRequestWait;
        r.label = chan_label_[ev.channel];
        break;
      case EvKind::kLocalSet: {
        auto ci = static_cast<std::size_t>(ev.ctrl);
        auto si = static_cast<std::size_t>(ev.sig.value());
        r.controller = ctrl_name_[ci];
        r.label = sig_label_[ci][si];
        r.phase = sig_phase_[ci][si];
        break;
      }
      case EvKind::kFuCompute: {
        auto ci = static_cast<std::size_t>(ev.ctrl);
        r.controller = ctrl_name_[ci];
        r.label = fu_label_[ci];
        r.phase = SimPhase::kOp;
        break;
      }
      case EvKind::kRegWrite: {
        auto ci = static_cast<std::size_t>(ev.ctrl);
        r.controller = ctrl_name_[ci];
        r.label = opts_.event_log->intern_label(ev.reg);
        r.phase = SimPhase::kRegWrite;
        break;
      }
    }
    auto& recs = opts_.event_log->records;
    if (static_cast<std::size_t>(ev.seq) > recs.size())
      recs.resize(static_cast<std::size_t>(ev.seq));  // defensive: keep ids dense
    recs.push_back(r);
  }

  Wire& local_wire(Ctrl& c, SignalId s) { return c.local[s.value()]; }

  const SignalBinding* binding(const Ctrl& c, SignalId s) const {
    auto it = c.ec->bindings.find(s.value());
    return it == c.ec->bindings.end() ? nullptr : &it->second;
  }

  // Finds this controller's wire with the given role (and mux side / reg).
  std::optional<SignalId> find_role(const Ctrl& c, SignalRole role, int side = -1,
                                    const std::string& reg = {}) const {
    for (const auto& [sid, b] : c.ec->bindings) {
      if (b.role != role) continue;
      if (side >= 0 && b.mux_side != side) continue;
      if (!reg.empty() && b.reg != reg) continue;
      return SignalId{sid};
    }
    return std::nullopt;
  }

  void apply(const Ev& ev) {
    switch (ev.kind) {
      case EvKind::kChannelToggle: {
        Wire& w = channels_[ev.channel];
        w.level = !w.level;
        ++w.count;
        if (opts_.vcd) opts_.vcd->change(ch_vars_[ev.channel], ev.time, w.level);
        // Environment behaviour: once every done it expects is up, the
        // environment withdraws its requests (return-to-zero).
        if (env_sinks_.count(ev.channel) && w.level && !env_withdrawn_) {
          bool all_up = true;
          for (std::size_t ch : env_sinks_)
            if (!channels_[ch].level) all_up = false;
          if (all_up) {
            env_withdrawn_ = true;
            for (std::size_t ch = 0; ch < plan_.channels().size(); ++ch)
              if (!plan_.channels()[ch].src_fu.valid() && rtz_request_[ch])
                schedule(Ev{ev.time + draw(opts_.delays.wire), seq_++,
                            EvKind::kChannelToggle, -1, SignalId{}, false, ch, {}});
          }
        }
        for (std::size_t i = 0; i < ctrls_.size(); ++i) try_advance(static_cast<int>(i), ev.time);
        break;
      }
      case EvKind::kLocalSet: {
        Ctrl& c = ctrls_[static_cast<std::size_t>(ev.ctrl)];
        Wire& w = local_wire(c, ev.sig);
        if (w.level != ev.level) {
          w.level = ev.level;
          ++w.count;
          if (opts_.vcd) opts_.vcd->change(c.vcd_vars[ev.sig.value()], ev.time, ev.level);
        }
        const XbmSignal& s = c.ec->machine.signal(ev.sig);
        if (s.kind == SignalKind::kOutput)
          datapath_react(ev.ctrl, ev.sig, ev.level, ev.time);
        else
          try_advance(ev.ctrl, ev.time);
        break;
      }
      case EvKind::kFuCompute: {
        Ctrl& c = ctrls_[static_cast<std::size_t>(ev.ctrl)];
        std::int64_t l = c.selL ? regs_.eval(*c.selL) : 0;
        std::int64_t r = c.selR ? regs_.eval(*c.selR) : 0;
        RtlOp op = c.opsel ? *c.opsel : ev.level ? RtlOp::kMove : RtlOp::kMove;
        // Single-op datapaths carry the operation on the go binding.
        if (!c.opsel) {
          if (auto go = find_role(c, SignalRole::kFuGo))
            if (const auto* b = binding(c, *go)) op = b->op;
        }
        c.fu_result = alu_compute(op, l, r);
        ++res_.operations;
        if (auto done = find_role(c, SignalRole::kFuDone))
          schedule(Ev{ev.time, seq_++, EvKind::kLocalSet, ev.ctrl, *done, true, 0, {}});
        break;
      }
      case EvKind::kRegWrite: {
        Ctrl& c = ctrls_[static_cast<std::size_t>(ev.ctrl)];
        std::int64_t value = c.route_is_fu[ev.reg] ? c.fu_result : regs_.eval(c.route[ev.reg]);
        regs_.values[ev.reg] = value;
        // Condition wires follow registers combinationally.
        for (std::size_t i = 0; i < ctrls_.size(); ++i) try_advance(static_cast<int>(i), ev.time);
        break;
      }
    }
  }

  void datapath_react(int ci, SignalId sig, bool level, std::int64_t now) {
    Ctrl& c = ctrls_[static_cast<std::size_t>(ci)];
    const SignalBinding* b = binding(c, sig);
    if (!b) return;
    auto ack_after = [&](std::optional<SignalId> ack, DelayRange d) {
      if (!ack) return;
      schedule(Ev{now + draw(d), seq_++, EvKind::kLocalSet, ci, *ack, level, 0, {}});
    };
    switch (b->role) {
      case SignalRole::kMuxSelect:
        if (level) (b->mux_side == 0 ? c.selL : c.selR) = b->operand;
        ack_after(find_role(c, SignalRole::kMuxAck, b->mux_side), opts_.delays.micro_op);
        break;
      case SignalRole::kOpSelect:
        if (level) c.opsel = b->op;
        ack_after(find_role(c, SignalRole::kOpAck), opts_.delays.micro_op);
        break;
      case SignalRole::kFuGo:
        if (level) {
          DelayRange d = opts_.delays.op_delay(g_.fu(c.ec->fu).cls);
          schedule(Ev{now + draw(d), seq_++, EvKind::kFuCompute, ci, SignalId{}, true, 0, {}});
        } else if (auto done = find_role(c, SignalRole::kFuDone)) {
          schedule(Ev{now + draw(opts_.delays.done_reset), seq_++, EvKind::kLocalSet, ci,
                      *done, false, 0, {}});
        }
        break;
      case SignalRole::kRegMuxSelect:
        if (level) {
          c.route[b->reg] = b->operand;
          // An empty register operand denotes the FU result port.
          c.route_is_fu[b->reg] = b->operand.is_reg() && b->operand.reg.empty();
        }
        ack_after(find_role(c, SignalRole::kRegMuxAck, -1, b->reg), opts_.delays.micro_op);
        break;
      case SignalRole::kLatch:
        if (level) {
          std::int64_t write_at = now + draw(opts_.delays.latch_write);
          schedule(Ev{write_at, seq_++, EvKind::kRegWrite, ci, SignalId{}, false, 0,
                      b->reg});
          // The acknowledge certifies the write: it must not precede it.
          if (auto ack = find_role(c, SignalRole::kLatchAck, -1, b->reg))
            schedule(Ev{write_at + draw(opts_.delays.micro_op), seq_++,
                        EvKind::kLocalSet, ci, *ack, true, 0, {}});
        } else {
          ack_after(find_role(c, SignalRole::kLatchAck, -1, b->reg),
                    opts_.delays.micro_op);
        }
        break;
      default:
        break;
    }
  }

  bool edge_satisfied(const Ctrl& c, const XbmEdge& e) {
    const SignalBinding* b = binding(c, e.signal);
    if (b && b->role == SignalRole::kEnvironment && b->channel &&
        e.polarity != EdgePolarity::kToggle) {
      // The 4-phase environment handshake uses level semantics; a toggle
      // edge on an environment wire (one-sided handshake fallback) is
      // transition-counted below like any ready wire.
      const Wire& w = channels_[b->channel->index()];
      return e.polarity == EdgePolarity::kRising ? w.level : (!w.level && w.count > 0);
    }
    if (b && (b->role == SignalRole::kGlobalReady || b->role == SignalRole::kEnvironment) &&
        b->channel) {
      std::size_t ch = b->channel->index();
      long consumed = 0;
      if (auto it = c.consumed_channel.find(ch); it != c.consumed_channel.end())
        consumed = it->second;
      return channels_[ch].count > consumed;
    }
    if (b && b->role == SignalRole::kConditional) return true;  // sampled via conds
    auto it = c.local.find(e.signal.value());
    bool level = it != c.local.end() && it->second.level;
    long count = it == c.local.end() ? 0 : it->second.count;
    switch (e.polarity) {
      case EdgePolarity::kRising: return level;
      case EdgePolarity::kFalling: return !level && count > 0;
      case EdgePolarity::kToggle: {
        long consumed = 0;
        if (auto cit = c.consumed_local.find(e.signal.value()); cit != c.consumed_local.end())
          consumed = cit->second;
        return count > consumed;
      }
    }
    return false;
  }

  bool cond_satisfied(const Ctrl& c, const CondTerm& t) {
    const SignalBinding* b = binding(c, t.signal);
    if (!b) return false;
    auto it = regs_.values.find(b->reg);
    bool level = it != regs_.values.end() && it->second != 0;
    return level == t.value;
  }

  void try_advance(int ci, std::int64_t now) {
    Ctrl& c = ctrls_[static_cast<std::size_t>(ci)];
    bool progressed = true;
    while (progressed) {
      progressed = false;
      std::optional<TransitionId> enabled;
      for (TransitionId tid : c.ec->machine.out_transitions(c.state)) {
        const XbmTransition& t = c.ec->machine.transition(tid);
        bool ok = true;
        for (const auto& e : t.inputs) {
          if (e.directed_dont_care) continue;
          if (!edge_satisfied(c, e)) ok = false;
        }
        for (const auto& ct : t.conds)
          if (!cond_satisfied(c, ct)) ok = false;
        if (!ok) continue;
        if (enabled) {
          res_.error = "nondeterministic choice in " + c.ec->machine.name() + " state " +
                       c.ec->machine.state(c.state).name;
          return;
        }
        enabled = tid;
      }
      if (!enabled) return;

      const XbmTransition& t = c.ec->machine.transition(*enabled);
      // Consume the transition-counted inputs.
      for (const auto& e : t.inputs) {
        if (e.directed_dont_care) continue;
        const SignalBinding* b = binding(c, e.signal);
        if (b && (b->role == SignalRole::kGlobalReady ||
                  b->role == SignalRole::kEnvironment) &&
            b->channel) {
          ++c.consumed_channel[b->channel->index()];
        } else if (e.polarity == EdgePolarity::kToggle) {
          c.consumed_local[e.signal.value()] =
              c.local.count(e.signal.value()) ? c.local[e.signal.value()].count : 0;
        }
      }
      c.state = t.to;
      if (opts_.vcd)
        opts_.vcd->change_string(c.state_var, now, c.ec->machine.state(c.state).name);
      // Emit the output burst (alias fanout included).
      std::int64_t emit = now + draw(opts_.delays.micro_op);
      for (const auto& e : t.outputs) {
        for (SignalId drv : c.fanout[e.signal.value()]) {
          const SignalBinding* b = binding(c, drv);
          if (b && (b->role == SignalRole::kGlobalReady ||
                    b->role == SignalRole::kEnvironment) &&
              b->channel) {
            schedule(Ev{emit + draw(opts_.delays.wire), seq_++, EvKind::kChannelToggle,
                        -1, SignalId{}, false, b->channel->index(), {}});
          } else {
            bool level = e.polarity == EdgePolarity::kRising
                             ? true
                             : e.polarity == EdgePolarity::kFalling
                                   ? false
                                   : !c.local[drv.value()].level;
            schedule(Ev{emit, seq_++, EvKind::kLocalSet, ci, drv, level, 0, {}});
          }
        }
      }
      progressed = true;
    }
  }

  std::string deadlock_report() const {
    std::string msg = "system deadlock:";
    for (const auto& c : ctrls_)
      msg += " [" + c.ec->machine.name() + "@" + c.ec->machine.state(c.state).name + "]";
    return msg;
  }

  const Cdfg& g_;
  const ChannelPlan& plan_;
  EventSimOptions opts_;
  std::mt19937_64 rng_;
  EventSimResult res_;
  RegisterFile regs_;
  std::vector<Wire> channels_;
  std::vector<VcdWriter::VarId> ch_vars_;
  std::vector<Ctrl> ctrls_;
  std::set<std::size_t> env_sinks_;
  std::vector<bool> rtz_request_;
  bool env_withdrawn_ = false;
  std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> events_;
  std::int64_t seq_ = 0;
  // Critical-path log state: the event currently being applied (-1 during
  // initialization) and the time of the latest applied event.
  std::int64_t applying_ = -1;
  std::int64_t final_applied_time_ = -1;
  // Interned-name tables for record() (built only when a log is attached):
  // channel index -> label id, controller index -> name id / FU label id,
  // and per controller signal value -> label id / phase.
  std::vector<std::int32_t> chan_label_;
  std::vector<std::int32_t> ctrl_name_;
  std::vector<std::int32_t> fu_label_;
  std::vector<std::vector<std::int32_t>> sig_label_;
  std::vector<std::vector<SimPhase>> sig_phase_;
};

}  // namespace

EventSimResult run_event_sim(const Cdfg& g, const ChannelPlan& plan,
                             const std::vector<ControllerInstance>& controllers,
                             const std::map<std::string, std::int64_t>& initial_registers,
                             const EventSimOptions& opts) {
  return EventSim(g, plan, controllers, initial_registers, opts).run();
}

}  // namespace adc
