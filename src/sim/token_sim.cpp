#include "sim/token_sim.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <random>
#include <set>
#include <stdexcept>

#include "cdfg/analysis.hpp"

namespace adc {

void execute_statement(const RtlStatement& s, std::map<std::string, std::int64_t>& regs) {
  auto value = [&regs](const Operand& o) {
    return o.eval(o.is_reg() ? regs[o.reg] : 0);
  };
  std::int64_t l = value(s.lhs);
  std::int64_t r = s.rhs ? value(*s.rhs) : 0;
  std::int64_t out = 0;
  switch (s.op) {
    case RtlOp::kAdd: out = l + r; break;
    case RtlOp::kSub: out = l - r; break;
    case RtlOp::kMul: out = l * r; break;
    case RtlOp::kDiv: out = r == 0 ? 0 : l / r; break;  // x/0 defined as 0
    case RtlOp::kLt: out = l < r ? 1 : 0; break;
    case RtlOp::kGt: out = l > r ? 1 : 0; break;
    case RtlOp::kEq: out = l == r ? 1 : 0; break;
    case RtlOp::kNe: out = l != r ? 1 : 0; break;
    case RtlOp::kShl: out = l << (r & 63); break;
    case RtlOp::kShr: out = l >> (r & 63); break;
    case RtlOp::kMove: out = l; break;
  }
  regs[s.dest] = out;
}

namespace {

// An edge in the simulation graph: either a real constraint arc or one of
// the implicit controller wrap-around constraints.
struct SimEdge {
  NodeId src;
  NodeId dst;
  int tokens = 0;
  bool inter_controller = false;  // subject to the single-wire discipline
  bool loop_body = false;         // out of a LOOP root, into its body
  bool loop_exit = false;         // out of a LOOP root, elsewhere
  // Into a LOOP root from outside the loop: consumed only when the loop
  // (re-)activates, not on every iteration — the controller samples its
  // environment request only in the start state.
  bool loop_entry = false;
};

struct Event {
  std::int64_t time;
  std::int64_t seq;
  NodeId node;
  bool operator>(const Event& o) const {
    return time != o.time ? time > o.time : seq > o.seq;
  }
};

class TokenSim {
 public:
  TokenSim(const Cdfg& g, const std::map<std::string, std::int64_t>& init,
           const TokenSimOptions& opts)
      : g_(g), opts_(opts), rng_(opts.seed) {
    result_.registers = init;
    build_edges();
  }

  TokenSimResult run() {
    // START has no incoming edges; everything begins there.
    for (NodeId n : g_.node_ids()) try_fire(n, 0);

    // Keep draining after END fires: with GT1 loop parallelism the final
    // iteration's stragglers may still be in flight when the loop exits
    // (the paper's stated timing assumption), and their register updates
    // must land before the result snapshot.
    while (!events_.empty()) {
      Event ev = events_.top();
      events_.pop();
      if (result_.firings > opts_.max_firings) {
        result_.error = "runaway simulation (firing budget exhausted)";
        return result_;
      }
      complete(ev.node, ev.time);
      if (!result_.error.empty()) return result_;
    }
    if (!result_.completed && result_.error.empty())
      result_.error = deadlock_report();
    return result_;
  }

 private:
  // The block rooted at n, if n is a LOOP/IF root.
  std::optional<BlockId> rooted_block(NodeId n) const {
    for (BlockId b : g_.block_ids())
      if (g_.block(b).root == n) return b;
    return std::nullopt;
  }

  void build_edges() {
    for (ArcId aid : g_.arc_ids()) {
      const Arc& a = g_.arc(aid);
      SimEdge e;
      e.src = a.src;
      e.dst = a.dst;
      e.tokens = a.backward ? 1 : 0;  // backward arcs pre-enabled (GT1)
      const Node& sn = g_.node(a.src);
      const Node& dn = g_.node(a.dst);
      e.inter_controller = sn.fu != dn.fu;
      if (sn.kind == NodeKind::kLoop) {
        auto b = rooted_block(a.src);
        bool into_body = b && in_block(g_, a.dst, *b);
        e.loop_body = into_body;
        e.loop_exit = !into_body;
      }
      if (dn.kind == NodeKind::kLoop) {
        auto b = rooted_block(a.dst);
        bool from_inside = b && (in_block(g_, a.src, *b) || g_.block(*b).end == a.src);
        e.loop_entry = !from_inside;
      }
      add_edge(e);
    }
    // Implicit wrap-around constraints: within each (FU, block) group the
    // controller cycles last -> first, and each loop's root refires after
    // its end node.  Pre-loaded with one token for the first repetition.
    for (FuId fu : g_.fu_ids()) {
      std::map<BlockId::underlying, std::pair<NodeId, NodeId>> group;
      for (NodeId n : g_.fu_order(fu)) {
        auto [it, ins] = group.try_emplace(g_.node(n).block.value(), std::make_pair(n, n));
        if (!ins) it->second.second = n;
      }
      for (const auto& [block, fl] : group) {
        (void)block;
        if (fl.first == fl.second) continue;
        add_edge(SimEdge{fl.second, fl.first, 1, false, false, false});
      }
    }
    for (BlockId b : g_.block_ids()) {
      const Block& blk = g_.block(b);
      if (blk.kind != NodeKind::kLoop || !blk.end.valid()) continue;
      add_edge(SimEdge{blk.end, blk.root, 1, false, false, false});
    }
  }

  void add_edge(SimEdge e) {
    std::size_t idx = edges_.size();
    edges_.push_back(e);
    out_edges_.resize(g_.node_capacity());
    in_edges_.resize(g_.node_capacity());
    out_edges_[e.src.index()].push_back(idx);
    in_edges_[e.dst.index()].push_back(idx);
  }

  std::int64_t draw_delay(const Node& n) {
    DelayRange r;
    switch (n.kind) {
      case NodeKind::kOperation:
        r = opts_.delays.op_delay(g_.fu(n.fu).cls);
        break;
      case NodeKind::kAssign:
        r = opts_.delays.move;
        break;
      default:
        r = opts_.delays.control;
        break;
    }
    if (!opts_.randomize_delays || r.min == r.max)
      return opts_.all_min_delays ? r.min : r.max;
    std::uniform_int_distribution<std::int64_t> dist(r.min, r.max);
    return dist(rng_);
  }

  // The innermost loop block enclosing a node (or its own block for LOOP /
  // ENDLOOP boundary nodes of a loop).
  std::optional<BlockId::underlying> loop_of(NodeId n) const {
    const Node& node = g_.node(n);
    if (node.kind == NodeKind::kLoop || node.kind == NodeKind::kEndLoop) {
      for (BlockId b : g_.block_ids())
        if (g_.block(b).root == n || g_.block(b).end == n) return b.value();
    }
    BlockId b = node.block;
    while (b.valid()) {
      if (g_.block(b).kind == NodeKind::kLoop) return b.value();
      b = g_.block(b).parent;
    }
    return std::nullopt;
  }

  void try_fire(NodeId n, std::int64_t now) {
    if (busy_.count(n.value())) return;
    if (!g_.node(n).alive) return;
    // A node with no incoming constraints (START) fires exactly once.
    if (in_edges_[n.index()].empty() && fired_source_.count(n.value())) return;
    // An already-active loop iterates on its internal constraints only; the
    // environment/entry tokens are consumed once per activation.
    bool active_loop = g_.node(n).kind == NodeKind::kLoop &&
                       loop_active_.count(n.value()) != 0;
    auto needed = [&](const SimEdge& e) { return !(active_loop && e.loop_entry); };
    for (std::size_t e : in_edges_[n.index()])
      if (needed(edges_[e]) && edges_[e].tokens == 0) return;
    for (std::size_t e : in_edges_[n.index()])
      if (needed(edges_[e])) --edges_[e].tokens;
    if (g_.node(n).kind == NodeKind::kLoop) loop_active_.insert(n.value());
    if (in_edges_[n.index()].empty()) fired_source_.insert(n.value());
    busy_.insert(n.value());
    ++result_.firings;

    // Sample inputs now (operands are latched into the datapath when the
    // operation starts); writes land at completion.
    const Node& node = g_.node(n);
    Pending p;
    p.firing_index = fire_count_[n.value()]++;
    p.active = blocks_active(n);
    if (node.kind == NodeKind::kOperation || node.kind == NodeKind::kAssign) {
      for (const auto& s : node.stmts) {
        std::map<std::string, std::int64_t> scratch = result_.registers;
        execute_statement(s, scratch);
        p.writes.emplace_back(s.dest, scratch[s.dest]);
      }
    } else if (node.kind == NodeKind::kLoop || node.kind == NodeKind::kIf) {
      p.cond = result_.registers[node.cond_reg];
    }
    pending_[n.value()] = std::move(p);

    if (opts_.record_times) result_.fire_times[n.value()].push_back(now);

    // Iteration-overlap metric: the spread of firing indices among
    // concurrently busy nodes of the same loop.
    if (auto ctx = loop_of(n)) {
      int lo = pending_[n.value()].firing_index, hi = lo;
      for (auto bn : busy_) {
        NodeId other{bn};
        if (loop_of(other) != ctx) continue;
        auto it = pending_.find(bn);
        if (it == pending_.end()) continue;
        lo = std::min(lo, it->second.firing_index);
        hi = std::max(hi, it->second.firing_index);
      }
      result_.max_overlap = std::max(result_.max_overlap, hi - lo + 1);
    }

    events_.push(Event{now + draw_delay(node), seq_++, n});
  }

  // True when every enclosing IF block is currently active.
  bool blocks_active(NodeId n) const {
    BlockId b = g_.node(n).block;
    while (b.valid()) {
      const Block& blk = g_.block(b);
      if (blk.kind == NodeKind::kIf && !if_active_.count(b.value())) return false;
      b = blk.parent;
    }
    return true;
  }

  void produce(std::size_t eidx, std::int64_t now) {
    SimEdge& e = edges_[eidx];
    ++e.tokens;
    if (opts_.check_wire_discipline && e.inter_controller && e.tokens > 1) {
      result_.error = "wire discipline violated: two transitions queued on " +
                      g_.node(e.src).label() + " -> " + g_.node(e.dst).label();
      return;
    }
    try_fire(e.dst, now);
  }

  void complete(NodeId n, std::int64_t now) {
    busy_.erase(n.value());
    const Node& node = g_.node(n);
    Pending p = pending_[n.value()];
    if (opts_.record_times) result_.completion_times[n.value()].push_back(now);

    bool loop_continue = false;
    switch (node.kind) {
      case NodeKind::kOperation:
      case NodeKind::kAssign:
        if (p.active)
          for (const auto& [reg, value] : p.writes) result_.registers[reg] = value;
        break;
      case NodeKind::kLoop: {
        if (opts_.forced_loop_iterations >= 0)
          loop_continue = p.firing_index < opts_.forced_loop_iterations;
        else
          loop_continue = p.active && p.cond != 0;
        if (!loop_continue) loop_active_.erase(n.value());
        if (loop_continue) ++result_.loop_iterations;
        break;
      }
      case NodeKind::kIf: {
        auto b = rooted_block(n);
        bool taken = opts_.forced_loop_iterations >= 0 ? p.active : (p.active && p.cond != 0);
        if (taken)
          if_active_.insert(b->value());
        else
          if_active_.erase(b->value());
        break;
      }
      case NodeKind::kEnd:
        result_.completed = true;
        result_.finish_time = now;
        break;
      default:
        break;
    }

    for (std::size_t eidx : out_edges_[n.index()]) {
      const SimEdge& e = edges_[eidx];
      if (node.kind == NodeKind::kLoop) {
        // Body arcs fire on continue, exit arcs on termination.  The
        // implicit wrap edges (not body, not exit) re-enable the root and
        // are produced on continue only; on exit the controller leaves the
        // loop for good.
        bool is_wrap = !e.loop_body && !e.loop_exit;
        if (loop_continue && e.loop_exit) continue;
        if (!loop_continue && (e.loop_body || is_wrap)) continue;
      }
      produce(eidx, now);
      if (!result_.error.empty()) return;
    }
    // The node itself may be immediately re-enabled (next iteration).
    try_fire(n, now);
  }

  std::string deadlock_report() const {
    // List nodes that hold some but not all of their input tokens — those
    // are the ones genuinely stuck (fully starved nodes are quiescent).
    std::string msg = "deadlock: END never fired; waiting nodes:";
    for (NodeId n : g_.node_ids()) {
      int have = 0, need = 0;
      for (std::size_t e : in_edges_[n.index()]) {
        ++need;
        if (edges_[e].tokens > 0) ++have;
      }
      if (need > 0 && have > 0 && have < need)
        msg += " [" + g_.node(n).label() + " " + std::to_string(have) + "/" +
               std::to_string(need) + "]";
    }
    return msg;
  }

  const Cdfg& g_;
  TokenSimOptions opts_;
  std::mt19937_64 rng_;
  TokenSimResult result_;
  std::vector<SimEdge> edges_;
  std::vector<std::vector<std::size_t>> in_edges_, out_edges_;
  struct Pending {
    std::vector<std::pair<std::string, std::int64_t>> writes;
    std::int64_t cond = 0;
    int firing_index = 0;
    bool active = true;
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::set<NodeId::underlying> busy_;
  std::map<NodeId::underlying, Pending> pending_;
  std::map<NodeId::underlying, int> fire_count_;
  std::set<BlockId::underlying> if_active_;
  std::set<NodeId::underlying> fired_source_;
  std::set<NodeId::underlying> loop_active_;
  std::int64_t seq_ = 0;
};

// Sequential golden model: nodes in creation-id order are the original
// program order (the builder emits them that way).
struct Sequential {
  const Cdfg& g;
  std::map<std::string, std::int64_t>& regs;
  std::int64_t steps = 0;
  std::int64_t max_steps;

  void run_scope(BlockId scope) {
    std::vector<NodeId> members;
    for (NodeId n : g.node_ids())
      if (g.node(n).block == scope) members.push_back(n);
    std::sort(members.begin(), members.end());
    run_members(members);
  }

  void run_members(const std::vector<NodeId>& members) {
    for (NodeId n : members) {
      const Node& node = g.node(n);
      switch (node.kind) {
        case NodeKind::kOperation:
        case NodeKind::kAssign:
          for (const auto& s : node.stmts) {
            if (++steps > max_steps) throw std::runtime_error("sequential model ran away");
            execute_statement(s, regs);
          }
          break;
        case NodeKind::kLoop: {
          BlockId b = owning_block(n);
          while (regs[node.cond_reg] != 0) {
            if (++steps > max_steps) throw std::runtime_error("sequential model ran away");
            run_scope(b);
          }
          break;
        }
        case NodeKind::kIf: {
          BlockId b = owning_block(n);
          if (regs[node.cond_reg] != 0) run_scope(b);
          break;
        }
        default:
          break;  // START/END/ENDLOOP/ENDIF: no effect
      }
    }
  }

  BlockId owning_block(NodeId root) const {
    for (BlockId b : g.block_ids())
      if (g.block(b).root == root) return b;
    throw std::logic_error("no block rooted at node");
  }
};

}  // namespace

TokenSimResult run_token_sim(const Cdfg& g,
                             const std::map<std::string, std::int64_t>& initial_registers,
                             const TokenSimOptions& opts) {
  return TokenSim(g, initial_registers, opts).run();
}

std::map<std::string, std::int64_t> run_sequential(
    const Cdfg& g, const std::map<std::string, std::int64_t>& initial_registers,
    std::int64_t max_steps) {
  std::map<std::string, std::int64_t> regs = initial_registers;
  Sequential seq{g, regs, 0, max_steps};
  seq.run_scope(BlockId::invalid());
  return regs;
}

}  // namespace adc
