#pragma once
// Datapath model for the gate-level (controller) simulation: registers with
// input muxes, functional units with operand muxes, and the 4-phase local
// handshake responders.  Muxes are combinational — a port follows its
// selected source until the FU computes or the register latches, which is
// what makes LT3's mux preselection safe to model faithfully.

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "cdfg/cdfg.hpp"
#include "cdfg/delay.hpp"
#include "cdfg/rtl.hpp"

namespace adc {

struct FuDatapath {
  // Current combinational selections.
  std::optional<Operand> left, right;
  std::optional<RtlOp> op;       // from op-select (multi-op units)
  std::int64_t result = 0;
  bool result_valid = false;
};

struct RegisterFile {
  std::map<std::string, std::int64_t> values;

  std::int64_t eval(const Operand& o) const {
    if (o.is_const()) return o.literal;
    auto it = values.find(o.reg);
    return o.eval(it == values.end() ? 0 : it->second);
  }
};

// Evaluates op(l, r) with the same semantics as the token simulator.
std::int64_t alu_compute(RtlOp op, std::int64_t l, std::int64_t r);

}  // namespace adc
