#pragma once
// Event-driven simulation of the complete synthesized system: the extracted
// (and locally-transformed) XBM controllers, the global ready wires, and a
// behavioural datapath (registers, muxes, functional units).
//
// This is the end-to-end verification the paper's flow implies: the
// distributed controllers must actually execute the RTL program.  The
// environment raises the start request, the controllers handshake through
// their global wires and drive the datapath, and the final register file is
// compared against the golden model by the caller.
//
// Wire semantics:
//  * global ready wires (channels) use transition signalling: a controller
//    waits for the next unconsumed transition (counted per controller),
//  * local controller-datapath wires are 4-phase levels: rising/falling
//    edges wait for the level; this models early arrivals naturally and
//    tolerates the acknowledge wires LT4 stopped observing,
//  * conditional inputs follow their condition register combinationally.
//
// LT5-shared wires are expanded through the alias table: one controller
// output drives every datapath action of the signals merged into it.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cdfg/delay.hpp"
#include "channel/channel.hpp"
#include "extract/extract.hpp"
#include "runtime/cancel.hpp"
#include "sim/critical_path.hpp"

namespace adc {

class VcdWriter;

struct ControllerInstance {
  ExtractedController controller;
  // LT5 aliases: (kept signal name, merged-away signal name).
  std::vector<std::pair<std::string, std::string>> shared_signals;
};

struct EventSimOptions {
  DelayModel delays = DelayModel::typical();
  std::uint64_t seed = 1;
  bool randomize_delays = true;
  std::int64_t max_time = 50000000;
  std::int64_t max_events = 2000000;
  // Optional waveform capture: channel wires under scope "channels", each
  // controller's local wires and state under its own scope.  Not owned.
  VcdWriter* vcd = nullptr;
  // Optional causal event log for critical-path attribution (not owned):
  // every scheduled event is appended with its scheduling parent, names
  // interned into the log's string tables; feed the log and
  // EventSimResult::final_event to analyze_critical_path().
  SimEventLog* event_log = nullptr;
  // Cooperative cancellation: the main loop polls this token (every 256
  // events) so a deadline watchdog can stop a runaway simulation.  Not
  // owned; null = never cancelled.
  const CancelToken* cancel = nullptr;
};

struct EventSimResult {
  bool completed = false;
  bool deadlocked = false;  // quiescent without every expected completion
  bool cancelled = false;   // stopped by EventSimOptions::cancel
  std::string error;
  std::map<std::string, std::int64_t> registers;
  std::int64_t finish_time = 0;
  std::int64_t events = 0;
  std::int64_t operations = 0;  // FU activations observed
  // Id (into EventSimOptions::event_log) of the last applied event at the
  // latest simulation time; -1 when no log was attached.
  std::int64_t final_event = -1;
};

// Simulates the system until the environment has received every completion
// it expects (one transition on each controller->ENV channel) and the
// system is quiescent.
EventSimResult run_event_sim(const Cdfg& g, const ChannelPlan& plan,
                             const std::vector<ControllerInstance>& controllers,
                             const std::map<std::string, std::int64_t>& initial_registers,
                             const EventSimOptions& opts = {});

}  // namespace adc
