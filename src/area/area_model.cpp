#include "area/area_model.hpp"

namespace adc {

std::size_t ControllerArea::transistor_estimate() const {
  return 2 * literals + 2 * products + 8 * state_bits + 4 * outputs;
}

std::size_t SystemArea::total_products() const {
  std::size_t n = 0;
  for (const auto& c : controllers) n += c.products;
  return n;
}

std::size_t SystemArea::total_literals() const {
  std::size_t n = 0;
  for (const auto& c : controllers) n += c.literals;
  return n;
}

std::size_t SystemArea::total_transistors() const {
  std::size_t n = 0;
  for (const auto& c : controllers) n += c.transistor_estimate();
  return n + 6 * global_wires;  // transition detectors on the ready wires
}

ControllerArea controller_area(const std::string& name, const GateStats& stats,
                               std::size_t outputs) {
  ControllerArea a;
  a.name = name;
  a.products = stats.products_shared;
  a.literals = stats.literals_shared;
  a.state_bits = stats.state_bits;
  a.outputs = outputs;
  return a;
}

}  // namespace adc
