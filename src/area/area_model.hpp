#pragma once
// Area and performance estimates for a synthesized system, used by the
// benches' summary rows.  Two-level logic area follows the usual SIS-style
// accounting: each literal costs two transistors in the AND plane, each
// product one OR-plane input per function it feeds, plus one C-element /
// flip-flop per state bit and a keeper per output.

#include <cstddef>
#include <string>
#include <vector>

#include "channel/channel.hpp"
#include "logic/stats.hpp"

namespace adc {

struct ControllerArea {
  std::string name;
  std::size_t products = 0;
  std::size_t literals = 0;
  std::size_t state_bits = 0;
  std::size_t outputs = 0;
  // 2 transistors per AND-plane literal + 2 per OR-plane product input
  // + 8 per feedback latch + 4 per output keeper.
  std::size_t transistor_estimate() const;
};

struct SystemArea {
  std::vector<ControllerArea> controllers;
  std::size_t global_wires = 0;

  std::size_t total_products() const;
  std::size_t total_literals() const;
  std::size_t total_transistors() const;
};

ControllerArea controller_area(const std::string& name, const GateStats& stats,
                               std::size_t outputs);

}  // namespace adc
