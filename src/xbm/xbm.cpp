#include "xbm/xbm.hpp"

#include <stdexcept>

namespace adc {

const char* to_string(SignalRole role) {
  switch (role) {
    case SignalRole::kGlobalReady: return "global-ready";
    case SignalRole::kEnvironment: return "environment";
    case SignalRole::kMuxSelect: return "mux-select";
    case SignalRole::kMuxAck: return "mux-ack";
    case SignalRole::kOpSelect: return "op-select";
    case SignalRole::kOpAck: return "op-ack";
    case SignalRole::kFuGo: return "fu-go";
    case SignalRole::kFuDone: return "fu-done";
    case SignalRole::kRegMuxSelect: return "regmux-select";
    case SignalRole::kRegMuxAck: return "regmux-ack";
    case SignalRole::kLatch: return "latch";
    case SignalRole::kLatchAck: return "latch-ack";
    case SignalRole::kConditional: return "conditional";
  }
  return "?";
}

SignalId Xbm::add_signal(std::string name, SignalKind kind, SignalRole role,
                         bool initial_value) {
  if (find_signal(name)) throw std::invalid_argument("xbm: duplicate signal " + name);
  SignalId id(signals_.size());
  signals_.push_back(XbmSignal{id, std::move(name), kind, role, initial_value});
  return id;
}

StateId Xbm::add_state(std::string name) {
  StateId id(states_.size());
  if (name.empty()) name = "s" + std::to_string(id.value());
  states_.push_back(XbmState{id, std::move(name), true});
  if (!initial_.valid()) initial_ = id;
  return id;
}

TransitionId Xbm::add_transition(StateId from, StateId to, std::vector<XbmEdge> inputs,
                                 std::vector<XbmEdge> outputs, std::vector<CondTerm> conds) {
  TransitionId id(transitions_.size());
  XbmTransition t;
  t.id = id;
  t.from = from;
  t.to = to;
  t.inputs = std::move(inputs);
  t.outputs = std::move(outputs);
  t.conds = std::move(conds);
  transitions_.push_back(std::move(t));
  return id;
}

std::optional<SignalId> Xbm::find_signal(const std::string& name) const {
  for (const auto& s : signals_)
    if (s.name == name) return s.id;
  return std::nullopt;
}

std::vector<SignalId> Xbm::signal_ids() const {
  std::vector<SignalId> out;
  for (const auto& s : signals_) out.push_back(s.id);
  return out;
}

std::vector<StateId> Xbm::state_ids() const {
  std::vector<StateId> out;
  for (const auto& s : states_)
    if (s.alive) out.push_back(s.id);
  return out;
}

std::vector<TransitionId> Xbm::transition_ids() const {
  std::vector<TransitionId> out;
  for (const auto& t : transitions_)
    if (t.alive) out.push_back(t.id);
  return out;
}

std::vector<TransitionId> Xbm::out_transitions(StateId s) const {
  std::vector<TransitionId> out;
  for (const auto& t : transitions_)
    if (t.alive && t.from == s) out.push_back(t.id);
  return out;
}

std::vector<TransitionId> Xbm::in_transitions(StateId s) const {
  std::vector<TransitionId> out;
  for (const auto& t : transitions_)
    if (t.alive && t.to == s) out.push_back(t.id);
  return out;
}

std::size_t Xbm::state_count() const { return state_ids().size(); }
std::size_t Xbm::transition_count() const { return transition_ids().size(); }

std::size_t Xbm::input_count() const {
  std::size_t n = 0;
  for (const auto& s : signals_)
    if (s.kind == SignalKind::kInput) ++n;
  return n;
}

std::size_t Xbm::output_count() const {
  std::size_t n = 0;
  for (const auto& s : signals_)
    if (s.kind == SignalKind::kOutput) ++n;
  return n;
}

void Xbm::sweep_dead_states() {
  for (auto& s : states_) {
    if (!s.alive) continue;
    bool used = s.id == initial_;
    for (const auto& t : transitions_)
      if (t.alive && (t.from == s.id || t.to == s.id)) used = true;
    if (!used) s.alive = false;
  }
}

XbmEdge rise(SignalId s) { return XbmEdge{s, EdgePolarity::kRising, false}; }
XbmEdge fall(SignalId s) { return XbmEdge{s, EdgePolarity::kFalling, false}; }
XbmEdge toggle(SignalId s) { return XbmEdge{s, EdgePolarity::kToggle, false}; }
XbmEdge ddc(XbmEdge e) {
  e.directed_dont_care = true;
  return e;
}

}  // namespace adc
