#pragma once
// Extended Burst-Mode (XBM) asynchronous finite state machines — the
// controller specification produced by extraction (paper §4) and rewritten
// by the local transformations (paper §5).
//
// A transition fires when its *input burst* (a set of signal edges) has
// completely arrived while its *conditionals* (level-sampled signals, the
// XBM extension) hold; it then emits its *output burst*.  Edges may be
// marked as directed don't-cares (the other XBM extension): the edge may
// arrive anywhere from where it is first mentioned up to the transition
// where it appears compulsorily.
//
// Edge polarity: local controller-datapath handshakes use concrete rising /
// falling phases of a 4-phase protocol.  Global ready wires use *transition
// signalling* (a single toggle, no acknowledgment; paper §2.2) and are
// written with kToggle polarity; the implementation phase (+ or -) is
// assigned per instance when the two-level logic is synthesized, exactly
// as the paper's Figure 11 shows assigned phases like A1M+.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cdfg/ids.hpp"

namespace adc {

enum class SignalKind { kInput, kOutput };

// What the wire is for; drives naming, LT applicability and area reports.
enum class SignalRole {
  kGlobalReady,   // inter-controller ready wire (either direction)
  kEnvironment,   // environment request/done
  kMuxSelect,     // FU input mux select (local req)
  kMuxAck,        // FU input mux acknowledge
  kOpSelect,      // FU operation select
  kOpAck,         // FU operation-select acknowledge
  kFuGo,          // FU activation request
  kFuDone,        // FU completion (genuinely variable latency)
  kRegMuxSelect,  // register input mux select
  kRegMuxAck,
  kLatch,         // register latch strobe
  kLatchAck,
  kConditional,   // level-sampled condition register bit
};

const char* to_string(SignalRole role);

struct XbmSignal {
  SignalId id;
  std::string name;
  SignalKind kind = SignalKind::kInput;
  SignalRole role = SignalRole::kGlobalReady;
  bool initial_value = false;
};

enum class EdgePolarity { kRising, kFalling, kToggle };

struct XbmEdge {
  SignalId signal;
  EdgePolarity polarity = EdgePolarity::kToggle;
  bool directed_dont_care = false;

  friend bool operator==(const XbmEdge&, const XbmEdge&) = default;
};

struct CondTerm {
  SignalId signal;
  bool value = true;  // <s+> or <s->

  friend bool operator==(const CondTerm&, const CondTerm&) = default;
};

struct XbmState {
  StateId id;
  std::string name;
  bool alive = true;
};

struct XbmTransition {
  TransitionId id;
  StateId from;
  StateId to;
  std::vector<XbmEdge> inputs;    // the input burst
  std::vector<CondTerm> conds;    // sampled conditionals
  std::vector<XbmEdge> outputs;   // the output burst
  NodeId origin;                  // CDFG node this belongs to (diagnostics)
  std::string note;               // micro-operation label, e.g. "do operation"
  bool alive = true;
};

class Xbm {
 public:
  explicit Xbm(std::string name = "ctrl") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  SignalId add_signal(std::string name, SignalKind kind, SignalRole role,
                      bool initial_value = false);
  StateId add_state(std::string name = {});
  TransitionId add_transition(StateId from, StateId to, std::vector<XbmEdge> inputs,
                              std::vector<XbmEdge> outputs,
                              std::vector<CondTerm> conds = {});

  void set_initial(StateId s) { initial_ = s; }
  StateId initial() const { return initial_; }

  const XbmSignal& signal(SignalId id) const { return signals_.at(id.index()); }
  XbmSignal& signal(SignalId id) { return signals_.at(id.index()); }
  const XbmState& state(StateId id) const { return states_.at(id.index()); }
  XbmState& state(StateId id) { return states_.at(id.index()); }
  const XbmTransition& transition(TransitionId id) const { return transitions_.at(id.index()); }
  XbmTransition& transition(TransitionId id) { return transitions_.at(id.index()); }

  std::optional<SignalId> find_signal(const std::string& name) const;

  std::vector<SignalId> signal_ids() const;
  std::vector<StateId> state_ids() const;          // live states
  std::vector<TransitionId> transition_ids() const;  // live transitions
  std::vector<TransitionId> out_transitions(StateId s) const;
  std::vector<TransitionId> in_transitions(StateId s) const;

  std::size_t state_count() const;       // live
  std::size_t transition_count() const;  // live
  std::size_t input_count() const;
  std::size_t output_count() const;

  void remove_transition(TransitionId id) { transitions_.at(id.index()).alive = false; }
  void remove_state(StateId id) { states_.at(id.index()).alive = false; }

  // Removes states with no live transitions and merges trivial chains is
  // left to the local transforms; this only drops fully dead states.
  void sweep_dead_states();

 private:
  std::string name_;
  std::vector<XbmSignal> signals_;
  std::vector<XbmState> states_;
  std::vector<XbmTransition> transitions_;
  StateId initial_;
};

// Helpers for building bursts.
XbmEdge rise(SignalId s);
XbmEdge fall(SignalId s);
XbmEdge toggle(SignalId s);
XbmEdge ddc(XbmEdge e);  // marks the edge as a directed don't-care

}  // namespace adc
