#include "xbm/validate.hpp"

#include <deque>
#include <map>
#include <set>
#include <stdexcept>

namespace adc {

namespace {

// Per-state values of concrete-phase signals (toggle-signalled wires carry
// no level semantics at spec time and are excluded).
using Values = std::map<SignalId::underlying, bool>;

bool apply_edges(const Xbm& m, const std::vector<XbmEdge>& edges, Values& v,
                 std::vector<std::string>& errors, const std::string& where) {
  bool ok = true;
  for (const auto& e : edges) {
    if (e.polarity == EdgePolarity::kToggle) continue;
    bool want_before = e.polarity == EdgePolarity::kFalling;
    auto it = v.find(e.signal.value());
    bool before = it != v.end() ? it->second : m.signal(e.signal).initial_value;
    if (before != want_before) {
      errors.push_back(where + ": signal " + m.signal(e.signal).name + (want_before ? "-" : "+") +
                       " but it is already " + (before ? "1" : "0"));
      ok = false;
    }
    v[e.signal.value()] = !want_before;
  }
  return ok;
}

// Compulsory (non-ddc) input signals of a transition.
std::set<SignalId::underlying> compulsory(const XbmTransition& t) {
  std::set<SignalId::underlying> out;
  for (const auto& e : t.inputs)
    if (!e.directed_dont_care) out.insert(e.signal.value());
  return out;
}

bool conds_distinguish(const XbmTransition& a, const XbmTransition& b) {
  for (const auto& ca : a.conds)
    for (const auto& cb : b.conds)
      if (ca.signal == cb.signal && ca.value != cb.value) return true;
  return false;
}

}  // namespace

std::vector<std::string> validate(const Xbm& m) {
  std::vector<std::string> errors;

  if (!m.initial().valid() || !m.state(m.initial()).alive) {
    errors.push_back("missing initial state");
    return errors;
  }

  for (TransitionId tid : m.transition_ids()) {
    const XbmTransition& t = m.transition(tid);
    std::string where = m.name() + " " + m.state(t.from).name + "->" + m.state(t.to).name;
    if (!m.state(t.from).alive || !m.state(t.to).alive)
      errors.push_back(where + ": touches dead state");
    bool any_compulsory = false;
    for (const auto& e : t.inputs) {
      if (m.signal(e.signal).kind != SignalKind::kInput)
        errors.push_back(where + ": output " + m.signal(e.signal).name + " in input burst");
      if (!e.directed_dont_care) any_compulsory = true;
    }
    if (!any_compulsory)
      errors.push_back(where + ": no compulsory edge in input burst");
    for (const auto& e : t.outputs)
      if (m.signal(e.signal).kind != SignalKind::kOutput)
        errors.push_back(where + ": input " + m.signal(e.signal).name + " in output burst");
    for (const auto& c : t.conds)
      if (m.signal(c.signal).role != SignalRole::kConditional)
        errors.push_back(where + ": conditional on non-conditional signal " +
                         m.signal(c.signal).name);
    std::set<SignalId::underlying> seen;
    for (const auto& e : t.inputs)
      if (!seen.insert(e.signal.value()).second)
        errors.push_back(where + ": signal twice in input burst");
    seen.clear();
    for (const auto& e : t.outputs)
      if (!seen.insert(e.signal.value()).second)
        errors.push_back(where + ": signal twice in output burst");
  }

  // Distinguishability: out of one state, no transition's compulsory input
  // set may contain another's unless mutually exclusive conditionals tell
  // them apart (the XBM generalization of the maximal-set property).
  for (StateId s : m.state_ids()) {
    auto outs = m.out_transitions(s);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      for (std::size_t j = i + 1; j < outs.size(); ++j) {
        const auto& a = m.transition(outs[i]);
        const auto& b = m.transition(outs[j]);
        if (conds_distinguish(a, b)) continue;
        auto ca = compulsory(a), cb = compulsory(b);
        bool a_in_b = std::includes(cb.begin(), cb.end(), ca.begin(), ca.end());
        bool b_in_a = std::includes(ca.begin(), ca.end(), cb.begin(), cb.end());
        if (a_in_b || b_in_a)
          errors.push_back(m.name() + " state " + m.state(s).name +
                           ": ambiguous input bursts (maximal-set violation)");
      }
    }
  }

  // Reachability and polarity consistency.  The value maps are fully
  // populated so that maps from different paths compare structurally.
  Values initial_values;
  for (SignalId s : m.signal_ids())
    if (m.signal(s).role != SignalRole::kConditional)
      initial_values[s.value()] = m.signal(s).initial_value;
  std::map<StateId::underlying, Values> state_values;
  std::deque<StateId> queue;
  state_values[m.initial().value()] = initial_values;
  queue.push_back(m.initial());
  std::set<StateId::underlying> visited;
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    if (!visited.insert(s.value()).second) continue;
    for (TransitionId tid : m.out_transitions(s)) {
      const XbmTransition& t = m.transition(tid);
      Values v = state_values[s.value()];
      std::string where = m.name() + " " + m.state(t.from).name + "->" + m.state(t.to).name;
      apply_edges(m, t.inputs, v, errors, where + " (inputs)");
      apply_edges(m, t.outputs, v, errors, where + " (outputs)");
      auto it = state_values.find(t.to.value());
      if (it == state_values.end()) {
        state_values[t.to.value()] = v;
        queue.push_back(t.to);
      } else if (it->second != v) {
        errors.push_back(m.name() + " state " + m.state(t.to).name +
                         ": inconsistent signal values on different paths");
      } else if (!visited.count(t.to.value())) {
        queue.push_back(t.to);
      }
    }
  }
  for (StateId s : m.state_ids())
    if (!visited.count(s.value()))
      errors.push_back(m.name() + " state " + m.state(s).name + ": unreachable");

  return errors;
}

void validate_or_throw(const Xbm& m) {
  auto errors = validate(m);
  if (errors.empty()) return;
  std::string msg = "XBM '" + m.name() + "' invalid:";
  for (const auto& e : errors) msg += "\n  - " + e;
  throw std::runtime_error(msg);
}

}  // namespace adc
