#include "xbm/parse.hpp"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace adc {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::invalid_argument("xbm parse error at line " + std::to_string(line) + ": " + msg);
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string t;
  while (is >> t) {
    if (t[0] == ';') break;  // comment
    out.push_back(t);
  }
  return out;
}

struct PendingEdge {
  std::string name;
  EdgePolarity polarity;
  bool ddc;
};

// Parses "name+", "name-", "name~", each optionally followed by '*'.
PendingEdge parse_edge(std::string t, int line) {
  PendingEdge e{};
  if (!t.empty() && t.back() == '*') {
    e.ddc = true;
    t.pop_back();
  }
  if (t.size() < 2) fail(line, "malformed edge '" + t + "'");
  char suffix = t.back();
  t.pop_back();
  switch (suffix) {
    case '+': e.polarity = EdgePolarity::kRising; break;
    case '-': e.polarity = EdgePolarity::kFalling; break;
    case '~': e.polarity = EdgePolarity::kToggle; break;
    default: fail(line, std::string("unknown edge suffix '") + suffix + "'");
  }
  e.name = std::move(t);
  return e;
}

SignalRole role_from_name(const std::string& name) {
  static const std::map<std::string, SignalRole> roles = {
      {"global-ready", SignalRole::kGlobalReady},
      {"environment", SignalRole::kEnvironment},
      {"mux-select", SignalRole::kMuxSelect},
      {"mux-ack", SignalRole::kMuxAck},
      {"op-select", SignalRole::kOpSelect},
      {"op-ack", SignalRole::kOpAck},
      {"fu-go", SignalRole::kFuGo},
      {"fu-done", SignalRole::kFuDone},
      {"regmux-select", SignalRole::kRegMuxSelect},
      {"regmux-ack", SignalRole::kRegMuxAck},
      {"latch", SignalRole::kLatch},
      {"latch-ack", SignalRole::kLatchAck},
      {"conditional", SignalRole::kConditional},
  };
  auto it = roles.find(name);
  if (it == roles.end()) throw std::invalid_argument("unknown role name '" + name + "'");
  return it->second;
}

}  // namespace

Xbm parse_xbm(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;

  std::string name = "xbm";
  struct Decl {
    SignalKind kind;
    bool initial;
  };
  std::vector<std::pair<std::string, Decl>> decls;
  std::map<std::string, SignalRole> role_overrides;
  std::string initial_state;
  struct RawTransition {
    std::string from, to;
    std::vector<std::pair<std::string, bool>> conds;
    std::vector<PendingEdge> inputs, outputs;
    int line;
  };
  std::vector<RawTransition> raw;

  while (std::getline(in, line)) {
    ++lineno;
    auto toks = tokens_of(line);
    if (toks.empty()) continue;
    if (toks[0] == "name") {
      if (toks.size() != 2) fail(lineno, "name needs one argument");
      name = toks[1];
    } else if (toks[0] == "inputs" || toks[0] == "outputs") {
      for (std::size_t i = 1; i < toks.size(); ++i) {
        std::string t = toks[i];
        bool init = false;
        auto eq = t.find('=');
        if (eq != std::string::npos) {
          init = t.substr(eq + 1) == "1";
          t = t.substr(0, eq);
        }
        decls.emplace_back(
            t, Decl{toks[0] == "inputs" ? SignalKind::kInput : SignalKind::kOutput, init});
      }
    } else if (toks[0] == "initial") {
      if (toks.size() != 2) fail(lineno, "initial needs one state name");
      initial_state = toks[1];
    } else if (toks[0] == "role") {
      if (toks.size() != 3) fail(lineno, "role needs <signal> <role-name>");
      role_overrides[toks[1]] = role_from_name(toks[2]);
    } else {
      // Transition: <from> <to> [<cond±> ...] edges... / edges...
      if (toks.size() < 3) fail(lineno, "malformed transition");
      RawTransition t;
      t.line = lineno;
      t.from = toks[0];
      t.to = toks[1];
      bool after_slash = false;
      for (std::size_t i = 2; i < toks.size(); ++i) {
        const std::string& tok = toks[i];
        if (tok == "/") {
          if (after_slash) fail(lineno, "two '/' separators");
          after_slash = true;
          continue;
        }
        if (tok.size() >= 4 && tok.front() == '<' && tok.back() == '>') {
          char pol = tok[tok.size() - 2];
          if (pol != '+' && pol != '-') fail(lineno, "malformed conditional " + tok);
          t.conds.emplace_back(tok.substr(1, tok.size() - 3), pol == '+');
          continue;
        }
        (after_slash ? t.outputs : t.inputs).push_back(parse_edge(tok, lineno));
      }
      if (!after_slash) fail(lineno, "transition missing '/'");
      raw.push_back(std::move(t));
    }
  }

  Xbm m(name);
  std::map<std::string, SignalId> signals;
  auto infer_role = [&](const std::string& sig) {
    if (auto it = role_overrides.find(sig); it != role_overrides.end()) return it->second;
    bool cond = false, toggled = false;
    for (const auto& t : raw) {
      for (const auto& [c, v] : t.conds) {
        (void)v;
        if (c == sig) cond = true;
      }
      for (const auto& e : t.inputs)
        if (e.name == sig && e.polarity == EdgePolarity::kToggle) toggled = true;
      for (const auto& e : t.outputs)
        if (e.name == sig && e.polarity == EdgePolarity::kToggle) toggled = true;
    }
    if (cond) return SignalRole::kConditional;
    if (toggled) return SignalRole::kGlobalReady;
    return SignalRole::kLatch;  // generic local handshake wire
  };
  for (const auto& [sig, decl] : decls)
    signals[sig] = m.add_signal(sig, decl.kind, infer_role(sig), decl.initial);

  auto lookup = [&](const std::string& sig, int at) {
    auto it = signals.find(sig);
    if (it == signals.end()) fail(at, "undeclared signal '" + sig + "'");
    return it->second;
  };

  std::map<std::string, StateId> states;
  auto state_of = [&](const std::string& s) {
    auto it = states.find(s);
    if (it != states.end()) return it->second;
    StateId id = m.add_state(s);
    states[s] = id;
    return id;
  };
  if (!initial_state.empty()) m.set_initial(state_of(initial_state));

  for (const auto& t : raw) {
    std::vector<XbmEdge> ins, outs;
    std::vector<CondTerm> conds;
    for (const auto& e : t.inputs) {
      XbmEdge edge{lookup(e.name, t.line), e.polarity, e.ddc};
      ins.push_back(edge);
    }
    for (const auto& e : t.outputs) {
      if (e.ddc) fail(t.line, "don't-care mark on an output edge");
      outs.push_back(XbmEdge{lookup(e.name, t.line), e.polarity, false});
    }
    for (const auto& [c, v] : t.conds) conds.push_back(CondTerm{lookup(c, t.line), v});
    m.add_transition(state_of(t.from), state_of(t.to), std::move(ins), std::move(outs),
                     std::move(conds));
  }
  if (initial_state.empty() && !states.empty()) m.set_initial(raw.empty() ? m.add_state() : state_of(raw[0].from));
  return m;
}

}  // namespace adc
