#pragma once
// XBM well-formedness checks: reachability, burst sanity, polarity
// consistency of concrete-phase signals, and the (extended) burst-mode
// maximal-set / distinguishability property.  Empty result = valid.

#include <string>
#include <vector>

#include "xbm/xbm.hpp"

namespace adc {

std::vector<std::string> validate(const Xbm& m);
void validate_or_throw(const Xbm& m);

}  // namespace adc
