#include "xbm/print.hpp"

#include <sstream>

namespace adc {

namespace {

std::string edge_to_string(const Xbm& m, const XbmEdge& e) {
  std::string out = m.signal(e.signal).name;
  switch (e.polarity) {
    case EdgePolarity::kRising: out += '+'; break;
    case EdgePolarity::kFalling: out += '-'; break;
    case EdgePolarity::kToggle: out += '~'; break;
  }
  if (e.directed_dont_care) out += '*';
  return out;
}

}  // namespace

std::string burst_to_string(const Xbm& m, const XbmTransition& t) {
  std::string out;
  for (const auto& c : t.conds) {
    out += '<';
    out += m.signal(c.signal).name;
    out += c.value ? '+' : '-';
    out += "> ";
  }
  for (std::size_t i = 0; i < t.inputs.size(); ++i) {
    if (i) out += ' ';
    out += edge_to_string(m, t.inputs[i]);
  }
  out += " / ";
  for (std::size_t i = 0; i < t.outputs.size(); ++i) {
    if (i) out += ' ';
    out += edge_to_string(m, t.outputs[i]);
  }
  return out;
}

std::string to_text(const Xbm& m) {
  std::ostringstream os;
  os << "; XBM controller " << m.name() << "\n";
  os << "name " << m.name() << "\n";
  os << "inputs";
  for (SignalId s : m.signal_ids())
    if (m.signal(s).kind == SignalKind::kInput)
      os << ' ' << m.signal(s).name << (m.signal(s).initial_value ? "=1" : "=0");
  os << "\noutputs";
  for (SignalId s : m.signal_ids())
    if (m.signal(s).kind == SignalKind::kOutput)
      os << ' ' << m.signal(s).name << (m.signal(s).initial_value ? "=1" : "=0");
  os << "\ninitial " << m.state(m.initial()).name << "\n";
  for (TransitionId t : m.transition_ids()) {
    const auto& tr = m.transition(t);
    os << m.state(tr.from).name << ' ' << m.state(tr.to).name << ' '
       << burst_to_string(m, tr);
    if (!tr.note.empty()) os << "  ; " << tr.note;
    os << "\n";
  }
  return os.str();
}

}  // namespace adc
