#pragma once
// Parser for the textual XBM format produced by to_text() — enables
// writing controller specifications by hand, storing them on disk, and
// round-tripping machines through files (the interchange role .bms files
// play for Minimalist / 3D).
//
//   name CTRL
//   inputs a=0 b=0 c=0
//   outputs x=0 y=0
//   initial s0
//   s0 s1 <c+> a+ b~* / x+
//   s1 s0 b~ / x- y~
//
// Suffixes: '+' rising, '-' falling, '~' transition-signalled (toggle),
// trailing '*' marks a directed don't-care.  '<sig+>' / '<sig->' are
// sampled conditionals.  ';' starts a comment.  Signal roles are inferred
// from usage (toggles -> global ready wires, conditionals -> conditionals,
// the rest -> generic local handshake wires) unless the optional
// "role <signal> <role-name>" lines override them.

#include <string>

#include "xbm/xbm.hpp"

namespace adc {

Xbm parse_xbm(const std::string& text);

}  // namespace adc
