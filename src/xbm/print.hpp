#pragma once
// Textual rendering of XBM machines, close to the .bms format used by
// burst-mode tools (Minimalist / 3D): one line per transition,
//   <from> <to> [<cond+>] in1+ in2* ... / out1+ out2- ...
// where '*' marks a directed don't-care and '~' a transition-signalled
// (toggle) edge.

#include <string>

#include "xbm/xbm.hpp"

namespace adc {

std::string to_text(const Xbm& m);
std::string burst_to_string(const Xbm& m, const XbmTransition& t);

}  // namespace adc
