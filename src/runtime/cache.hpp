#pragma once
// Content-addressed stage cache for the flow executor.
//
// A synthesis run is a chain of pure stages (parse -> transform step ->
// ... -> extract).  Each stage's result is addressed by a fingerprint of
// everything that determined it: the program text, the normalized script
// prefix applied so far, and the option/delay-model rendering.  Recipes
// that share a prefix — `gt1; gt2` vs `gt1; gt2; gt3` — therefore share
// the upstream work: the second run starts from the cached post-`gt2`
// graph instead of recomputing it.
//
// Concurrency contract: get_or_compute() deduplicates in-flight work.  The
// first caller computes inline on its own thread; concurrent callers with
// the same key block on the shared future (the producer is running on a
// live thread, never parked in a pool queue, so this cannot deadlock).
// A compute that throws is erased so later callers retry.
//
// Values are immutable once inserted (shared_ptr<const T>); consumers that
// need a mutable copy clone.  Eviction is LRU over *ready* entries, bounded
// by entry count.

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "runtime/fault.hpp"
#include "runtime/fingerprint.hpp"

namespace adc {

struct CacheStats {
  std::uint64_t hits = 0;      // served from a ready entry
  std::uint64_t joins = 0;     // waited on another thread's in-flight compute
  std::uint64_t misses = 0;    // computed here
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;   // current resident entries
  std::uint64_t bytes = 0;     // shallow payload bytes (sizeof each entry)

  double hit_rate() const {
    std::uint64_t total = hits + joins + misses;
    return total ? static_cast<double>(hits + joins) / static_cast<double>(total) : 0.0;
  }
};

class StageCache {
 public:
  // capacity == 0 disables caching entirely (every call computes).
  explicit StageCache(std::size_t capacity = 1024) : capacity_(capacity) {}

  template <typename T, typename Fn>
  std::shared_ptr<const T> get_or_compute(const Fingerprint& key, Fn&& compute) {
    if (capacity_ == 0) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::make_shared<const T>(compute());
    }
    auto erased = lookup_or_claim(key);
    if (erased.first) {  // someone else owns / owned it
      return std::static_pointer_cast<const T>(erased.second.get());
    }
    try {
      // Injection site: a compute that dies after claiming the slot must
      // abandon it so joined waiters rethrow and later callers retry.
      fault().maybe_fail_or_stall("cache.compute", key.hex());
      auto value = std::make_shared<const T>(compute());
      fulfill(key, value, sizeof(T));
      return value;
    } catch (...) {
      abandon(key, std::current_exception());
      throw;
    }
  }

  CacheStats stats() const;
  void clear();

 private:
  using Any = std::shared_ptr<const void>;

  // Returns {true, future} when the key is (being) computed elsewhere;
  // {false, _} when the caller claimed the slot and must fulfill/abandon.
  std::pair<bool, std::shared_future<Any>> lookup_or_claim(const Fingerprint& key);
  void fulfill(const Fingerprint& key, Any value, std::size_t bytes);
  void abandon(const Fingerprint& key, std::exception_ptr err);
  void evict_locked();

  struct Slot {
    std::promise<Any> promise;
    std::shared_future<Any> future;
    bool ready = false;
    std::uint64_t lru = 0;
    std::size_t bytes = 0;
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::map<Fingerprint, Slot> slots_;
  std::uint64_t tick_ = 0;
  std::uint64_t bytes_ = 0;  // guarded by mu_
  std::atomic<std::uint64_t> hits_{0}, joins_{0}, misses_{0}, evictions_{0};
};

}  // namespace adc
