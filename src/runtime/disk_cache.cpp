#include "runtime/disk_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#ifdef _WIN32
#include <process.h>
#define adc_getpid _getpid
#else
#include <unistd.h>
#define adc_getpid getpid
#endif

#include "runtime/fault.hpp"

namespace fs = std::filesystem;

namespace adc {

namespace {

constexpr char kMagic[4] = {'A', 'D', 'C', 'K'};
constexpr std::size_t kHeaderSize = 24;
constexpr const char* kSuffix = ".adcstage";

void put_u32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void put_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}
std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

// Reads a whole file; empty optional on any error.
std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return std::nullopt;
  return data;
}

// Validates a raw file image; returns the payload or sets `defect`.
std::optional<std::string> decode(const std::string& raw, std::string* defect) {
  if (raw.size() < kHeaderSize) {
    if (defect) *defect = "short file";
    return std::nullopt;
  }
  if (std::memcmp(raw.data(), kMagic, 4) != 0) {
    if (defect) *defect = "bad magic";
    return std::nullopt;
  }
  std::uint32_t version = get_u32(raw.data() + 4);
  if (version != DiskCache::kFormatVersion) {
    if (defect) *defect = "version mismatch";
    return std::nullopt;
  }
  std::uint64_t len = get_u64(raw.data() + 8);
  if (raw.size() != kHeaderSize + len) {
    if (defect) *defect = "length mismatch";
    return std::nullopt;
  }
  std::string payload = raw.substr(kHeaderSize);
  if (DiskCache::checksum(payload) != get_u64(raw.data() + 16)) {
    if (defect) *defect = "checksum mismatch";
    return std::nullopt;
  }
  return payload;
}

}  // namespace

std::uint64_t DiskCache::checksum(const std::string& payload) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (unsigned char c : payload) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

DiskCache::DiskCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
  if (dir_.empty()) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) dir_.clear();  // unusable directory: run disabled, not wrong
}

std::string DiskCache::path_for(const std::string& key) const {
  return (fs::path(dir_) / (key + kSuffix)).string();
}

std::optional<std::string> DiskCache::get(const std::string& key) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  fault().maybe_fail_or_stall("disk.get", key);
  fs::path path = path_for(key);
  auto raw = read_file(path);
  if (!raw) {
    ++stats_.misses;
    return std::nullopt;
  }
  std::string defect;
  auto payload = decode(*raw, &defect);
  if (!payload) {
    // Defective entry: evict so the next run recomputes and heals it.
    std::error_code ec;
    fs::remove(path, ec);
    ++stats_.corrupt;
    ++stats_.misses;
    return std::nullopt;
  }
  // Refresh mtime so LRU eviction sees this entry as recently used.
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  ++stats_.hits;
  return payload;
}

bool DiskCache::put(const std::string& key, const std::string& payload) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  try {
    fault().maybe_fail_or_stall("disk.put", key);

    std::string image;
    image.reserve(kHeaderSize + payload.size());
    image.append(kMagic, 4);
    put_u32(image, kFormatVersion);
    put_u64(image, payload.size());
    put_u64(image, checksum(payload));
    image += payload;

    // Simulated torn writes: the injector mangles the bytes we are about
    // to persist, exactly what a crash mid-write leaves behind.
    fault().mutate_payload("disk.put.payload", image, key);

    fs::path final_path = path_for(key);
    fs::path tmp_path = final_path;
    tmp_path += ".tmp." + std::to_string(adc_getpid());

    {
      std::FILE* f = std::fopen(tmp_path.string().c_str(), "wb");
      if (!f) throw std::runtime_error("open failed");
      std::size_t wrote = image.empty()
                              ? 0
                              : std::fwrite(image.data(), 1, image.size(), f);
      int flush_rc = std::fflush(f);
#ifndef _WIN32
      // fsync before rename: the atomic commit is only atomic if the
      // payload bytes are durable first.
      if (fsync(fileno(f)) != 0) flush_rc = -1;
#endif
      std::fclose(f);
      if (wrote != image.size() || flush_rc != 0) {
        std::error_code ec;
        fs::remove(tmp_path, ec);
        throw std::runtime_error("write failed");
      }
    }

    // Crash window: `drop` leaves the temp file behind and skips the
    // rename, modelling a process killed between write and commit.
    if (fault().check("disk.put.commit", key) == FaultAction::kDrop) {
      ++stats_.put_errors;
      return false;
    }

    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
      fs::remove(tmp_path, ec);
      throw std::runtime_error("rename failed");
    }
    ++stats_.puts;
    evict_to_budget();
    return true;
  } catch (const std::exception&) {
    ++stats_.put_errors;
    return false;
  }
}

bool DiskCache::contains(const std::string& key) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  return fs::exists(path_for(key), ec);
}

bool DiskCache::remove(const std::string& key, bool count_corrupt) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  bool removed = fs::remove(path_for(key), ec) && !ec;
  if (removed && count_corrupt) ++stats_.corrupt;
  return removed;
}

std::uint64_t DiskCache::total_bytes_locked() const {
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir_, ec)) {
    if (ent.path().extension() == kSuffix)
      total += fs::file_size(ent.path(), ec);
  }
  return total;
}

std::uint64_t DiskCache::total_bytes() const {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_locked();
}

void DiskCache::evict_to_budget() {
  if (max_bytes_ == 0) return;
  struct File {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size;
  };
  std::vector<File> files;
  std::error_code ec;
  std::uint64_t total = 0;
  for (const auto& ent : fs::directory_iterator(dir_, ec)) {
    if (ent.path().extension() != kSuffix) continue;
    std::uint64_t size = fs::file_size(ent.path(), ec);
    files.push_back(File{ent.path(), fs::last_write_time(ent.path(), ec), size});
    total += size;
  }
  if (total <= max_bytes_) return;
  std::sort(files.begin(), files.end(),
            [](const File& a, const File& b) { return a.mtime < b.mtime; });
  for (const File& f : files) {
    if (total <= max_bytes_) break;
    fs::remove(f.path, ec);
    if (!ec) {
      total -= f.size;
      ++stats_.evictions;
    }
  }
}

DiskCache::Stats DiskCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<DiskCache::ScanEntry> DiskCache::scan(const std::string& dir) {
  std::vector<ScanEntry> out;
  std::error_code ec;
  std::vector<fs::path> paths;
  for (const auto& ent : fs::directory_iterator(dir, ec))
    if (ent.path().extension() == kSuffix) paths.push_back(ent.path());
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    ScanEntry e;
    e.key = p.stem().string();
    auto raw = read_file(p);
    if (!raw) {
      e.defect = "unreadable";
    } else {
      auto payload = decode(*raw, &e.defect);
      if (payload) {
        e.valid = true;
        e.payload_bytes = payload->size();
      }
    }
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace adc
