#pragma once
// Disk tier for the stage cache: fingerprint-keyed files that survive
// restarts.
//
// One entry is one file `<key>.adcstage` under the cache directory, where
// `key` is the entry's fingerprint in hex.  The on-disk format is a small
// checksummed header followed by an opaque payload:
//
//   offset  size  field
//        0     4  magic "ADCK"
//        4     4  format version (little-endian u32)
//        8     8  payload length (little-endian u64)
//       16     8  FNV-1a 64 checksum of the payload (little-endian u64)
//       24     N  payload bytes
//
// Crash safety: put() writes to `<key>.adcstage.tmp.<pid>`, flushes and
// fsyncs it, then renames over the final name — readers see either the
// old entry or the complete new one, never a partial write.  get() treats
// *any* defect (bad magic, unknown version, length mismatch, checksum
// mismatch, short file) as a miss and evicts the file, so a corrupted
// cache degrades to cold, never to wrong answers.
//
// The cache keeps a byte budget: after each put the least-recently-used
// entries (by file mtime, refreshed on hit) are removed until the total
// is back under `max_bytes`.
//
// Fault-injection sites (src/runtime/fault.hpp): `disk.get`, `disk.put`,
// `disk.put.payload` (corrupt/truncate/shortwrite the bytes about to be
// written), `disk.put.commit` (drop = crash before the rename).
//
// Deliberately dependency-free (std::filesystem only) so adc_trace and
// light tools can link it without pulling in the runtime.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace adc {

class DiskCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t puts = 0;
    std::uint64_t evictions = 0;   // LRU size-cap removals
    std::uint64_t corrupt = 0;     // defective entries detected + removed
    std::uint64_t put_errors = 0;  // failed writes (I/O errors, faults)
  };

  struct ScanEntry {
    std::string key;
    std::uint64_t payload_bytes = 0;
    bool valid = false;
    std::string defect;  // why invalid ("bad magic", "checksum mismatch"...)
  };

  static constexpr std::uint32_t kFormatVersion = 1;

  // An empty dir disables the cache (every get misses, every put is a
  // no-op); max_bytes==0 means unlimited.
  explicit DiskCache(std::string dir, std::uint64_t max_bytes = 0);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  // Returns the payload, or nullopt on miss / defect (defective files are
  // unlinked).  A hit refreshes the entry's mtime for LRU.
  std::optional<std::string> get(const std::string& key);

  // Atomically stores key -> payload.  Failures (I/O errors, injected
  // faults) are swallowed and counted: the disk tier is an accelerator,
  // never a correctness dependency.  Returns true when the entry landed.
  bool put(const std::string& key, const std::string& payload);

  bool contains(const std::string& key);

  // Unlinks an entry whose *payload* a caller found defective — the header
  // checksum only guards the transport; callers with richer payload
  // framing (the logic memo) evict at their own layer through this.
  // Returns true when a file was removed; count_corrupt ticks the corrupt
  // stat so scrapes see the eviction.
  bool remove(const std::string& key, bool count_corrupt = false);

  std::uint64_t total_bytes() const;

  // Thread-safe: one FlowExecutor's workers share a single instance.
  Stats stats() const;

  // Offline integrity scan of a cache directory (adc_obs_check
  // --cache-dir): validates every *.adcstage file without mutating it.
  static std::vector<ScanEntry> scan(const std::string& dir);

  // FNV-1a 64 — the checksum the header uses (exposed for tests).
  static std::uint64_t checksum(const std::string& payload);

 private:
  std::string path_for(const std::string& key) const;
  void evict_to_budget();
  std::uint64_t total_bytes_locked() const;

  mutable std::mutex mu_;
  std::string dir_;
  std::uint64_t max_bytes_ = 0;
  Stats stats_;
};

}  // namespace adc
