#pragma once
// Deadline watchdog: converts a hung stage into a structured timeout.
//
// One lazily started background thread sleeps until the earliest armed
// deadline and trips the associated CancelToken with the caller's reason.
// Stages arm a deadline on entry and disarm on exit (see WatchdogGuard);
// a stage that never returns is cancelled cooperatively — the event-sim
// loop and the covering loop observe the token and unwind — so the job
// reports `status=timeout` instead of wedging its worker forever.
//
// The watchdog never cancels anything by force; it only requests.  A
// stage stuck in code without checkpoints (a pathological third-party
// call) will still hold its thread, but the *job's* outcome is recorded
// and the rest of the batch proceeds.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "runtime/cancel.hpp"

namespace adc {

class Watchdog {
 public:
  using Clock = std::chrono::steady_clock;

  // Process-wide instance (the background thread is started on first use
  // and intentionally leaked: it must outlive static destructors of
  // arbitrary translation units).
  static Watchdog& global();

  // Arms a deadline `delay_ms` from now; when it expires the token is
  // tripped with `reason`.  Returns an id for disarm().
  std::uint64_t arm(const CancelToken& token, std::uint64_t delay_ms,
                    const std::string& reason);

  // Cancels a pending deadline.  Safe to call after expiry (no-op).
  void disarm(std::uint64_t id);

  // Number of currently armed deadlines (for tests / metrics).
  std::size_t armed() const;

 private:
  Watchdog() = default;
  void ensure_thread();
  void run();

  struct Entry {
    CancelToken token;
    Clock::time_point deadline;
    std::string reason;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t next_id_ = 1;
  bool thread_started_ = false;
};

// RAII deadline: arms on construction (when delay_ms > 0), disarms on
// destruction.  A zero delay is "no deadline" so call sites can thread an
// optional budget through unconditionally.
class WatchdogGuard {
 public:
  WatchdogGuard() = default;
  WatchdogGuard(const CancelToken& token, std::uint64_t delay_ms,
                const std::string& reason) {
    if (delay_ms > 0) id_ = Watchdog::global().arm(token, delay_ms, reason);
  }
  ~WatchdogGuard() { disarm(); }
  WatchdogGuard(const WatchdogGuard&) = delete;
  WatchdogGuard& operator=(const WatchdogGuard&) = delete;
  WatchdogGuard(WatchdogGuard&& o) noexcept : id_(o.id_) { o.id_ = 0; }
  WatchdogGuard& operator=(WatchdogGuard&& o) noexcept {
    if (this != &o) {
      disarm();
      id_ = o.id_;
      o.id_ = 0;
    }
    return *this;
  }

  void disarm() {
    if (id_ != 0) Watchdog::global().disarm(id_);
    id_ = 0;
  }

 private:
  std::uint64_t id_ = 0;
};

}  // namespace adc
