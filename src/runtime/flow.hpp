#pragma once
// The parallel synthesis runtime's flow executor.
//
// One synthesis run is modelled as a DAG of stages
//
//   frontend -> gt-step* -> extract(+local transforms) -> logic -> event-sim
//
// executed with per-stage wall-clock timing and metrics.  Two mechanisms
// make batch design-space exploration fast:
//
//  * a content-addressed StageCache: the frontend result, every global
//    transform *prefix* (the graph state after `gt1`, after `gt1; gt2`,
//    ...) and the extracted+locally-transformed controller set are each
//    addressed by a fingerprint of program text, normalized script prefix
//    and delay model.  Recipes sharing a prefix — exactly the shape of the
//    paper's Figure 12/13 ablation grids — recompute nothing upstream of
//    their first differing step;
//  * a work-stealing ThreadPool: run_all() fans independent recipe
//    evaluations across workers, and within one run the per-controller
//    work (local transforms + two-level logic synthesis) is forked as
//    nested subtasks.
//
// All stage results are immutable shared snapshots; workers clone before
// mutating, so a FlowExecutor (and its cache) is safe to share across the
// whole pool.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cdfg/cdfg.hpp"
#include "logic/memo.hpp"
#include "obs/trace_context.hpp"
#include "runtime/cache.hpp"
#include "runtime/cancel.hpp"
#include "runtime/disk_cache.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/event_sim.hpp"
#include "trace/provenance.hpp"
#include "transforms/script.hpp"

namespace adc {

class Tracer;

// Structured outcome of one flow run (the scheduler-grade job lifecycle:
// a failing point is *classified*, never just "not ok").
enum class FlowStatus {
  kOk,         // completed, every controller feasible, sim (if any) passed
  kDeadlock,   // the event simulation stalled (the E8 corners)
  kTimeout,    // a stage/job deadline fired and the run unwound
  kCancelled,  // an external CancelToken stopped the run
  kFault,      // an injected fault fired (fault.hpp test plans)
  kError,      // any other failure (infeasible logic, bad input, ...)
};
const char* to_string(FlowStatus s);

// One synthesis job: a program, a transformation recipe and the
// verification inputs.
struct FlowRequest {
  // Display name; doubles as the cache identity when `source` is empty, so
  // it must uniquely name the program (builtin benchmark names do).
  std::string benchmark;
  // Program text in the frontend DSL.  Empty: `make` supplies the graph.
  std::string source;
  std::function<Cdfg()> make;
  // Transformation recipe (transforms/script.hpp syntax).
  std::string script = "gt1; gt2; gt3; gt4; gt2; gt5; lt";
  // Event-simulation inputs; empty `init` with simulate=true still runs
  // (registers default to 0 in the simulator's datapath).
  std::map<std::string, std::int64_t> init;
  EventSimOptions sim;
  bool simulate = true;
  DelayModel delays = DelayModel::typical();
  // Build the reconciled per-run ProvenanceReport (FlowPoint::provenance).
  bool provenance = false;
  // Record the simulator's causal event log and attribute the end-to-end
  // latency (FlowPoint::critical_path).  Implies nothing unless simulate.
  bool critical_path = false;
  // Robustness budgets (0 = unlimited).  When a deadline fires the job's
  // CancelToken trips, the stages unwind cooperatively and the point is
  // reported with status=timeout instead of wedging its worker.
  std::uint64_t stage_deadline_ms = 0;  // per-stage wall budget
  std::uint64_t deadline_ms = 0;        // whole-job wall budget
  // External cancellation; shared with the deadline watchdog.
  CancelToken cancel;
  // Request-scoped trace (obs/trace_context.hpp).  When active, run()
  // parents one span per executed stage — frontend, each gt step,
  // per-controller synthesis, sim, disk probe/replay — under it, so a
  // serving daemon exports one connected tree per job.  Default-empty:
  // the batch CLIs pay two null checks per stage.
  obs::TraceContext trace;
};

struct ControllerMetrics {
  std::string name;
  std::size_t states = 0;       // after local transforms
  std::size_t transitions = 0;  // after local transforms
  std::size_t states_extracted = 0;       // as extracted, before LT
  std::size_t transitions_extracted = 0;  // as extracted, before LT
  std::size_t products = 0;  // shared-product counting (Figure 13)
  std::size_t literals = 0;
  std::size_t state_bits = 0;  // encoding width (area model's latches)
  std::size_t outputs = 0;     // non-state output functions
  bool feasible = true;
};

// The cached post-extraction artifact: the final channel plan, the
// controllers after local transforms, and their gate-level metrics.
struct ControllerSet {
  ChannelPlan plan;
  std::vector<ControllerInstance> instances;
  std::vector<ControllerMetrics> controllers;
  // Per-controller LT pipeline log (decisions included), index-aligned with
  // `instances`; empty TransformResults when the script has no lt step.
  std::vector<TransformResult> local_results;
};

struct StageTiming {
  std::string stage;
  std::uint64_t micros = 0;      // wall time
  std::uint64_t cpu_micros = 0;  // executing thread's CPU time
  bool cached = false;           // served from the stage cache
};

// Figure-12/13 style quality metrics of one evaluated design point.
struct FlowPoint {
  std::string benchmark;
  std::string script;  // normalized rendering
  std::size_t channels = 0;
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::size_t products = 0;
  std::size_t literals = 0;
  std::int64_t latency = 0;
  std::int64_t sim_events = 0;
  std::int64_t sim_operations = 0;
  // Final register file of the event simulation (empty when simulate=false).
  std::map<std::string, std::int64_t> sim_registers;
  bool ok = false;
  bool deadlocked = false;  // the event simulation stalled (E8 corners)
  // Structured outcome; run() always sets it.  Defaults to kOk so that
  // hand-built points JSON-render from the ok/deadlocked booleans alone.
  FlowStatus status = FlowStatus::kOk;
  // Evaluation attempts a retrying driver (adc_dse) spent on this point.
  unsigned attempts = 1;
  // Served from the persistent disk tier (artifacts/graph are not
  // rehydrated — metrics, registers and timings are).
  bool from_disk_cache = false;
  std::string error;
  std::vector<ControllerMetrics> controllers;
  std::vector<StageTiming> timings;
  std::uint64_t total_micros = 0;
  // The post-extraction artifacts this point was measured from (shared
  // with the cache; never mutate).
  std::shared_ptr<const ControllerSet> artifacts;
  // The fully transformed graph (shares ownership with the cached global
  // snapshot; never mutate).  Null when the flow failed before transforms.
  std::shared_ptr<const Cdfg> graph;
  // Reconciled decision log (only when FlowRequest::provenance was set).
  std::shared_ptr<const ProvenanceReport> provenance;
  // Latency attribution (only when FlowRequest::critical_path + simulate).
  std::shared_ptr<const CriticalPathResult> critical_path;
};

// JSON serialization of one point / a batch report (uses report/json.hpp).
// `extra` appends flat string members (e.g. {"vcd", "out.vcd"}) to the
// point object.
std::string to_json(const FlowPoint& p);
void write_json(class JsonWriter& w, const FlowPoint& p,
                const std::vector<std::pair<std::string, std::string>>& extra = {});

// Inverse of to_json for the disk-tier cache: rebuilds the metric fields
// of a FlowPoint (artifacts/graph/provenance stay null).  Throws
// std::runtime_error on malformed input.
FlowPoint parse_flow_point(const std::string& json);

class FlowExecutor {
 public:
  struct Options {
    std::size_t cache_capacity = 1024;  // 0 disables stage caching
    bool fan_out_controllers = true;    // per-controller nested subtasks
    // Optional span tracer (borrowed, not owned).  Every stage of every
    // run records a span, annotated with its cache disposition; pool and
    // cache gauges are sampled as counter tracks.  Null = tracing off.
    Tracer* tracer = nullptr;
    // Persistent disk tier: completed ok/deadlock points are stored as
    // checksummed JSON under this directory and replayed on the next run
    // (runtime/disk_cache.hpp).  Empty = disabled.
    std::string disk_cache_dir;
    std::uint64_t disk_cache_bytes = 256ull << 20;  // LRU cap; 0 = unlimited
  };

  // `pool` may be null: everything runs on the calling thread.  The pool
  // is borrowed, not owned.
  explicit FlowExecutor(ThreadPool* pool = nullptr);
  FlowExecutor(ThreadPool* pool, Options opts);

  // Evaluates one design point (thread-safe; callable from pool tasks).
  FlowPoint run(const FlowRequest& req);

  // Evaluates a batch, fanning across the pool when present.  Results are
  // in request order.
  std::vector<FlowPoint> run_all(const std::vector<FlowRequest>& reqs);

  MetricsRegistry& metrics() { return metrics_; }
  const StageCache& cache() const { return cache_; }
  // Null unless Options::disk_cache_dir was set.
  DiskCache* disk_cache() { return disk_.get(); }
  // Content-addressed cover memo shared by every run of this executor
  // (capacity 0 when stage caching is disabled).
  LogicMemo& logic_memo() { return *logic_memo_; }
  ThreadPool* pool() const { return pool_; }

 private:
  struct GlobalSnapshot;  // graph + accumulated pipeline log after a prefix

  std::shared_ptr<const Cdfg> frontend_stage(const FlowRequest& req, Fingerprint& key,
                                             FlowPoint& p,
                                             const obs::TraceContext& otrace);
  std::shared_ptr<const GlobalSnapshot> global_stage(const FlowRequest& req,
                                                     const TransformScript& script,
                                                     std::shared_ptr<const Cdfg> parsed,
                                                     Fingerprint key, FlowPoint& p,
                                                     const obs::TraceContext& otrace);
  std::shared_ptr<const ControllerSet> controller_stage(
      const TransformScript& script, std::shared_ptr<const GlobalSnapshot> snap,
      const Fingerprint& key, FlowPoint& p, const CancelToken& cancel,
      const obs::TraceContext& otrace);
  std::shared_ptr<const ProvenanceReport> build_provenance(const FlowPoint& p,
                                                           const Cdfg& initial,
                                                           const GlobalSnapshot& snap,
                                                           const ControllerSet& set);
  // Samples pool/cache occupancy into the metrics gauges (and, when a
  // tracer is attached, its counter tracks).
  void sample_gauges();

  ThreadPool* pool_;
  Options opts_;
  StageCache cache_;
  std::unique_ptr<DiskCache> disk_;
  std::unique_ptr<LogicMemo> logic_memo_;
  MetricsRegistry metrics_;
};

// --- builtin benchmark registry for the CLIs ------------------------------
// Name -> graph factory + the register file the bundled examples simulate
// with (matching bench/ablation_design_space.cpp).
struct BuiltinBenchmark {
  std::string name;
  Cdfg (*make)();
  std::map<std::string, std::int64_t> init;
};

const std::vector<BuiltinBenchmark>& builtin_benchmarks();
const BuiltinBenchmark* find_builtin(const std::string& name);

// Request for a builtin benchmark (deterministic sim, fixed delays).
FlowRequest make_builtin_request(const BuiltinBenchmark& b, std::string script);

// The 32-recipe GT ablation grid (every gt1..gt5 on/off combination, the
// paper's standard step order, local transforms appended) — the grid the
// Figure 12/13 reproduction sweeps.
std::vector<std::string> gt_ablation_grid(bool with_lt = true);

// Canonical script rendering of transforms/pipeline.hpp's fixed step order
// for a set of pipeline options — the bridge from the option-struct API the
// benches use onto the runtime's content-addressed recipes.  `gt`/`lt`
// gate the global pipeline / the local-transform step wholesale.
std::string script_for(const GlobalPipelineOptions& o, bool gt, bool lt,
                       const LocalTransformOptions& lt_opts = {});

}  // namespace adc
