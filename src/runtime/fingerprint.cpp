#include "runtime/fingerprint.hpp"

#include <cstdio>

namespace adc {

namespace {
constexpr std::uint64_t kPrimeHi = 0x100000001b3ull;
constexpr std::uint64_t kPrimeLo = 0x00000100000001b3ull ^ 0x9e3779b97f4a7c15ull;
}  // namespace

std::string Fingerprint::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx", static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

void FingerprintBuilder::mix(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    fp_.hi = (fp_.hi ^ p[i]) * kPrimeHi;
    fp_.lo = (fp_.lo ^ p[i]) * kPrimeLo;
  }
}

FingerprintBuilder& FingerprintBuilder::add(const std::string& s) {
  std::uint64_t len = s.size();
  mix(&len, sizeof len);  // length-prefix: "ab"+"c" != "a"+"bc"
  mix(s.data(), s.size());
  return *this;
}

FingerprintBuilder& FingerprintBuilder::add(std::int64_t v) {
  mix(&v, sizeof v);
  return *this;
}

FingerprintBuilder& FingerprintBuilder::add(std::uint64_t v) {
  mix(&v, sizeof v);
  return *this;
}

FingerprintBuilder& FingerprintBuilder::add(const Fingerprint& f) {
  mix(&f.hi, sizeof f.hi);
  mix(&f.lo, sizeof f.lo);
  return *this;
}

}  // namespace adc
