#include "runtime/cache.hpp"

namespace adc {

std::pair<bool, std::shared_future<StageCache::Any>> StageCache::lookup_or_claim(
    const Fingerprint& key) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    it->second.lru = ++tick_;
    (it->second.ready ? hits_ : joins_).fetch_add(1, std::memory_order_relaxed);
    std::shared_future<Any> fut = it->second.future;
    lk.unlock();
    return {true, std::move(fut)};
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Slot slot;
  slot.future = slot.promise.get_future().share();
  slot.lru = ++tick_;
  slots_.emplace(key, std::move(slot));
  return {false, {}};
}

void StageCache::fulfill(const Fingerprint& key, Any value, std::size_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end()) return;  // evicted/cleared mid-compute; drop
  it->second.promise.set_value(std::move(value));
  it->second.ready = true;
  it->second.bytes = bytes;
  bytes_ += bytes;
  evict_locked();
}

void StageCache::abandon(const Fingerprint& key, std::exception_ptr err) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end()) return;
  it->second.promise.set_exception(std::move(err));
  // Joined waiters see the exception; future callers recompute.
  slots_.erase(it);
}

void StageCache::evict_locked() {
  while (slots_.size() > capacity_) {
    auto victim = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (!it->second.ready) continue;  // never evict in-flight work
      if (victim == slots_.end() || it->second.lru < victim->second.lru) victim = it;
    }
    if (victim == slots_.end()) return;
    bytes_ -= victim->second.bytes;
    slots_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

CacheStats StageCache::stats() const {
  // The counters tick under mu_ (lookup_or_claim), so reading them under
  // the same lock makes the snapshot internally consistent: a scrape can
  // rely on hits + joins + misses == lookups, never a torn total from
  // loading one counter before and one after a concurrent lookup.
  std::lock_guard<std::mutex> lk(mu_);
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.joins = joins_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = slots_.size();
  s.bytes = bytes_;
  return s;
}

void StageCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->second.ready) {
      bytes_ -= it->second.bytes;
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace adc
