#include "runtime/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace adc {

namespace {

// splitmix64 — tiny, seedable, good enough for fire/skip decisions.
std::uint64_t next_rand(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\n");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\n");
  return s.substr(b, e - b + 1);
}

// Splits on `sep` at bracket depth zero, so "flow.x[a; b]=fail;y=stall"
// yields two entries.
std::vector<std::string> split_outside_brackets(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : s) {
    if (c == '[') ++depth;
    else if (c == ']' && depth > 0) --depth;
    if (c == sep && depth == 0) {
      if (!trim(cur).empty()) out.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!trim(cur).empty()) out.push_back(trim(cur));
  return out;
}

FaultAction parse_action(const std::string& name) {
  if (name == "fail") return FaultAction::kFail;
  if (name == "stall") return FaultAction::kStall;
  if (name == "corrupt") return FaultAction::kCorrupt;
  if (name == "truncate") return FaultAction::kTruncate;
  if (name == "shortwrite") return FaultAction::kShortWrite;
  if (name == "drop") return FaultAction::kDrop;
  throw std::invalid_argument("unknown fault action '" + name + "'");
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("bad fault ") + what + " '" + s + "'");
  }
}

}  // namespace

const char* to_string(FaultAction a) {
  switch (a) {
    case FaultAction::kNone: return "none";
    case FaultAction::kFail: return "fail";
    case FaultAction::kStall: return "stall";
    case FaultAction::kCorrupt: return "corrupt";
    case FaultAction::kTruncate: return "truncate";
    case FaultAction::kShortWrite: return "shortwrite";
    case FaultAction::kDrop: return "drop";
  }
  return "none";
}

FaultInjector::Entry FaultInjector::parse_entry(const std::string& text) {
  // site[filter]=action(arg):count@after%pct — filter/arg/count/after/pct
  // all optional.
  std::size_t eq = std::string::npos;
  int depth = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '[') ++depth;
    else if (text[i] == ']' && depth > 0) --depth;
    else if (text[i] == '=' && depth == 0) { eq = i; break; }
  }
  if (eq == std::string::npos)
    throw std::invalid_argument("fault entry '" + text + "' has no '='");

  Entry e;
  std::string lhs = trim(text.substr(0, eq));
  std::string rhs = trim(text.substr(eq + 1));
  if (lhs.empty() || rhs.empty())
    throw std::invalid_argument("fault entry '" + text + "' is incomplete");

  std::size_t br = lhs.find('[');
  if (br != std::string::npos) {
    if (lhs.back() != ']')
      throw std::invalid_argument("fault entry '" + text + "': unclosed filter");
    e.filter = lhs.substr(br + 1, lhs.size() - br - 2);
    lhs = trim(lhs.substr(0, br));
  }
  e.site = lhs;

  // Peel the modifiers off the right end of rhs: %pct, @after, :count.
  auto peel = [&](char mark) -> std::string {
    std::size_t p = rhs.rfind(mark);
    if (p == std::string::npos || rhs.find(')', p) != std::string::npos)
      return {};
    std::string v = trim(rhs.substr(p + 1));
    rhs = trim(rhs.substr(0, p));
    return v;
  };
  if (std::string v = peel('%'); !v.empty()) {
    std::uint64_t pct = parse_u64(v, "percentage");
    if (pct > 100) throw std::invalid_argument("fault percentage > 100");
    e.pct = static_cast<unsigned>(pct);
  }
  if (std::string v = peel('@'); !v.empty()) e.after = parse_u64(v, "offset");
  if (std::string v = peel(':'); !v.empty()) e.count = parse_u64(v, "count");

  std::size_t paren = rhs.find('(');
  if (paren != std::string::npos) {
    if (rhs.back() != ')')
      throw std::invalid_argument("fault entry '" + text + "': unclosed arg");
    e.arg_ms = parse_u64(rhs.substr(paren + 1, rhs.size() - paren - 2), "argument");
    rhs = trim(rhs.substr(0, paren));
  }
  e.action = parse_action(rhs);
  return e;
}

void FaultInjector::configure(const std::string& spec) {
  std::vector<Entry> parsed;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  for (const std::string& part : split_outside_brackets(spec, ';')) {
    if (part.rfind("seed=", 0) == 0) {
      seed = parse_u64(part.substr(5), "seed");
      continue;
    }
    parsed.push_back(parse_entry(part));
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(parsed);
  fired_.clear();
  rng_ = seed;
  total_fired_ = 0;
}

void FaultInjector::configure_from_env() {
  const char* env = std::getenv("ADC_FAULT");
  if (env && *env) configure(env);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  fired_.clear();
  total_fired_ = 0;
  rng_ = 0x9e3779b97f4a7c15ull;
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !entries_.empty();
}

FaultAction FaultInjector::check(const std::string& site,
                                 const std::string& detail,
                                 std::uint64_t* arg_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return FaultAction::kNone;
  for (Entry& e : entries_) {
    if (e.site != site) continue;
    if (!e.filter.empty() && detail.find(e.filter) == std::string::npos)
      continue;
    std::uint64_t hit = e.hits++;
    if (hit < e.after) continue;
    if (e.count == 0) continue;
    if (e.pct < 100 && next_rand(rng_) % 100 >= e.pct) continue;
    if (e.count != UINT64_MAX) --e.count;
    ++total_fired_;
    bool counted = false;
    for (Fired& f : fired_)
      if (f.site == site) { ++f.n; counted = true; break; }
    if (!counted) fired_.push_back(Fired{site, 1});
    if (arg_ms) *arg_ms = e.arg_ms;
    return e.action;
  }
  return FaultAction::kNone;
}

void FaultInjector::maybe_fail_or_stall(const std::string& site,
                                        const std::string& detail,
                                        const CancelToken* cancel) {
  std::uint64_t arg_ms = 0;
  FaultAction a = check(site, detail, &arg_ms);
  if (a == FaultAction::kNone) return;
  if (a == FaultAction::kFail) throw FaultInjectedError(site);
  if (a == FaultAction::kStall) {
    // Sleep in small slices so an armed watchdog can cut the stall short
    // through the token — exactly how a real hung stage is reclaimed.
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(arg_ms);
    while (std::chrono::steady_clock::now() < until) {
      if (cancel && cancel->cancelled()) cancel->throw_if_cancelled();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  // Payload actions are meaningless at plain code sites; ignore.
}

FaultAction FaultInjector::mutate_payload(const std::string& site,
                                          std::string& payload,
                                          const std::string& detail,
                                          const CancelToken* cancel) {
  std::uint64_t arg_ms = 0;
  FaultAction a = check(site, detail, &arg_ms);
  switch (a) {
    case FaultAction::kNone:
    case FaultAction::kDrop:
      break;
    case FaultAction::kFail:
      throw FaultInjectedError(site);
    case FaultAction::kStall: {
      auto until = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(arg_ms);
      while (std::chrono::steady_clock::now() < until) {
        if (cancel && cancel->cancelled()) cancel->throw_if_cancelled();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      break;
    }
    case FaultAction::kCorrupt:
      // Flip a bit near the middle and one near the end — enough to defeat
      // any checksum without changing the length.
      if (!payload.empty()) {
        payload[payload.size() / 2] ^= 0x40;
        payload[payload.size() - 1] ^= 0x01;
      }
      break;
    case FaultAction::kTruncate:
      payload.resize(payload.size() / 2);
      break;
    case FaultAction::kShortWrite:
      // As if the process died after the first few bytes hit the disk.
      payload.resize(std::min<std::size_t>(payload.size(), 7));
      break;
  }
  return a;
}

std::uint64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_fired_;
}

std::uint64_t FaultInjector::injected_at(const std::string& site_prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const Fired& f : fired_)
    if (f.site.rfind(site_prefix, 0) == 0) n += f.n;
  return n;
}

FaultInjector& fault() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

}  // namespace adc
