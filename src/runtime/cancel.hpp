#pragma once
// Cooperative cancellation.
//
// A CancelToken is a cheap, copyable handle onto a shared cancellation
// flag.  Producers (deadline watchdogs, signal handlers, a user pressing
// ^C in a driver) call request(); consumers poll cancelled() at loop
// boundaries — the event simulator's main loop, the minimizer's covering
// loop, every FlowExecutor stage boundary — and unwind by throwing
// CancelledError.  The token records the *first* request's reason so the
// unwound outcome can distinguish "deadline exceeded" from "user abort".
//
// Header-only on purpose: adc_sim and adc_logic can honour tokens without
// growing a link dependency on the runtime library.

#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

namespace adc {

// Thrown by cancellation checkpoints; carries the token's reason.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& reason)
      : std::runtime_error(reason.empty() ? "cancelled" : reason) {}
};

class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  // Trips the token.  Only the first reason sticks; later requests are
  // no-ops so a watchdog firing after a user abort doesn't relabel it.
  void request(const std::string& reason = "cancelled") const {
    if (state_->flag.exchange(true, std::memory_order_acq_rel)) return;
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->reason = reason;
  }

  bool cancelled() const {
    return state_->flag.load(std::memory_order_acquire);
  }

  std::string reason() const {
    if (!cancelled()) return {};
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->reason;
  }

  // Checkpoint: throws CancelledError when the token has been tripped.
  void throw_if_cancelled() const {
    if (cancelled()) throw CancelledError(reason());
  }

  // Tokens compare equal when they share the same flag.
  bool same(const CancelToken& other) const { return state_ == other.state_; }

 private:
  struct State {
    std::atomic<bool> flag{false};
    mutable std::mutex mu;
    std::string reason;
  };
  std::shared_ptr<State> state_;
};

}  // namespace adc
