#pragma once
// Runtime metrics — monotonic counters and stage-duration histograms,
// snapshot-able and JSON-serializable.  The flow executor threads one
// registry through every stage so a batch DSE run can report cache hit
// rates, per-stage latency distributions and pool throughput the way a
// production service would.
//
// Counters are lock-free after registration (atomic increments on a stable
// pointer); the registry mutex only guards name lookup/creation.
// Histograms use power-of-two microsecond buckets: bucket i counts
// durations in [2^i, 2^(i+1)) µs, which spans 1 µs .. ~1 hour in 32
// buckets — plenty for synthesis stages.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace adc {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins instantaneous value (queue depth, cache occupancy).
// Samplable into a trace as counter events; signed so deltas can go
// negative transiently.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record_micros(std::uint64_t micros);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum_micros() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max_micros() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Approximate quantile (upper bucket bound), q in [0,1].
  std::uint64_t quantile_micros(double q) const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  // Returned references stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Commits a related batch of gauge values under the registry mutex —
  // the same lock gauges() snapshots under — so a reader sees either all
  // of the batch or none of it.  Individual Gauge::set() calls give no
  // such guarantee (the mutex there only covers name lookup), which is
  // how the serve `stats` op used to observe disk.hits from one sample
  // next to disk.misses from the previous one.
  void update_gauges(
      const std::vector<std::pair<std::string, std::int64_t>>& values);

  // Point-in-time snapshot (name -> value / aggregate).
  struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::uint64_t sum_micros = 0;
    std::uint64_t max_micros = 0;
    std::uint64_t p50_micros = 0;
    std::uint64_t p90_micros = 0;
    std::uint64_t p99_micros = 0;
  };
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, std::int64_t> gauges() const;
  std::map<std::string, HistogramSnapshot> histograms() const;

  // {"counters": {...}, "gauges": {...},
  //  "histograms": {name: {count, sum_us, mean_us, ...}}}
  std::string to_json() const;
  // Same object streamed into an enclosing report (adc_dse --json).
  void write_json(class JsonWriter& w) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Current thread's consumed CPU time in microseconds
// (CLOCK_THREAD_CPUTIME_ID on POSIX; a process-wide std::clock fallback
// elsewhere).  Monotonic per thread — subtract two samples for a span.
std::uint64_t thread_cpu_micros();

// RAII stage timer: records elapsed wall time into a histogram (and
// optional per-run wall/CPU accumulators) on destruction.  CPU time is the
// executing thread's, so cached stages show near-zero CPU while a wall
// measurement still captures lock waits.
class StageTimer {
 public:
  explicit StageTimer(Histogram* hist, std::uint64_t* out_micros = nullptr,
                      std::uint64_t* out_cpu_micros = nullptr);
  ~StageTimer();
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  std::uint64_t elapsed_micros() const;
  std::uint64_t elapsed_cpu_micros() const;

 private:
  Histogram* hist_;
  std::uint64_t* out_;
  std::uint64_t* out_cpu_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t cpu_start_;
};

}  // namespace adc
