#pragma once
// Work-stealing thread pool — the execution substrate of the parallel
// synthesis runtime.  Design goals, in order:
//
//  * nested submission must not deadlock: a pooled task may submit subtasks
//    and wait on them.  wait() therefore *helps*: while the future is not
//    ready the waiting thread drains pool work instead of blocking, so a
//    full pool always makes progress;
//  * exceptions propagate: a task that throws stores the exception in its
//    future and the pool keeps running — callers see the error at wait();
//  * low contention: each worker owns a deque (LIFO for locality) and
//    steals FIFO from victims when empty, with a mutex-guarded global
//    queue as the injection point for external submitters.
//
// The pool is intentionally dependency-free (std::thread only) so every
// layer of the flow — tools, benches, examples — can link it.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "runtime/cancel.hpp"

namespace adc {

class ThreadPool {
 public:
  // threads == 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Schedules `fn` and returns its future.  Safe to call from pool threads
  // (the task lands on the calling worker's own deque).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    push_task([task]() { (*task)(); });
    return fut;
  }

  // Runs one queued task on the calling thread if any is available.
  // Returns false when no work could be claimed.
  bool run_one();

  // Helping wait: drains pool work on the calling thread until `fut` is
  // ready, then returns fut.get() (rethrowing any stored exception).
  template <typename R>
  R wait(std::future<R>& fut) {
    help_while([&] {
      return fut.wait_for(std::chrono::seconds(0)) != std::future_status::ready;
    });
    return fut.get();
  }
  template <typename R>
  R wait(std::future<R>&& fut) {
    return wait(fut);
  }

  // Cancel-aware helping wait: like wait(), but stops helping once the
  // token trips.  Returns true when the future became ready (call
  // fut.get()); false when cancellation won the race — the task itself is
  // expected to observe the same token and unwind shortly, cancellation
  // here never abandons running work non-cooperatively.
  template <typename R>
  bool wait_ready(std::future<R>& fut, const CancelToken* cancel) {
    help_while([&] {
      if (cancel && cancel->cancelled()) return false;
      return fut.wait_for(std::chrono::seconds(0)) != std::future_status::ready;
    });
    return fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  }

  // Blocks (helping) until every submitted task has finished.
  void wait_idle();

  // Tasks executed since construction (monotonic, for metrics).
  std::uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  // Tasks submitted but not yet finished (instantaneous; gauge material).
  std::size_t pending() const { return pending_.load(std::memory_order_relaxed); }

 private:
  using Task = std::function<void()>;

  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> deque;
  };

  void push_task(Task t);
  bool pop_local(std::size_t worker, Task& out);
  bool steal(std::size_t thief, Task& out);
  bool pop_global(Task& out);
  void worker_main(std::size_t index);
  void help_while(const std::function<bool()>& busy);
  void run_task(Task& t);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex global_mu_;
  std::deque<Task> global_;
  std::condition_variable work_cv_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> pending_{0};  // submitted but not yet finished
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::size_t> steal_seed_{0};
};

// Scoped fan-out: subtasks whose completion the submitting thread awaits.
//
// ThreadPool::wait() helps with *any* queued work, which is what keeps a
// full pool from deadlocking — but it also means a stage that fans out
// and joins can end up executing unrelated queued jobs nested inside its
// own scope, billing their wall time (and any armed watchdog deadline) to
// the waiting stage.  TaskGroup::wait() instead runs only this group's
// tasks on the calling thread and blocks solely for tasks a pool worker
// already claimed, so the join's duration is bounded by the group's own
// work.  Every task is still visible to the pool: whichever side claims
// it first runs it, the other side sees a no-op.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool)
      : pool_(&pool), state_(std::make_shared<State>()) {}
  // Safety net: never leaves subtasks running past the group's scope
  // (their closures typically capture the caller's locals by reference).
  ~TaskGroup() {
    try {
      wait();
    } catch (...) {
    }
  }
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  template <typename Fn>
  void submit(Fn&& fn) {
    auto item = std::make_shared<Item>(std::function<void()>(std::forward<Fn>(fn)));
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->unclaimed.push_back(item);
      ++state_->outstanding;
    }
    auto state = state_;
    pool_->submit([state, item] {
      if (!item->claimed.exchange(true, std::memory_order_acq_rel))
        run_item(*state, *item);
    });
  }

  // Runs every not-yet-claimed group task inline, waits for the ones pool
  // workers claimed, then rethrows the first subtask exception (all
  // siblings are complete by then).  Idempotent.
  void wait();

 private:
  struct Item {
    explicit Item(std::function<void()> f) : fn(std::move(f)) {}
    std::atomic<bool> claimed{false};
    std::function<void()> fn;
  };
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<Item>> unclaimed;
    std::size_t outstanding = 0;
    std::exception_ptr first_error;
  };
  // Static + shared state so a queued pool wrapper can outlive the group.
  static void run_item(State& state, Item& item);

  ThreadPool* pool_;
  std::shared_ptr<State> state_;
};

}  // namespace adc
