#pragma once
// Work-stealing thread pool — the execution substrate of the parallel
// synthesis runtime.  Design goals, in order:
//
//  * nested submission must not deadlock: a pooled task may submit subtasks
//    and wait on them.  wait() therefore *helps*: while the future is not
//    ready the waiting thread drains pool work instead of blocking, so a
//    full pool always makes progress;
//  * exceptions propagate: a task that throws stores the exception in its
//    future and the pool keeps running — callers see the error at wait();
//  * low contention: each worker owns a deque (LIFO for locality) and
//    steals FIFO from victims when empty, with a mutex-guarded global
//    queue as the injection point for external submitters.
//
// The pool is intentionally dependency-free (std::thread only) so every
// layer of the flow — tools, benches, examples — can link it.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace adc {

class ThreadPool {
 public:
  // threads == 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Schedules `fn` and returns its future.  Safe to call from pool threads
  // (the task lands on the calling worker's own deque).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    push_task([task]() { (*task)(); });
    return fut;
  }

  // Runs one queued task on the calling thread if any is available.
  // Returns false when no work could be claimed.
  bool run_one();

  // Helping wait: drains pool work on the calling thread until `fut` is
  // ready, then returns fut.get() (rethrowing any stored exception).
  template <typename R>
  R wait(std::future<R>& fut) {
    help_while([&] {
      return fut.wait_for(std::chrono::seconds(0)) != std::future_status::ready;
    });
    return fut.get();
  }
  template <typename R>
  R wait(std::future<R>&& fut) {
    return wait(fut);
  }

  // Blocks (helping) until every submitted task has finished.
  void wait_idle();

  // Tasks executed since construction (monotonic, for metrics).
  std::uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  // Tasks submitted but not yet finished (instantaneous; gauge material).
  std::size_t pending() const { return pending_.load(std::memory_order_relaxed); }

 private:
  using Task = std::function<void()>;

  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> deque;
  };

  void push_task(Task t);
  bool pop_local(std::size_t worker, Task& out);
  bool steal(std::size_t thief, Task& out);
  bool pop_global(Task& out);
  void worker_main(std::size_t index);
  void help_while(const std::function<bool()>& busy);
  void run_task(Task& t);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex global_mu_;
  std::deque<Task> global_;
  std::condition_variable work_cv_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> pending_{0};  // submitted but not yet finished
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::size_t> steal_seed_{0};
};

}  // namespace adc
