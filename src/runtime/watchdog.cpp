#include "runtime/watchdog.hpp"

namespace adc {

Watchdog& Watchdog::global() {
  // Leaked on purpose; see header.
  static Watchdog* instance = new Watchdog();
  return *instance;
}

std::uint64_t Watchdog::arm(const CancelToken& token, std::uint64_t delay_ms,
                            const std::string& reason) {
  std::unique_lock<std::mutex> lock(mu_);
  ensure_thread();
  std::uint64_t id = next_id_++;
  entries_[id] = Entry{token,
                       Clock::now() + std::chrono::milliseconds(delay_ms),
                       reason};
  lock.unlock();
  cv_.notify_one();
  return id;
}

void Watchdog::disarm(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(id);
}

std::size_t Watchdog::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void Watchdog::ensure_thread() {
  if (thread_started_) return;
  thread_started_ = true;
  std::thread([this] { run(); }).detach();
}

void Watchdog::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (entries_.empty()) {
      cv_.wait_for(lock, std::chrono::seconds(1));
      continue;
    }
    // Earliest deadline across the armed set.
    auto soonest = Clock::time_point::max();
    for (const auto& [id, e] : entries_)
      if (e.deadline < soonest) soonest = e.deadline;
    if (Clock::now() < soonest) {
      cv_.wait_until(lock, soonest);
      continue;
    }
    // Fire everything that expired; request() outside the lock is not
    // needed — token trips are lock-free and reasons use their own mutex.
    auto now = Clock::now();
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.deadline <= now) {
        it->second.token.request(it->second.reason);
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace adc
