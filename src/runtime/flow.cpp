#include "runtime/flow.hpp"

#include <stdexcept>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "frontend/parser.hpp"
#include "logic/minimize.hpp"
#include "ltrans/local.hpp"
#include "report/json.hpp"
#include "trace/log.hpp"
#include "trace/tracer.hpp"

namespace adc {

namespace {

Fingerprint fingerprint_delays(const DelayModel& d) {
  FingerprintBuilder fb;
  fb.add("delays");
  for (const auto& [cls, r] : d.fu_op) fb.add(cls).add(r.min).add(r.max);
  for (const DelayRange& r : {d.move, d.control, d.micro_op, d.latch_write,
                              d.done_reset, d.wire})
    fb.add(r.min).add(r.max);
  return fb.digest();
}

bool is_lt_step(const std::string& step_text) {
  return step_text.rfind("lt", 0) == 0;
}

}  // namespace

// Graph + accumulated pipeline log after a script prefix.
struct FlowExecutor::GlobalSnapshot {
  Cdfg g{"empty"};
  GlobalPipelineResult res;
  bool have_plan = false;
  // Channel-ledger anchors captured at the most recent gt5 step: the
  // one-wire-per-arc count the step started from, and the merges recorded
  // by *earlier* stages whose plan that step discarded (re-derive).
  std::size_t channels_unoptimized = 0;
  int channels_merged_discarded = 0;
};

FlowExecutor::FlowExecutor(ThreadPool* pool) : FlowExecutor(pool, Options{}) {}

FlowExecutor::FlowExecutor(ThreadPool* pool, Options opts)
    : pool_(pool), opts_(opts), cache_(opts.cache_capacity) {}

std::shared_ptr<const Cdfg> FlowExecutor::frontend_stage(const FlowRequest& req,
                                                         Fingerprint& key, FlowPoint& p) {
  FingerprintBuilder fb;
  fb.add("frontend").add(req.benchmark).add(req.source);
  key = fb.digest();
  bool computed = false;
  std::uint64_t us = 0, cpu = 0;
  std::shared_ptr<const Cdfg> parsed;
  {
    ScopedSpan span(opts_.tracer, "frontend");
    StageTimer t(&metrics_.histogram("stage.frontend"), &us, &cpu);
    parsed = cache_.get_or_compute<Cdfg>(key, [&]() -> Cdfg {
      computed = true;
      if (!req.source.empty()) return parse_program(req.source);
      if (req.make) return req.make();
      throw std::invalid_argument("flow: request '" + req.benchmark +
                                  "' has neither source text nor a graph factory");
    });
    span.arg("cache", computed ? "miss" : "hit");
  }
  p.timings.push_back({"frontend", us, cpu, !computed});
  return parsed;
}

std::shared_ptr<const FlowExecutor::GlobalSnapshot> FlowExecutor::global_stage(
    const FlowRequest& req, const TransformScript& script,
    std::shared_ptr<const Cdfg> parsed, Fingerprint key, FlowPoint& p) {
  Fingerprint delays_fp = fingerprint_delays(req.delays);
  std::uint64_t us = 0, cpu = 0;
  std::size_t steps_run = 0, steps_total = 0;
  std::shared_ptr<const GlobalSnapshot> snap;
  {
    ScopedSpan gspan(opts_.tracer, "global");
    StageTimer t(&metrics_.histogram("stage.global"), &us, &cpu);
    for (std::size_t i = 0; i < script.step_count(); ++i) {
      std::string step = script.step_string(i);
      if (is_lt_step(step)) continue;  // no global action; keyed downstream
      ++steps_total;
      FingerprintBuilder fb;
      fb.add(key).add(step).add(delays_fp);
      key = fb.digest();
      auto prev = snap;  // null for the first step
      ScopedSpan span(opts_.tracer, step);
      bool step_computed = false;
      snap = cache_.get_or_compute<GlobalSnapshot>(key, [&]() -> GlobalSnapshot {
        ++steps_run;
        step_computed = true;
        GlobalSnapshot next;
        if (prev) {
          next = *prev;  // clone: stage results are immutable
        } else {
          next.g = *parsed;
        }
        if (step.rfind("gt5", 0) == 0) {
          // gt5 re-derives its plan; anchor the channel ledger here.
          next.channels_merged_discarded = 0;
          for (const auto& st : next.res.stages)
            next.channels_merged_discarded += st.channels_merged;
          next.channels_unoptimized =
              ChannelPlan::derive(next.g).count_controller_channels();
        }
        next.have_plan =
            script.run_step(next.g, i, req.delays, next.res) || next.have_plan;
        return next;
      });
      span.arg("cache", step_computed ? "miss" : "hit");
    }
    if (!snap) {  // empty / lt-only script: the parsed graph is the result
      GlobalSnapshot base;
      base.g = *parsed;
      snap = std::make_shared<const GlobalSnapshot>(std::move(base));
    }
    gspan.arg("cache", steps_run == 0 ? "hit" : "miss");
  }
  metrics_.counter("flow.gt_steps").add(steps_total);
  metrics_.counter("flow.gt_steps_cached").add(steps_total - steps_run);
  p.timings.push_back({"global", us, cpu, steps_total > 0 && steps_run == 0});
  return snap;
}

std::shared_ptr<const ControllerSet> FlowExecutor::controller_stage(
    const TransformScript& script, std::shared_ptr<const GlobalSnapshot> snap,
    const Fingerprint& key, FlowPoint& p) {
  FingerprintBuilder fb;
  fb.add(key).add("extract+lt").add(script.to_string());
  Fingerprint ckey = fb.digest();
  bool computed = false;
  std::uint64_t us = 0, cpu = 0;
  std::shared_ptr<const ControllerSet> set;
  {
    ScopedSpan span(opts_.tracer, "controllers");
    StageTimer t(&metrics_.histogram("stage.controllers"), &us, &cpu);
    set = cache_.get_or_compute<ControllerSet>(ckey, [&]() -> ControllerSet {
      computed = true;
      ControllerSet out;
      out.plan = snap->have_plan ? snap->res.plan : ChannelPlan::derive(snap->g);
      auto extracted = extract_controllers(snap->g, out.plan);
      out.instances.resize(extracted.size());
      out.controllers.resize(extracted.size());
      out.local_results.resize(extracted.size());
      auto synthesize_one = [&](std::size_t i) {
        ExtractedController c = std::move(extracted[i]);
        ScopedSpan cspan(opts_.tracer, "controller:" + c.machine.name(),
                         "controller");
        ControllerInstance inst;
        ControllerMetrics m;
        m.name = c.machine.name();
        m.states_extracted = c.machine.state_count();
        m.transitions_extracted = c.machine.transition_count();
        TransformResult local;
        if (script.has_local_step()) {
          LocalTransformResult lt = run_local_transforms(c, script.local_options());
          inst.shared_signals = std::move(lt.shared_signals);
          local = std::move(lt.stats);
        }
        m.states = c.machine.state_count();
        m.transitions = c.machine.transition_count();
        auto logic = synthesize_logic(c);
        m.products = logic.product_count(true);
        m.literals = logic.literal_count(true);
        m.feasible = logic.feasible();
        ADC_LOG_DEBUG("flow", "controller synthesized",
                      {{"name", m.name},
                       {"states", m.states},
                       {"transitions", m.transitions},
                       {"literals", m.literals}});
        inst.controller = std::move(c);
        out.instances[i] = std::move(inst);
        out.controllers[i] = std::move(m);
        out.local_results[i] = std::move(local);
      };
      if (pool_ && opts_.fan_out_controllers && extracted.size() > 1) {
        std::vector<std::future<void>> subtasks;
        subtasks.reserve(extracted.size());
        for (std::size_t i = 0; i < extracted.size(); ++i)
          subtasks.push_back(pool_->submit([&, i] { synthesize_one(i); }));
        for (auto& f : subtasks) pool_->wait(f);
      } else {
        for (std::size_t i = 0; i < extracted.size(); ++i) synthesize_one(i);
      }
      return out;
    });
    span.arg("cache", computed ? "miss" : "hit");
  }
  p.timings.push_back({"controllers", us, cpu, !computed});
  return set;
}

void FlowExecutor::sample_gauges() {
  CacheStats cs = cache_.stats();
  metrics_.gauge("cache.entries").set(static_cast<std::int64_t>(cs.entries));
  metrics_.gauge("cache.bytes").set(static_cast<std::int64_t>(cs.bytes));
  std::int64_t pending = pool_ ? static_cast<std::int64_t>(pool_->pending()) : 0;
  metrics_.gauge("pool.pending").set(pending);
  if (opts_.tracer) {
    opts_.tracer->counter("cache.entries", static_cast<std::int64_t>(cs.entries));
    opts_.tracer->counter("cache.bytes", static_cast<std::int64_t>(cs.bytes));
    opts_.tracer->counter("pool.pending", pending);
  }
}

std::shared_ptr<const ProvenanceReport> FlowExecutor::build_provenance(
    const FlowPoint& p, const Cdfg& initial, const GlobalSnapshot& snap,
    const ControllerSet& set) {
  auto rep = std::make_shared<ProvenanceReport>();
  rep->benchmark = p.benchmark;
  rep->script = p.script;
  rep->nodes_initial = initial.live_node_count();
  rep->arcs_initial = initial.live_arc_count();
  rep->nodes_final = snap.g.live_node_count();
  rep->arcs_final = snap.g.live_arc_count();
  rep->channels_final = set.plan.count_controller_channels();
  // Without a gt5 step the plan is the unoptimized derivation itself.
  rep->channels_unoptimized =
      snap.have_plan ? snap.channels_unoptimized +
                           static_cast<std::size_t>(snap.channels_merged_discarded)
                     : rep->channels_final;
  for (const auto& st : snap.res.stages) {
    ProvenanceStage ps;
    ps.name = st.name;
    ps.arcs_removed = st.arcs_removed;
    ps.arcs_added = st.arcs_added;
    ps.nodes_merged = st.nodes_merged;
    ps.channels_merged = st.channels_merged;
    ps.decisions = st.decisions;
    rep->global_stages.push_back(std::move(ps));
  }
  for (std::size_t i = 0; i < set.controllers.size(); ++i) {
    const ControllerMetrics& m = set.controllers[i];
    ControllerProvenance cp;
    cp.name = m.name;
    cp.states_extracted = m.states_extracted;
    cp.transitions_extracted = m.transitions_extracted;
    cp.states_final = m.states;
    cp.transitions_final = m.transitions;
    if (i < set.local_results.size()) cp.decisions = set.local_results[i].decisions;
    rep->controllers.push_back(std::move(cp));
  }
  for (const auto& e : rep->reconcile())
    ADC_LOG_WARN("provenance", "ledger mismatch",
                 {{"benchmark", p.benchmark}, {"detail", e}});
  return rep;
}

FlowPoint FlowExecutor::run(const FlowRequest& req) {
  FlowPoint p;
  p.benchmark = req.benchmark;
  p.script = req.script;  // replaced by the normalized form once parsed
  metrics_.counter("flow.runs").add();
  StageTimer total(&metrics_.histogram("flow.total"), &p.total_micros);
  ScopedSpan span(opts_.tracer, "flow.run", "flow",
                  {{"benchmark", req.benchmark}, {"script", req.script}});
  ADC_LOG_INFO("flow", "run start",
               {{"benchmark", req.benchmark}, {"script", req.script}});
  try {
    TransformScript script = TransformScript::parse(req.script);
    p.script = script.to_string();

    Fingerprint key;
    auto parsed = frontend_stage(req, key, p);
    auto snap = global_stage(req, script, parsed, key, p);
    auto set = controller_stage(script, snap, key, p);
    p.graph = std::shared_ptr<const Cdfg>(snap, &snap->g);

    p.channels = set->plan.count_controller_channels();
    p.controllers = set->controllers;
    p.ok = true;
    for (const auto& m : set->controllers) {
      p.states += m.states;
      p.transitions += m.transitions;
      p.products += m.products;
      p.literals += m.literals;
      if (!m.feasible) p.ok = false;
    }
    p.artifacts = set;
    if (req.provenance) p.provenance = build_provenance(p, *parsed, *snap, *set);

    if (req.simulate) {
      std::uint64_t us = 0, cpu = 0;
      {
        ScopedSpan sspan(opts_.tracer, "sim");
        StageTimer t(&metrics_.histogram("stage.sim"), &us, &cpu);
        EventSimOptions sim_opts = req.sim;
        std::vector<SimEventRecord> event_log;
        if (req.critical_path && !sim_opts.event_log)
          sim_opts.event_log = &event_log;
        auto r = run_event_sim(snap->g, set->plan, set->instances, req.init, sim_opts);
        if (req.critical_path && sim_opts.event_log)
          p.critical_path = std::make_shared<const CriticalPathResult>(
              analyze_critical_path(*sim_opts.event_log, r.final_event,
                                    r.finish_time));
        p.latency = r.finish_time;
        p.sim_events = r.events;
        p.sim_operations = r.operations;
        p.sim_registers = std::move(r.registers);
        p.deadlocked = r.deadlocked;
        if (!r.completed) {
          p.ok = false;
          p.error = r.error;
          if (r.deadlocked) {
            metrics_.counter("flow.deadlocks").add();
            ADC_LOG_WARN("flow", "event simulation deadlocked",
                         {{"benchmark", p.benchmark},
                          {"script", p.script},
                          {"detail", r.error}});
            if (opts_.tracer)
              opts_.tracer->instant("deadlock", "sim",
                                    {{"benchmark", p.benchmark},
                                     {"script", p.script}});
          }
        }
        sspan.arg("ok", r.completed);
      }
      p.timings.push_back({"sim", us, cpu, false});
    }
  } catch (const std::exception& e) {
    p.ok = false;
    p.error = e.what();
    metrics_.counter("flow.errors").add();
    ADC_LOG_ERROR("flow", "run failed",
                  {{"benchmark", p.benchmark}, {"error", p.error}});
  }
  span.arg("ok", p.ok);
  sample_gauges();
  ADC_LOG_INFO("flow", "run done",
               {{"benchmark", p.benchmark},
                {"ok", p.ok},
                {"channels", p.channels},
                {"states", p.states}});
  return p;
}

std::vector<FlowPoint> FlowExecutor::run_all(const std::vector<FlowRequest>& reqs) {
  std::vector<FlowPoint> out(reqs.size());
  if (!pool_ || reqs.size() <= 1) {
    for (std::size_t i = 0; i < reqs.size(); ++i) out[i] = run(reqs[i]);
    return out;
  }
  std::vector<std::future<FlowPoint>> futs;
  futs.reserve(reqs.size());
  for (const FlowRequest& r : reqs)
    futs.push_back(pool_->submit([this, &r] { return run(r); }));
  for (std::size_t i = 0; i < futs.size(); ++i) out[i] = pool_->wait(futs[i]);
  return out;
}

void write_json(JsonWriter& w, const FlowPoint& p,
                const std::vector<std::pair<std::string, std::string>>& extra) {
  w.begin_object();
  w.kv("benchmark", p.benchmark);
  w.kv("script", p.script);
  w.kv("ok", p.ok);
  w.kv("status", p.ok ? "ok" : p.deadlocked ? "deadlock" : "error");
  if (!p.error.empty()) w.kv("error", p.error);
  for (const auto& [k, v] : extra) w.kv(k, v);
  w.kv("channels", p.channels);
  w.kv("states", p.states);
  w.kv("transitions", p.transitions);
  w.kv("products", p.products);
  w.kv("literals", p.literals);
  w.kv("latency", p.latency);
  w.kv("sim_events", p.sim_events);
  w.kv("sim_operations", p.sim_operations);
  w.kv("total_us", p.total_micros);
  w.key("controllers");
  w.begin_array();
  for (const auto& c : p.controllers) {
    w.begin_object();
    w.kv("name", c.name);
    w.kv("states", c.states);
    w.kv("transitions", c.transitions);
    w.kv("products", c.products);
    w.kv("literals", c.literals);
    w.kv("feasible", c.feasible);
    w.end_object();
  }
  w.end_array();
  w.key("stages");
  w.begin_array();
  for (const auto& t : p.timings) {
    w.begin_object();
    w.kv("stage", t.stage);
    w.kv("us", t.micros);
    w.kv("cpu_us", t.cpu_micros);
    w.kv("cached", t.cached);
    w.end_object();
  }
  w.end_array();
  if (p.critical_path) {
    w.key("critical_path");
    p.critical_path->write_json(w);
  }
  w.end_object();
}

std::string to_json(const FlowPoint& p) {
  JsonWriter w;
  write_json(w, p);
  return w.str();
}

const std::vector<BuiltinBenchmark>& builtin_benchmarks() {
  static const std::vector<BuiltinBenchmark> all = {
      {"diffeq", diffeq,
       {{"X", 0}, {"a", 8}, {"dx", 1}, {"U", 3}, {"Y", 1}, {"X1", 0}, {"C", 1}}},
      {"gcd", gcd, {{"A", 21}, {"B", 14}, {"C", 1}}},
      {"fir4", fir4,
       {{"X0", 1}, {"X1", 2}, {"X2", 3}, {"X3", 4}, {"K0", 5}, {"K1", 6}, {"K2", 7},
        {"K3", 8}}},
      {"mac_reduce", mac_reduce,
       {{"X", 0}, {"K", 3}, {"T", 40}, {"N", 6}, {"dx", 1}, {"S", 0}, {"C", 1}}},
      {"ewf_lite", ewf_lite,
       {{"IN", 9}, {"S1", 1}, {"S2", 2}, {"S3", 3}, {"K1", 2}, {"K2", 3}, {"K3", 4}}},
      {"ewf", +[]() { return ewf(); },
       {{"IN", 5}, {"k1", 2}, {"k2", 3}, {"k3", 1}, {"k4", 2}, {"k5", 3},
        {"sv1", 1}, {"sv2", 2}, {"sv3", 3}, {"sv4", 4}, {"sv5", 5}, {"sv6", 6},
        {"sv7", 7}, {"sv8", 8}}},
  };
  return all;
}

const BuiltinBenchmark* find_builtin(const std::string& name) {
  for (const auto& b : builtin_benchmarks())
    if (b.name == name) return &b;
  return nullptr;
}

FlowRequest make_builtin_request(const BuiltinBenchmark& b, std::string script) {
  FlowRequest r;
  r.benchmark = b.name;
  r.make = b.make;
  r.script = std::move(script);
  r.init = b.init;
  r.sim.randomize_delays = false;  // reproducible DSE points
  return r;
}

std::vector<std::string> gt_ablation_grid(bool with_lt) {
  std::vector<std::string> grid;
  grid.reserve(32);
  for (unsigned mask = 0; mask < 32; ++mask) {
    bool gt1 = mask & 1, gt2 = mask & 2, gt3 = mask & 4, gt4 = mask & 8,
         gt5 = mask & 16;
    std::string s;
    auto append = [&](const char* step) {
      if (!s.empty()) s += "; ";
      s += step;
    };
    // The paper's standard order, with the GT2 cleanup pass after GT4.
    if (gt1) append("gt1");
    if (gt2) append("gt2");
    if (gt3) append("gt3");
    if (gt4) append("gt4");
    if (gt2 && gt4) append("gt2");
    if (gt5) append("gt5");
    if (with_lt) append("lt");
    grid.push_back(std::move(s));
  }
  return grid;
}

std::string script_for(const GlobalPipelineOptions& o, bool gt, bool lt,
                       const LocalTransformOptions& lt_opts) {
  std::string s;
  auto append = [&](const std::string& step) {
    if (!s.empty()) s += "; ";
    s += step;
  };
  if (gt) {
    if (o.gt1) append("gt1");
    if (o.gt2) append("gt2");
    if (o.gt3) {
      Gt3Options defaults;
      std::string step = "gt3";
      std::vector<std::string> args;
      if (o.gt3_options.margin != defaults.margin)
        args.push_back("margin=" + std::to_string(o.gt3_options.margin));
      if (o.gt3_options.samples != defaults.samples)
        args.push_back("samples=" + std::to_string(o.gt3_options.samples));
      if (!args.empty()) {
        step += '(';
        for (std::size_t i = 0; i < args.size(); ++i)
          step += (i ? ", " : "") + args[i];
        step += ')';
      }
      append(step);
    }
    if (o.gt4) append("gt4");
    if (o.gt2 && o.gt4) append("gt2");  // the pipeline's post-GT4 cleanup pass
    if (o.gt5) {
      std::string step = "gt5";
      std::vector<std::string> args;
      if (o.gt5_options.same_source == Gt5Options::SameSource::kAll)
        args.push_back("broadcast=all");
      else if (o.gt5_options.same_source == Gt5Options::SameSource::kNone)
        args.push_back("broadcast=none");
      if (!o.gt5_options.multiplex) args.push_back("no_mux");
      if (!o.gt5_options.symmetrize) args.push_back("no_sym");
      if (o.gt5_options.concurrency_reduction) {
        if (o.gt5_options.max_period_increase > 0)
          args.push_back("maxperiod=" +
                         std::to_string(o.gt5_options.max_period_increase));
        else
          args.push_back("concred");
      }
      if (!args.empty()) {
        step += '(';
        for (std::size_t i = 0; i < args.size(); ++i)
          step += (i ? ", " : "") + args[i];
        step += ')';
      }
      append(step);
    }
  }
  if (lt) {
    std::string step = "lt";
    std::vector<std::string> args;
    if (!lt_opts.lt1_move_up_dones) args.push_back("no_move_up");
    if (!lt_opts.lt2_move_down_resets) args.push_back("no_move_down");
    if (!lt_opts.lt3_mux_preselection) args.push_back("no_presel");
    if (!lt_opts.lt4_remove_acks) args.push_back("no_acks");
    if (!lt_opts.lt5_signal_sharing) args.push_back("no_sharing");
    if (!args.empty()) {
      step += '(';
      for (std::size_t i = 0; i < args.size(); ++i) step += (i ? ", " : "") + args[i];
      step += ')';
    }
    append(step);
  }
  return s;
}

}  // namespace adc
