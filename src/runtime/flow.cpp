#include "runtime/flow.hpp"

#include <stdexcept>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "frontend/parser.hpp"
#include "logic/minimize.hpp"
#include "ltrans/local.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "runtime/fault.hpp"
#include "runtime/watchdog.hpp"
#include "trace/log.hpp"
#include "trace/tracer.hpp"

namespace adc {

namespace {

Fingerprint fingerprint_delays(const DelayModel& d) {
  FingerprintBuilder fb;
  fb.add("delays");
  for (const auto& [cls, r] : d.fu_op) fb.add(cls).add(r.min).add(r.max);
  for (const DelayRange& r : {d.move, d.control, d.micro_op, d.latch_write,
                              d.done_reset, d.wire})
    fb.add(r.min).add(r.max);
  return fb.digest();
}

bool is_lt_step(const std::string& step_text) {
  return step_text.rfind("lt", 0) == 0;
}

// Everything that determines a point's metrics, for the disk tier's
// whole-point key.  The benchmark name stands in for the graph factory
// when there is no source text (FlowRequest documents that contract).
Fingerprint fingerprint_point(const FlowRequest& req, const std::string& script) {
  FingerprintBuilder fb;
  fb.add("point").add(req.benchmark).add(req.source).add(script);
  fb.add(fingerprint_delays(req.delays));
  for (const auto& [name, value] : req.init) fb.add(name).add(value);
  fb.add(req.simulate);
  fb.add(req.sim.seed).add(req.sim.randomize_delays);
  fb.add(req.sim.max_time).add(req.sim.max_events);
  return fb.digest();
}

// A point is disk-cacheable only when its value is fully captured by the
// JSON rendering: no live artifact sinks, no provenance/critical-path
// reconstruction that would silently come back empty on a warm hit.
bool disk_eligible(const FlowRequest& req) {
  return !req.provenance && !req.critical_path && !req.sim.vcd &&
         !req.sim.event_log;
}

}  // namespace

const char* to_string(FlowStatus s) {
  switch (s) {
    case FlowStatus::kOk: return "ok";
    case FlowStatus::kDeadlock: return "deadlock";
    case FlowStatus::kTimeout: return "timeout";
    case FlowStatus::kCancelled: return "cancelled";
    case FlowStatus::kFault: return "fault";
    case FlowStatus::kError: return "error";
  }
  return "error";
}

// Graph + accumulated pipeline log after a script prefix.
struct FlowExecutor::GlobalSnapshot {
  Cdfg g{"empty"};
  GlobalPipelineResult res;
  bool have_plan = false;
  // Channel-ledger anchors captured at the most recent gt5 step: the
  // one-wire-per-arc count the step started from, and the merges recorded
  // by *earlier* stages whose plan that step discarded (re-derive).
  std::size_t channels_unoptimized = 0;
  int channels_merged_discarded = 0;
};

FlowExecutor::FlowExecutor(ThreadPool* pool) : FlowExecutor(pool, Options{}) {}

FlowExecutor::FlowExecutor(ThreadPool* pool, Options opts)
    : pool_(pool), opts_(opts), cache_(opts.cache_capacity) {
  if (!opts_.disk_cache_dir.empty())
    disk_ = std::make_unique<DiskCache>(opts_.disk_cache_dir,
                                        opts_.disk_cache_bytes);
  // The cover memo shares the point cache's persistent directory: its
  // `logic-*` entries ride the same ADCK envelope, LRU budget and
  // adc_obs_check --cache-dir audit.  cache_capacity == 0 turns it off
  // along with the stage cache.
  logic_memo_ = std::make_unique<LogicMemo>(
      opts_.cache_capacity > 0 ? std::size_t{4096} : std::size_t{0});
  logic_memo_->attach_disk(disk_.get());
}

std::shared_ptr<const Cdfg> FlowExecutor::frontend_stage(const FlowRequest& req,
                                                         Fingerprint& key, FlowPoint& p,
                                                         const obs::TraceContext& otrace) {
  FingerprintBuilder fb;
  fb.add("frontend").add(req.benchmark).add(req.source);
  key = fb.digest();
  bool computed = false;
  std::uint64_t us = 0, cpu = 0;
  std::shared_ptr<const Cdfg> parsed;
  {
    ScopedSpan span(opts_.tracer, "frontend");
    obs::TraceSpan ospan(otrace, "frontend");
    StageTimer t(&metrics_.histogram("stage.frontend"), &us, &cpu);
    parsed = cache_.get_or_compute<Cdfg>(key, [&]() -> Cdfg {
      computed = true;
      if (!req.source.empty()) return parse_program(req.source);
      if (req.make) return req.make();
      throw std::invalid_argument("flow: request '" + req.benchmark +
                                  "' has neither source text nor a graph factory");
    });
    span.arg("cache", computed ? "miss" : "hit");
    ospan.arg("cache", computed ? "miss" : "hit");
  }
  p.timings.push_back({"frontend", us, cpu, !computed});
  return parsed;
}

std::shared_ptr<const FlowExecutor::GlobalSnapshot> FlowExecutor::global_stage(
    const FlowRequest& req, const TransformScript& script,
    std::shared_ptr<const Cdfg> parsed, Fingerprint key, FlowPoint& p,
    const obs::TraceContext& otrace) {
  Fingerprint delays_fp = fingerprint_delays(req.delays);
  std::uint64_t us = 0, cpu = 0;
  std::size_t steps_run = 0, steps_total = 0;
  std::shared_ptr<const GlobalSnapshot> snap;
  {
    ScopedSpan gspan(opts_.tracer, "global");
    obs::TraceSpan ogspan(otrace, "global");
    const obs::TraceContext octx = ogspan.context();
    StageTimer t(&metrics_.histogram("stage.global"), &us, &cpu);
    for (std::size_t i = 0; i < script.step_count(); ++i) {
      std::string step = script.step_string(i);
      if (is_lt_step(step)) continue;  // no global action; keyed downstream
      ++steps_total;
      FingerprintBuilder fb;
      fb.add(key).add(step).add(delays_fp);
      key = fb.digest();
      auto prev = snap;  // null for the first step
      ScopedSpan span(opts_.tracer, step);
      obs::TraceSpan ospan(octx, step, "gt");
      bool step_computed = false;
      snap = cache_.get_or_compute<GlobalSnapshot>(key, [&]() -> GlobalSnapshot {
        ++steps_run;
        step_computed = true;
        GlobalSnapshot next;
        if (prev) {
          next = *prev;  // clone: stage results are immutable
        } else {
          next.g = *parsed;
        }
        if (step.rfind("gt5", 0) == 0) {
          // gt5 re-derives its plan; anchor the channel ledger here.
          next.channels_merged_discarded = 0;
          for (const auto& st : next.res.stages)
            next.channels_merged_discarded += st.channels_merged;
          next.channels_unoptimized =
              ChannelPlan::derive(next.g).count_controller_channels();
        }
        next.have_plan =
            script.run_step(next.g, i, req.delays, next.res) || next.have_plan;
        return next;
      });
      span.arg("cache", step_computed ? "miss" : "hit");
      ospan.arg("cache", step_computed ? "miss" : "hit");
    }
    if (!snap) {  // empty / lt-only script: the parsed graph is the result
      GlobalSnapshot base;
      base.g = *parsed;
      snap = std::make_shared<const GlobalSnapshot>(std::move(base));
    }
    gspan.arg("cache", steps_run == 0 ? "hit" : "miss");
    ogspan.arg("cache", steps_run == 0 ? "hit" : "miss");
  }
  metrics_.counter("flow.gt_steps").add(steps_total);
  metrics_.counter("flow.gt_steps_cached").add(steps_total - steps_run);
  p.timings.push_back({"global", us, cpu, steps_total > 0 && steps_run == 0});
  return snap;
}

std::shared_ptr<const ControllerSet> FlowExecutor::controller_stage(
    const TransformScript& script, std::shared_ptr<const GlobalSnapshot> snap,
    const Fingerprint& key, FlowPoint& p, const CancelToken& cancel,
    const obs::TraceContext& otrace) {
  FingerprintBuilder fb;
  fb.add(key).add("extract+lt").add(script.to_string());
  Fingerprint ckey = fb.digest();
  bool computed = false;
  std::uint64_t us = 0, cpu = 0;
  std::shared_ptr<const ControllerSet> set;
  {
    ScopedSpan span(opts_.tracer, "controllers");
    obs::TraceSpan ocspan(otrace, "controllers");
    const obs::TraceContext octx = ocspan.context();
    StageTimer t(&metrics_.histogram("stage.controllers"), &us, &cpu);
    set = cache_.get_or_compute<ControllerSet>(ckey, [&]() -> ControllerSet {
      computed = true;
      ControllerSet out;
      out.plan = snap->have_plan ? snap->res.plan : ChannelPlan::derive(snap->g);
      auto extracted = extract_controllers(snap->g, out.plan);
      out.instances.resize(extracted.size());
      out.controllers.resize(extracted.size());
      out.local_results.resize(extracted.size());
      auto synthesize_one = [&](std::size_t i) {
        cancel.throw_if_cancelled();
        ExtractedController c = std::move(extracted[i]);
        ScopedSpan cspan(opts_.tracer, "controller:" + c.machine.name(),
                         "controller");
        // Subtasks may land on any pool thread; the explicit parent keeps
        // them under this stage in the per-job tree regardless.
        obs::TraceSpan ocspan2(octx, "controller:" + c.machine.name(),
                               "controller");
        ControllerInstance inst;
        ControllerMetrics m;
        m.name = c.machine.name();
        m.states_extracted = c.machine.state_count();
        m.transitions_extracted = c.machine.transition_count();
        TransformResult local;
        if (script.has_local_step()) {
          LocalTransformResult lt = run_local_transforms(c, script.local_options());
          inst.shared_signals = std::move(lt.shared_signals);
          local = std::move(lt.stats);
        }
        m.states = c.machine.state_count();
        m.transitions = c.machine.transition_count();
        // The covering loops are the long-running part of this stage;
        // they poll the job token so a deadline can unwind them.
        SynthesisOptions sopts;
        sopts.cover.cancel = &cancel;
        sopts.cover.memo = logic_memo_.get();
        // Per-function fan-out nests inside the per-controller TaskGroup;
        // both groups only join their own subtasks, so the nesting cannot
        // deadlock or bill foreign work to this stage's deadline.
        if (opts_.fan_out_controllers) sopts.pool = pool_;
        sopts.trace = ocspan2.context();
        auto logic = synthesize_logic(c, sopts);
        m.products = logic.product_count(true);
        m.literals = logic.literal_count(true);
        m.state_bits = logic.encoding.bits;
        for (const auto& f : logic.functions)
          if (!f.is_state_bit) ++m.outputs;
        m.feasible = logic.feasible();
        ADC_LOG_DEBUG("flow", "controller synthesized",
                      {{"name", m.name},
                       {"states", m.states},
                       {"transitions", m.transitions},
                       {"literals", m.literals}});
        inst.controller = std::move(c);
        out.instances[i] = std::move(inst);
        out.controllers[i] = std::move(m);
        out.local_results[i] = std::move(local);
      };
      if (pool_ && opts_.fan_out_controllers && extracted.size() > 1) {
        // Scoped join: TaskGroup::wait() runs only this point's subtasks
        // on this thread (idle workers still steal them).  A helping
        // ThreadPool::wait() here would execute *other queued points*
        // nested inside this stage, billing their wall time to it — and
        // tripping this point's stage deadline on their behalf.  It also
        // drains every subtask before rethrowing, so the by-reference
        // captures above never outlive their scope.
        TaskGroup group(*pool_);
        for (std::size_t i = 0; i < extracted.size(); ++i)
          group.submit([&, i] { synthesize_one(i); });
        group.wait();
      } else {
        for (std::size_t i = 0; i < extracted.size(); ++i) synthesize_one(i);
      }
      return out;
    });
    span.arg("cache", computed ? "miss" : "hit");
    ocspan.arg("cache", computed ? "miss" : "hit");
  }
  p.timings.push_back({"controllers", us, cpu, !computed});
  return set;
}

void FlowExecutor::sample_gauges() {
  CacheStats cs = cache_.stats();
  std::int64_t pending = pool_ ? static_cast<std::int64_t>(pool_->pending()) : 0;
  // Collect first, publish once: update_gauges() commits the whole batch
  // under the registry mutex, so a concurrent gauges() snapshot (the
  // serve `stats`/`metrics` ops) sees one instant — never disk.hits from
  // this sample next to disk.misses from the previous one.
  std::vector<std::pair<std::string, std::int64_t>> batch;
  batch.reserve(16);
  batch.emplace_back("cache.entries", static_cast<std::int64_t>(cs.entries));
  batch.emplace_back("cache.bytes", static_cast<std::int64_t>(cs.bytes));
  batch.emplace_back("pool.pending", pending);
  {
    LogicMemo::Stats ms = logic_memo_->stats();
    batch.emplace_back("logic.memo.hits", static_cast<std::int64_t>(ms.hits));
    batch.emplace_back("logic.memo.disk_hits",
                       static_cast<std::int64_t>(ms.disk_hits));
    batch.emplace_back("logic.memo.misses", static_cast<std::int64_t>(ms.misses));
    batch.emplace_back("logic.memo.fills", static_cast<std::int64_t>(ms.fills));
    batch.emplace_back("logic.memo.fill_errors",
                       static_cast<std::int64_t>(ms.fill_errors));
    batch.emplace_back("logic.memo.disk_corrupt",
                       static_cast<std::int64_t>(ms.disk_corrupt));
    batch.emplace_back("logic.memo.entries",
                       static_cast<std::int64_t>(ms.entries));
  }
  if (disk_) {
    // The persistent tier's counters, mirrored into every --json metrics
    // section (and the serve stats op) so cache sharing is observable.
    DiskCache::Stats ds = disk_->stats();
    batch.emplace_back("disk.hits", static_cast<std::int64_t>(ds.hits));
    batch.emplace_back("disk.misses", static_cast<std::int64_t>(ds.misses));
    batch.emplace_back("disk.stores", static_cast<std::int64_t>(ds.puts));
    batch.emplace_back("disk.evictions", static_cast<std::int64_t>(ds.evictions));
    batch.emplace_back("disk.corrupt", static_cast<std::int64_t>(ds.corrupt));
    batch.emplace_back("disk.bytes", static_cast<std::int64_t>(disk_->total_bytes()));
  }
  metrics_.update_gauges(batch);
  if (opts_.tracer) {
    // The gauge batch doubles as the counter-track sample; disk.* tracks
    // only appear once a persistent tier is attached, matching the gauges.
    for (const auto& [name, value] : batch) opts_.tracer->counter(name, value);
  }
}

std::shared_ptr<const ProvenanceReport> FlowExecutor::build_provenance(
    const FlowPoint& p, const Cdfg& initial, const GlobalSnapshot& snap,
    const ControllerSet& set) {
  auto rep = std::make_shared<ProvenanceReport>();
  rep->benchmark = p.benchmark;
  rep->script = p.script;
  rep->nodes_initial = initial.live_node_count();
  rep->arcs_initial = initial.live_arc_count();
  rep->nodes_final = snap.g.live_node_count();
  rep->arcs_final = snap.g.live_arc_count();
  rep->channels_final = set.plan.count_controller_channels();
  // Without a gt5 step the plan is the unoptimized derivation itself.
  rep->channels_unoptimized =
      snap.have_plan ? snap.channels_unoptimized +
                           static_cast<std::size_t>(snap.channels_merged_discarded)
                     : rep->channels_final;
  for (const auto& st : snap.res.stages) {
    ProvenanceStage ps;
    ps.name = st.name;
    ps.arcs_removed = st.arcs_removed;
    ps.arcs_added = st.arcs_added;
    ps.nodes_merged = st.nodes_merged;
    ps.channels_merged = st.channels_merged;
    ps.decisions = st.decisions;
    rep->global_stages.push_back(std::move(ps));
  }
  for (std::size_t i = 0; i < set.controllers.size(); ++i) {
    const ControllerMetrics& m = set.controllers[i];
    ControllerProvenance cp;
    cp.name = m.name;
    cp.states_extracted = m.states_extracted;
    cp.transitions_extracted = m.transitions_extracted;
    cp.states_final = m.states;
    cp.transitions_final = m.transitions;
    if (i < set.local_results.size()) cp.decisions = set.local_results[i].decisions;
    rep->controllers.push_back(std::move(cp));
  }
  for (const auto& e : rep->reconcile())
    ADC_LOG_WARN("provenance", "ledger mismatch",
                 {{"benchmark", p.benchmark}, {"detail", e}});
  return rep;
}

FlowPoint FlowExecutor::run(const FlowRequest& req) {
  FlowPoint p;
  p.benchmark = req.benchmark;
  p.script = req.script;  // replaced by the normalized form once parsed
  metrics_.counter("flow.runs").add();
  StageTimer total(&metrics_.histogram("flow.total"), &p.total_micros);
  ScopedSpan span(opts_.tracer, "flow.run", "flow",
                  {{"benchmark", req.benchmark}, {"script", req.script}});
  obs::TraceSpan ospan(req.trace, "flow.run", "flow");
  ospan.arg("benchmark", req.benchmark);
  const obs::TraceContext octx = ospan.context();
  ADC_LOG_INFO("flow", "run start",
               {{"benchmark", req.benchmark}, {"script", req.script}});

  // Whole-job budget: when it fires the token trips and the next stage
  // checkpoint (or in-loop poll) unwinds with status=timeout.
  WatchdogGuard job_guard(req.cancel, req.deadline_ms,
                          "flow job deadline exceeded");
  // Stage boundary: poll the token, give the fault plan its shot at this
  // site (detail = normalized script, so plans can target recipes), and
  // arm the per-stage budget for the scope of the returned guard.
  auto checkpoint = [&](const char* stage) -> WatchdogGuard {
    std::string site = std::string("flow.") + stage;
    WatchdogGuard guard(req.cancel, req.stage_deadline_ms,
                        site + " stage deadline exceeded");
    req.cancel.throw_if_cancelled();
    fault().maybe_fail_or_stall(site, p.script, &req.cancel);
    return guard;
  };

  bool disk_ok = false;
  Fingerprint point_key;
  try {
    TransformScript script = TransformScript::parse(req.script);
    p.script = script.to_string();

    // Disk tier: a completed point whose whole value round-trips through
    // JSON is replayed from the persistent cache across process restarts.
    disk_ok = disk_ && disk_->enabled() && disk_eligible(req);
    if (disk_ok) {
      point_key = fingerprint_point(req, p.script);
      std::uint64_t us = 0, cpu = 0;
      std::optional<std::string> hit;
      {
        obs::TraceSpan odspan(octx, "disk.probe", "disk");
        StageTimer t(&metrics_.histogram("stage.disk"), &us, &cpu);
        hit = disk_->get(point_key.hex());
        odspan.arg("hit", hit.has_value());
      }
      if (hit) {
        try {
          obs::TraceSpan orspan(octx, "disk.replay", "disk");
          FlowPoint warm = parse_flow_point(*hit);
          if (warm.benchmark == p.benchmark && warm.script == p.script) {
            warm.from_disk_cache = true;
            warm.timings.push_back({"disk", us, cpu, true});
            warm.total_micros = us;  // what the replay actually cost
            metrics_.counter("flow.disk_hits").add();
            span.arg("disk", "hit");
            ospan.arg("disk", "hit");
            ospan.arg("status", to_string(warm.status));
            ADC_LOG_INFO("flow", "run served from disk cache",
                         {{"benchmark", p.benchmark}, {"script", p.script}});
            sample_gauges();
            return warm;
          }
        } catch (const std::exception&) {
          // Decodable file, undecodable payload (schema drift): treat as
          // a miss and overwrite below.
        }
      }
    }

    Fingerprint key;
    std::shared_ptr<const Cdfg> parsed;
    {
      auto stage_guard = checkpoint("frontend");
      parsed = frontend_stage(req, key, p, octx);
    }
    std::shared_ptr<const GlobalSnapshot> snap;
    {
      auto stage_guard = checkpoint("global");
      snap = global_stage(req, script, parsed, key, p, octx);
    }
    std::shared_ptr<const ControllerSet> set;
    {
      auto stage_guard = checkpoint("controllers");
      set = controller_stage(script, snap, key, p, req.cancel, octx);
    }
    p.graph = std::shared_ptr<const Cdfg>(snap, &snap->g);

    p.channels = set->plan.count_controller_channels();
    p.controllers = set->controllers;
    p.ok = true;
    for (const auto& m : set->controllers) {
      p.states += m.states;
      p.transitions += m.transitions;
      p.products += m.products;
      p.literals += m.literals;
      if (!m.feasible) p.ok = false;
    }
    p.artifacts = set;
    if (req.provenance) p.provenance = build_provenance(p, *parsed, *snap, *set);

    if (req.simulate) {
      std::uint64_t us = 0, cpu = 0;
      {
        auto stage_guard = checkpoint("sim");
        ScopedSpan sspan(opts_.tracer, "sim");
        obs::TraceSpan osspan(octx, "sim");
        StageTimer t(&metrics_.histogram("stage.sim"), &us, &cpu);
        EventSimOptions sim_opts = req.sim;
        sim_opts.cancel = &req.cancel;
        SimEventLog event_log;
        if (req.critical_path && !sim_opts.event_log)
          sim_opts.event_log = &event_log;
        auto r = run_event_sim(snap->g, set->plan, set->instances, req.init, sim_opts);
        if (r.cancelled) throw CancelledError(r.error);
        if (req.critical_path && sim_opts.event_log)
          p.critical_path = std::make_shared<const CriticalPathResult>(
              analyze_critical_path(*sim_opts.event_log, r.final_event,
                                    r.finish_time));
        p.latency = r.finish_time;
        p.sim_events = r.events;
        p.sim_operations = r.operations;
        p.sim_registers = std::move(r.registers);
        p.deadlocked = r.deadlocked;
        if (!r.completed) {
          p.ok = false;
          p.error = r.error;
          if (r.deadlocked) {
            metrics_.counter("flow.deadlocks").add();
            ADC_LOG_WARN("flow", "event simulation deadlocked",
                         {{"benchmark", p.benchmark},
                          {"script", p.script},
                          {"detail", r.error}});
            if (opts_.tracer)
              opts_.tracer->instant("deadlock", "sim",
                                    {{"benchmark", p.benchmark},
                                     {"script", p.script}});
          }
        }
        sspan.arg("ok", r.completed);
        osspan.arg("ok", r.completed);
      }
      p.timings.push_back({"sim", us, cpu, false});
    }
    p.status = p.ok ? FlowStatus::kOk
                    : p.deadlocked ? FlowStatus::kDeadlock : FlowStatus::kError;
  } catch (const FaultInjectedError& e) {
    p.ok = false;
    p.status = FlowStatus::kFault;
    p.error = e.what();
    metrics_.counter("flow.faults").add();
    ADC_LOG_ERROR("flow", "run hit injected fault",
                  {{"benchmark", p.benchmark},
                   {"script", p.script},
                   {"error", p.error}});
  } catch (const CancelledError& e) {
    p.ok = false;
    p.error = e.what();
    // A watchdog labels its trips with "deadline"; anything else is an
    // external abort.
    p.status = p.error.find("deadline") != std::string::npos
                   ? FlowStatus::kTimeout
                   : FlowStatus::kCancelled;
    metrics_.counter(p.status == FlowStatus::kTimeout ? "flow.timeouts"
                                                      : "flow.cancelled")
        .add();
    ADC_LOG_WARN("flow", "run cancelled",
                 {{"benchmark", p.benchmark},
                  {"script", p.script},
                  {"status", std::string(to_string(p.status))},
                  {"error", p.error}});
  } catch (const std::exception& e) {
    p.ok = false;
    p.status = FlowStatus::kError;
    p.error = e.what();
    metrics_.counter("flow.errors").add();
    ADC_LOG_ERROR("flow", "run failed",
                  {{"benchmark", p.benchmark}, {"error", p.error}});
  }
  span.arg("ok", p.ok);
  span.arg("status", to_string(p.status));
  ospan.arg("ok", p.ok);
  ospan.arg("status", to_string(p.status));
  // Stamp the cost before the return: the early disk-hit return above
  // keeps this function from being NRVO'd, so the StageTimer destructor
  // would write into a dead local, not the returned point.
  p.total_micros = total.elapsed_micros();
  // Persist completed outcomes (ok and the legitimate deadlock corners —
  // both are deterministic verdicts worth replaying; transient failures
  // are not).
  if (disk_ok &&
      (p.status == FlowStatus::kOk || p.status == FlowStatus::kDeadlock)) {
    if (disk_->put(point_key.hex(), to_json(p)))
      metrics_.counter("flow.disk_stores").add();
  }
  sample_gauges();
  ADC_LOG_INFO("flow", "run done",
               {{"benchmark", p.benchmark},
                {"ok", p.ok},
                {"status", std::string(to_string(p.status))},
                {"channels", p.channels},
                {"states", p.states}});
  return p;
}

std::vector<FlowPoint> FlowExecutor::run_all(const std::vector<FlowRequest>& reqs) {
  std::vector<FlowPoint> out(reqs.size());
  if (!pool_ || reqs.size() <= 1) {
    for (std::size_t i = 0; i < reqs.size(); ++i) out[i] = run(reqs[i]);
    return out;
  }
  std::vector<std::future<FlowPoint>> futs;
  futs.reserve(reqs.size());
  for (const FlowRequest& r : reqs)
    futs.push_back(pool_->submit([this, &r] { return run(r); }));
  for (std::size_t i = 0; i < futs.size(); ++i) out[i] = pool_->wait(futs[i]);
  return out;
}

void write_json(JsonWriter& w, const FlowPoint& p,
                const std::vector<std::pair<std::string, std::string>>& extra) {
  w.begin_object();
  w.kv("benchmark", p.benchmark);
  w.kv("script", p.script);
  w.kv("ok", p.ok);
  // Hand-built points may carry only the legacy booleans; derive then.
  FlowStatus s = p.status;
  if (s == FlowStatus::kOk && !p.ok)
    s = p.deadlocked ? FlowStatus::kDeadlock : FlowStatus::kError;
  w.kv("status", to_string(s));
  if (p.attempts != 1) w.kv("attempts", static_cast<std::int64_t>(p.attempts));
  if (p.from_disk_cache) w.kv("from_disk_cache", true);
  if (!p.error.empty()) w.kv("error", p.error);
  for (const auto& [k, v] : extra) w.kv(k, v);
  w.kv("channels", p.channels);
  w.kv("states", p.states);
  w.kv("transitions", p.transitions);
  w.kv("products", p.products);
  w.kv("literals", p.literals);
  w.kv("latency", p.latency);
  w.kv("sim_events", p.sim_events);
  w.kv("sim_operations", p.sim_operations);
  w.kv("total_us", p.total_micros);
  if (!p.sim_registers.empty()) {
    w.key("registers");
    w.begin_object();
    for (const auto& [name, value] : p.sim_registers) w.kv(name, value);
    w.end_object();
  }
  w.key("controllers");
  w.begin_array();
  for (const auto& c : p.controllers) {
    w.begin_object();
    w.kv("name", c.name);
    w.kv("states", c.states);
    w.kv("transitions", c.transitions);
    w.kv("products", c.products);
    w.kv("literals", c.literals);
    w.kv("state_bits", c.state_bits);
    w.kv("outputs", c.outputs);
    w.kv("feasible", c.feasible);
    w.end_object();
  }
  w.end_array();
  w.key("stages");
  w.begin_array();
  for (const auto& t : p.timings) {
    w.begin_object();
    w.kv("stage", t.stage);
    w.kv("us", t.micros);
    w.kv("cpu_us", t.cpu_micros);
    w.kv("cached", t.cached);
    w.end_object();
  }
  w.end_array();
  if (p.critical_path) {
    w.key("critical_path");
    p.critical_path->write_json(w);
  }
  w.end_object();
}

std::string to_json(const FlowPoint& p) {
  JsonWriter w;
  write_json(w, p);
  return w.str();
}

FlowPoint parse_flow_point(const std::string& json) {
  JsonValue doc = parse_json(json);
  if (!doc.is_object()) throw std::runtime_error("flow point: not an object");
  auto num = [&](const JsonValue& o, const char* k) -> double {
    const JsonValue* v = o.find(k);
    return v && v->is_number() ? v->number : 0.0;
  };
  FlowPoint p;
  p.benchmark = doc.at("benchmark").string;
  p.script = doc.at("script").string;
  p.ok = doc.at("ok").boolean;
  std::string status = doc.at("status").string;
  if (status == "ok") p.status = FlowStatus::kOk;
  else if (status == "deadlock") p.status = FlowStatus::kDeadlock;
  else if (status == "timeout") p.status = FlowStatus::kTimeout;
  else if (status == "cancelled") p.status = FlowStatus::kCancelled;
  else if (status == "fault") p.status = FlowStatus::kFault;
  else p.status = FlowStatus::kError;
  p.deadlocked = p.status == FlowStatus::kDeadlock;
  if (const JsonValue* v = doc.find("attempts"))
    p.attempts = static_cast<unsigned>(v->number);
  if (const JsonValue* v = doc.find("error")) p.error = v->string;
  p.channels = static_cast<std::size_t>(num(doc, "channels"));
  p.states = static_cast<std::size_t>(num(doc, "states"));
  p.transitions = static_cast<std::size_t>(num(doc, "transitions"));
  p.products = static_cast<std::size_t>(num(doc, "products"));
  p.literals = static_cast<std::size_t>(num(doc, "literals"));
  p.latency = static_cast<std::int64_t>(num(doc, "latency"));
  p.sim_events = static_cast<std::int64_t>(num(doc, "sim_events"));
  p.sim_operations = static_cast<std::int64_t>(num(doc, "sim_operations"));
  p.total_micros = static_cast<std::uint64_t>(num(doc, "total_us"));
  if (const JsonValue* regs = doc.find("registers"); regs && regs->is_object())
    for (const auto& [name, value] : regs->object)
      p.sim_registers[name] = static_cast<std::int64_t>(value.number);
  if (const JsonValue* ctrls = doc.find("controllers"); ctrls && ctrls->is_array())
    for (const JsonValue& c : ctrls->array) {
      ControllerMetrics m;
      if (const JsonValue* v = c.find("name")) m.name = v->string;
      m.states = static_cast<std::size_t>(num(c, "states"));
      m.transitions = static_cast<std::size_t>(num(c, "transitions"));
      m.products = static_cast<std::size_t>(num(c, "products"));
      m.literals = static_cast<std::size_t>(num(c, "literals"));
      m.state_bits = static_cast<std::size_t>(num(c, "state_bits"));
      m.outputs = static_cast<std::size_t>(num(c, "outputs"));
      if (const JsonValue* v = c.find("feasible")) m.feasible = v->boolean;
      p.controllers.push_back(std::move(m));
    }
  if (const JsonValue* stages = doc.find("stages"); stages && stages->is_array())
    for (const JsonValue& t : stages->array) {
      StageTiming st;
      if (const JsonValue* v = t.find("stage")) st.stage = v->string;
      st.micros = static_cast<std::uint64_t>(num(t, "us"));
      st.cpu_micros = static_cast<std::uint64_t>(num(t, "cpu_us"));
      if (const JsonValue* v = t.find("cached")) st.cached = v->boolean;
      p.timings.push_back(std::move(st));
    }
  return p;
}

const std::vector<BuiltinBenchmark>& builtin_benchmarks() {
  static const std::vector<BuiltinBenchmark> all = {
      {"diffeq", diffeq,
       {{"X", 0}, {"a", 8}, {"dx", 1}, {"U", 3}, {"Y", 1}, {"X1", 0}, {"C", 1}}},
      {"gcd", gcd, {{"A", 21}, {"B", 14}, {"C", 1}}},
      {"fir4", fir4,
       {{"X0", 1}, {"X1", 2}, {"X2", 3}, {"X3", 4}, {"K0", 5}, {"K1", 6}, {"K2", 7},
        {"K3", 8}}},
      {"mac_reduce", mac_reduce,
       {{"X", 0}, {"K", 3}, {"T", 40}, {"N", 6}, {"dx", 1}, {"S", 0}, {"C", 1}}},
      {"ewf_lite", ewf_lite,
       {{"IN", 9}, {"S1", 1}, {"S2", 2}, {"S3", 3}, {"K1", 2}, {"K2", 3}, {"K3", 4}}},
      {"ewf", +[]() { return ewf(); },
       {{"IN", 5}, {"k1", 2}, {"k2", 3}, {"k3", 1}, {"k4", 2}, {"k5", 3},
        {"sv1", 1}, {"sv2", 2}, {"sv3", 3}, {"sv4", 4}, {"sv5", 5}, {"sv6", 6},
        {"sv7", 7}, {"sv8", 8}}},
  };
  return all;
}

const BuiltinBenchmark* find_builtin(const std::string& name) {
  for (const auto& b : builtin_benchmarks())
    if (b.name == name) return &b;
  return nullptr;
}

FlowRequest make_builtin_request(const BuiltinBenchmark& b, std::string script) {
  FlowRequest r;
  r.benchmark = b.name;
  r.make = b.make;
  r.script = std::move(script);
  r.init = b.init;
  r.sim.randomize_delays = false;  // reproducible DSE points
  return r;
}

std::vector<std::string> gt_ablation_grid(bool with_lt) {
  std::vector<std::string> grid;
  grid.reserve(32);
  for (unsigned mask = 0; mask < 32; ++mask) {
    bool gt1 = mask & 1, gt2 = mask & 2, gt3 = mask & 4, gt4 = mask & 8,
         gt5 = mask & 16;
    std::string s;
    auto append = [&](const char* step) {
      if (!s.empty()) s += "; ";
      s += step;
    };
    // The paper's standard order, with the GT2 cleanup pass after GT4.
    if (gt1) append("gt1");
    if (gt2) append("gt2");
    if (gt3) append("gt3");
    if (gt4) append("gt4");
    if (gt2 && gt4) append("gt2");
    if (gt5) append("gt5");
    if (with_lt) append("lt");
    grid.push_back(std::move(s));
  }
  return grid;
}

std::string script_for(const GlobalPipelineOptions& o, bool gt, bool lt,
                       const LocalTransformOptions& lt_opts) {
  std::string s;
  auto append = [&](const std::string& step) {
    if (!s.empty()) s += "; ";
    s += step;
  };
  if (gt) {
    if (o.gt1) append("gt1");
    if (o.gt2) append("gt2");
    if (o.gt3) {
      Gt3Options defaults;
      std::string step = "gt3";
      std::vector<std::string> args;
      if (o.gt3_options.margin != defaults.margin)
        args.push_back("margin=" + std::to_string(o.gt3_options.margin));
      if (o.gt3_options.samples != defaults.samples)
        args.push_back("samples=" + std::to_string(o.gt3_options.samples));
      if (!args.empty()) {
        step += '(';
        for (std::size_t i = 0; i < args.size(); ++i)
          step += (i ? ", " : "") + args[i];
        step += ')';
      }
      append(step);
    }
    if (o.gt4) append("gt4");
    if (o.gt2 && o.gt4) append("gt2");  // the pipeline's post-GT4 cleanup pass
    if (o.gt5) {
      std::string step = "gt5";
      std::vector<std::string> args;
      if (o.gt5_options.same_source == Gt5Options::SameSource::kAll)
        args.push_back("broadcast=all");
      else if (o.gt5_options.same_source == Gt5Options::SameSource::kNone)
        args.push_back("broadcast=none");
      if (!o.gt5_options.multiplex) args.push_back("no_mux");
      if (!o.gt5_options.symmetrize) args.push_back("no_sym");
      if (o.gt5_options.concurrency_reduction) {
        if (o.gt5_options.max_period_increase > 0)
          args.push_back("maxperiod=" +
                         std::to_string(o.gt5_options.max_period_increase));
        else
          args.push_back("concred");
      }
      if (!args.empty()) {
        step += '(';
        for (std::size_t i = 0; i < args.size(); ++i)
          step += (i ? ", " : "") + args[i];
        step += ')';
      }
      append(step);
    }
  }
  if (lt) {
    std::string step = "lt";
    std::vector<std::string> args;
    if (!lt_opts.lt1_move_up_dones) args.push_back("no_move_up");
    if (!lt_opts.lt2_move_down_resets) args.push_back("no_move_down");
    if (!lt_opts.lt3_mux_preselection) args.push_back("no_presel");
    if (!lt_opts.lt4_remove_acks) args.push_back("no_acks");
    if (!lt_opts.lt5_signal_sharing) args.push_back("no_sharing");
    if (!args.empty()) {
      step += '(';
      for (std::size_t i = 0; i < args.size(); ++i) step += (i ? ", " : "") + args[i];
      step += ')';
    }
    append(step);
  }
  return s;
}

}  // namespace adc
