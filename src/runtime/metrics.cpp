#include "runtime/metrics.hpp"

#include <ctime>

#include "report/json.hpp"

namespace adc {

namespace {

std::size_t bucket_for(std::uint64_t micros) {
  std::size_t b = 0;
  while ((std::uint64_t{1} << (b + 1)) <= micros && b + 1 < Histogram::kBuckets) ++b;
  return b;
}

}  // namespace

void Histogram::record_micros(std::uint64_t micros) {
  buckets_[bucket_for(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < micros &&
         !max_.compare_exchange_weak(prev, micros, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::quantile_micros(double q) const {
  std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (rank >= total) rank = total - 1;  // q == 1: the maximum sample
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank) {
      // Upper bucket bound, capped by the recorded maximum — the top
      // bucket's bound can exceed any sample ever seen.
      std::uint64_t bound = std::uint64_t{1} << (i + 1);
      std::uint64_t mx = max_micros();
      return mx != 0 && mx < bound ? mx : bound;
    }
  }
  return max_micros();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::update_gauges(
    const std::vector<std::pair<std::string, std::int64_t>>& values) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, v] : values) {
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    slot->set(v);
  }
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, std::int64_t> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::map<std::string, MetricsRegistry::HistogramSnapshot> MetricsRegistry::histograms()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s;
    s.count = h->count();
    s.sum_micros = h->sum_micros();
    s.max_micros = h->max_micros();
    s.p50_micros = h->quantile_micros(0.50);
    s.p90_micros = h->quantile_micros(0.90);
    s.p99_micros = h->quantile_micros(0.99);
    out[name] = s;
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  auto cs = counters();
  auto gs = gauges();
  auto hs = histograms();
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : cs) w.kv(name, v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : gs) w.kv(name, v);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, s] : hs) {
    w.key(name);
    w.begin_object();
    w.kv("count", s.count);
    w.kv("sum_us", s.sum_micros);
    double mean =
        s.count ? static_cast<double>(s.sum_micros) / static_cast<double>(s.count) : 0.0;
    w.kv("mean_us", mean);
    w.kv("p50_us", s.p50_micros);
    w.kv("p90_us", s.p90_micros);
    w.kv("p99_us", s.p99_micros);
    w.kv("max_us", s.max_micros);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::uint64_t thread_cpu_micros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000u +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000u;
#endif
  return static_cast<std::uint64_t>(
      static_cast<double>(std::clock()) * 1e6 / CLOCKS_PER_SEC);
}

StageTimer::StageTimer(Histogram* hist, std::uint64_t* out_micros,
                       std::uint64_t* out_cpu_micros)
    : hist_(hist),
      out_(out_micros),
      out_cpu_(out_cpu_micros),
      start_(std::chrono::steady_clock::now()),
      cpu_start_(thread_cpu_micros()) {}

std::uint64_t StageTimer::elapsed_micros() const {
  auto d = std::chrono::steady_clock::now() - start_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

std::uint64_t StageTimer::elapsed_cpu_micros() const {
  std::uint64_t now = thread_cpu_micros();
  return now > cpu_start_ ? now - cpu_start_ : 0;
}

StageTimer::~StageTimer() {
  std::uint64_t cpu = elapsed_cpu_micros();
  std::uint64_t us = elapsed_micros();
  if (hist_) hist_->record_micros(us);
  if (out_) *out_ = us;
  if (out_cpu_) *out_cpu_ = cpu;
}

}  // namespace adc
