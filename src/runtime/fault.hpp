#pragma once
// Deterministic fault injection for the synthesis runtime.
//
// Production code marks *injection sites* — named points where a failure
// is plausible and must be handled: stage entry in the flow executor,
// stage-cache compute, disk-cache I/O, the artifact flush path.  A fault
// plan (the ADC_FAULT environment variable or a CLI --fault flag) arms
// actions at those sites; with no plan every check is a few nanoseconds
// and nothing fires, so the hooks stay compiled into release builds.
//
// Plan grammar (';'-separated entries; ';' inside [...] belongs to the
// filter, not the separator):
//
//   entry   := site[ '[' filter ']' ] '=' action [ '(' arg ')' ]
//              [ ':' count ] [ '@' after ] [ '%' pct ]
//            | 'seed' '=' N
//   action  := fail | stall | corrupt | truncate | shortwrite | drop
//
//   site    exact injection-site name (docs/ROBUSTNESS.md catalogs them)
//   filter  substring that must occur in the site's detail string (for
//           flow.* sites the detail is the normalized script, so
//           "flow.controllers[gt1; gt3]=fail" hits exactly the grid
//           points whose recipe contains that fragment)
//   arg     action parameter: stall duration in ms (default 30000)
//   count   fire at most N times (default unlimited)
//   after   skip the first N matching hits (default 0)
//   pct     fire with probability pct% using the seeded PRNG (default
//           100 — deterministic); 'seed=N' reseeds the PRNG
//
// Examples:
//   ADC_FAULT='flow.sim=fail:1'                 first sim stage fails
//   ADC_FAULT='flow.controllers[gt5]=stall(50)' stall gt5 recipes 50 ms
//   ADC_FAULT='disk.put.payload=corrupt'        flip bits in every write
//   ADC_FAULT='cache.compute=fail%25;seed=7'    25% of computes fail
//
// Determinism: with no '%' the plan is a pure function of (site, detail,
// hit index) — independent of thread scheduling.  With '%' the decision
// stream is drawn from one seeded PRNG per entry, so a fixed seed gives a
// reproducible *sequence* but the mapping onto sites depends on arrival
// order; prefer filters + counts when exactness matters.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/cancel.hpp"

namespace adc {

enum class FaultAction {
  kNone,
  kFail,        // throw FaultInjectedError at the site
  kStall,       // sleep arg_ms (cooperatively: observes a CancelToken)
  kCorrupt,     // flip bits in a payload the site is about to write
  kTruncate,    // drop the tail of a payload
  kShortWrite,  // keep a prefix, as if the process died mid-write
  kDrop,        // skip the operation silently (e.g. the commit rename)
};

const char* to_string(FaultAction a);

// Thrown by sites armed with `fail`.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

class FaultInjector {
 public:
  // Parses a plan; throws std::invalid_argument on grammar errors.  An
  // empty spec clears the plan.
  void configure(const std::string& spec);
  // Loads ADC_FAULT when set (called once at CLI startup).
  void configure_from_env();
  void reset();
  bool armed() const;

  // Decides whether an action fires at `site` for this hit.  `detail` is
  // site-specific context matched against the entry filter.  Returns the
  // action (kNone = nothing fires) and, via arg_ms, the stall duration.
  FaultAction check(const std::string& site, const std::string& detail = {},
                    std::uint64_t* arg_ms = nullptr);

  // Convenience for plain code sites: throws on `fail`, sleeps on
  // `stall` (in small chunks, watching `cancel` so a watchdog can cut a
  // stall short), ignores payload actions.
  void maybe_fail_or_stall(const std::string& site,
                           const std::string& detail = {},
                           const CancelToken* cancel = nullptr);

  // Applies a payload action (corrupt/truncate/shortwrite) in place.
  // Returns the action that fired (kNone / kFail are possible: a write
  // site can also be armed with `fail`, in which case this throws).
  FaultAction mutate_payload(const std::string& site, std::string& payload,
                             const std::string& detail = {},
                             const CancelToken* cancel = nullptr);

  // Total number of actions fired since configure()/reset().
  std::uint64_t injected() const;
  // Number fired at one site (prefix match: "disk." counts disk.put,
  // disk.put.payload, ...).
  std::uint64_t injected_at(const std::string& site_prefix) const;

 private:
  struct Entry {
    std::string site;
    std::string filter;  // empty = match any detail
    FaultAction action = FaultAction::kNone;
    std::uint64_t arg_ms = 30000;
    std::uint64_t count = UINT64_MAX;  // remaining firings
    std::uint64_t after = 0;           // hits to skip first
    unsigned pct = 100;
    std::uint64_t hits = 0;  // matching hits seen so far
  };
  struct Fired {
    std::string site;
    std::uint64_t n = 0;
  };

  static Entry parse_entry(const std::string& text);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::vector<Fired> fired_;
  std::uint64_t rng_ = 0x9e3779b97f4a7c15ull;  // reseeded by 'seed=N'
  std::uint64_t total_fired_ = 0;
};

// Process-wide injector used by all in-tree sites.
FaultInjector& fault();

}  // namespace adc
