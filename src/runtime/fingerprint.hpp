#pragma once
// Content-addressing primitive shared by the stage cache, the disk tier
// and the logic memo.  Lives apart from cache.hpp so low-level libraries
// (e.g. the logic minimizer) can fingerprint keys without pulling in the
// executor-facing cache machinery.

#include <cstdint>
#include <string>

namespace adc {

// 128-bit FNV-1a style fingerprint; two independent 64-bit lanes keep the
// collision odds negligible for cache-sized key sets.
struct Fingerprint {
  std::uint64_t hi = 0xcbf29ce484222325ull;
  std::uint64_t lo = 0x84222325cbf29ce4ull;

  bool operator==(const Fingerprint& o) const { return hi == o.hi && lo == o.lo; }
  bool operator<(const Fingerprint& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }
  std::string hex() const;
};

class FingerprintBuilder {
 public:
  FingerprintBuilder& add(const std::string& s);
  FingerprintBuilder& add(const char* s) { return add(std::string(s)); }
  FingerprintBuilder& add(std::int64_t v);
  FingerprintBuilder& add(std::uint64_t v);
  FingerprintBuilder& add(bool v) { return add(std::uint64_t{v ? 1u : 0u}); }
  // Chain from a previous stage's fingerprint.
  FingerprintBuilder& add(const Fingerprint& f);

  Fingerprint digest() const { return fp_; }

 private:
  void mix(const void* data, std::size_t n);
  Fingerprint fp_;
};

}  // namespace adc
