#include "runtime/thread_pool.hpp"

namespace adc {

namespace {
// Which pool (if any) owns the current thread, and its worker index.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_index = 0;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::push_task(Task t) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (tl_pool == this) {
    // Nested submission: LIFO onto the calling worker's own deque keeps the
    // task graph depth-first and cache-warm.
    WorkerQueue& q = *queues_[tl_index];
    std::lock_guard<std::mutex> lk(q.mu);
    q.deque.push_back(std::move(t));
  } else {
    std::lock_guard<std::mutex> lk(global_mu_);
    global_.push_back(std::move(t));
  }
  work_cv_.notify_one();
}

bool ThreadPool::pop_local(std::size_t worker, Task& out) {
  WorkerQueue& q = *queues_[worker];
  std::lock_guard<std::mutex> lk(q.mu);
  if (q.deque.empty()) return false;
  out = std::move(q.deque.back());
  q.deque.pop_back();
  return true;
}

bool ThreadPool::pop_global(Task& out) {
  std::lock_guard<std::mutex> lk(global_mu_);
  if (global_.empty()) return false;
  out = std::move(global_.front());
  global_.pop_front();
  return true;
}

bool ThreadPool::steal(std::size_t thief, Task& out) {
  std::size_t n = queues_.size();
  std::size_t start = steal_seed_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t victim = (start + i) % n;
    if (victim == thief) continue;
    WorkerQueue& q = *queues_[victim];
    std::lock_guard<std::mutex> lk(q.mu);
    if (q.deque.empty()) continue;
    // Steal FIFO: take the oldest (coldest) task, leave the victim its
    // recent, cache-warm tail.
    out = std::move(q.deque.front());
    q.deque.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::run_task(Task& t) {
  t();  // packaged_task: exceptions are captured in the future, not thrown
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(idle_mu_);
    idle_cv_.notify_all();
  }
}

bool ThreadPool::run_one() {
  Task t;
  if (tl_pool == this) {
    if (pop_local(tl_index, t) || pop_global(t) || steal(tl_index, t)) {
      run_task(t);
      return true;
    }
    return false;
  }
  // External thread: drain the global queue, then steal from anyone.
  if (pop_global(t) || steal(queues_.size(), t)) {
    run_task(t);
    return true;
  }
  return false;
}

void ThreadPool::worker_main(std::size_t index) {
  tl_pool = this;
  tl_index = index;
  while (true) {
    Task t;
    if (pop_local(index, t) || pop_global(t) || steal(index, t)) {
      run_task(t);
      continue;
    }
    std::unique_lock<std::mutex> lk(global_mu_);
    work_cv_.wait_for(lk, std::chrono::milliseconds(10), [&] {
      return stop_.load(std::memory_order_acquire) || !global_.empty();
    });
    if (stop_.load(std::memory_order_acquire)) break;
  }
  tl_pool = nullptr;
}

void ThreadPool::help_while(const std::function<bool()>& busy) {
  while (busy()) {
    if (!run_one()) std::this_thread::yield();
  }
}

void TaskGroup::run_item(State& state, Item& item) {
  try {
    item.fn();
  } catch (...) {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.first_error) state.first_error = std::current_exception();
  }
  item.fn = nullptr;  // release captured references promptly
  std::lock_guard<std::mutex> lock(state.mu);
  if (--state.outstanding == 0) state.cv.notify_all();
}

void TaskGroup::wait() {
  for (;;) {
    std::shared_ptr<Item> item;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (!state_->unclaimed.empty()) {
        item = std::move(state_->unclaimed.front());
        state_->unclaimed.pop_front();
      }
    }
    if (!item) break;
    if (!item->claimed.exchange(true, std::memory_order_acq_rel))
      run_item(*state_, *item);
  }
  // Everything left is already executing on a worker; a blocking wait here
  // cannot deadlock even on a saturated pool.
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->outstanding == 0; });
  if (state_->first_error) {
    std::exception_ptr e = state_->first_error;
    state_->first_error = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::wait_idle() {
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (!run_one()) {
      std::unique_lock<std::mutex> lk(idle_mu_);
      idle_cv_.wait_for(lk, std::chrono::milliseconds(1), [&] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
    }
  }
}

}  // namespace adc
