// adc_top — live terminal dashboard over a running adc_serve daemon.
//
// Polls the `metrics` protocol op (the same registry `/metrics` exposes,
// as JSON) and renders a refreshing one-screen summary: job throughput,
// per-class queue depths and windowed latency quantiles, cache and disk
// tier occupancy, the cover-memo hit ratio, the live Pareto frontier over
// (control area x cycle time), and the current backpressure hint.
//
//   adc_top --socket /tmp/adc.sock
//   adc_top --connect 127.0.0.1:7788 --interval 500
//   adc_top --socket /tmp/adc.sock --once        # one frame, no ANSI (CI)
//
// Options:
//   --socket PATH        connect to a Unix-domain socket
//   --connect HOST:PORT  connect over TCP
//   --interval MS        refresh period (default 1000)
//   --once               print a single frame and exit (no screen clearing)
//   --help
//
// Exit codes: 0 on a clean run (--once or Ctrl-C), 1 on transport errors.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "serve/client.hpp"

using namespace adc;
using serve::ServeClient;

namespace {

int usage(int code) {
  std::fprintf(code ? stderr : stdout,
               "usage: adc_top (--socket PATH | --connect HOST:PORT) "
               "[--interval MS] [--once]\n");
  return code;
}

// Locates one series in an obs registry JSON array ("counters"/"gauges"/
// "histograms") by family name and an optional single label match.
const JsonValue* find_series(const JsonValue* arr, const std::string& name,
                             const char* label_key = nullptr,
                             const char* label_val = nullptr) {
  if (!arr || !arr->is_array()) return nullptr;
  for (const JsonValue& s : arr->array) {
    const JsonValue* n = s.find("name");
    if (!n || !n->is_string() || n->string != name) continue;
    if (!label_key) return &s;
    const JsonValue* labels = s.find("labels");
    const JsonValue* v = labels ? labels->find(label_key) : nullptr;
    if (v && v->is_string() && v->string == label_val) return &s;
  }
  return nullptr;
}

double number_of(const JsonValue* series, const char* key) {
  if (!series) return 0;
  const JsonValue* v = series->find(key);
  return v && v->is_number() ? v->number : 0;
}

std::uint64_t uint_of(const JsonValue* series, const char* key) {
  return static_cast<std::uint64_t>(number_of(series, key));
}

std::uint64_t jobs_uint(const JsonValue& reply, const char* key) {
  const JsonValue* jobs = reply.find("jobs");
  const JsonValue* v = jobs ? jobs->find(key) : nullptr;
  return v && v->is_number() ? static_cast<std::uint64_t>(v->number) : 0;
}

void render(const JsonValue& reply, const std::string& endpoint) {
  const JsonValue* obs = reply.find("obs");
  const JsonValue* counters = obs ? obs->find("counters") : nullptr;
  const JsonValue* gauges = obs ? obs->find("gauges") : nullptr;
  const JsonValue* hists = obs ? obs->find("histograms") : nullptr;

  const JsonValue* state = reply.find("state");
  std::uint64_t uptime_ms = 0;
  if (const JsonValue* v = reply.find("uptime_ms"); v && v->is_number())
    uptime_ms = static_cast<std::uint64_t>(v->number);

  std::printf("adc_top — %s — %s — up %" PRIu64 ".%03" PRIu64 "s\n",
              endpoint.c_str(),
              state && state->is_string() ? state->string.c_str() : "?",
              uptime_ms / 1000, uptime_ms % 1000);
  std::printf(
      "jobs   submitted %-8" PRIu64 " completed %-8" PRIu64
      " cancelled %-6" PRIu64 " rejected %-6" PRIu64 "\n",
      jobs_uint(reply, "submitted"), jobs_uint(reply, "completed"),
      jobs_uint(reply, "cancelled"), jobs_uint(reply, "rejected"));
  std::printf(
      "now    running %-8" PRIu64 " queued %-8" PRIu64
      " retry_after %.0f ms   service ewma %.1f ms\n",
      jobs_uint(reply, "running"), jobs_uint(reply, "queued"),
      number_of(find_series(gauges, "serve.retry_after_ms"), "value"),
      number_of(find_series(gauges, "serve.service_ewma_ms"), "value"));

  std::printf("\n%-8s %12s %12s | %-28s | %-28s\n", "class", "queue depth",
              "completed", "queue-wait p50/p95/p99 (us, 60s)",
              "service p50/p95/p99 (us, 60s)");
  for (const char* cls : {"high", "normal", "low"}) {
    const JsonValue* qw = find_series(hists, "serve.queue.wait_us", "class", cls);
    const JsonValue* sv = find_series(hists, "serve.service_us", "class", cls);
    std::printf(
        "%-8s %12" PRIu64 " %12" PRIu64 " | %8" PRIu64 " %8" PRIu64 " %8" PRIu64
        "   | %8" PRIu64 " %8" PRIu64 " %8" PRIu64 "\n",
        cls,
        uint_of(find_series(gauges, "serve.queue.depth", "class", cls), "value"),
        uint_of(find_series(counters, "serve.completions", "class", cls), "value"),
        uint_of(qw, "window_p50_us"), uint_of(qw, "window_p95_us"),
        uint_of(qw, "window_p99_us"), uint_of(sv, "window_p50_us"),
        uint_of(sv, "window_p95_us"), uint_of(sv, "window_p99_us"));
  }

  std::printf(
      "\ncache  entries %-7" PRIu64 " bytes %-10" PRIu64 " hit ratio %.3f\n",
      uint_of(find_series(gauges, "serve.cache.entries"), "value"),
      uint_of(find_series(gauges, "serve.cache.bytes"), "value"),
      number_of(find_series(gauges, "serve.cache.hit_ratio"), "value"));
  std::printf(
      "disk   hits %-9" PRIu64 " misses %-8" PRIu64 " stores %-8" PRIu64
      " bytes %-10" PRIu64 "\n",
      uint_of(find_series(gauges, "serve.disk.hits"), "value"),
      uint_of(find_series(gauges, "serve.disk.misses"), "value"),
      uint_of(find_series(gauges, "serve.disk.stores"), "value"),
      uint_of(find_series(gauges, "serve.disk.bytes"), "value"));
  std::printf(
      "flow   timeouts %-6" PRIu64 " faults %-8" PRIu64 " deadlocks %-6" PRIu64
      " bad requests %-6" PRIu64 "\n",
      uint_of(find_series(gauges, "serve.flow.timeouts"), "value"),
      uint_of(find_series(gauges, "serve.flow.faults"), "value"),
      uint_of(find_series(gauges, "serve.flow.deadlocks"), "value"),
      uint_of(find_series(counters, "serve.bad_requests"), "value"));
  const std::uint64_t memo_hits =
      uint_of(find_series(gauges, "logic.memo.hits"), "value");
  const std::uint64_t memo_disk_hits =
      uint_of(find_series(gauges, "logic.memo.disk_hits"), "value");
  const std::uint64_t memo_misses =
      uint_of(find_series(gauges, "logic.memo.misses"), "value");
  const std::uint64_t memo_lookups = memo_hits + memo_disk_hits + memo_misses;
  std::printf(
      "memo   hits %-9" PRIu64 " disk hits %-5" PRIu64 " entries %-7" PRIu64
      " hit ratio %.3f\n",
      memo_hits, memo_disk_hits,
      uint_of(find_series(gauges, "logic.memo.entries"), "value"),
      memo_lookups ? static_cast<double>(memo_hits + memo_disk_hits) /
                         static_cast<double>(memo_lookups)
                   : 0.0);
  std::printf(
      "pareto points %-8" PRIu64 " frontier %-6" PRIu64 " dominated %-6" PRIu64
      " best cycle %-6" PRIu64 " best area %-6" PRIu64 "\n",
      uint_of(find_series(gauges, "analysis.points"), "value"),
      uint_of(find_series(gauges, "analysis.frontier_size"), "value"),
      uint_of(find_series(gauges, "analysis.dominated"), "value"),
      uint_of(find_series(gauges, "analysis.best_cycle_time"), "value"),
      uint_of(find_series(gauges, "analysis.best_area_transistors"), "value"));
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, connect_spec;
  int interval_ms = 1000;
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(2);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    else if (arg == "--socket") socket_path = next();
    else if (arg == "--connect") connect_spec = next();
    else if (arg == "--interval") interval_ms = std::stoi(next());
    else if (arg == "--once") once = true;
    else return usage(2);
  }
  if (socket_path.empty() == connect_spec.empty()) {
    std::fprintf(stderr, "adc_top: need exactly one of --socket / --connect\n");
    return usage(2);
  }
  if (interval_ms < 50) interval_ms = 50;

  try {
    ServeClient client = [&] {
      if (!socket_path.empty()) return ServeClient::connect_unix(socket_path);
      auto colon = connect_spec.rfind(':');
      if (colon == std::string::npos)
        throw std::runtime_error("--connect expects HOST:PORT");
      return ServeClient::connect_tcp(connect_spec.substr(0, colon),
                                      std::stoi(connect_spec.substr(colon + 1)));
    }();
    const std::string endpoint =
        socket_path.empty() ? connect_spec : socket_path;

    for (;;) {
      JsonValue reply = client.request("{\"op\":\"metrics\"}");
      const JsonValue* ok = reply.find("ok");
      if (!ok || !ok->boolean)
        throw std::runtime_error("metrics op failed: " + to_json(reply));
      if (!once) std::printf("\033[H\033[2J");  // home + clear
      render(reply, endpoint);
      std::fflush(stdout);
      if (once) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adc_top: %s\n", e.what());
    return 1;
  }
}
