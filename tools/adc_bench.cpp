// adc_bench — the toolchain's performance regression harness.
//
//   adc_bench --suite all --out BENCH_local.json
//   adc_bench --suite gt,sim --filter diffeq --quick
//   adc_bench --baseline BENCH_main.json --check --threshold 10
//   adc_bench --diff BENCH_old.json BENCH_new.json --check
//
// Runs the registered benchmark suites (frontend parsing, the GT pipeline,
// extraction + local transforms, two-level logic minimization, both
// simulators, the flow executor hot/cold and the DSE ablation grid) under
// the warmup/repeat/outlier policy of perf/measure.hpp and emits one BENCH
// JSON document (perf/record.hpp, kind "adc-bench" v1): per-benchmark
// p50/p90/p99 wall and CPU microseconds, peak RSS, free-form counters
// (cache hit rates, simulated latencies) and per-stage flow timings.
//
// Options:
//   --suite all|S1,S2,...   suites to run (default: all registered)
//   --filter STR            only benchmarks whose name contains STR
//   --list                  list registered benchmarks and exit
//   --quick                 1 warmup + 3 repeats and smaller grids (CI)
//   --repeats N / --warmup N  override the measurement policy
//   --out FILE              write the BENCH JSON ('-' = stdout)
//   --baseline FILE         compare this run against a saved report
//   --diff OLD NEW          compare two saved reports; nothing is re-run
//   --threshold PCT         p50 wall growth counted as a regression (10)
//   --min-time-us US        ignore benchmarks faster than this floor (50)
//   --check                 exit 1 when the comparison found a regression
//   --suite-deadline-ms N   wall budget per benchmark (default 600000,
//                           0 = unlimited); an overrunning benchmark is
//                           abandoned and recorded with status="timeout"
//                           while the remaining suites still run
//   --help
//
// A vanished benchmark is always a regression; a new one never is.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include "perf/measure.hpp"
#include "perf/record.hpp"
#include "perf/suites.hpp"
#include "trace/flush.hpp"

using namespace adc;

namespace {

int usage(int code) {
  std::fprintf(code ? stderr : stdout,
               "usage: adc_bench [--suite all|S1,S2,...] [--filter STR] [--list] "
               "[--quick] [--repeats N] [--warmup N] [--out FILE] "
               "[--baseline FILE] [--diff OLD NEW] [--threshold PCT] "
               "[--min-time-us US] [--check] [--suite-deadline-ms N]\n");
  return code;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> suites;
  std::string filter;
  std::string out_path;
  std::string baseline_path;
  std::string diff_old, diff_new;
  perf::MeasureOptions mopts;
  perf::CompareOptions copts;
  bool list = false, check = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(2);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    else if (arg == "--suite") {
      std::string v = next();
      if (v != "all") suites = split_csv(v);
    }
    else if (arg == "--filter") filter = next();
    else if (arg == "--list") list = true;
    else if (arg == "--quick") {
      bool trim = mopts.trim_outliers;
      mopts = perf::MeasureOptions::quick_mode();
      mopts.trim_outliers = trim;
    }
    else if (arg == "--repeats") mopts.repeats = static_cast<unsigned>(std::stoul(next()));
    else if (arg == "--warmup") mopts.warmup = static_cast<unsigned>(std::stoul(next()));
    else if (arg == "--out") out_path = next();
    else if (arg == "--baseline") baseline_path = next();
    else if (arg == "--diff") {
      diff_old = next();
      diff_new = next();
    }
    else if (arg == "--suite-deadline-ms") mopts.deadline_ms = std::stoull(next());
    else if (arg == "--threshold") copts.threshold_pct = std::stod(next());
    else if (arg == "--min-time-us") copts.min_us = std::stod(next());
    else if (arg == "--check") check = true;
    else return usage(2);
  }

  try {
    // File-pair diff: no benchmarks run, just the comparison.
    if (!diff_old.empty()) {
      perf::BenchReport oldr = perf::parse_bench_report(slurp(diff_old));
      perf::BenchReport newr = perf::parse_bench_report(slurp(diff_new));
      auto deltas = perf::compare_reports(oldr, newr, copts);
      std::printf("%s", perf::render_deltas(deltas, copts).c_str());
      if (oldr.env.git_sha != newr.env.git_sha)
        std::printf("note: baselines span commits %s -> %s\n",
                    oldr.env.git_sha.c_str(), newr.env.git_sha.c_str());
      return perf::has_regression(deltas) ? 1 : 0;
    }

    perf::register_default_suites();

    if (list) {
      for (const auto& b : perf::BenchRegistry::instance().all())
        std::printf("%-10s %s\n", b.suite.c_str(), b.name.c_str());
      return 0;
    }

    // With --out - the JSON owns stdout.
    FILE* log = out_path == "-" ? stderr : stdout;

    // A run killed mid-suite (SIGINT, CI SIGTERM) still flushes the
    // benchmarks completed so far as a valid BENCH document.
    int flush_token = -1;
    auto partial = std::make_shared<perf::BenchReport>();
    if (!out_path.empty() && out_path != "-") {
      mopts.on_record = [partial](const perf::BenchReport& so_far) {
        *partial = so_far;
      };
      flush_token = register_artifact_flush(out_path, [partial, out_path] {
        if (partial->benchmarks.empty()) return;
        std::ofstream out(out_path);
        out << perf::to_json(*partial) << "\n";
      });
    }

    perf::BenchReport rep = perf::run_registered(suites, filter, mopts);
    if (rep.benchmarks.empty()) {
      std::fprintf(stderr, "adc_bench: no benchmarks matched\n");
      return 2;
    }
    std::fprintf(log, "%s", perf::render_report(rep).c_str());

    if (flush_token >= 0) unregister_artifact_flush(flush_token);
    if (!out_path.empty()) {
      std::string text = perf::to_json(rep);
      if (out_path == "-") {
        std::printf("%s\n", text.c_str());
      } else {
        std::ofstream out(out_path);
        out << text << "\n";
        if (!out) throw std::runtime_error("cannot write " + out_path);
        std::fprintf(log, "adc_bench: wrote %s (%zu benchmarks)\n",
                     out_path.c_str(), rep.benchmarks.size());
      }
    }

    if (!baseline_path.empty()) {
      perf::BenchReport base = perf::parse_bench_report(slurp(baseline_path));
      auto deltas = perf::compare_reports(base, rep, copts);
      std::fprintf(log, "\nvs %s:\n%s", baseline_path.c_str(),
                   perf::render_deltas(deltas, copts).c_str());
      if (base.env.git_sha != rep.env.git_sha)
        std::fprintf(log, "note: baseline is commit %s, this run is %s\n",
                     base.env.git_sha.c_str(), rep.env.git_sha.c_str());
      if (check && perf::has_regression(deltas)) return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adc_bench: %s\n", e.what());
    return 2;
  }
}
