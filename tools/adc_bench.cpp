// adc_bench — the toolchain's performance regression harness.
//
//   adc_bench --suite all --out BENCH_local.json
//   adc_bench --suite gt,sim --filter diffeq --quick
//   adc_bench --baseline BENCH_main.json --check --threshold 10
//   adc_bench --diff BENCH_old.json BENCH_new.json --check
//
// Runs the registered benchmark suites (frontend parsing, the GT pipeline,
// extraction + local transforms, two-level logic minimization, both
// simulators, the flow executor hot/cold and the DSE ablation grid) under
// the warmup/repeat/outlier policy of perf/measure.hpp and emits one BENCH
// JSON document (perf/record.hpp, kind "adc-bench" v1): per-benchmark
// p50/p90/p99 wall and CPU microseconds, peak RSS, free-form counters
// (cache hit rates, simulated latencies) and per-stage flow timings.
//
// Options:
//   --suite all|S1,S2,...   suites to run (default: all registered)
//   --filter STR            only benchmarks whose name contains STR
//   --list                  list registered benchmarks and exit
//   --quick                 1 warmup + 3 repeats and smaller grids (CI)
//   --repeats N / --warmup N  override the measurement policy
//   --out FILE              write the BENCH JSON ('-' = stdout)
//   --baseline FILE         compare this run against a saved report
//   --diff OLD NEW          compare two saved reports; nothing is re-run
//   --threshold PCT         p50 wall growth counted as a regression (10)
//   --min-time-us US        ignore benchmarks faster than this floor (50)
//   --ratio A:B:PCT         cross-benchmark gate within one run (or the NEW
//                           report of --diff): p50 wall of A must stay
//                           within PCT%% of B's, i.e. p50(A) <= p50(B) *
//                           (1 + PCT/100).  Repeatable.  In run mode the
//                           pair is measured with interleaved iterations
//                           (A,B,A,B,...) so in-process drift cancels out
//                           of the ratio instead of skewing whichever side
//                           runs later.  This is how the profiled DSE sweep
//                           (dse.grid_profiled) is held to <= 5%% over
//                           dse.grid_cold_serial without depending on a
//                           saved baseline's absolute times.
//   --check                 exit 1 when the comparison found a regression
//                           or a --ratio gate failed
//   --suite-deadline-ms N   wall budget per benchmark (default 600000,
//                           0 = unlimited); an overrunning benchmark is
//                           abandoned and recorded with status="timeout"
//                           while the remaining suites still run
//   --help
//
// A vanished benchmark is always a regression; a new one never is.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include "perf/measure.hpp"
#include "perf/record.hpp"
#include "perf/suites.hpp"
#include "trace/flush.hpp"

using namespace adc;

namespace {

int usage(int code) {
  std::fprintf(code ? stderr : stdout,
               "usage: adc_bench [--suite all|S1,S2,...] [--filter STR] [--list] "
               "[--quick] [--repeats N] [--warmup N] [--out FILE] "
               "[--baseline FILE] [--diff OLD NEW] [--threshold PCT] "
               "[--min-time-us US] [--ratio A:B:PCT] [--check] "
               "[--suite-deadline-ms N]\n");
  return code;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

// One --ratio A:B:PCT gate: p50 wall of A must not exceed B's by more than
// PCT percent.  Both benchmarks come from the SAME run, so machine speed
// cancels out — unlike a --baseline diff, the gate holds on any hardware.
struct RatioSpec {
  std::string a, b;
  double pct = 0.0;
};

RatioSpec parse_ratio(const std::string& spec) {
  auto c1 = spec.find(':');
  auto c2 = c1 == std::string::npos ? std::string::npos : spec.find(':', c1 + 1);
  if (c2 == std::string::npos)
    throw std::runtime_error("--ratio expects A:B:PCT, got '" + spec + "'");
  RatioSpec r;
  r.a = spec.substr(0, c1);
  r.b = spec.substr(c1 + 1, c2 - c1 - 1);
  r.pct = std::stod(spec.substr(c2 + 1));
  return r;
}

// Evaluates a parsed gate against the two records (either side may be null
// when the benchmark is missing).  Returns false (and prints why) on
// failure.
bool eval_ratio(const perf::BenchRecord* a, const perf::BenchRecord* b,
                const RatioSpec& spec, FILE* log) {
  if (!a || !b) {
    std::fprintf(log, "ratio %s vs %s: FAIL (%s not measured)\n",
                 spec.a.c_str(), spec.b.c_str(),
                 (!a ? spec.a : spec.b).c_str());
    return false;
  }
  if (a->status != "ok" || b->status != "ok") {
    std::fprintf(log, "ratio %s vs %s: FAIL (%s status=%s)\n", spec.a.c_str(),
                 spec.b.c_str(),
                 a->status != "ok" ? spec.a.c_str() : spec.b.c_str(),
                 a->status != "ok" ? a->status.c_str() : b->status.c_str());
    return false;
  }
  const double limit = b->wall_us.p50 * (1.0 + spec.pct / 100.0);
  const bool ok = b->wall_us.p50 > 0.0 && a->wall_us.p50 <= limit;
  const double actual_pct =
      b->wall_us.p50 > 0.0
          ? (a->wall_us.p50 - b->wall_us.p50) / b->wall_us.p50 * 100.0
          : 0.0;
  std::fprintf(log, "ratio %s vs %s: p50 %.0f us vs %.0f us (%+.1f%%, gate +%.1f%%) %s\n",
               spec.a.c_str(), spec.b.c_str(), a->wall_us.p50, b->wall_us.p50,
               actual_pct, spec.pct, ok ? "ok" : "FAIL");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> suites;
  std::string filter;
  std::string out_path;
  std::string baseline_path;
  std::string diff_old, diff_new;
  perf::MeasureOptions mopts;
  perf::CompareOptions copts;
  std::vector<std::string> ratios;
  bool list = false, check = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(2);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    else if (arg == "--suite") {
      std::string v = next();
      if (v != "all") suites = split_csv(v);
    }
    else if (arg == "--filter") filter = next();
    else if (arg == "--list") list = true;
    else if (arg == "--quick") {
      bool trim = mopts.trim_outliers;
      mopts = perf::MeasureOptions::quick_mode();
      mopts.trim_outliers = trim;
    }
    else if (arg == "--repeats") mopts.repeats = static_cast<unsigned>(std::stoul(next()));
    else if (arg == "--warmup") mopts.warmup = static_cast<unsigned>(std::stoul(next()));
    else if (arg == "--out") out_path = next();
    else if (arg == "--baseline") baseline_path = next();
    else if (arg == "--diff") {
      diff_old = next();
      diff_new = next();
    }
    else if (arg == "--suite-deadline-ms") mopts.deadline_ms = std::stoull(next());
    else if (arg == "--threshold") copts.threshold_pct = std::stod(next());
    else if (arg == "--min-time-us") copts.min_us = std::stod(next());
    else if (arg == "--ratio") ratios.push_back(next());
    else if (arg == "--check") check = true;
    else return usage(2);
  }

  try {
    // File-pair diff: no benchmarks run, just the comparison.
    if (!diff_old.empty()) {
      perf::BenchReport oldr = perf::parse_bench_report(slurp(diff_old));
      perf::BenchReport newr = perf::parse_bench_report(slurp(diff_new));
      auto deltas = perf::compare_reports(oldr, newr, copts);
      std::printf("%s", perf::render_deltas(deltas, copts).c_str());
      if (oldr.env.git_sha != newr.env.git_sha)
        std::printf("note: baselines span commits %s -> %s\n",
                    oldr.env.git_sha.c_str(), newr.env.git_sha.c_str());
      bool ratios_ok = true;
      for (const auto& raw : ratios) {
        RatioSpec spec = parse_ratio(raw);
        ratios_ok =
            eval_ratio(newr.find(spec.a), newr.find(spec.b), spec, stdout) &&
            ratios_ok;
      }
      return perf::has_regression(deltas) || !ratios_ok ? 1 : 0;
    }

    perf::register_default_suites();

    if (list) {
      for (const auto& b : perf::BenchRegistry::instance().all())
        std::printf("%-10s %s\n", b.suite.c_str(), b.name.c_str());
      return 0;
    }

    // With --out - the JSON owns stdout.
    FILE* log = out_path == "-" ? stderr : stdout;

    // A run killed mid-suite (SIGINT, CI SIGTERM) still flushes the
    // benchmarks completed so far as a valid BENCH document.
    int flush_token = -1;
    auto partial = std::make_shared<perf::BenchReport>();
    if (!out_path.empty() && out_path != "-") {
      mopts.on_record = [partial](const perf::BenchReport& so_far) {
        *partial = so_far;
      };
      flush_token = register_artifact_flush(out_path, [partial, out_path] {
        if (partial->benchmarks.empty()) return;
        std::ofstream out(out_path);
        out << perf::to_json(*partial) << "\n";
      });
    }

    // Ratio-gated benchmarks are measured as interleaved pairs (drift lands
    // on both sides equally) and skipped in the sequential pass so nothing
    // is timed twice and the report carries no duplicate names.
    std::vector<RatioSpec> ratio_specs;
    std::vector<std::string> paired_names;
    for (const auto& raw : ratios) {
      ratio_specs.push_back(parse_ratio(raw));
      paired_names.push_back(ratio_specs.back().a);
      paired_names.push_back(ratio_specs.back().b);
    }

    perf::BenchReport rep =
        perf::run_registered(suites, filter, mopts, "adc_bench", paired_names);

    bool ratios_ok = true;
    for (const auto& spec : ratio_specs) {
      auto find_registered = [](const std::string& name) -> const perf::Benchmark* {
        for (const auto& b : perf::BenchRegistry::instance().all())
          if (b.name == name) return &b;
        return nullptr;
      };
      const perf::Benchmark* a = find_registered(spec.a);
      const perf::Benchmark* b = find_registered(spec.b);
      if (!a || !b) {
        std::fprintf(log, "ratio %s vs %s: FAIL (%s not registered)\n",
                     spec.a.c_str(), spec.b.c_str(),
                     (!a ? spec.a : spec.b).c_str());
        ratios_ok = false;
        continue;
      }
      auto pair = perf::measure_interleaved(*a, *b, mopts);
      ratios_ok =
          eval_ratio(&pair.first, &pair.second, spec, log) && ratios_ok;
      // The interleaved samples are measured under the same policy — they
      // belong in the emitted report like any sequential record.
      if (!rep.find(pair.first.name))
        rep.benchmarks.push_back(std::move(pair.first));
      if (!rep.find(pair.second.name))
        rep.benchmarks.push_back(std::move(pair.second));
      if (mopts.on_record) mopts.on_record(rep);
    }

    if (rep.benchmarks.empty()) {
      std::fprintf(stderr, "adc_bench: no benchmarks matched\n");
      return 2;
    }
    std::fprintf(log, "%s", perf::render_report(rep).c_str());

    if (flush_token >= 0) unregister_artifact_flush(flush_token);
    if (!out_path.empty()) {
      std::string text = perf::to_json(rep);
      if (out_path == "-") {
        std::printf("%s\n", text.c_str());
      } else {
        std::ofstream out(out_path);
        out << text << "\n";
        if (!out) throw std::runtime_error("cannot write " + out_path);
        std::fprintf(log, "adc_bench: wrote %s (%zu benchmarks)\n",
                     out_path.c_str(), rep.benchmarks.size());
      }
    }

    if (!baseline_path.empty()) {
      perf::BenchReport base = perf::parse_bench_report(slurp(baseline_path));
      auto deltas = perf::compare_reports(base, rep, copts);
      std::fprintf(log, "\nvs %s:\n%s", baseline_path.c_str(),
                   perf::render_deltas(deltas, copts).c_str());
      if (base.env.git_sha != rep.env.git_sha)
        std::fprintf(log, "note: baseline is commit %s, this run is %s\n",
                     base.env.git_sha.c_str(), rep.env.git_sha.c_str());
      if (check && perf::has_regression(deltas)) return 1;
    }
    return check && !ratios_ok ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adc_bench: %s\n", e.what());
    return 2;
  }
}
