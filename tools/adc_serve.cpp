// adc_serve — the synthesis-as-a-service daemon.
//
// Listens on a Unix-domain socket and/or loopback TCP for length-prefixed
// JSON requests (docs/SERVING.md has the protocol grammar) and runs every
// client's synthesis jobs through one shared FlowExecutor: one
// content-addressed stage cache, one work-stealing pool, and — with
// --cache-dir — one crash-safe persistent point cache shared by every
// client and every daemon restart.
//
//   adc_serve --socket /tmp/adc.sock --cache-dir /var/cache/adc
//   adc_serve --port 0 --ready-file ready.json     # ephemeral port, CI
//
// Options:
//   --socket PATH           listen on a Unix-domain socket
//   --port N                listen on loopback TCP (0 = ephemeral port)
//   --host ADDR             TCP bind address (default 127.0.0.1)
//   --workers N             concurrent jobs in flight (default 2)
//   --jobs N                threads in the shared synthesis pool
//                           (default: hardware)
//   --queue-capacity N      bounded job queue; a submit against a full
//                           queue is rejected with a "busy" reply and a
//                           retry_after_ms hint (default 64)
//   --cache-dir DIR         persistent disk-tier point cache shared across
//                           clients and restarts
//   --cache-bytes N         disk-tier LRU size cap (default 256 MiB)
//   --stage-deadline-ms N   per-stage wall budget applied to every job
//   --job-deadline-ms N     default whole-job wall budget
//   --max-job-deadline-ms N cap on client-requested deadlines
//   --max-frame-bytes N     wire frame size limit (default 8 MiB)
//   --metrics-port N        Prometheus text exposition via HTTP GET
//                           /metrics (0 = ephemeral; default off)
//   --metrics-host ADDR     bind address for /metrics (default 127.0.0.1)
//   --access-log FILE       structured JSONL access log, one line per
//                           finished/rejected job (docs/OBSERVABILITY.md)
//   --access-log-max-bytes N  rotate the log past this size (default 64 MiB)
//   --trace-out FILE        Chrome trace_event JSON across all jobs of all
//                           clients (flushed on shutdown and on signals)
//   --ready-file FILE       write {"unix":...,"port":N,"metrics_port":N,
//                           "pid":N} after the listeners are bound
//                           (scripts poll this)
//   --fault SPEC            arm the deterministic fault injector
//   --log-level LEVEL       error|warn|info|debug|trace
//   --help
//
// Shutdown: the `shutdown` op, SIGTERM or SIGINT all trigger a graceful
// drain — accepting stops, queued and running jobs complete, replies are
// delivered, artifacts flush, the cache is left intact on disk.  A second
// signal while draining falls back to flush+re-raise (the pre-daemon
// behavior), so a wedged drain can still be killed.
//
// Exit codes: 0 clean drain, 5 cancelling shutdown aborted jobs, 2 usage,
// 1 internal error.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "report/json.hpp"
#include "runtime/fault.hpp"
#include "serve/server.hpp"
#include "trace/flush.hpp"
#include "trace/log.hpp"
#include "trace/tracer.hpp"

using namespace adc;

namespace {

int usage(int code) {
  std::fprintf(code ? stderr : stdout,
               "usage: adc_serve [--socket PATH] [--port N] [--host ADDR] "
               "[--workers N] [--jobs N] [--queue-capacity N] "
               "[--cache-dir DIR] [--cache-bytes N] "
               "[--stage-deadline-ms N] [--job-deadline-ms N] "
               "[--max-job-deadline-ms N] [--max-frame-bytes N] "
               "[--metrics-port N] [--metrics-host ADDR] "
               "[--access-log FILE] [--access-log-max-bytes N] "
               "[--trace-out FILE] [--ready-file FILE] [--fault SPEC] "
               "[--log-level LEVEL]\n"
               "\n"
               "exit codes:\n"
               "  0  clean draining shutdown\n"
               "  5  cancelling shutdown aborted jobs\n"
               "  2  usage error\n"
               "  1  internal error (bind failure, bad option value, ...)\n");
  return code;
}

// SIGTERM/SIGINT drain path.  The handler may only do async-signal-safe
// work, so it writes one byte onto the server's shutdown pipe; the accept
// loop picks it up and runs the ordinary graceful drain.
int g_shutdown_fd = -1;

void drain_on_signal(int) {
  if (g_shutdown_fd >= 0) {
    [[maybe_unused]] ssize_t n = ::write(g_shutdown_fd, "d", 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions opts;
  std::string trace_path, ready_file, fault_spec;
  std::size_t pool_jobs = std::thread::hardware_concurrency();

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(2);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    else if (arg == "--socket") opts.unix_socket = next();
    else if (arg == "--port") opts.port = std::stoi(next());
    else if (arg == "--host") opts.host = next();
    else if (arg == "--workers") opts.workers = std::stoul(next());
    else if (arg == "--jobs") pool_jobs = std::stoul(next());
    else if (arg == "--queue-capacity") opts.queue_capacity = std::stoul(next());
    else if (arg == "--cache-dir") opts.flow.disk_cache_dir = next();
    else if (arg == "--cache-bytes") opts.flow.disk_cache_bytes = std::stoull(next());
    else if (arg == "--stage-deadline-ms") opts.stage_deadline_ms = std::stoull(next());
    else if (arg == "--job-deadline-ms") opts.default_deadline_ms = std::stoull(next());
    else if (arg == "--max-job-deadline-ms") opts.max_deadline_ms = std::stoull(next());
    else if (arg == "--max-frame-bytes")
      opts.max_frame_bytes = static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--metrics-port") opts.metrics_port = std::stoi(next());
    else if (arg == "--metrics-host") opts.metrics_host = next();
    else if (arg == "--access-log") opts.access_log = next();
    else if (arg == "--access-log-max-bytes")
      opts.access_log_max_bytes = std::stoll(next());
    else if (arg == "--trace-out") trace_path = next();
    else if (arg == "--ready-file") ready_file = next();
    else if (arg == "--fault") fault_spec = next();
    else if (arg == "--log-level") {
      try {
        set_log_level(log_level_from_string(next()));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "adc_serve: %s\n", e.what());
        return 2;
      }
    }
    else return usage(2);
  }
  if (opts.unix_socket.empty() && opts.port < 0) {
    std::fprintf(stderr, "adc_serve: need --socket PATH and/or --port N\n");
    return usage(2);
  }

  try {
    fault().configure_from_env();
    if (!fault_spec.empty()) fault().configure(fault_spec);
    opts.pool_threads = pool_jobs;

    auto tracer = std::make_shared<Tracer>();
    int trace_token = -1;
    if (!trace_path.empty()) {
      opts.flow.tracer = tracer.get();
      trace_token = register_artifact_flush(trace_path, [tracer, trace_path] {
        std::ofstream out(trace_path);
        tracer->write_chrome_trace(out);
      });
    }

    serve::ServeServer server(std::move(opts));
    server.start();

    // First SIGTERM/SIGINT: graceful drain through the shutdown pipe.
    // Second: the flush registry's default handler (flush + re-raise).
    g_shutdown_fd = server.shutdown_pipe_fd();
    set_signal_drain_hook(drain_on_signal);

    if (!ready_file.empty()) {
      JsonWriter w;
      w.begin_object();
      w.kv("unix", server.unix_path());
      w.kv("port", static_cast<std::int64_t>(server.tcp_port()));
      w.kv("metrics_port", static_cast<std::int64_t>(server.metrics_http_port()));
      w.kv("pid", static_cast<std::int64_t>(::getpid()));
      w.end_object();
      std::ofstream out(ready_file);
      out << w.str() << "\n";
      if (!out) throw std::runtime_error("cannot write " + ready_file);
    }
    std::fprintf(stderr, "adc_serve: listening%s%s%s (pid %d)\n",
                 server.unix_path().empty() ? "" : " on ",
                 server.unix_path().c_str(),
                 server.tcp_port() >= 0
                     ? (" tcp:" + std::to_string(server.tcp_port())).c_str()
                     : "",
                 static_cast<int>(::getpid()));

    int rc = server.wait();
    set_signal_drain_hook(nullptr);

    if (!trace_path.empty()) {
      unregister_artifact_flush(trace_token);
      std::ofstream out(trace_path);
      tracer->write_chrome_trace(out);
      if (!out) throw std::runtime_error("cannot write " + trace_path);
      std::fprintf(stderr, "adc_serve: wrote %s\n", trace_path.c_str());
    }
    serve::ServerStats s = server.stats();
    std::fprintf(stderr,
                 "adc_serve: drained (%llu submitted, %llu completed, "
                 "%llu cancelled, %llu rejected)\n",
                 static_cast<unsigned long long>(s.submitted),
                 static_cast<unsigned long long>(s.completed),
                 static_cast<unsigned long long>(s.cancelled),
                 static_cast<unsigned long long>(s.rejected));
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adc_serve: %s\n", e.what());
    return 1;
  }
}
