// adc_synth — command-line driver for the full synthesis flow.
//
//   adc_synth [options] [program.adc]
//
// Reads a scheduled CDFG program (the textual language of
// frontend/parser.hpp) from a file or stdin, runs the transformation
// pipeline, and writes the synthesis artifacts.
//
// Options:
//   --script "gt1; gt2; ..."   transformation script (default: the paper's
//                              full recipe "gt1; gt2; gt3; gt4; gt2; gt5; lt")
//   --out DIR                  artifact directory (default ".")
//   --emit bms|verilog|eqn|dot (repeatable; default: all)
//   --simulate REG=VAL,...     run the gate-level simulation with the given
//                              initial registers and report the final state
//   --report                   print the per-controller summary table
//   --json FILE                machine-readable report (stats + simulation
//                              result; '-' writes to stdout) — the same
//                              serialization path adc_dse uses
//   --help

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "cdfg/dot.hpp"
#include "cdfg/validate.hpp"
#include "extract/extract.hpp"
#include "frontend/parser.hpp"
#include "logic/minimize.hpp"
#include "logic/netlist.hpp"
#include "logic/stats.hpp"
#include "ltrans/local.hpp"
#include "report/json.hpp"
#include "report/table.hpp"
#include "sim/event_sim.hpp"
#include "transforms/script.hpp"
#include "xbm/print.hpp"

using namespace adc;

namespace {

int usage(int code) {
  std::fprintf(code ? stderr : stdout,
               "usage: adc_synth [--script S] [--out DIR] [--emit KIND]... "
               "[--simulate REG=VAL,...] [--report] [--json FILE] [program.adc]\n");
  return code;
}

std::map<std::string, std::int64_t> parse_init(const std::string& spec) {
  std::map<std::string, std::int64_t> init;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    auto eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("--simulate expects REG=VAL pairs, got '" + item + "'");
    init[item.substr(0, eq)] = std::stoll(item.substr(eq + 1));
  }
  return init;
}

}  // namespace

int main(int argc, char** argv) {
  std::string script_text = "gt1; gt2; gt3; gt4; gt2; gt5; lt";
  std::string out_dir = ".";
  std::string input_file;
  std::set<std::string> emit;
  std::string simulate;
  std::string json_path;
  bool report = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(2);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    else if (arg == "--script") script_text = next();
    else if (arg == "--out") out_dir = next();
    else if (arg == "--emit") emit.insert(next());
    else if (arg == "--simulate") simulate = next();
    else if (arg == "--json") json_path = next();
    else if (arg == "--report") report = true;
    else if (!arg.empty() && arg[0] == '-') return usage(2);
    else input_file = arg;
  }
  if (emit.empty()) emit = {"bms", "verilog", "eqn", "dot"};

  try {
    std::string source;
    if (input_file.empty()) {
      std::stringstream ss;
      ss << std::cin.rdbuf();
      source = ss.str();
    } else {
      std::ifstream in(input_file);
      if (!in) {
        std::fprintf(stderr, "adc_synth: cannot open %s\n", input_file.c_str());
        return 1;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      source = ss.str();
    }

    Cdfg g = parse_program(source);
    validate_or_throw(g, ValidateOptions{.allow_backward_arcs = false});
    // With --json - the report owns stdout; progress goes to stderr.
    FILE* log = json_path == "-" ? stderr : stdout;
    std::fprintf(log, "parsed '%s': %zu nodes, %zu arcs, %zu functional units\n",
                 g.name().c_str(), g.live_node_count(), g.live_arc_count(), g.fu_count());

    TransformScript script = TransformScript::parse(script_text);
    auto global = script.run(g);
    std::fprintf(log, "script '%s': %zu controller channels\n",
                 script.to_string().c_str(), global.plan.count_controller_channels());

    std::vector<ControllerInstance> instances;
    struct ControllerReport {
      std::string name;
      std::size_t transitions;
      GateStats stats;
    };
    std::vector<ControllerReport> reports;
    Table t({"controller", "states", "transitions", "products", "literals",
             "impl states"});
    for (auto& c : extract_controllers(g, global.plan)) {
      ControllerInstance inst;
      if (script.has_local_step())
        inst.shared_signals = run_local_transforms(c, script.local_options()).shared_signals;
      if (c.machine.transition_ids().empty()) continue;

      auto logic = synthesize_logic(c);
      auto st = gate_stats(logic, c.machine.state_count());
      reports.push_back({c.machine.name(), c.machine.transition_count(), st});
      t.add_row({c.machine.name(), std::to_string(st.spec_states),
                 std::to_string(c.machine.transition_count()),
                 std::to_string(st.products_shared), std::to_string(st.literals_shared),
                 std::to_string(st.impl_states)});

      std::string base = out_dir + "/" + g.name() + "_" + c.machine.name();
      if (emit.count("bms")) std::ofstream(base + ".bms") << to_text(c.machine);
      if (emit.count("verilog"))
        std::ofstream(base + ".v") << to_verilog(logic, g.name() + "_" + c.machine.name());
      if (emit.count("eqn")) std::ofstream(base + ".eqn") << to_equations(logic);

      inst.controller = std::move(c);
      instances.push_back(std::move(inst));
    }
    if (emit.count("dot"))
      std::ofstream(out_dir + "/" + g.name() + ".dot") << to_dot(g);
    if (report) std::fprintf(log, "%s", t.to_string().c_str());

    EventSimResult sim_result;
    bool simulated = !simulate.empty();
    if (simulated) {
      auto init = parse_init(simulate);
      sim_result = run_event_sim(g, global.plan, instances, init, EventSimOptions{});
      if (!sim_result.completed) {
        std::fprintf(log, "simulation FAILED: %s\n", sim_result.error.c_str());
        if (json_path.empty()) return 1;
      } else {
        std::fprintf(log, "simulation completed at t=%lld (%lld datapath operations)\n",
                     static_cast<long long>(sim_result.finish_time),
                     static_cast<long long>(sim_result.operations));
        for (const auto& [reg, v] : sim_result.registers)
          std::fprintf(log, "  %s = %lld\n", reg.c_str(), static_cast<long long>(v));
      }
    }

    if (!json_path.empty()) {
      JsonWriter w(true);
      w.begin_object();
      w.kv("tool", "adc_synth");
      w.kv("program", g.name());
      w.kv("script", script.to_string());
      w.kv("nodes", g.live_node_count());
      w.kv("arcs", g.live_arc_count());
      w.kv("channels", global.plan.count_controller_channels());
      w.key("controllers");
      w.begin_array();
      for (const auto& r : reports) {
        w.begin_object();
        w.kv("name", r.name);
        w.kv("states", r.stats.spec_states);
        w.kv("transitions", r.transitions);
        w.kv("impl_states", r.stats.impl_states);
        w.kv("state_bits", r.stats.state_bits);
        w.kv("products", r.stats.products_shared);
        w.kv("literals", r.stats.literals_shared);
        w.kv("products_single", r.stats.products_single);
        w.kv("literals_single", r.stats.literals_single);
        w.kv("feasible", r.stats.feasible);
        w.end_object();
      }
      w.end_array();
      if (simulated) {
        w.key("simulation");
        w.begin_object();
        w.kv("completed", sim_result.completed);
        if (!sim_result.error.empty()) w.kv("error", sim_result.error);
        w.kv("finish_time", sim_result.finish_time);
        w.kv("events", sim_result.events);
        w.kv("operations", sim_result.operations);
        w.key("registers");
        w.begin_object();
        for (const auto& [reg, v] : sim_result.registers) w.kv(reg, v);
        w.end_object();
        w.end_object();
      }
      w.end_object();
      if (json_path == "-") {
        std::printf("%s\n", w.str().c_str());
      } else {
        std::ofstream out(json_path);
        out << w.str() << "\n";
        if (!out) {
          std::fprintf(stderr, "adc_synth: cannot write %s\n", json_path.c_str());
          return 1;
        }
      }
    }
    return simulated && !sim_result.completed ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adc_synth: %s\n", e.what());
    return 1;
  }
}
