// adc_synth — command-line driver for the full synthesis flow.
//
//   adc_synth [options] [program.adc]
//
// Reads a scheduled CDFG program (the textual language of
// frontend/parser.hpp) from a file or stdin — or picks a builtin benchmark
// with --bench — runs the transformation pipeline through the parallel
// synthesis runtime's FlowExecutor, and writes the synthesis artifacts.
//
// Options:
//   --script "gt1; gt2; ..."   transformation script (default: the paper's
//                              full recipe "gt1; gt2; gt3; gt4; gt2; gt5; lt")
//   --bench NAME               builtin benchmark (diffeq, gcd, fir4,
//                              mac_reduce, ewf_lite, ewf) with its bundled
//                              register file; implies simulation
//   --out DIR                  artifact directory (default ".")
//   --emit bms|verilog|eqn|dot (repeatable; default: all)
//   --simulate REG=VAL,...     run the gate-level simulation with the given
//                              initial registers and report the final state
//   --report                   print the per-controller summary table
//   --json FILE                machine-readable report (stats + simulation
//                              result; '-' writes to stdout) — the same
//                              serialization path adc_dse uses
//   --trace-out FILE           Chrome trace_event JSON of the run: nested
//                              spans for every flow stage with cache
//                              hit/miss annotations (open in Perfetto)
//   --provenance FILE          reconciled transform decision log as JSON
//                              ('-' writes to stdout)
//   --vcd FILE                 VCD handshake waveforms of the event
//                              simulation (open in GTKWave)
//   --critical-path            attribute the simulated end-to-end latency to
//                              channels / controllers / micro-operation
//                              phases (implies simulation; human table on
//                              the report stream, JSON under "critical_path")
//   --explain-vs SCRIPT2       differential explain: evaluate the program a
//                              second time under SCRIPT2 (same executor, so
//                              shared recipe prefixes stay cached), diff the
//                              two points' attribution segment trees and
//                              report which transform decisions the latency
//                              delta comes from (implies --critical-path)
//   --log-level LEVEL          error|warn|info|debug|trace (default: the
//                              ADC_LOG environment variable, else warn)
//   --deadline-ms N            whole-flow wall budget; an overrun is
//                              cancelled and reported as a timeout (exit 5)
//   --stage-deadline-ms N      per-stage wall budget (same semantics)
//   --fault SPEC               arm the deterministic fault injector
//                              (overrides ADC_FAULT); see docs/ROBUSTNESS.md
//   --help
//
// Observability artifacts (--trace-out, --provenance, --vcd) are registered
// with the artifact flush registry: an interrupted run (SIGINT/SIGTERM) or
// an early exit still writes complete, adc_obs_check-valid files.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>

#include "analysis/build.hpp"
#include "analysis/explain.hpp"
#include "cdfg/dot.hpp"
#include "cdfg/validate.hpp"
#include "frontend/parser.hpp"
#include "logic/minimize.hpp"
#include "logic/netlist.hpp"
#include "logic/stats.hpp"
#include "report/json.hpp"
#include "report/table.hpp"
#include "runtime/fault.hpp"
#include "runtime/flow.hpp"
#include "trace/flush.hpp"
#include "trace/log.hpp"
#include "trace/tracer.hpp"
#include "trace/vcd.hpp"
#include "xbm/print.hpp"

using namespace adc;

namespace {

int usage(int code) {
  std::fprintf(code ? stderr : stdout,
               "usage: adc_synth [--script S] [--bench NAME] [--out DIR] "
               "[--emit KIND]... [--simulate REG=VAL,...] [--report] "
               "[--json FILE] [--trace-out FILE] [--provenance FILE] "
               "[--vcd FILE] [--critical-path] [--explain-vs SCRIPT2] "
               "[--deadline-ms N] "
               "[--stage-deadline-ms N] [--fault SPEC] [--log-level LEVEL] "
               "[program.adc]\n"
               "\n"
               "exit codes:\n"
               "  0  flow and (if requested) simulation completed\n"
               "  1  internal error (bad input, synthesis failure, I/O)\n"
               "  2  usage error\n"
               "  6  an injected fault aborted the flow\n"
               "  5  the flow timed out or was cancelled\n"
               "  4  the event simulation deadlocked\n");
  return code;
}

std::map<std::string, std::int64_t> parse_init(const std::string& spec) {
  std::map<std::string, std::int64_t> init;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    auto eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("--simulate expects REG=VAL pairs, got '" + item + "'");
    init[item.substr(0, eq)] = std::stoll(item.substr(eq + 1));
  }
  return init;
}

// Maps a point's terminal status onto the documented exit codes.
int exit_code_for(const FlowPoint& p) {
  switch (p.status) {
    case FlowStatus::kOk: return 0;
    case FlowStatus::kDeadlock: return 4;
    case FlowStatus::kTimeout:
    case FlowStatus::kCancelled: return 5;
    case FlowStatus::kFault: return 6;
    case FlowStatus::kError: return 1;
  }
  return 1;
}

void write_file(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::printf("%s\n", text.c_str());
    return;
  }
  std::ofstream out(path);
  out << text << "\n";
  if (!out) throw std::runtime_error("cannot write " + path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string script_text = "gt1; gt2; gt3; gt4; gt2; gt5; lt";
  std::string bench_name;
  std::string out_dir = ".";
  std::string input_file;
  std::set<std::string> emit;
  std::string simulate;
  std::string json_path;
  std::string trace_path;
  std::string prov_path;
  std::string vcd_path;
  std::string fault_spec;
  std::uint64_t deadline_ms = 0, stage_deadline_ms = 0;
  bool report = false;
  bool critical_path = false;
  std::string explain_vs;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(2);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    else if (arg == "--script") script_text = next();
    else if (arg == "--bench") bench_name = next();
    else if (arg == "--out") out_dir = next();
    else if (arg == "--emit") emit.insert(next());
    else if (arg == "--simulate") simulate = next();
    else if (arg == "--report") report = true;
    else if (arg == "--json") json_path = next();
    else if (arg == "--trace-out") trace_path = next();
    else if (arg == "--provenance") prov_path = next();
    else if (arg == "--vcd") vcd_path = next();
    else if (arg == "--critical-path") critical_path = true;
    else if (arg == "--explain-vs") explain_vs = next();
    else if (arg == "--deadline-ms") deadline_ms = std::stoull(next());
    else if (arg == "--stage-deadline-ms") stage_deadline_ms = std::stoull(next());
    else if (arg == "--fault") fault_spec = next();
    else if (arg == "--log-level") {
      try {
        set_log_level(log_level_from_string(next()));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "adc_synth: %s\n", e.what());
        return 2;
      }
    }
    else if (!arg.empty() && arg[0] == '-') return usage(2);
    else input_file = arg;
  }
  if (emit.empty()) emit = {"bms", "verilog", "eqn", "dot"};
  if (!bench_name.empty() && !input_file.empty()) {
    std::fprintf(stderr, "adc_synth: --bench and a program file are exclusive\n");
    return 2;
  }

  try {
    fault().configure_from_env();
    if (!fault_spec.empty()) fault().configure(fault_spec);
    // Assemble the flow request.
    FlowRequest req;
    if (!bench_name.empty()) {
      const BuiltinBenchmark* b = find_builtin(bench_name);
      if (!b) throw std::invalid_argument("unknown builtin benchmark '" + bench_name + "'");
      req = make_builtin_request(*b, script_text);
    } else {
      std::string source;
      if (input_file.empty()) {
        std::stringstream ss;
        ss << std::cin.rdbuf();
        source = ss.str();
      } else {
        std::ifstream in(input_file);
        if (!in) {
          std::fprintf(stderr, "adc_synth: cannot open %s\n", input_file.c_str());
          return 1;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        source = ss.str();
      }
      // Validate eagerly for a parse-located error message (the flow would
      // reject the program too, but later and with less context).
      Cdfg g = parse_program(source);
      validate_or_throw(g, ValidateOptions{.allow_backward_arcs = false});
      req.benchmark = g.name();
      req.source = std::move(source);
      req.script = script_text;
    }
    if (!simulate.empty()) req.init = parse_init(simulate);
    if (!explain_vs.empty()) critical_path = true;  // the diff needs segments
    req.simulate = !simulate.empty() || !bench_name.empty() || !vcd_path.empty() ||
                   critical_path;
    req.provenance = !prov_path.empty() || !explain_vs.empty();
    req.critical_path = critical_path;
    req.deadline_ms = deadline_ms;
    req.stage_deadline_ms = stage_deadline_ms;

    // The observability sinks are shared with the flush registry so an
    // interrupted run still writes complete artifacts (the tracer only
    // buffers finished spans; the VCD writer always emits a full file).
    auto vcd = std::make_shared<VcdWriter>();
    if (!vcd_path.empty()) req.sim.vcd = vcd.get();
    auto tracer = std::make_shared<Tracer>();
    FlowExecutor::Options opts;
    if (!trace_path.empty()) opts.tracer = tracer.get();

    int trace_token = -1, vcd_token = -1, prov_token = -1;
    if (!trace_path.empty() && trace_path != "-")
      trace_token = register_artifact_flush(trace_path, [tracer, trace_path] {
        std::ofstream out(trace_path);
        tracer->write_chrome_trace(out);
      });
    if (!vcd_path.empty() && vcd_path != "-")
      vcd_token = register_artifact_flush(vcd_path, [vcd, vcd_path] {
        if (vcd->var_count() == 0 || vcd->change_count() == 0)
          return;  // nothing simulated yet: no partial waveform to save
        std::ofstream out(vcd_path);
        vcd->write(out);
      });
    // The real report only exists after the flow finishes; until then the
    // flush falls back to an empty (trivially reconciled) stub.
    auto prov_holder =
        std::make_shared<std::shared_ptr<const ProvenanceReport>>();
    if (!prov_path.empty() && prov_path != "-") {
      std::string bench_label = !bench_name.empty() ? bench_name : input_file;
      prov_token = register_artifact_flush(
          prov_path, [prov_holder, prov_path, bench_label, script_text] {
            std::shared_ptr<const ProvenanceReport> rep = *prov_holder;
            if (!rep) {
              auto stub = std::make_shared<ProvenanceReport>();
              stub->benchmark = bench_label;
              stub->script = script_text;
              rep = stub;
            }
            std::ofstream(prov_path) << rep->to_json() << "\n";
          });
    }

    // With --json - or --provenance - the report owns stdout.
    FILE* log = json_path == "-" || prov_path == "-" ? stderr : stdout;

    FlowExecutor exec(nullptr, opts);
    FlowPoint p = exec.run(req);
    *prov_holder = p.provenance;
    if (!p.artifacts) {  // failed before producing anything to emit
      std::fprintf(stderr, "adc_synth: [%s] %s\n", to_string(p.status),
                   p.error.c_str());
      int rc = exit_code_for(p);
      return rc == 0 ? 1 : rc;
    }
    const Cdfg& g = *p.graph;
    std::fprintf(log, "flow '%s' [%s]: %zu nodes, %zu arcs, %zu controller channels\n",
                 p.benchmark.c_str(), p.script.c_str(), g.live_node_count(),
                 g.live_arc_count(), p.channels);

    // Artifact emission from the flow's cached controller set.  Logic is
    // re-synthesized per controller only when a netlist artifact was asked
    // for (the flow keeps metrics, not netlists).
    bool need_logic = emit.count("verilog") || emit.count("eqn");
    Table t({"controller", "states", "transitions", "products", "literals", "feasible"});
    for (std::size_t i = 0; i < p.artifacts->instances.size(); ++i) {
      const ControllerInstance& inst = p.artifacts->instances[i];
      const ControllerMetrics& m = p.artifacts->controllers[i];
      if (inst.controller.machine.transition_ids().empty()) continue;
      t.add_row({m.name, std::to_string(m.states), std::to_string(m.transitions),
                 std::to_string(m.products), std::to_string(m.literals),
                 m.feasible ? "yes" : "NO"});
      std::string base = out_dir + "/" + g.name() + "_" + m.name;
      if (emit.count("bms")) std::ofstream(base + ".bms") << to_text(inst.controller.machine);
      if (need_logic) {
        auto logic = synthesize_logic(inst.controller);
        if (emit.count("verilog"))
          std::ofstream(base + ".v") << to_verilog(logic, g.name() + "_" + m.name);
        if (emit.count("eqn")) std::ofstream(base + ".eqn") << to_equations(logic);
      }
    }
    if (emit.count("dot")) std::ofstream(out_dir + "/" + g.name() + ".dot") << to_dot(g);
    if (report) std::fprintf(log, "%s", t.to_string().c_str());

    if (req.simulate) {
      if (!p.ok && !p.error.empty()) {
        std::fprintf(log, "simulation FAILED%s: %s\n",
                     p.deadlocked ? " (deadlock)" : "", p.error.c_str());
      } else if (p.ok) {
        std::fprintf(log, "simulation completed at t=%lld (%lld datapath operations)\n",
                     static_cast<long long>(p.latency),
                     static_cast<long long>(p.sim_operations));
        for (const auto& [reg, v] : p.sim_registers)
          std::fprintf(log, "  %s = %lld\n", reg.c_str(), static_cast<long long>(v));
      }
      if (critical_path && p.critical_path)
        std::fprintf(log, "\n%s", p.critical_path->to_table().c_str());
    }

    // Differential explain: evaluate the same program under the second
    // recipe on the same executor (shared prefixes replay from the stage
    // cache) and attribute the cycle-time delta to the differing
    // transform decisions.
    if (!explain_vs.empty()) {
      ScopedSpan span(opts.tracer, "analysis.explain");
      FlowRequest req2 = req;
      req2.script = explain_vs;
      req2.cancel = CancelToken();
      req2.sim.vcd = nullptr;  // waveforms belong to the primary run
      FlowPoint q = exec.run(req2);
      if (!q.ok && q.status != FlowStatus::kDeadlock)
        std::fprintf(stderr, "adc_synth: --explain-vs point [%s] failed: %s\n",
                     q.script.c_str(), q.error.c_str());
      auto a = analysis::build_point_profile(p, 0);
      auto b = analysis::build_point_profile(q, 1);
      std::fprintf(log, "\n%s", analysis::explain_points(a, b).to_table().c_str());
    }

    // Observability artifacts (written here on the normal path; the flush
    // registration above covers interrupted runs).
    std::vector<std::pair<std::string, std::string>> artifact_paths;
    if (!trace_path.empty()) {
      unregister_artifact_flush(trace_token);
      std::ofstream out(trace_path);
      tracer->write_chrome_trace(out);
      if (!out) throw std::runtime_error("cannot write " + trace_path);
      artifact_paths.emplace_back("trace", trace_path);
    }
    if (!prov_path.empty() && p.provenance) {
      unregister_artifact_flush(prov_token);
      write_file(prov_path, p.provenance->to_json());
      if (prov_path != "-") artifact_paths.emplace_back("provenance", prov_path);
      std::fprintf(log, "%s", p.provenance->summary().c_str());
    }
    if (!vcd_path.empty() && req.simulate) {
      unregister_artifact_flush(vcd_token);
      std::ofstream out(vcd_path);
      vcd->write(out);
      if (!out) throw std::runtime_error("cannot write " + vcd_path);
      artifact_paths.emplace_back("vcd", vcd_path);
    }

    if (!json_path.empty()) {
      JsonWriter w(true);
      w.begin_object();
      w.kv("tool", "adc_synth");
      w.kv("program", g.name());
      w.kv("nodes", g.live_node_count());
      w.kv("arcs", g.live_arc_count());
      w.key("point");
      write_json(w, p, artifact_paths);
      if (req.simulate) {
        w.key("simulation");
        w.begin_object();
        w.kv("completed", p.ok);
        if (!p.error.empty()) w.kv("error", p.error);
        w.kv("deadlocked", p.deadlocked);
        w.kv("finish_time", p.latency);
        w.kv("events", p.sim_events);
        w.kv("operations", p.sim_operations);
        w.key("registers");
        w.begin_object();
        for (const auto& [reg, v] : p.sim_registers) w.kv(reg, v);
        w.end_object();
        w.end_object();
      }
      w.end_object();
      write_file(json_path, w.str());
    }
    return exit_code_for(p);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adc_synth: %s\n", e.what());
    return 1;
  }
}
