// adc_synth — command-line driver for the full synthesis flow.
//
//   adc_synth [options] [program.adc]
//
// Reads a scheduled CDFG program (the textual language of
// frontend/parser.hpp) from a file or stdin, runs the transformation
// pipeline, and writes the synthesis artifacts.
//
// Options:
//   --script "gt1; gt2; ..."   transformation script (default: the paper's
//                              full recipe "gt1; gt2; gt3; gt4; gt2; gt5; lt")
//   --out DIR                  artifact directory (default ".")
//   --emit bms|verilog|eqn|dot (repeatable; default: all)
//   --simulate REG=VAL,...     run the gate-level simulation with the given
//                              initial registers and report the final state
//   --report                   print the per-controller summary table
//   --help

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "cdfg/dot.hpp"
#include "cdfg/validate.hpp"
#include "extract/extract.hpp"
#include "frontend/parser.hpp"
#include "logic/minimize.hpp"
#include "logic/netlist.hpp"
#include "logic/stats.hpp"
#include "ltrans/local.hpp"
#include "report/table.hpp"
#include "sim/event_sim.hpp"
#include "transforms/script.hpp"
#include "xbm/print.hpp"

using namespace adc;

namespace {

int usage(int code) {
  std::fprintf(code ? stderr : stdout,
               "usage: adc_synth [--script S] [--out DIR] [--emit KIND]... "
               "[--simulate REG=VAL,...] [--report] [program.adc]\n");
  return code;
}

std::map<std::string, std::int64_t> parse_init(const std::string& spec) {
  std::map<std::string, std::int64_t> init;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    auto eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("--simulate expects REG=VAL pairs, got '" + item + "'");
    init[item.substr(0, eq)] = std::stoll(item.substr(eq + 1));
  }
  return init;
}

}  // namespace

int main(int argc, char** argv) {
  std::string script_text = "gt1; gt2; gt3; gt4; gt2; gt5; lt";
  std::string out_dir = ".";
  std::string input_file;
  std::set<std::string> emit;
  std::string simulate;
  bool report = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(2);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    else if (arg == "--script") script_text = next();
    else if (arg == "--out") out_dir = next();
    else if (arg == "--emit") emit.insert(next());
    else if (arg == "--simulate") simulate = next();
    else if (arg == "--report") report = true;
    else if (!arg.empty() && arg[0] == '-') return usage(2);
    else input_file = arg;
  }
  if (emit.empty()) emit = {"bms", "verilog", "eqn", "dot"};

  try {
    std::string source;
    if (input_file.empty()) {
      std::stringstream ss;
      ss << std::cin.rdbuf();
      source = ss.str();
    } else {
      std::ifstream in(input_file);
      if (!in) {
        std::fprintf(stderr, "adc_synth: cannot open %s\n", input_file.c_str());
        return 1;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      source = ss.str();
    }

    Cdfg g = parse_program(source);
    validate_or_throw(g, ValidateOptions{.allow_backward_arcs = false});
    std::printf("parsed '%s': %zu nodes, %zu arcs, %zu functional units\n",
                g.name().c_str(), g.live_node_count(), g.live_arc_count(), g.fu_count());

    TransformScript script = TransformScript::parse(script_text);
    auto global = script.run(g);
    std::printf("script '%s': %zu controller channels\n", script.to_string().c_str(),
                global.plan.count_controller_channels());

    std::vector<ControllerInstance> instances;
    Table t({"controller", "states", "transitions", "products", "literals",
             "impl states"});
    for (auto& c : extract_controllers(g, global.plan)) {
      ControllerInstance inst;
      if (script.has_local_step())
        inst.shared_signals = run_local_transforms(c, script.local_options()).shared_signals;
      if (c.machine.transition_ids().empty()) continue;

      auto logic = synthesize_logic(c);
      auto st = gate_stats(logic, c.machine.state_count());
      t.add_row({c.machine.name(), std::to_string(st.spec_states),
                 std::to_string(c.machine.transition_count()),
                 std::to_string(st.products_shared), std::to_string(st.literals_shared),
                 std::to_string(st.impl_states)});

      std::string base = out_dir + "/" + g.name() + "_" + c.machine.name();
      if (emit.count("bms")) std::ofstream(base + ".bms") << to_text(c.machine);
      if (emit.count("verilog"))
        std::ofstream(base + ".v") << to_verilog(logic, g.name() + "_" + c.machine.name());
      if (emit.count("eqn")) std::ofstream(base + ".eqn") << to_equations(logic);

      inst.controller = std::move(c);
      instances.push_back(std::move(inst));
    }
    if (emit.count("dot"))
      std::ofstream(out_dir + "/" + g.name() + ".dot") << to_dot(g);
    if (report) std::printf("%s", t.to_string().c_str());

    if (!simulate.empty()) {
      auto init = parse_init(simulate);
      auto r = run_event_sim(g, global.plan, instances, init, EventSimOptions{});
      if (!r.completed) {
        std::printf("simulation FAILED: %s\n", r.error.c_str());
        return 1;
      }
      std::printf("simulation completed at t=%lld (%lld datapath operations)\n",
                  static_cast<long long>(r.finish_time),
                  static_cast<long long>(r.operations));
      for (const auto& [reg, v] : r.registers)
        std::printf("  %s = %lld\n", reg.c_str(), static_cast<long long>(v));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adc_synth: %s\n", e.what());
    return 1;
  }
}
