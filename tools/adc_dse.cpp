// adc_dse — batch design-space exploration driver.
//
// Fans a grid of transformation recipes × benchmarks across the parallel
// synthesis runtime (work-stealing pool + content-addressed stage cache)
// and reports the figure-12/13 quality surface of every point: channels,
// states, transitions, products, literals and simulated latency.
//
//   adc_dse --bench diffeq --grid gt --jobs 8 --json report.json
//   adc_dse --bench diffeq,ewf --recipes "gt1; gt2; lt | gt2; gt5; lt"
//   adc_dse --init x=0,k=3,n=5,s=0,C=1 my_program.adc
//
// Options:
//   --bench NAME[,NAME...]  builtin benchmarks (diffeq, gcd, fir4,
//                           mac_reduce, ewf_lite, ewf); positional
//                           arguments name .adc program files instead
//   --recipes "S1 | S2"     explicit recipe list ('|'-separated scripts)
//   --grid gt|gt-nolt       the 32-recipe GT ablation grid (with/without
//                           the local transforms appended)
//   --jobs N                worker threads (default: hardware, 0 = serial)
//   --json FILE             machine-readable report ('-' = stdout)
//   --init REG=VAL,...      simulation register file for .adc programs
//   --seed N                event-sim seed (with --randomize)
//   --randomize             randomize simulation delays (default: fixed)
//   --no-sim                skip event-simulation (structure metrics only)
//   --verify-serial         also evaluate the grid serially on one thread
//                           and fail if any metric differs
//   --metrics               dump runtime metrics JSON to stderr (the same
//                           object --json embeds under "metrics")
//   --trace-out FILE        Chrome trace_event JSON of the whole batch:
//                           per-stage spans with cache hit/miss annotations
//                           across every worker (open in Perfetto)
//   --provenance DIR        write each point's reconciled transform
//                           decision log to DIR/<bench>-pN.provenance.json
//   --vcd DIR               re-run deadlocked points with waveform capture
//                           and write DIR/<bench>-pN.vcd; the --json report
//                           points at the file from the deadlock entry
//   --critical-path         attribute each point's simulated latency to
//                           channels/controllers/phases; each --json point
//                           gains a "critical_path" object
//   --profile-out FILE      write the versioned dse_profile.json store
//                           ('-' = stdout): per-point attribution joined
//                           with area-model numbers, recipe + provenance
//                           decisions, plus the grid analyses (bottleneck
//                           ranking, Pareto frontier, suggestions).
//                           Implies --critical-path and provenance capture.
//   --frontier              print the human frontier report: Pareto
//                           members, dominated points with their
//                           dominators, grid-wide bottleneck ranking and
//                           the top-k suggestions (same implications)
//   --explain A:B           differential explain of two grid points; A/B
//                           are point indices or "best"/"worst" (by
//                           simulated cycle time among ok points).  Diffs
//                           the segment trees and attributes latency
//                           deltas to the differing transform decisions
//   --log-level LEVEL       error|warn|info|debug|trace (default: ADC_LOG)
//   --cache-dir DIR         persistent disk-tier point cache: completed
//                           ok/deadlock points are stored as checksummed
//                           files and replayed warm across process restarts
//   --cache-bytes N         disk-tier LRU size cap in bytes (default 256 MiB)
//   --stage-deadline-ms N   per-stage wall budget; an overrunning stage is
//                           cancelled and the point reported status=timeout
//   --point-deadline-ms N   whole-point wall budget (same semantics)
//   --retries N             re-evaluate points that failed with an injected
//                           fault up to N times (default 2)
//   --retry-backoff-ms N    base backoff between retries, doubling (default 50)
//   --fault SPEC            arm the deterministic fault injector (overrides
//                           the ADC_FAULT environment variable); see
//                           docs/ROBUSTNESS.md for the plan grammar
//   --help
//
// Every grid point is quarantined independently: a timed-out, faulted or
// deadlocked point is reported with its status while the surviving
// frontier is still evaluated, written and summarized in an explicit
// coverage ledger.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include <memory>

#include "analysis/build.hpp"
#include "analysis/explain.hpp"
#include "analysis/grid.hpp"
#include "report/json.hpp"
#include "report/table.hpp"
#include "runtime/fault.hpp"
#include "runtime/flow.hpp"
#include "trace/flush.hpp"
#include "trace/log.hpp"
#include "trace/tracer.hpp"
#include "trace/vcd.hpp"

using namespace adc;

namespace {

int usage(int code) {
  std::fprintf(code ? stderr : stdout,
               "usage: adc_dse [--bench NAMES] [--recipes \"S1 | S2\"] "
               "[--grid gt|gt-nolt] [--jobs N] [--json FILE] "
               "[--init REG=VAL,...] [--seed N] [--randomize] [--no-sim] "
               "[--verify-serial] [--metrics] [--trace-out FILE] "
               "[--provenance DIR] [--vcd DIR] [--critical-path] "
               "[--profile-out FILE] [--frontier] [--explain A:B] "
               "[--cache-dir DIR] [--cache-bytes N] "
               "[--stage-deadline-ms N] [--point-deadline-ms N] "
               "[--retries N] [--retry-backoff-ms N] [--fault SPEC] "
               "[--log-level LEVEL] [program.adc]...\n"
               "\n"
               "exit codes (worst surviving outcome wins):\n"
               "  0  every point completed ok\n"
               "  1  internal error (bad input file, I/O failure, ...)\n"
               "  2  usage error\n"
               "  3  --verify-serial found a parallel/serial mismatch\n"
               "  6  a point failed (injected fault or synthesis error)\n"
               "  5  a point timed out or was cancelled\n"
               "  4  a point's event simulation deadlocked\n"
               "severity: 3 > 6 > 5 > 4 when several statuses occur.\n");
  return code;
}

std::map<std::string, std::int64_t> parse_init(const std::string& spec) {
  std::map<std::string, std::int64_t> init;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    auto eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("--init expects REG=VAL pairs, got '" + item + "'");
    init[item.substr(0, eq)] = std::stoll(item.substr(eq + 1));
  }
  return init;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) {
    // trim
    auto b = item.find_first_not_of(" \t\n");
    auto e = item.find_last_not_of(" \t\n");
    if (b == std::string::npos) continue;
    out.push_back(item.substr(b, e - b + 1));
  }
  return out;
}

bool same_point(const FlowPoint& a, const FlowPoint& b) {
  return a.ok == b.ok && a.channels == b.channels && a.states == b.states &&
         a.transitions == b.transitions && a.products == b.products &&
         a.literals == b.literals && a.latency == b.latency;
}

// "<bench>-pN" file stem for per-point artifacts; path-hostile characters
// in the benchmark name (it may be a .adc file path) become '_'.
std::string point_stem(const FlowPoint& p, std::size_t index) {
  std::string stem = p.benchmark;
  for (char& c : stem)
    if (c == '/' || c == '\\' || c == ' ') c = '_';
  return stem + "-p" + std::to_string(index);
}

// Resolves one side of --explain A:B: a point index, or "best"/"worst" by
// simulated cycle time among the ok points.
std::size_t resolve_explain_ref(const std::string& ref,
                                const std::vector<FlowPoint>& points) {
  if (ref == "best" || ref == "worst") {
    bool found = false;
    std::size_t pick = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (!points[i].ok || points[i].latency <= 0) continue;
      if (!found || (ref == "best" ? points[i].latency < points[pick].latency
                                   : points[i].latency > points[pick].latency)) {
        pick = i;
        found = true;
      }
    }
    if (!found)
      throw std::runtime_error("--explain " + ref +
                               ": no simulated ok point in the grid");
    return pick;
  }
  std::size_t idx = std::stoul(ref);
  if (idx >= points.size())
    throw std::runtime_error("--explain: point index " + ref +
                             " out of range (grid has " +
                             std::to_string(points.size()) + " points)");
  return idx;
}

std::string frontier_report(const analysis::DseProfile& prof) {
  std::ostringstream os;
  const analysis::GridAnalysis& g = prof.grid;
  os << "pareto frontier (control area x cycle time): " << g.frontier.size()
     << " member(s), " << g.dominated.size() << " dominated\n";
  for (const auto& f : g.frontier) {
    const analysis::PointProfile* p = prof.find(f.index);
    os << "  #" << f.index << "  cycle=" << f.cycle_time
       << "  area=" << f.area_transistors << "  ["
       << (p && !p->script.empty() ? p->script : "(none)") << "]\n";
  }
  if (!g.dominated.empty()) {
    os << "dominated:\n";
    for (const auto& d : g.dominated) {
      const analysis::PointProfile* p = prof.find(d.index);
      os << "  #" << d.index << " (cycle=" << (p ? p->cycle_time : 0)
         << " area=" << (p ? p->area_transistors : 0) << ") dominated by #"
         << d.dominated_by << "\n";
    }
  }
  auto rank = [&](const char* what,
                  const std::vector<analysis::BottleneckRow>& rows) {
    if (rows.empty()) return;
    os << "grid bottlenecks by " << what << " (attributed ticks, all points):\n";
    std::size_t shown = 0;
    for (const auto& r : rows) {
      os << "  " << r.name << "  " << r.ticks << " ticks across " << r.points
         << " point(s)\n";
      if (++shown == 5) break;
    }
  };
  rank("channel", g.channels);
  rank("controller", g.controllers);
  if (!g.suggestions.empty()) {
    os << "suggestions (highest-value transform targets):\n";
    for (const auto& s : g.suggestions) {
      os << "  " << s.rank << ". " << s.kind << " '" << s.name << "' ("
         << s.ticks << " ticks)";
      if (!s.hints.empty()) {
        os << " try:";
        for (const auto& h : s.hints) os << " " << h;
      }
      os << "\n     " << s.rationale << "\n";
    }
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> bench_names;
  std::vector<std::string> files;
  std::vector<std::string> recipes;
  std::string grid;
  std::string json_path;
  std::string init_spec;
  std::string trace_path;
  std::string prov_dir;
  std::string vcd_dir;
  std::string cache_dir;
  std::string fault_spec;
  std::size_t jobs = std::thread::hardware_concurrency();
  std::uint64_t seed = 1;
  std::uint64_t cache_bytes = 256ull << 20;
  std::uint64_t stage_deadline_ms = 0, point_deadline_ms = 0;
  unsigned retries = 2;
  std::uint64_t retry_backoff_ms = 50;
  bool randomize = false, simulate = true, verify_serial = false, dump_metrics = false;
  bool critical_path = false;
  std::string profile_out;
  std::string explain_spec;
  bool frontier = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(2);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    else if (arg == "--bench") for (auto& n : split(next(), ',')) bench_names.push_back(n);
    else if (arg == "--recipes") for (auto& r : split(next(), '|')) recipes.push_back(r);
    else if (arg == "--grid") grid = next();
    else if (arg == "--jobs") jobs = std::stoul(next());
    else if (arg == "--json") json_path = next();
    else if (arg == "--init") init_spec = next();
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--randomize") randomize = true;
    else if (arg == "--no-sim") simulate = false;
    else if (arg == "--verify-serial") verify_serial = true;
    else if (arg == "--metrics") dump_metrics = true;
    else if (arg == "--trace-out") trace_path = next();
    else if (arg == "--provenance") prov_dir = next();
    else if (arg == "--vcd") vcd_dir = next();
    else if (arg == "--critical-path") critical_path = true;
    else if (arg == "--profile-out") profile_out = next();
    else if (arg == "--frontier") frontier = true;
    else if (arg == "--explain") explain_spec = next();
    else if (arg == "--cache-dir") cache_dir = next();
    else if (arg == "--cache-bytes") cache_bytes = std::stoull(next());
    else if (arg == "--stage-deadline-ms") stage_deadline_ms = std::stoull(next());
    else if (arg == "--point-deadline-ms") point_deadline_ms = std::stoull(next());
    else if (arg == "--retries") retries = static_cast<unsigned>(std::stoul(next()));
    else if (arg == "--retry-backoff-ms") retry_backoff_ms = std::stoull(next());
    else if (arg == "--fault") fault_spec = next();
    else if (arg == "--log-level") {
      try {
        set_log_level(log_level_from_string(next()));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "adc_dse: %s\n", e.what());
        return 2;
      }
    }
    else if (!arg.empty() && arg[0] == '-') return usage(2);
    else files.push_back(arg);
  }

  try {
    fault().configure_from_env();
    if (!fault_spec.empty()) fault().configure(fault_spec);
    if (!grid.empty()) {
      if (grid != "gt" && grid != "gt-nolt")
        throw std::invalid_argument("unknown grid '" + grid + "'");
      for (auto& s : gt_ablation_grid(grid == "gt")) recipes.push_back(s);
    }
    if (recipes.empty()) {
      // A small default surface: nothing, GT only, the paper's full recipe.
      recipes = {"", "gt1; gt2; gt3; gt4; gt2; gt5", "gt1; gt2; gt3; gt4; gt2; gt5; lt"};
    }
    if (bench_names.empty() && files.empty()) bench_names.push_back("diffeq");

    // The explainability paths all need the attribution segments and the
    // provenance decision log on every point.
    const bool profiling =
        !profile_out.empty() || frontier || !explain_spec.empty();
    if (profiling) critical_path = true;
    if (!explain_spec.empty() &&
        explain_spec.find(':') == std::string::npos)
      throw std::invalid_argument("--explain expects A:B (indices or best/worst)");

    // Assemble the request grid.
    std::vector<FlowRequest> reqs;
    for (const auto& name : bench_names) {
      const BuiltinBenchmark* b = find_builtin(name);
      if (!b) throw std::invalid_argument("unknown builtin benchmark '" + name + "'");
      for (const auto& r : recipes) {
        FlowRequest req = make_builtin_request(*b, r);
        req.sim.seed = seed;
        req.sim.randomize_delays = randomize;
        req.simulate = simulate;
        req.provenance = !prov_dir.empty() || profiling;
        req.critical_path = critical_path;
        req.stage_deadline_ms = stage_deadline_ms;
        req.deadline_ms = point_deadline_ms;
        reqs.push_back(std::move(req));
      }
    }
    auto file_init = init_spec.empty() ? std::map<std::string, std::int64_t>{}
                                       : parse_init(init_spec);
    for (const auto& path : files) {
      std::ifstream in(path);
      if (!in) throw std::runtime_error("cannot open " + path);
      std::stringstream ss;
      ss << in.rdbuf();
      for (const auto& r : recipes) {
        FlowRequest req;
        req.benchmark = path;
        req.source = ss.str();
        req.script = r;
        req.init = file_init;
        req.sim.seed = seed;
        req.sim.randomize_delays = randomize;
        req.simulate = simulate;
        req.provenance = !prov_dir.empty() || profiling;
        req.critical_path = critical_path;
        req.stage_deadline_ms = stage_deadline_ms;
        req.deadline_ms = point_deadline_ms;
        reqs.push_back(std::move(req));
      }
    }

    // Evaluate, parallel then (optionally) serial for cross-checking.
    std::unique_ptr<ThreadPool> pool;
    if (jobs > 0) pool = std::make_unique<ThreadPool>(jobs);
    auto tracer = std::make_shared<Tracer>();
    FlowExecutor::Options opts;
    if (!trace_path.empty()) opts.tracer = tracer.get();
    opts.disk_cache_dir = cache_dir;
    opts.disk_cache_bytes = cache_bytes;
    // Interrupted batches still flush a balanced partial trace.
    int trace_token = -1;
    if (!trace_path.empty())
      trace_token = register_artifact_flush(trace_path, [tracer, trace_path] {
        std::ofstream out(trace_path);
        tracer->write_chrome_trace(out);
      });
    FlowExecutor exec(pool.get(), opts);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<FlowPoint> points = exec.run_all(reqs);

    // Quarantine & retry: points that died to an injected fault are
    // re-evaluated with a fresh cancel token (a tripped token stays
    // tripped) and doubling backoff.  Deterministic count-limited fault
    // plans drain, so transients recover; persistent faults exhaust the
    // budget and keep status=fault with the attempt count recorded.
    std::size_t retried_points = 0, retry_attempts = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].status != FlowStatus::kFault) continue;
      ++retried_points;
      std::uint64_t backoff = retry_backoff_ms;
      unsigned attempts = points[i].attempts;
      for (unsigned r = 1; r <= retries && points[i].status == FlowStatus::kFault;
           ++r) {
        std::fprintf(stderr,
                     "adc_dse: retry %u/%u for %s [%s] after fault: %s\n", r,
                     retries, points[i].benchmark.c_str(),
                     points[i].script.c_str(), points[i].error.c_str());
        if (backoff) {
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
          backoff *= 2;
        }
        reqs[i].cancel = CancelToken();
        points[i] = exec.run(reqs[i]);
        ++attempts;
        ++retry_attempts;
      }
      points[i].attempts = attempts;
    }
    auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

    // Coverage ledger: every point accounted for by terminal status.
    std::size_t n_ok = 0, n_deadlock = 0, n_timeout = 0, n_cancelled = 0,
                n_fault = 0, n_error = 0;
    for (const auto& p : points) {
      switch (p.status) {
        case FlowStatus::kOk: ++n_ok; break;
        case FlowStatus::kDeadlock: ++n_deadlock; break;
        case FlowStatus::kTimeout: ++n_timeout; break;
        case FlowStatus::kCancelled: ++n_cancelled; break;
        case FlowStatus::kFault: ++n_fault; break;
        case FlowStatus::kError: ++n_error; break;
      }
    }

    // Per-point artifacts: a provenance log per evaluated point, and for
    // points whose simulation deadlocked a waveform of the stall — the
    // synthesis stages are all cache hits by now, only the simulation
    // re-runs with the VCD hooks attached.
    std::vector<std::vector<std::pair<std::string, std::string>>> extras(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (!prov_dir.empty() && points[i].provenance) {
        std::string path = prov_dir + "/" + point_stem(points[i], i) + ".provenance.json";
        std::ofstream out(path);
        out << points[i].provenance->to_json() << "\n";
        if (!out) throw std::runtime_error("cannot write " + path);
        extras[i].emplace_back("provenance", path);
      }
      if (!vcd_dir.empty() && points[i].deadlocked) {
        std::string path = vcd_dir + "/" + point_stem(points[i], i) + ".vcd";
        VcdWriter vcd;
        FlowRequest rerun = reqs[i];
        rerun.sim.vcd = &vcd;
        rerun.provenance = false;
        rerun.cancel = CancelToken();
        exec.run(rerun);
        std::ofstream out(path);
        vcd.write(out);
        if (!out) throw std::runtime_error("cannot write " + path);
        extras[i].emplace_back("vcd", path);
      }
    }

    // Design-space explainability: build the profile store once, feed
    // every consumer (--profile-out/--frontier/--explain) and publish the
    // analysis.* gauges so the --json metrics object carries them.
    std::unique_ptr<analysis::DseProfile> profile;
    if (profiling) {
      ScopedSpan span(opts.tracer, "analysis.profile");
      profile = std::make_unique<analysis::DseProfile>(
          analysis::build_dse_profile(points, "adc_dse"));
      MetricsRegistry& m = exec.metrics();
      m.gauge("analysis.points")
          .set(static_cast<std::int64_t>(profile->points.size()));
      m.gauge("analysis.frontier_size")
          .set(static_cast<std::int64_t>(profile->grid.frontier.size()));
      m.gauge("analysis.dominated")
          .set(static_cast<std::int64_t>(profile->grid.dominated.size()));
      m.gauge("analysis.top_bottleneck_ticks")
          .set(profile->grid.channels.empty() ? 0
                                              : profile->grid.channels.front().ticks);
    }

    int rc = 0;
    if (verify_serial) {
      FlowExecutor serial(nullptr);
      std::size_t mismatches = 0;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].cancel = CancelToken();
        FlowPoint ref = serial.run(reqs[i]);
        if (!same_point(points[i], ref)) {
          ++mismatches;
          std::fprintf(stderr,
                       "adc_dse: MISMATCH %s [%s]: parallel "
                       "(ch=%zu st=%zu tr=%zu pr=%zu li=%zu lat=%lld ok=%d) vs serial "
                       "(ch=%zu st=%zu tr=%zu pr=%zu li=%zu lat=%lld ok=%d)\n",
                       ref.benchmark.c_str(), ref.script.c_str(), points[i].channels,
                       points[i].states, points[i].transitions, points[i].products,
                       points[i].literals, static_cast<long long>(points[i].latency),
                       points[i].ok, ref.channels, ref.states, ref.transitions,
                       ref.products, ref.literals, static_cast<long long>(ref.latency),
                       ref.ok);
        }
      }
      if (mismatches) {
        std::fprintf(stderr, "adc_dse: %zu/%zu points differ from the serial run\n",
                     mismatches, reqs.size());
        rc = 3;
      } else {
        std::fprintf(stderr, "adc_dse: all %zu points match the serial run\n",
                     reqs.size());
      }
    }

    CacheStats cs = exec.cache().stats();
    if (json_path.empty()) {
      Table t({"benchmark", "script", "channels", "states/trans", "prod/lits",
               "latency", "status", "ms"});
      for (const auto& p : points)
        t.add_row({p.benchmark, p.script.empty() ? "(none)" : p.script,
                   std::to_string(p.channels), pair_cell(p.states, p.transitions),
                   pair_cell(p.products, p.literals), std::to_string(p.latency),
                   to_string(p.status), std::to_string(p.total_micros / 1000)});
      std::printf("%s", t.to_string().c_str());
      std::printf(
          "\n%zu points, %zu jobs, %lld ms wall; cache: %llu hits, %llu joins, "
          "%llu misses (%.0f%% reuse)\n",
          points.size(), jobs, static_cast<long long>(wall_ms),
          static_cast<unsigned long long>(cs.hits),
          static_cast<unsigned long long>(cs.joins),
          static_cast<unsigned long long>(cs.misses), 100.0 * cs.hit_rate());
      std::printf(
          "coverage: %zu ok, %zu deadlock, %zu timeout, %zu fault, %zu error, "
          "%zu cancelled; %zu point(s) retried (%zu attempt(s))\n",
          n_ok, n_deadlock, n_timeout, n_fault, n_error, n_cancelled,
          retried_points, retry_attempts);
      if (const DiskCache* dc = exec.disk_cache()) {
        DiskCache::Stats ds = dc->stats();
        std::printf(
            "disk cache: %llu hits, %llu misses, %llu stores, %llu evictions, "
            "%llu corrupt (%llu bytes)\n",
            static_cast<unsigned long long>(ds.hits),
            static_cast<unsigned long long>(ds.misses),
            static_cast<unsigned long long>(ds.puts),
            static_cast<unsigned long long>(ds.evictions),
            static_cast<unsigned long long>(ds.corrupt),
            static_cast<unsigned long long>(dc->total_bytes()));
      }
    } else {
      JsonWriter w(true);
      w.begin_object();
      w.kv("tool", "adc_dse");
      w.kv("jobs", static_cast<std::uint64_t>(jobs));
      w.kv("wall_ms", static_cast<std::int64_t>(wall_ms));
      w.key("cache");
      w.begin_object();
      w.kv("hits", cs.hits);
      w.kv("joins", cs.joins);
      w.kv("misses", cs.misses);
      w.kv("evictions", cs.evictions);
      w.kv("hit_rate", cs.hit_rate());
      w.end_object();
      if (const DiskCache* dc = exec.disk_cache()) {
        DiskCache::Stats ds = dc->stats();
        w.key("disk_cache");
        w.begin_object();
        w.kv("dir", dc->dir());
        w.kv("hits", ds.hits);
        w.kv("misses", ds.misses);
        w.kv("stores", ds.puts);
        w.kv("evictions", ds.evictions);
        w.kv("corrupt", ds.corrupt);
        w.kv("put_errors", ds.put_errors);
        w.kv("total_bytes", dc->total_bytes());
        w.end_object();
      }
      w.key("coverage");
      w.begin_object();
      w.kv("total", static_cast<std::uint64_t>(points.size()));
      w.kv("ok", static_cast<std::uint64_t>(n_ok));
      w.kv("deadlock", static_cast<std::uint64_t>(n_deadlock));
      w.kv("timeout", static_cast<std::uint64_t>(n_timeout));
      w.kv("fault", static_cast<std::uint64_t>(n_fault));
      w.kv("error", static_cast<std::uint64_t>(n_error));
      w.kv("cancelled", static_cast<std::uint64_t>(n_cancelled));
      w.kv("retried", static_cast<std::uint64_t>(retried_points));
      w.kv("retry_attempts", static_cast<std::uint64_t>(retry_attempts));
      w.end_object();
      w.key("points");
      w.begin_array();
      for (std::size_t i = 0; i < points.size(); ++i)
        write_json(w, points[i], extras[i]);
      w.end_array();
      w.key("metrics");
      exec.metrics().write_json(w);
      w.end_object();
      if (json_path == "-") {
        std::printf("%s\n", w.str().c_str());
      } else {
        std::ofstream out(json_path);
        out << w.str() << "\n";
        if (!out) throw std::runtime_error("cannot write " + json_path);
        std::fprintf(stderr, "adc_dse: wrote %s (%zu points)\n", json_path.c_str(),
                     points.size());
      }
    }
    if (profile) {
      if (!profile_out.empty()) {
        std::string text = analysis::to_json(*profile);
        if (profile_out == "-") {
          std::printf("%s\n", text.c_str());
        } else {
          std::ofstream out(profile_out);
          out << text << "\n";
          if (!out) throw std::runtime_error("cannot write " + profile_out);
          std::fprintf(stderr, "adc_dse: wrote %s (%zu points, %zu on frontier)\n",
                       profile_out.c_str(), profile->points.size(),
                       profile->grid.frontier.size());
        }
      }
      if (frontier) {
        ScopedSpan span(opts.tracer, "analysis.frontier");
        std::printf("%s", frontier_report(*profile).c_str());
      }
      if (!explain_spec.empty()) {
        ScopedSpan span(opts.tracer, "analysis.explain");
        auto colon = explain_spec.find(':');
        std::size_t ia = resolve_explain_ref(explain_spec.substr(0, colon), points);
        std::size_t ib = resolve_explain_ref(explain_spec.substr(colon + 1), points);
        auto rep = analysis::explain_points(profile->points[ia],
                                            profile->points[ib]);
        std::printf("%s", rep.to_table().c_str());
      }
    }
    if (dump_metrics)
      std::fprintf(stderr, "%s\n", exec.metrics().to_json().c_str());
    if (!trace_path.empty()) {
      unregister_artifact_flush(trace_token);
      std::ofstream out(trace_path);
      tracer->write_chrome_trace(out);
      if (!out) throw std::runtime_error("cannot write " + trace_path);
      std::fprintf(stderr, "adc_dse: wrote %s\n", trace_path.c_str());
    }

    for (std::size_t i = 0; i < points.size(); ++i) {
      const FlowPoint& p = points[i];
      if (!p.ok && !p.error.empty())
        std::fprintf(stderr, "adc_dse: %s [%s]: %s%s\n", p.benchmark.c_str(),
                     p.script.c_str(), p.deadlocked ? "DEADLOCK: " : "",
                     p.error.c_str());
    }
    // Worst surviving outcome wins: a verify mismatch trumps everything,
    // then fault/error, then timeout/cancelled, then deadlock.
    if (rc == 0) {
      if (n_fault || n_error) rc = 6;
      else if (n_timeout || n_cancelled) rc = 5;
      else if (n_deadlock) rc = 4;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adc_dse: %s\n", e.what());
    return 1;
  }
}
