// adc_obs_check — validates the observability artifacts the flow emits.
//
//   adc_obs_check [--trace FILE] [--provenance FILE] [--vcd FILE]
//                 [--bench FILE] [--cache-dir DIR]
//
// Used by the CI smoke test: after `adc_synth --trace-out --provenance
// --vcd` runs a benchmark, this tool proves the three artifacts are
// well-formed without opening Perfetto/GTKWave —
//
//  * trace: Chrome trace_event JSON, every event carries name/ph/ts/pid/tid,
//    B/E pairs balance per track and time never moves backwards on a track;
//  * provenance: parses, names its benchmark/script, and its embedded
//    "reconciliation" check list is empty (the ledgers balance);
//  * vcd: declarations close with $enddefinitions, every value change
//    references a declared identifier code, timestamps are non-decreasing,
//    and at least one change was recorded;
//  * bench: a BENCH JSON report (kind "adc-bench" v1) with a complete
//    environment fingerprint, unique benchmark names and internally
//    consistent statistics (p50 <= p90 <= p99, min <= p50, p99 <= max);
//  * cache-dir: every *.adcstage file in a disk-tier stage cache directory
//    decodes cleanly (magic, version, length, checksum) — an offline
//    integrity audit of what a crashed or fault-injected run left behind.
//
// Exit 0 when every given artifact validates; 1 otherwise with one line per
// problem.

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "perf/record.hpp"
#include "report/json_parse.hpp"
#include "runtime/disk_cache.hpp"

using namespace adc;

namespace {

int errors = 0;

void fail(const std::string& what) {
  std::fprintf(stderr, "adc_obs_check: %s\n", what.c_str());
  ++errors;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void check_trace(const std::string& path) {
  JsonValue doc = parse_json(slurp(path));
  const JsonValue* events = doc.find("traceEvents");
  if (!events || !events->is_array()) {
    fail(path + ": no traceEvents array");
    return;
  }
  if (events->array.empty()) fail(path + ": empty trace");
  std::map<int, int> depth;
  std::map<int, double> last_ts;
  std::size_t spans = 0;
  for (const JsonValue& ev : events->array) {
    for (const char* key : {"name", "ph", "ts", "pid", "tid"})
      if (!ev.find(key)) {
        fail(path + ": event missing '" + key + "'");
        return;
      }
    int tid = static_cast<int>(ev.at("tid").number);
    double ts = ev.at("ts").number;
    if (last_ts.count(tid) && ts < last_ts[tid])
      fail(path + ": time moved backwards on track " + std::to_string(tid));
    last_ts[tid] = ts;
    const std::string& ph = ev.at("ph").string;
    if (ph == "B") {
      ++depth[tid];
      ++spans;
    } else if (ph == "E") {
      if (--depth[tid] < 0) {
        fail(path + ": end without begin on track " + std::to_string(tid));
        return;
      }
    } else if (ph != "C" && ph != "i") {
      fail(path + ": unexpected phase '" + ph + "'");
    }
  }
  for (const auto& [tid, d] : depth)
    if (d != 0) fail(path + ": " + std::to_string(d) + " unclosed span(s) on track " +
                     std::to_string(tid));
  if (spans == 0) fail(path + ": no spans recorded");
}

void check_provenance(const std::string& path) {
  JsonValue doc = parse_json(slurp(path));
  for (const char* key : {"benchmark", "script", "graph", "stages", "controllers"})
    if (!doc.find(key)) fail(path + ": missing '" + key + "'");
  const JsonValue* rec = doc.find("reconciliation");
  if (!rec || !rec->is_array()) {
    fail(path + ": missing reconciliation check list");
  } else {
    for (const JsonValue& e : rec->array)
      fail(path + ": reconciliation: " + e.string);
  }
}

void check_vcd(const std::string& path) {
  std::istringstream is(slurp(path));
  std::string line;
  std::set<std::string> codes;
  bool defs_closed = false;
  bool in_dump = false;
  long long now = 0, changes = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (!defs_closed) {
      std::istringstream ls(line);
      std::string tok;
      ls >> tok;
      if (tok == "$var") {
        std::string type, width, code;
        ls >> type >> width >> code;
        if (!codes.insert(code).second) fail(path + ": duplicate code " + code);
      } else if (tok == "$enddefinitions") {
        defs_closed = true;
      }
      continue;
    }
    if (line == "$dumpvars") {
      in_dump = true;
      continue;
    }
    if (line == "$end") {
      in_dump = false;
      continue;
    }
    if (line[0] == '#') {
      long long t = std::stoll(line.substr(1));
      if (t < now) fail(path + ": time moved backwards at #" + line.substr(1));
      now = t;
      continue;
    }
    std::string code;
    if (line[0] == 's') {
      code = line.substr(line.rfind(' ') + 1);
    } else if (line[0] == '0' || line[0] == '1') {
      code = line.substr(1);
    } else {
      fail(path + ": unparseable change line '" + line + "'");
      continue;
    }
    if (!codes.count(code)) fail(path + ": change for undeclared code " + code);
    if (!in_dump) ++changes;
  }
  if (!defs_closed) fail(path + ": missing $enddefinitions");
  if (codes.empty()) fail(path + ": no variables declared");
  if (changes == 0) fail(path + ": no value changes recorded");
}

void check_bench(const std::string& path) {
  JsonValue doc = parse_json(slurp(path));
  for (const std::string& problem : perf::validate_bench_json(doc))
    fail(path + ": " + problem);
}

void check_cache_dir(const std::string& dir) {
  auto entries = DiskCache::scan(dir);
  std::size_t valid = 0;
  for (const auto& e : entries) {
    if (e.valid) ++valid;
    else fail(dir + "/" + e.key + ".adcstage: " + e.defect);
  }
  std::printf("adc_obs_check: %s: %zu/%zu cache entries valid\n", dir.c_str(),
              valid, entries.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, prov_path, vcd_path, bench_path, cache_dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "adc_obs_check: %s needs a file\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") trace_path = next();
    else if (arg == "--provenance") prov_path = next();
    else if (arg == "--vcd") vcd_path = next();
    else if (arg == "--bench") bench_path = next();
    else if (arg == "--cache-dir") cache_dir = next();
    else {
      std::fprintf(stderr,
                   "usage: adc_obs_check [--trace FILE] [--provenance FILE] "
                   "[--vcd FILE] [--bench FILE] [--cache-dir DIR]\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  try {
    if (!trace_path.empty()) check_trace(trace_path);
    if (!prov_path.empty()) check_provenance(prov_path);
    if (!vcd_path.empty()) check_vcd(vcd_path);
    if (!bench_path.empty()) check_bench(bench_path);
    if (!cache_dir.empty()) check_cache_dir(cache_dir);
  } catch (const std::exception& e) {
    fail(e.what());
  }
  if (errors == 0) std::printf("adc_obs_check: all artifacts valid\n");
  return errors == 0 ? 0 : 1;
}
